//! Property-based tests on the system invariants: timing laws, DCM grid
//! legality, policy-constraint satisfaction, and trace/energy consistency.

use proptest::prelude::*;
use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::core::policy::{Constraint, PowerAwarePolicy};
use uparc_repro::core::uparc::{Mode, UParc};
use uparc_repro::fpga::dcm::DcmConstraints;
use uparc_repro::fpga::{Device, Family};
use uparc_repro::sim::power::calib;
use uparc_repro::sim::time::{Frequency, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn raw_transfer_takes_exactly_words_plus_one_cycles(
        frames in 1u32..200,
        grid_idx in 0usize..40,
    ) {
        let device = Device::xc5vsx50t();
        let policy = PowerAwarePolicy::paper_setup(device.family());
        let grid = policy.frequency_grid();
        let f = grid[grid_idx % grid.len()];
        let payload = SynthProfile::dense().generate(&device, 0, frames, 7);
        let bs = PartialBitstream::build(&device, 0, &payload);
        let mut sys = UParc::builder(device).build().expect("build");
        sys.set_reconfiguration_frequency(f).expect("grid point is legal");
        let r = sys.reconfigure_bitstream(&bs, Mode::Raw).expect("reconfigure");
        let cycles = bs.words().len() as u64 + 1; // + mode word
        prop_assert_eq!(r.transfer_time, r.frequency.time_of_cycles(cycles));
        prop_assert_eq!(r.control_overhead, SimTime::from_ns(1200));
    }

    #[test]
    fn dcm_search_results_are_always_legal(
        fin_mhz in 40u32..200,
        target_mhz in 33u32..450,
    ) {
        let c = DcmConstraints::for_family(Family::Virtex5);
        let fin = Frequency::from_mhz(f64::from(fin_mhz));
        let target = Frequency::from_mhz(f64::from(target_mhz));
        if let Some((m, d, f)) = c.best_factors(fin, target) {
            prop_assert_eq!(c.check(fin, m, d).expect("legal"), f);
        }
        if let Some((m, d, f)) = c.best_factors_at_most(fin, target) {
            prop_assert_eq!(c.check(fin, m, d).expect("legal"), f);
            prop_assert!(f <= target);
        }
    }

    #[test]
    fn deadline_plans_always_meet_their_deadline(deadline_us in 150u64..5_000, kb in 1usize..260) {
        let policy = PowerAwarePolicy::paper_setup(Family::Virtex5);
        let bytes = kb * 1024;
        let deadline = SimTime::from_us(deadline_us);
        match policy.plan(Constraint::Deadline(deadline), bytes) {
            Ok(plan) => prop_assert!(plan.predicted_time <= deadline),
            Err(_) => {
                // Infeasible must really be infeasible: even the fastest
                // grid point misses it.
                let grid = policy.frequency_grid();
                let best = policy.predicted_time(bytes, *grid.last().unwrap());
                prop_assert!(best > deadline);
            }
        }
    }

    #[test]
    fn budget_plans_never_exceed_their_budget(budget in 150.0f64..600.0) {
        let policy = PowerAwarePolicy::paper_setup(Family::Virtex5);
        match policy.plan(Constraint::PowerBudget { mw: budget }, 100 * 1024) {
            Ok(plan) => prop_assert!(plan.predicted_power_mw <= budget),
            Err(_) => {
                let grid = policy.frequency_grid();
                prop_assert!(policy.predicted_power_mw(grid[0]) > budget);
            }
        }
    }

    #[test]
    fn trace_energy_matches_report_energy(frames in 10u32..300, grid_idx in 0usize..40) {
        let device = Device::xc5vsx50t();
        let policy = PowerAwarePolicy::paper_setup(device.family());
        let grid = policy.frequency_grid();
        let f = grid[grid_idx % grid.len()];
        let payload = SynthProfile::dense().generate(&device, 0, frames, 11);
        let bs = PartialBitstream::build(&device, 0, &payload);
        let mut sys = UParc::builder(device).build().expect("build");
        sys.set_reconfiguration_frequency(f).expect("legal");
        sys.preload(&bs, Mode::Raw).expect("preload");
        let t0 = sys.now();
        let r = sys.reconfigure().expect("reconfigure");
        let t1 = sys.now();
        let trace = sys.power_trace();
        // Integrate the trace over the reconfiguration window and subtract
        // the idle floor: must equal the report's above-idle energy.
        let window = t1 - t0;
        let mut energy = 0.0;
        let mut t = t0;
        while t < t1 {
            let p = trace.power_at(t).expect("inside trace");
            let step = SimTime::from_ns(100).min(t1 - t);
            energy += (p - calib::V6_IDLE_MW) * step.as_secs_f64() * 1e3;
            t += step;
        }
        let _ = window;
        let rel = (energy - r.energy_uj).abs() / r.energy_uj.max(1e-9);
        prop_assert!(rel < 0.02, "trace {energy:.2} vs report {:.2} µJ", r.energy_uj);
    }

    #[test]
    fn compressed_and_raw_modes_configure_identically(frames in 5u32..150) {
        let device = Device::xc5vsx50t();
        let payload = SynthProfile::dense().generate(&device, 30, frames, 13);
        let bs = PartialBitstream::build(&device, 30, &payload);
        let mut raw = UParc::builder(device.clone()).build().expect("build");
        raw.reconfigure_bitstream(&bs, Mode::Raw).expect("raw");
        let mut comp = UParc::builder(device).build().expect("build");
        comp.reconfigure_bitstream(&bs, Mode::Compressed).expect("compressed");
        prop_assert_eq!(
            raw.icap().config_memory().diff_frames(comp.icap().config_memory()),
            0
        );
    }
}

//! Property-based tests for the extension features: ECC location, codec
//! geometry sweeps, scheduler accounting, and optimizer optimality.

use proptest::prelude::*;
use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::compress::lz77::Lz77;
use uparc_repro::compress::Codec;
use uparc_repro::core::manager::ManagerConfig;
use uparc_repro::core::optimize::{AppPhase, GlobalOptimizer};
use uparc_repro::core::policy::PowerAwarePolicy;
use uparc_repro::core::schedule::{run_schedule, ReconfigTask, Strategy};
use uparc_repro::core::uparc::{Mode, UParc};
use uparc_repro::fpga::ecc::{self, EccStatus};
use uparc_repro::fpga::{Device, Family};
use uparc_repro::sim::time::{Frequency, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ecc_locates_any_single_flip(
        frame in proptest::collection::vec(any::<u32>(), 41),
        word in 0usize..41,
        bit in 0u32..32,
    ) {
        let parity = ecc::frame_parity(&frame);
        let mut hit = frame.clone();
        hit[word] ^= 1 << bit;
        prop_assert_eq!(ecc::check(&hit, parity), EccStatus::SingleBit { word, bit });
        // Flipping it back restores cleanliness.
        hit[word] ^= 1 << bit;
        prop_assert_eq!(ecc::check(&hit, parity), EccStatus::Clean);
    }

    #[test]
    fn ecc_never_miscorrects_double_flips(
        frame in proptest::collection::vec(any::<u32>(), 41),
        a in 0usize..(41 * 32),
        b in 0usize..(41 * 32),
    ) {
        prop_assume!(a != b);
        let parity = ecc::frame_parity(&frame);
        let mut hit = frame.clone();
        hit[a / 32] ^= 1 << (a % 32);
        hit[b / 32] ^= 1 << (b % 32);
        // A double flip must never be "located" (overall parity is even).
        prop_assert_eq!(ecc::check(&hit, parity), EccStatus::MultiBit);
    }

    #[test]
    fn lz77_round_trips_across_geometries(
        data in proptest::collection::vec(prop_oneof![Just(0u8), any::<u8>()], 0..2000),
        offset_bits in 4u32..16,
        len_bits in 2u32..9,
    ) {
        let codec = Lz77::with_geometry(offset_bits, len_bits);
        let packed = codec.compress(&data);
        prop_assert_eq!(codec.decompress(&packed).expect("round-trip"), data);
    }

    #[test]
    fn schedule_downtime_accounting_is_consistent(
        execs in proptest::collection::vec(50u64..3000, 1..5),
    ) {
        let device = Device::xc5vsx50t();
        let tasks: Vec<ReconfigTask> = execs
            .iter()
            .enumerate()
            .map(|(i, &us)| {
                let payload =
                    SynthProfile::dense().generate(&device, 0, 100 + 50 * i as u32, i as u64);
                let bs = PartialBitstream::build(&device, 0, &payload);
                ReconfigTask::new(&format!("t{i}"), bs, Mode::Raw, SimTime::from_us(us))
            })
            .collect();
        let run = |strategy| {
            let mut sys = UParc::builder(device.clone()).build().expect("build");
            sys.set_reconfiguration_frequency(Frequency::from_mhz(300.0)).expect("tune");
            run_schedule(&mut sys, &tasks, strategy).expect("schedule")
        };
        let naive = run(Strategy::OnDemand);
        let smart = run(Strategy::Prefetch);
        // Total downtime is the sum of per-task downtimes…
        for report in [&naive, &smart] {
            let sum: SimTime = report.tasks.iter().map(|t| t.downtime).sum();
            prop_assert_eq!(sum, report.total_downtime);
        }
        // …prefetch never does worse, and both configured every task.
        prop_assert!(smart.total_downtime <= naive.total_downtime);
        prop_assert_eq!(naive.tasks.len(), tasks.len());
        // Per-task: downtime always covers the reconfiguration itself.
        for t in naive.tasks.iter().chain(&smart.tasks) {
            prop_assert!(t.downtime >= t.reconfiguration.elapsed());
        }
    }

    #[test]
    fn optimizer_plans_are_feasible_and_tight(
        sizes in proptest::collection::vec(8usize..250, 1..5),
        makespan_ms in 2u64..40,
        active_wait in any::<bool>(),
    ) {
        let phases: Vec<AppPhase> = sizes
            .iter()
            .enumerate()
            .map(|(i, &kb)| AppPhase::new(&format!("p{i}"), kb * 1024, SimTime::from_us(500)))
            .collect();
        let opt = GlobalOptimizer::new(PowerAwarePolicy::new(
            Family::Virtex5,
            Frequency::from_mhz(100.0),
            ManagerConfig { active_wait, ..ManagerConfig::default() },
        ));
        let makespan = SimTime::from_ms(makespan_ms);
        match opt.minimize_peak_power(&phases, makespan) {
            Ok(plan) => {
                prop_assert!(plan.total_time <= makespan);
                // Tightness: one grid step lower on the cap must be
                // infeasible (otherwise the search was not minimal).
                let grid = opt.policy().frequency_grid();
                let below: Vec<_> = grid
                    .iter()
                    .filter(|&&f| {
                        opt.policy().predicted_power_mw(f) < plan.peak_power_mw - 1e-9
                    })
                    .collect();
                if let Some(&&f) = below.last() {
                    let t: SimTime = phases
                        .iter()
                        .map(|p| opt.policy().predicted_time(p.bitstream_bytes, f) + p.execution)
                        .sum();
                    prop_assert!(t > makespan, "a lower cap would also fit");
                }
            }
            Err(_) => {
                // Infeasible must really be infeasible at max frequency.
                let grid = opt.policy().frequency_grid();
                let fmax = *grid.last().unwrap();
                let t: SimTime = phases
                    .iter()
                    .map(|p| opt.policy().predicted_time(p.bitstream_bytes, fmax) + p.execution)
                    .sum();
                prop_assert!(t > makespan);
            }
        }
    }
}

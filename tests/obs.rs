//! Integration tests of the observability layer (`uparc-sim::obs`) over a
//! seeded `bench_service`-style run: span nesting/ordering invariants,
//! byte-identical exports for identical seeds, and the guarantee that
//! observation never perturbs simulated behaviour.

use std::collections::HashMap;
use std::sync::Arc;

use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::fpga::Device;
use uparc_repro::serve::catalog::Catalog;
use uparc_repro::serve::metrics::ServiceSummary;
use uparc_repro::serve::obs::{EventKind, Obs, SpanId, TraceEvent, TraceRecorder};
use uparc_repro::serve::request::BitstreamId;
use uparc_repro::serve::scheduler::Policy;
use uparc_repro::serve::service::{Service, ServiceConfig};
use uparc_repro::serve::workload::{ArrivalPattern, WorkloadSpec};
use uparc_repro::sim::obs::json;
use uparc_repro::sim::time::SimTime;

/// Workload seed shared by every test; determinism tests rerun with it.
const SEED: u64 = 0x0b5e_7ab1e;

/// A two-region catalog with one raw-staged and one compressed module per
/// region — small enough to run in seconds, rich enough that a trace
/// carries `Preload`, `DecompressStage`, `DcmRelock` and `IcapBurst`
/// spans on both lanes.
fn catalog() -> Catalog {
    let device = Device::xc5vsx50t();
    let mut catalog = Catalog::new(device).with_bram_bytes(64 * 1024);
    catalog.add_region("rp0", 100..700).expect("rp0");
    catalog.add_region("rp1", 1000..1400).expect("rp1");
    let modules: [(u32, u32, u32); 4] = [
        (1, 100, 450), // 73.8 KB raw -> staged compressed
        (2, 150, 120),
        (3, 1000, 300),
        (4, 1050, 60),
    ];
    for (id, far, frames) in modules {
        let payload = SynthProfile::dense().generate(catalog.device(), far, frames, u64::from(id));
        let bs = PartialBitstream::build(catalog.device(), far, &payload);
        catalog
            .register(BitstreamId(id), bs)
            .unwrap_or_else(|e| panic!("register bs#{id}: {e}"));
    }
    catalog
}

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        requests: 40,
        mean_gap: SimTime::from_us(150),
        pattern: ArrivalPattern::Uniform,
        deadline_slack_us: Some((500, 5_000)),
        energy_budget_uj: None,
    }
}

/// Runs the seeded workload once under `config`, returning the summary.
fn run_summary(config: ServiceConfig) -> ServiceSummary {
    let service = Service::new(catalog(), config);
    let requests = workload().generate(SEED, service.catalog());
    service.run(&requests).summary()
}

/// Runs the seeded workload with a fresh recording observer.
fn observed_run() -> (Arc<TraceRecorder>, Obs, ServiceSummary) {
    let recorder = Arc::new(TraceRecorder::new());
    let obs = Obs::recording(Arc::clone(&recorder));
    let summary = run_summary(ServiceConfig {
        policy: Policy::PowerGreedy,
        power_cap_mw: 700.0,
        obs: obs.clone(),
        ..ServiceConfig::default()
    });
    (recorder, obs, summary)
}

#[test]
fn spans_nest_and_order_over_a_seeded_service_run() {
    let (recorder, _obs, summary) = observed_run();
    let events = recorder.events();
    assert_eq!(recorder.dropped(), 0, "default capacity must fit this run");
    assert!(!events.is_empty());

    // (1) Span ids are assigned monotonically across the whole run.
    let mut last_id = 0u64;
    for ev in &events {
        if let TraceEvent::Begin { span, .. } = ev {
            assert!(span.0 > last_id, "span id {} not monotonic", span.0);
            last_id = span.0;
        }
    }

    // (2) Every End pairs an open Begin (no orphans, no double-close)
    //     and never moves backwards in time; per-lane emission follows
    //     stack discipline (a lane closes its innermost span first), so
    //     the flame summary's folded stacks are well-defined.
    let mut open: HashMap<SpanId, (Option<u32>, SimTime, &'static str)> = HashMap::new();
    let mut stacks: HashMap<Option<u32>, Vec<SpanId>> = HashMap::new();
    let mut dispatch_spans = 0usize;
    let mut admission_instants = 0usize;
    for ev in &events {
        match ev {
            TraceEvent::Begin {
                at,
                span,
                lane,
                kind,
            } => {
                assert!(
                    open.insert(*span, (*lane, *at, kind.label())).is_none(),
                    "span id {} reused while open",
                    span.0
                );
                stacks.entry(*lane).or_default().push(*span);
                if matches!(kind, EventKind::Dispatch { .. }) {
                    dispatch_spans += 1;
                    assert!(lane.is_some(), "dispatch spans carry the lane tag");
                }
            }
            TraceEvent::End { at, span } => {
                let (lane, begin, label) = open
                    .remove(span)
                    .unwrap_or_else(|| panic!("End for unopened span {}", span.0));
                assert!(
                    *at >= begin,
                    "{label} span {} ends at {at} before its begin {begin}",
                    span.0
                );
                let stack = stacks.get_mut(&lane).expect("lane stack exists");
                assert_eq!(
                    stack.pop(),
                    Some(*span),
                    "{label} span {} closed out of stack order on lane {lane:?}",
                    span.0
                );
            }
            TraceEvent::Instant { lane, kind, .. } => {
                if matches!(kind, EventKind::Admission { .. }) {
                    admission_instants += 1;
                    assert!(lane.is_none(), "admission verdicts are system-wide");
                }
            }
        }
    }
    assert!(open.is_empty(), "unclosed spans: {:?}", open.keys());

    // (3) Event counts line up with the run's outcome: one admission
    //     verdict per request, one dispatch span per served request.
    assert_eq!(admission_instants, workload().requests);
    assert_eq!(dispatch_spans, summary.completed + summary.failed);

    // (4) Time containment: every non-dispatch lane span lies inside an
    //     enclosing Dispatch interval on the same lane.
    let mut dispatch_windows: HashMap<u32, Vec<(SimTime, SimTime)>> = HashMap::new();
    let mut ends: HashMap<SpanId, SimTime> = HashMap::new();
    for ev in &events {
        if let TraceEvent::End { at, span } = ev {
            ends.insert(*span, *at);
        }
    }
    for ev in &events {
        if let TraceEvent::Begin {
            at,
            span,
            lane: Some(lane),
            kind: EventKind::Dispatch { .. },
        } = ev
        {
            dispatch_windows
                .entry(*lane)
                .or_default()
                .push((*at, ends[span]));
        }
    }
    for ev in &events {
        if let TraceEvent::Begin {
            at,
            span,
            lane: Some(lane),
            kind,
        } = ev
        {
            if matches!(kind, EventKind::Dispatch { .. }) {
                continue;
            }
            let end = ends[span];
            let contained = dispatch_windows
                .get(lane)
                .is_some_and(|ws| ws.iter().any(|(b, e)| b <= at && end <= *e));
            assert!(
                contained,
                "{} span {} [{at}, {end}] outside every dispatch on lane {lane}",
                kind.label(),
                span.0
            );
        }
    }
}

#[test]
fn chrome_trace_export_is_byte_identical_for_identical_seeds() {
    let (rec_a, obs_a, sum_a) = observed_run();
    let (rec_b, obs_b, sum_b) = observed_run();
    assert_eq!(sum_a, sum_b, "same seed, same summary");

    let trace_a = rec_a.chrome_trace(Some(obs_a.metrics()));
    let trace_b = rec_b.chrome_trace(Some(obs_b.metrics()));
    assert_eq!(trace_a, trace_b, "same seed, byte-identical Chrome trace");
    assert_eq!(
        rec_a.flame_summary(),
        rec_b.flame_summary(),
        "same seed, byte-identical flame summary"
    );

    // The export is valid JSON by the in-repo parser and structurally a
    // Chrome trace: a traceEvents array plus the embedded metrics block.
    let doc = json::parse(&trace_a).expect("export parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() > sum_a.completed, "trace carries the run");
    let metrics = doc.get("uparcMetrics").expect("embedded metrics");
    let counters = metrics.get("counters").expect("counters object");
    assert!(
        counters.get("serve.completions").is_some(),
        "scheduler metrics present"
    );
    assert!(
        counters.get("icap.bursts").is_some(),
        "lane metrics present"
    );
}

#[test]
fn null_recorder_run_matches_unobserved_run_bit_for_bit() {
    let base = ServiceConfig {
        policy: Policy::PowerGreedy,
        power_cap_mw: 700.0,
        ..ServiceConfig::default()
    };
    // `ServiceConfig::default()` carries no observer at all; `Obs::null`
    // is the explicit disabled handle; a recording run does strictly
    // more work. All three must produce the same simulated outcome.
    let unobserved = run_summary(base.clone());
    let null = run_summary(ServiceConfig {
        obs: Obs::null(),
        ..base.clone()
    });
    let (_rec, _obs, recorded) = observed_run();

    assert_eq!(unobserved, null, "NullRecorder perturbed the run");
    assert_eq!(unobserved, recorded, "recording perturbed the run");
    // Bit-for-bit, not just approximately: the Debug rendering prints
    // every f64 field exactly, so equal strings mean equal bits.
    assert_eq!(format!("{unobserved:?}"), format!("{null:?}"));
    assert_eq!(format!("{unobserved:?}"), format!("{recorded:?}"));
}

//! Integration tests of the `uparc-serve` request/admission/scheduling
//! stack through the umbrella crate.

use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::fpga::Device;
use uparc_repro::serve::catalog::Catalog;
use uparc_repro::serve::request::{BitstreamId, Priority, ReconfigRequest, RegionId, RequestId};
use uparc_repro::serve::scheduler::Policy;
use uparc_repro::serve::service::{Service, ServiceConfig};
use uparc_repro::sim::time::SimTime;

/// One region, one small module — the minimal single-lane service.
fn single_region_catalog() -> Catalog {
    let device = Device::xc5vsx50t();
    let mut catalog = Catalog::new(device);
    catalog.add_region("rp0", 100..200).unwrap();
    let payload = SynthProfile::dense().generate(catalog.device(), 100, 60, 7);
    let bs = PartialBitstream::build(catalog.device(), 100, &payload);
    catalog.register(BitstreamId(1), bs).unwrap();
    catalog
}

fn request(
    id: u64,
    arrival: SimTime,
    deadline: Option<SimTime>,
    priority: Priority,
) -> ReconfigRequest {
    ReconfigRequest {
        id: RequestId(id),
        bitstream: BitstreamId(1),
        region: RegionId(0),
        arrival,
        deadline,
        priority,
        energy_budget_uj: None,
    }
}

/// Dispatch-to-finish time of one request on an idle lane.
fn probe_service_time(catalog: &Catalog) -> SimTime {
    let service = Service::new(catalog.clone(), ServiceConfig::default());
    let m = service.run(&[request(0, SimTime::ZERO, None, Priority::Normal)]);
    assert_eq!(m.completions.len(), 1);
    m.completions[0].finished
}

#[test]
fn overflowing_the_queue_rejects_typed_not_panics() {
    let catalog = single_region_catalog();
    let capacity = 3;
    let service = Service::new(
        catalog,
        ServiceConfig {
            queue_capacity: capacity,
            ..ServiceConfig::default()
        },
    );
    // A simultaneous burst: one dispatches immediately, `capacity` queue
    // up, the rest must come back as typed QueueFull rejections.
    let burst = 10;
    let requests: Vec<ReconfigRequest> = (0..burst)
        .map(|i| request(i, SimTime::ZERO, None, Priority::Normal))
        .collect();
    let m = service.run(&requests);
    assert_eq!(m.completions.len(), 1 + capacity);
    assert_eq!(m.rejections.len(), burst as usize - 1 - capacity);
    for r in &m.rejections {
        assert_eq!(r.reason.label(), "queue-full");
        let text = r.reason.to_string();
        assert!(text.contains("rp0"), "rejection names the region: {text}");
    }
    assert_eq!(m.failures.len(), 0);
    assert_eq!(m.unserved, 0);
}

#[test]
fn edf_meets_every_deadline_fifo_meets() {
    let catalog = single_region_catalog();
    let t = probe_service_time(&catalog);
    let scaled = |x: f64| SimTime::from_secs_f64(t.as_secs_f64() * x);
    // A warmup request occupies the lane; a, b, c queue up behind it, so
    // the dispatch order among them is purely the policy's choice. FIFO
    // serves arrival order and c (tight deadline, last in line) misses
    // at ~4T; EDF reorders c first (~2T) and everything meets.
    let trace = vec![
        request(0, SimTime::ZERO, None, Priority::Normal), // warmup
        request(1, SimTime::from_us(1), Some(scaled(10.0)), Priority::Normal),
        request(2, SimTime::from_us(1), Some(scaled(10.0)), Priority::Normal),
        request(3, SimTime::from_us(1), Some(scaled(2.6)), Priority::Normal),
    ];
    let run = |policy: Policy| {
        let service = Service::new(
            catalog.clone(),
            ServiceConfig {
                policy,
                ..ServiceConfig::default()
            },
        );
        service.run(&trace)
    };
    let fifo = run(Policy::Fifo);
    let edf = run(Policy::EarliestDeadlineFirst);
    assert_eq!(fifo.completions.len(), 4);
    assert_eq!(edf.completions.len(), 4);

    let met = |m: &uparc_repro::serve::ServiceMetrics| -> Vec<RequestId> {
        m.completions
            .iter()
            .filter(|c| !c.missed)
            .map(|c| c.id)
            .collect()
    };
    let fifo_met = met(&fifo);
    let edf_met = met(&edf);
    // The property under test: EDF never misses a deadline FIFO meets.
    for id in &fifo_met {
        assert!(
            edf_met.contains(id),
            "{id} met under FIFO but missed under EDF"
        );
    }
    // And on this trace the reordering strictly helps.
    assert!(
        fifo.completions.iter().any(|c| c.missed),
        "trace must be tight enough that FIFO misses"
    );
    assert!(
        edf.completions.iter().all(|c| !c.missed),
        "EDF must meet every deadline on this trace"
    );
}

#[test]
fn hopeless_deadlines_are_rejected_at_admission() {
    let catalog = single_region_catalog();
    let t = probe_service_time(&catalog);
    // A deadline shorter than the best-case service time can never be
    // met; admission must say so instead of queueing doomed work.
    let hopeless = SimTime::from_secs_f64(t.as_secs_f64() * 0.5);
    let service = Service::new(catalog, ServiceConfig::default());
    let m = service.run(&[request(0, SimTime::ZERO, Some(hopeless), Priority::High)]);
    assert_eq!(m.completions.len(), 0);
    assert_eq!(m.rejections.len(), 1);
    assert_eq!(m.rejections[0].reason.label(), "deadline-infeasible");
}

#[test]
fn priorities_break_deadline_ties() {
    let catalog = single_region_catalog();
    let t = probe_service_time(&catalog);
    let deadline = Some(SimTime::from_secs_f64(t.as_secs_f64() * 20.0));
    // A warmup request occupies the lane; the tie burst (same arrival,
    // same deadline) queues behind it, so EDF must order it purely by
    // priority: High before Normal before Low.
    let trace = vec![
        request(9, SimTime::ZERO, None, Priority::Normal), // warmup
        request(0, SimTime::from_us(1), deadline, Priority::Low),
        request(1, SimTime::from_us(1), deadline, Priority::High),
        request(2, SimTime::from_us(1), deadline, Priority::Normal),
    ];
    let service = Service::new(
        catalog,
        ServiceConfig {
            policy: Policy::EarliestDeadlineFirst,
            ..ServiceConfig::default()
        },
    );
    let m = service.run(&trace);
    let order: Vec<RequestId> = m.completions.iter().map(|c| c.id).collect();
    assert_eq!(
        order,
        vec![RequestId(9), RequestId(1), RequestId(2), RequestId(0)]
    );
}

//! Property-based tests of the `uparc-serve` scheduler.
//!
//! Two system-level invariants over arbitrary seeds and configurations:
//! a service run is a pure function of its inputs (bit-identical metrics
//! across repeated runs), and `PowerGreedy` never schedules the summed
//! reconfiguration draw above the configured cap.

use proptest::prelude::*;
use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::fpga::Device;
use uparc_repro::serve::catalog::Catalog;
use uparc_repro::serve::request::BitstreamId;
use uparc_repro::serve::scheduler::Policy;
use uparc_repro::serve::service::{Service, ServiceConfig};
use uparc_repro::serve::workload::{ArrivalPattern, WorkloadSpec};
use uparc_repro::sim::time::SimTime;

fn two_region_catalog() -> Catalog {
    let device = Device::xc5vsx50t();
    let mut catalog = Catalog::new(device);
    catalog.add_region("rp0", 100..300).unwrap();
    catalog.add_region("rp1", 1000..1200).unwrap();
    for (id, far, frames) in [(1u32, 100, 80), (2, 150, 40), (3, 1000, 60)] {
        let payload = SynthProfile::dense().generate(catalog.device(), far, frames, u64::from(id));
        let bs = PartialBitstream::build(catalog.device(), far, &payload);
        catalog.register(BitstreamId(id), bs).unwrap();
    }
    catalog
}

fn pattern_strategy() -> impl Strategy<Value = ArrivalPattern> {
    prop_oneof![
        Just(ArrivalPattern::Uniform),
        (2usize..6).prop_map(|burst| ArrivalPattern::Bursty { burst }),
        (500u64..4_000).prop_map(|us| ArrivalPattern::Diurnal {
            period: SimTime::from_us(us),
        }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        Just(Policy::EarliestDeadlineFirst),
        Just(Policy::PowerGreedy),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same catalog, same config, same trace: byte-identical outcome,
    /// for every policy and arrival pattern.
    #[test]
    fn service_runs_are_deterministic(
        seed in 0u64..1_000_000,
        pattern in pattern_strategy(),
        policy in policy_strategy(),
    ) {
        let catalog = two_region_catalog();
        let service = Service::new(catalog, ServiceConfig {
            policy,
            power_cap_mw: 800.0,
            ..ServiceConfig::default()
        });
        let spec = WorkloadSpec {
            requests: 16,
            mean_gap: SimTime::from_us(150),
            pattern,
            deadline_slack_us: Some((300, 4_000)),
            energy_budget_uj: None,
        };
        let requests = spec.generate(seed, service.catalog());
        let a = service.run(&requests);
        let b = service.run(&requests);
        prop_assert_eq!(a.summary(), b.summary());
        prop_assert_eq!(a.completions.len(), b.completions.len());
        for (x, y) in a.completions.iter().zip(&b.completions) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.finished, y.finished);
            prop_assert_eq!(x.frequency, y.frequency);
            prop_assert!((x.energy_uj - y.energy_uj).abs() < 1e-12);
        }
        prop_assert_eq!(a.power.len(), b.power.len());
        prop_assert_eq!(a.cap_violations, b.cap_violations);
    }

    /// Under `PowerGreedy` the sampled total draw never exceeds the cap,
    /// at any scheduling instant, for any seed and any feasible cap.
    #[test]
    fn power_greedy_never_exceeds_the_cap(
        seed in 0u64..1_000_000,
        cap_mw in 300.0f64..1_100.0,
        pattern in pattern_strategy(),
    ) {
        let catalog = two_region_catalog();
        let service = Service::new(catalog, ServiceConfig {
            policy: Policy::PowerGreedy,
            power_cap_mw: cap_mw,
            ..ServiceConfig::default()
        });
        let spec = WorkloadSpec {
            requests: 16,
            mean_gap: SimTime::from_us(80),
            pattern,
            deadline_slack_us: None,
            energy_budget_uj: None,
        };
        let requests = spec.generate(seed, service.catalog());
        let m = service.run(&requests);
        prop_assert_eq!(m.cap_violations, 0);
        for s in &m.power {
            prop_assert!(
                s.total_mw <= cap_mw + 1e-9,
                "draw {} mW above the {} mW cap at {:?}",
                s.total_mw, cap_mw, s.at
            );
        }
        // The queue still drains: every admitted request is resolved.
        prop_assert_eq!(m.unserved, 0);
        prop_assert_eq!(
            m.completions.len() + m.rejections.len() + m.failures.len(),
            requests.len()
        );
    }
}

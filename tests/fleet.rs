//! Integration tests of the `uparc-fleet` rack-scale serving stack:
//! workload sharding determinism, router tie-breaks, worker-count
//! identity of a full fleet run, equivalence of the calibrated
//! operating-point tables against `PowerAwarePolicy::plan_constrained`,
//! and the chaos layer (chip loss, failover accounting, power
//! emergencies, graceful degradation).

use uparc_repro::core::policy::{PlanQuery, PowerAwarePolicy};
use uparc_repro::fleet::{
    synthetic_catalog, ChaosSpec, EmergencyWindow, Fleet, FleetConfig, FleetWorkloadSpec,
    HealthConfig, PlanTables, RoutePolicy,
};
use uparc_repro::serve::request::BitstreamId;
use uparc_repro::sim::obs::{EventKind, Obs, TraceRecorder};
use uparc_repro::sim::power::calib;
use uparc_repro::sim::sweep;
use uparc_repro::sim::time::{Frequency, SimTime};

fn small_config(chips: usize, route: RoutePolicy) -> FleetConfig {
    FleetConfig {
        chips,
        rack_cap_mw: chips as f64 * 700.0,
        epoch: SimTime::from_us(50),
        chip_cache_bytes: 64 * 1024,
        route,
        min_frequency: Frequency::from_mhz(50.0),
        health: HealthConfig::default(),
        shed_backlog: None,
        failover_retries: 3,
    }
}

fn small_spec(requests: u64) -> FleetWorkloadSpec {
    FleetWorkloadSpec {
        requests,
        mean_gap: SimTime::from_ns(400),
        seed: 0xF1EE7,
    }
}

/// Sharded generation concatenates to exactly the sequential stream, so
/// any shard decomposition of the request range sees identical requests.
#[test]
fn workload_shards_concat_to_the_full_stream() {
    let catalog = synthetic_catalog(16, 12, 11);
    let ids = catalog.ids();
    let spec = small_spec(1000);
    let full = spec.generate(&ids);
    for shards in [2, 3, 7, 8] {
        let mut stitched = Vec::new();
        let per = 1000u64.div_ceil(shards);
        for s in 0..shards {
            let lo = s * per;
            let hi = ((s + 1) * per).min(1000);
            stitched.extend(spec.generate_range(lo..hi, &ids));
        }
        assert_eq!(stitched, full, "{shards}-way sharding changed the stream");
    }
}

/// The same spec + inventory is pure in the request index: arrivals are
/// non-decreasing and re-generation is identical.
#[test]
fn workload_generation_is_deterministic() {
    let catalog = synthetic_catalog(8, 10, 3);
    let ids = catalog.ids();
    let spec = small_spec(500);
    let a = spec.generate(&ids);
    let b = spec.generate(&ids);
    assert_eq!(a, b);
    for w in a.windows(2) {
        assert!(w[0].arrival <= w[1].arrival, "arrivals must be monotone");
    }
}

/// A full fleet run renders byte-identically when the worker pool is
/// pinned to 1 vs 8 — the tentpole determinism guarantee.
#[test]
fn fleet_outcome_is_identical_across_worker_counts() {
    let catalog = synthetic_catalog(24, 12, 29);
    let fleet = Fleet::new(
        catalog,
        small_config(
            6,
            RoutePolicy::Locality {
                spill_window: SimTime::from_us(5),
            },
        ),
    )
    .unwrap();
    let spec = small_spec(3000);

    sweep::pin_workers(1);
    let one = fleet.run(&spec).unwrap();
    sweep::pin_workers(8);
    let eight = fleet.run(&spec).unwrap();
    sweep::unpin_workers();

    assert_eq!(one, eight, "fleet outcome depends on worker count");
    assert_eq!(one.render(), eight.render());
    assert_eq!(one.completed, 3000);
    assert_eq!(one.cap_violations, 0, "rack cap violated");
    assert!(one.peak_power_mw <= one.rack_cap_mw + 1e-9);
}

/// Locality routing must beat seeded random routing on fleet cache hit
/// rate for a reuse-heavy workload (few images, many requests).
#[test]
fn locality_routing_beats_random_on_hit_rate() {
    let catalog = synthetic_catalog(32, 12, 41);
    let spec = small_spec(4000);
    let locality = Fleet::new(
        catalog.clone(),
        small_config(
            8,
            RoutePolicy::Locality {
                spill_window: SimTime::from_us(5),
            },
        ),
    )
    .unwrap()
    .run(&spec)
    .unwrap();
    let random = Fleet::new(catalog, small_config(8, RoutePolicy::Random { seed: 99 }))
        .unwrap()
        .run(&spec)
        .unwrap();
    assert_eq!(locality.completed, random.completed);
    // Both serve the same multiset of images, so the work checksum
    // (XOR fold of every served image) matches even though routing
    // (and therefore per-chip XOR partitioning) differs.
    assert!(
        locality.hit_rate > random.hit_rate,
        "locality hit rate {:.3} did not beat random {:.3}",
        locality.hit_rate,
        random.hit_rate
    );
    assert_eq!(locality.cap_violations, 0);
    assert_eq!(random.cap_violations, 0);
}

/// The calibrated table's cap-constrained selection picks the same
/// frequency as the reference planner's `plan_constrained` for caps that
/// land between grid points.
#[test]
fn plan_tables_match_plan_constrained() {
    let catalog = synthetic_catalog(4, 12, 53);
    let planner = PowerAwarePolicy::paper_setup(catalog.device().family());
    // Full grid (no fleet floor) so the comparison covers every point.
    let tables = PlanTables::build(&catalog, &planner, Frequency::from_hz(1)).unwrap();
    let id = BitstreamId(1);
    let entry = catalog.entry(id).unwrap();
    let facts = tables.facts(id);
    let extra = if facts.key.is_some() {
        calib::DECOMPRESSOR_MW_PER_MHZ * 100.0
    } else {
        0.0
    };
    let grid = tables.grid().to_vec();
    for i in 0..grid.len() {
        // A cap halfway between grid point i's power and the next
        // point's power admits exactly points 0..=i.
        let p_i = planner.predicted_power_mw(grid[i]);
        let p_next = grid
            .get(i + 1)
            .map_or(p_i + 10.0, |&f| planner.predicted_power_mw(f));
        let cap = (p_i + p_next) / 2.0 + extra;
        let picked = tables.select(id, cap);
        let reference = planner.plan_constrained(&PlanQuery {
            bytes: entry.raw_bytes(),
            max_frequency: facts.key.is_some().then(|| Frequency::from_mhz(255.0)),
            power_cap_mw: Some(cap - extra),
            ..PlanQuery::default()
        });
        match (picked, reference) {
            (Some(idx), Ok(plan)) => {
                assert_eq!(
                    tables.frequency(idx).as_mhz(),
                    plan.frequency.as_mhz(),
                    "cap {cap:.1} mW: table picked {:.1} MHz, planner {:.1} MHz",
                    tables.frequency(idx).as_mhz(),
                    plan.frequency.as_mhz()
                );
            }
            (None, Err(_)) => {}
            (t, p) => panic!(
                "cap {cap:.1} mW: table={t:?} planner-feasible={}",
                p.is_ok()
            ),
        }
    }
}

/// A chip-loss campaign keeps the accounting identity exact: every
/// request is completed (possibly after failover) or shed with a typed
/// reason, nothing lost, nothing double-served — and a single-digit
/// death toll costs less than 1% of completions.
#[test]
fn chip_loss_failover_keeps_accounting_exact() {
    let catalog = synthetic_catalog(24, 12, 29);
    let fleet = Fleet::new(
        catalog,
        small_config(
            8,
            RoutePolicy::Locality {
                spill_window: SimTime::from_us(5),
            },
        ),
    )
    .unwrap();
    let spec = small_spec(3000);
    let chaos = ChaosSpec {
        seed: 0xC4A05,
        horizon: SimTime::from_us(600),
        loss_permille: 220,
        ..ChaosSpec::quiet()
    };
    let out = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
    assert!(out.chips_lost >= 1, "campaign killed no chip");
    assert!(out.failovers > 0, "no request survived via failover");
    assert!(out.completed_failover > 0);
    assert_eq!(out.completed + out.shed.total(), spec.requests);
    assert!(
        out.completed as f64 >= 0.99 * spec.requests as f64,
        "completion {}/{} under single-digit chip loss",
        out.completed,
        spec.requests
    );
    assert_eq!(out.cap_violations, 0, "rack cap violated during chaos");
    assert_eq!(out.cap_violations_emergency, 0);
}

/// The same chaos campaign renders byte-identically at 1 and 8 sweep
/// workers — chaos keeps the tentpole determinism guarantee.
#[test]
fn chaos_outcome_is_identical_across_worker_counts() {
    let catalog = synthetic_catalog(24, 12, 29);
    let fleet = Fleet::new(
        catalog,
        small_config(
            6,
            RoutePolicy::Locality {
                spill_window: SimTime::from_us(5),
            },
        ),
    )
    .unwrap();
    let spec = small_spec(2000);
    let chaos = ChaosSpec {
        seed: 0xDE7E12,
        horizon: SimTime::from_us(500),
        loss_permille: 200,
        wedge_permille: 300,
        wedge_window: SimTime::from_us(20),
        seu_permille: 300,
        seu_window: SimTime::from_us(40),
        seu_faults_per_request: 1,
        emergencies: vec![EmergencyWindow {
            from: SimTime::from_us(200),
            to: SimTime::from_us(400),
            cap_mw: 6.0 * 700.0 * 0.8,
        }],
        ..ChaosSpec::quiet()
    };
    sweep::pin_workers(1);
    let one = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
    sweep::pin_workers(8);
    let eight = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
    sweep::unpin_workers();
    assert_eq!(one, eight, "chaos outcome depends on worker count");
    assert_eq!(one.render(), eight.render());
}

/// A rack-level power emergency cuts the cap mid-run; the verifier
/// confirms the fleet never exceeded the emergency cap inside the
/// window (nor the steady cap outside it).
#[test]
fn power_emergency_respects_the_cut_cap() {
    let catalog = synthetic_catalog(24, 12, 31);
    let mut config = small_config(
        8,
        RoutePolicy::Locality {
            spill_window: SimTime::from_us(5),
        },
    );
    config.shed_backlog = Some(SimTime::from_us(40));
    let fleet = Fleet::new(catalog, config).unwrap();
    let spec = small_spec(3000);
    let emergency_cap = 8.0 * 700.0 * 0.75;
    let chaos = ChaosSpec {
        seed: 0xE4E6,
        horizon: SimTime::from_us(600),
        emergencies: vec![EmergencyWindow {
            from: SimTime::from_us(150),
            to: SimTime::from_us(450),
            cap_mw: emergency_cap,
        }],
        ..ChaosSpec::quiet()
    };
    let out = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
    assert_eq!(out.cap_violations, 0);
    assert_eq!(
        out.cap_violations_emergency, 0,
        "draw exceeded the emergency cap inside its window"
    );
    assert_eq!(out.completed + out.shed.total(), spec.requests);
}

/// Repeated ICAP wedges push chips through the health ladder
/// (suspect → quarantine → repair) while the recovery policy heals the
/// wedged dispatches themselves; degraded-phase latency is tracked
/// apart from steady-phase latency.
#[test]
fn wedges_quarantine_and_recovery_heals() {
    let catalog = synthetic_catalog(16, 12, 37);
    let fleet = Fleet::new(
        catalog,
        small_config(
            4,
            RoutePolicy::Locality {
                spill_window: SimTime::from_us(5),
            },
        ),
    )
    .unwrap();
    let spec = small_spec(1200);
    let chaos = ChaosSpec {
        seed: 0x3ED6E,
        horizon: SimTime::from_us(400),
        wedge_permille: 1000,
        wedge_window: SimTime::from_us(25),
        ..ChaosSpec::quiet()
    };
    let out = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
    assert!(out.quarantines > 0, "no chip was quarantined");
    assert!(out.faulted > 0, "no dispatch hit a wedge");
    assert!(out.healed > 0, "recovery healed nothing");
    assert!(out.degraded_completed > 0);
    assert!(out.recovery_extra_time > SimTime::ZERO);
    // The phase split is reported apart (latency under load is queue-
    // dominated, so no ordering between the two p99s is implied).
    assert!(out.p99_degraded_us > 0.0);
    assert_eq!(out.completed + out.shed.total(), spec.requests);
}

/// Chaos control events (chip deaths, failovers, emergencies) reach an
/// attached trace recorder.
#[test]
fn chaos_events_reach_the_trace() {
    use std::sync::Arc;
    let catalog = synthetic_catalog(16, 12, 29);
    let fleet = Fleet::new(
        catalog,
        small_config(
            6,
            RoutePolicy::Locality {
                spill_window: SimTime::from_us(5),
            },
        ),
    )
    .unwrap();
    let spec = small_spec(1500);
    let chaos = ChaosSpec {
        seed: 0xC4A05,
        horizon: SimTime::from_us(400),
        loss_permille: 300,
        emergencies: vec![EmergencyWindow {
            from: SimTime::from_us(100),
            to: SimTime::from_us(300),
            cap_mw: 6.0 * 700.0 * 0.8,
        }],
        ..ChaosSpec::quiet()
    };
    let recorder = Arc::new(TraceRecorder::new());
    let out = fleet
        .run_chaos(&spec, &chaos, &Obs::recording(Arc::clone(&recorder)))
        .unwrap();
    let labels: Vec<&str> = recorder
        .events()
        .iter()
        .filter_map(|e| match e {
            uparc_repro::sim::obs::TraceEvent::Instant { kind, .. } => Some(kind.label()),
            _ => None,
        })
        .collect();
    assert!(labels.contains(&"CapEmergency"));
    if out.chips_lost > 0 {
        assert!(labels.contains(&"ChipDown"));
    }
    if out.failovers > 0 {
        assert!(labels.contains(&"Failover"));
    }
    let _ = EventKind::Quarantine { chip: 0 }; // taxonomy stays exported
}

/// When every chip dies, late arrivals are shed with `no_live_chip`
/// rather than lost — the accounting identity still holds.
#[test]
fn total_fleet_loss_sheds_instead_of_losing() {
    let catalog = synthetic_catalog(8, 12, 11);
    let fleet = Fleet::new(catalog, small_config(4, RoutePolicy::Random { seed: 7 })).unwrap();
    let spec = small_spec(800);
    let chaos = ChaosSpec {
        seed: 0xDEAD,
        horizon: SimTime::from_us(120),
        loss_permille: 1000,
        ..ChaosSpec::quiet()
    };
    let out = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
    assert_eq!(out.chips_lost, 4);
    assert!(out.shed.total() > 0, "no request was shed after total loss");
    assert!(out.shed.no_live_chip > 0);
    assert_eq!(out.completed + out.shed.total(), spec.requests);
}

/// An infeasible rack cap is rejected up front rather than producing a
/// run that violates it.
#[test]
fn infeasible_rack_cap_is_rejected() {
    let catalog = synthetic_catalog(4, 12, 5);
    let mut config = small_config(4, RoutePolicy::Random { seed: 1 });
    config.rack_cap_mw = 4.0 * calib::V6_IDLE_MW; // idle only, no headroom
    let fleet = Fleet::new(catalog, config).unwrap();
    let err = fleet.run(&small_spec(10)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("rack cap"), "unexpected error: {msg}");
}

//! Property-based tests on the compression substrate: exact losslessness
//! on arbitrary inputs (a configuration bitstream tolerates no loss), and
//! robustness of every decoder against arbitrary (corrupt) inputs.

use proptest::prelude::*;
use uparc_repro::bitstream::bitfile::BitFile;
use uparc_repro::bitstream::bramimg::{BramImage, ModeWord};
use uparc_repro::compress::Algorithm;

fn input_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Arbitrary bytes.
        proptest::collection::vec(any::<u8>(), 0..2048),
        // Runs and repeats (bitstream-like).
        proptest::collection::vec(prop_oneof![Just(0u8), 1u8..8], 0..4096),
        // Word-structured data.
        proptest::collection::vec(any::<u32>(), 0..512)
            .prop_map(|ws| ws.iter().flat_map(|w| w.to_be_bytes()).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_codec_is_exactly_lossless(data in input_strategy()) {
        for alg in Algorithm::ALL {
            let codec = alg.codec();
            let packed = codec.compress(&data);
            let unpacked = codec.decompress(&packed)
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            prop_assert_eq!(&unpacked, &data, "{} round-trip", alg);
        }
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_input(garbage in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Any outcome is fine (Ok with some output, or a typed error) —
        // a panic or non-termination is the only failure.
        for alg in Algorithm::ALL {
            let codec = alg.codec();
            let _ = codec.decompress(&garbage);
        }
    }

    #[test]
    fn truncated_streams_never_yield_wrong_data(data in proptest::collection::vec(any::<u8>(), 1..512), cut_fraction in 0.0f64..1.0) {
        // Cutting a compressed stream must either fail or (in rare cases of
        // aligned cuts) reproduce a prefix-consistent result — never panic.
        for alg in Algorithm::ALL {
            let codec = alg.codec();
            let packed = codec.compress(&data);
            let cut = ((packed.len() as f64) * cut_fraction) as usize;
            let _ = codec.decompress(&packed[..cut]);
        }
    }

    #[test]
    fn bitfile_container_round_trips(
        name in "[a-zA-Z0-9_./=]{0,40}",
        part in "[a-z0-9]{1,16}",
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let file = BitFile {
            design_name: name,
            part,
            date: "2011/09/14".to_owned(),
            time: "11:35:17".to_owned(),
            data,
        };
        let parsed = BitFile::parse(&file.to_bytes()).expect("round-trip");
        prop_assert_eq!(parsed, file);
    }

    #[test]
    fn mode_word_round_trips(compressed in any::<bool>(), codec_id in 0u8..128, size in 0u32..(1 << 24)) {
        let codec_id = if compressed { codec_id } else { 0 };
        let m = ModeWord { compressed, codec_id, size_words: size };
        prop_assert_eq!(ModeWord::decode(m.encode()).expect("round-trip"), m);
    }

    #[test]
    fn bram_images_round_trip_payloads(payload in proptest::collection::vec(any::<u8>(), 0..1024), codec_id in 1u8..8) {
        let img = BramImage::compressed(codec_id, &payload);
        let (id, bytes) = img.compressed_payload().expect("round-trip");
        prop_assert_eq!(id, codec_id);
        prop_assert_eq!(bytes, payload);
    }
}

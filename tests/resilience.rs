//! End-to-end resilience tests: deterministic fault campaigns and the
//! self-healing recovery ladder, exercised through the public crate API.
//!
//! Every scenario is seeded and reproducible — the same seed yields the
//! same fault plan, the same injector log and the same recovery report —
//! and each ladder rung is driven by the fault class designed to trigger
//! it (mode fallback by compressed-staging corruption, frequency fallback
//! by a transient CRC at an overclocked point, retune retry by a DCM lock
//! failure, watchdog abort by a long bus stall, scrub repair by an SEU
//! landing after the partition was written).

use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::core::recovery::{RecoveryAction, RecoveryPolicy};
use uparc_repro::core::uparc::{Mode, UParc};
use uparc_repro::core::UparcError;
use uparc_repro::fpga::{Device, FpgaError};
use uparc_repro::sim::fault::{FaultInjector, FaultKind, FaultPlan, FaultRates, FaultSpace};
use uparc_repro::sim::time::{Frequency, SimTime};

const FAR: u32 = 300;
const FRAMES: u32 = 60;

fn bitstream(device: &Device, seed: u64) -> PartialBitstream {
    let payload = SynthProfile::dense().generate(device, FAR, FRAMES, seed);
    PartialBitstream::build(device, FAR, &payload)
}

/// A settled system: frequency set and the DCM locked, so clean runs carry
/// no relock wait and fault strike times are easy to reason about.
fn system(mhz: f64) -> UParc {
    let device = Device::xc5vsx50t();
    let mut sys = UParc::builder(device).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(mhz))
        .expect("retune");
    sys.advance_idle(SimTime::from_ms(1));
    sys
}

fn space() -> FaultSpace {
    FaultSpace {
        frame_base: FAR,
        frames: FRAMES,
        frame_words: 41,
        staged_words: FRAMES * 41 + 20,
    }
}

#[test]
fn fault_plans_are_reproducible_from_the_seed() {
    let rates = FaultRates {
        config_seu: 3,
        parity_seu: 2,
        staged_flip: 3,
        transfer_stall: 1,
        crc_transient: 2,
        retune_lock_failure: 1,
    };
    let horizon = SimTime::from_ms(5);
    let a = FaultPlan::generate(0xDEAD_BEEF, &space(), &rates, horizon);
    let b = FaultPlan::generate(0xDEAD_BEEF, &space(), &rates, horizon);
    assert_eq!(a.faults(), b.faults(), "same seed, same plan");
    assert_eq!(a.faults().len() as u32, rates.total());
    // Times ascend and stay inside the horizon; coordinates stay in space.
    for w in a.faults().windows(2) {
        assert!(w[0].at <= w[1].at);
    }
    for f in a.faults() {
        assert!(f.at <= horizon);
        if let FaultKind::ConfigSeu { frame, word, bit } = f.kind {
            assert!((FAR..FAR + FRAMES).contains(&frame));
            assert!(word < 41);
            assert!(bit < 32);
        }
    }
    let c = FaultPlan::generate(0xDEAD_BEF0, &space(), &rates, horizon);
    assert_ne!(a.faults(), c.faults(), "different seed, different plan");
}

#[test]
fn recovery_outcomes_are_reproducible_for_a_seed() {
    let rates = FaultRates {
        config_seu: 1,
        parity_seu: 0,
        staged_flip: 1,
        transfer_stall: 0,
        crc_transient: 1,
        retune_lock_failure: 0,
    };
    let run = || {
        let mut sys = system(362.5);
        let bs = bitstream(sys.device(), 42);
        let plan = FaultPlan::generate(1234, &space(), &rates, SimTime::from_ms(2));
        sys.attach_fault_injector(FaultInjector::new(&plan));
        let rec = RecoveryPolicy::default()
            .reconfigure(&mut sys, &bs, Mode::Raw)
            .expect("full policy heals the single-fault plan");
        let log = sys.detach_fault_injector().unwrap().log().to_vec();
        (rec, log)
    };
    let (rec_a, log_a) = run();
    let (rec_b, log_b) = run();
    assert_eq!(log_a, log_b, "same seed, same applied-fault log");
    assert_eq!(rec_a.attempts, rec_b.attempts);
    assert_eq!(rec_a.actions, rec_b.actions);
    assert_eq!(rec_a.extra_time, rec_b.extra_time);
    assert_eq!(rec_a.report.elapsed(), rec_b.report.elapsed());
    assert!(
        (rec_a.extra_energy_uj - rec_b.extra_energy_uj).abs() < 1e-12,
        "{} vs {}",
        rec_a.extra_energy_uj,
        rec_b.extra_energy_uj
    );
}

#[test]
fn mode_fallback_heals_compressed_staging_corruption() {
    let mut sys = system(200.0);
    let bs = bitstream(sys.device(), 7);
    let mut inj = FaultInjector::empty();
    inj.schedule(sys.now(), FaultKind::StagedFlip { word: 901, bit: 13 });
    sys.attach_fault_injector(inj);
    let rec = RecoveryPolicy::default()
        .reconfigure(&mut sys, &bs, Mode::Compressed)
        .expect("heals by falling back to raw staging");
    assert!(rec.attempts > 1);
    assert!(rec
        .actions
        .iter()
        .any(|a| matches!(a, RecoveryAction::ModeFallback)));
    assert!(!rec.preload.compressed, "final staging is raw");
    let log = sys.detach_fault_injector().unwrap();
    assert!(log.log().iter().all(|r| r.detected && r.recovered));
    // The partition carries the intended payload despite the fault.
    let read = sys.readback(FAR, FRAMES).unwrap();
    assert_eq!(read, bs.payload());
}

#[test]
fn frequency_fallback_drops_overclock_on_transient_crc() {
    let mut sys = system(362.5);
    let bs = bitstream(sys.device(), 8);
    let mut inj = FaultInjector::empty();
    inj.schedule(sys.now(), FaultKind::CrcTransient);
    sys.attach_fault_injector(inj);
    let rec = RecoveryPolicy::default()
        .reconfigure(&mut sys, &bs, Mode::Raw)
        .expect("heals by dropping to the guaranteed frequency");
    let guaranteed = sys.device().family().bram_guaranteed_frequency();
    let fb = rec
        .actions
        .iter()
        .find_map(|a| match a {
            RecoveryAction::FrequencyFallback { from, to } => Some((*from, *to)),
            _ => None,
        })
        .expect("frequency fallback taken");
    assert_eq!(fb.0, Frequency::from_mhz(362.5));
    assert_eq!(fb.1, guaranteed);
    assert!(
        rec.report.frequency <= guaranteed,
        "final run at {}",
        rec.report.frequency
    );
    assert!(rec.extra_time > SimTime::ZERO);
    assert!(rec.extra_energy_uj > 0.0);
}

#[test]
fn retune_retry_clears_a_dcm_lock_failure() {
    // Start at 300 MHz so the retune to 362.5 changes the M/D factors —
    // the armed lock failure fires on that factor change.
    let mut sys = system(300.0);
    let bs = bitstream(sys.device(), 9);
    let mut inj = FaultInjector::empty();
    inj.schedule(sys.now(), FaultKind::RetuneLockFailure);
    sys.attach_fault_injector(inj);
    sys.set_reconfiguration_frequency(Frequency::from_mhz(362.5))
        .expect("DRP writes land even though LOCKED never asserts");
    let rec = RecoveryPolicy::default()
        .reconfigure(&mut sys, &bs, Mode::Raw)
        .expect("heals by re-programming the DCM");
    assert!(rec.attempts > 1);
    assert!(rec.actions.iter().any(|a| matches!(
        a,
        RecoveryAction::RetuneRetry { target } if *target == Frequency::from_mhz(362.5)
    )));
    let log = sys.detach_fault_injector().unwrap();
    assert_eq!(log.log().len(), 1);
    assert!(log.log()[0].detected && log.log()[0].recovered);
}

#[test]
fn watchdog_aborts_a_stalled_burst_and_retries() {
    let mut sys = system(362.5);
    let bs = bitstream(sys.device(), 10);
    let mut inj = FaultInjector::empty();
    // 450 000 cycles at 362.5 MHz ≈ 1.24 ms — beyond the 1 ms watchdog.
    inj.schedule(sys.now(), FaultKind::TransferStall { cycles: 450_000 });
    sys.attach_fault_injector(inj);
    let rec = RecoveryPolicy::default()
        .reconfigure(&mut sys, &bs, Mode::Raw)
        .expect("aborted attempt retries clean");
    assert_eq!(rec.attempts, 2);
    assert!(rec.actions.iter().any(|a| matches!(
        a,
        RecoveryAction::WatchdogAbort { limit } if *limit == SimTime::from_ms(1)
    )));
    // The abort is bounded: the failed attempt costs at most the watchdog
    // limit plus the clean attempt itself.
    assert!(rec.extra_time < SimTime::from_ms(2), "{}", rec.extra_time);
    let log = sys.detach_fault_injector().unwrap();
    assert!(log.log().iter().all(|r| r.detected && r.recovered));
}

#[test]
fn short_stalls_ride_through_without_retry() {
    let mut sys = system(362.5);
    let bs = bitstream(sys.device(), 11);
    let mut inj = FaultInjector::empty();
    // 2 000 cycles ≈ 5.5 µs — well under the watchdog: the burst just
    // takes longer, no abort, no retry.
    inj.schedule(sys.now(), FaultKind::TransferStall { cycles: 2_000 });
    sys.attach_fault_injector(inj);
    let rec = RecoveryPolicy::default()
        .reconfigure(&mut sys, &bs, Mode::Raw)
        .expect("a short stall is not an error");
    assert_eq!(rec.attempts, 1);
    assert!(rec.report.stall > SimTime::ZERO, "stall is reported");
    assert!(!rec
        .actions
        .iter()
        .any(|a| matches!(a, RecoveryAction::WatchdogAbort { .. })));
}

#[test]
fn config_seu_mid_transfer_is_scrubbed_during_verify() {
    // A dry fault-free run pins the deterministic end-of-transfer instant;
    // an SEU due then lands after the frames were written but before the
    // post-success ECC verification scans them.
    let strike_at = {
        let mut dry = system(362.5);
        let bs = bitstream(dry.device(), 12);
        let rec = RecoveryPolicy::none()
            .reconfigure(&mut dry, &bs, Mode::Raw)
            .expect("dry run is fault-free");
        rec.report.started_at + rec.report.control_overhead + rec.report.transfer_time
    };
    let mut sys = system(362.5);
    let bs = bitstream(sys.device(), 12);
    let mut inj = FaultInjector::empty();
    inj.schedule(
        strike_at,
        FaultKind::ConfigSeu {
            frame: FAR + 17,
            word: 5,
            bit: 29,
        },
    );
    sys.attach_fault_injector(inj);
    let rec = RecoveryPolicy::default()
        .reconfigure(&mut sys, &bs, Mode::Raw)
        .expect("verify pass scrubs the upset");
    assert!(rec.actions.iter().any(|a| matches!(
        a,
        RecoveryAction::ScrubRepair { corrected } if *corrected == 1
    )));
    let log = sys.detach_fault_injector().unwrap();
    assert!(log.log().iter().all(|r| r.detected && r.recovered));
    // The partition ends bit-identical to the intended payload.
    let read = sys.readback(FAR, FRAMES).unwrap();
    assert_eq!(read, bs.payload());
}

#[test]
fn unrecoverable_capacity_errors_propagate_unchanged() {
    let mut sys = system(362.5);
    // ~1.1 MB raw: beyond even compressed staging in the 256 KB BRAM.
    let payload = SynthProfile::dense().generate(sys.device(), 0, 7000, 3);
    let huge = PartialBitstream::build(sys.device(), 0, &payload);
    let err = RecoveryPolicy::default()
        .reconfigure(&mut sys, &huge, Mode::Auto)
        .unwrap_err();
    assert!(matches!(err, UparcError::BramCapacity { .. }), "{err}");
}

#[test]
fn retry_only_policy_exhausts_attempts_on_persistent_crc() {
    // Without the frequency-fallback rung, a CRC failure re-armed on every
    // attempt keeps failing until the attempts budget runs out.
    let mut sys = system(362.5);
    let bs = bitstream(sys.device(), 13);
    let mut inj = FaultInjector::empty();
    for _ in 0..8 {
        inj.schedule(sys.now(), FaultKind::CrcTransient);
    }
    sys.attach_fault_injector(inj);
    let policy = RecoveryPolicy {
        max_attempts: 3,
        ..RecoveryPolicy::retry_only()
    };
    let err = policy.reconfigure(&mut sys, &bs, Mode::Raw).unwrap_err();
    assert!(matches!(
        err,
        UparcError::Fpga(FpgaError::CrcMismatch { .. })
    ));
    let log = sys.detach_fault_injector().unwrap();
    assert_eq!(log.log().len(), 3, "one transient consumed per attempt");
    assert!(log.log().iter().all(|r| r.detected && !r.recovered));
}

#[test]
fn the_watchdog_setting_is_restored_after_the_call() {
    let mut sys = system(362.5);
    let bs = bitstream(sys.device(), 14);
    assert_eq!(sys.transfer_watchdog(), None);
    RecoveryPolicy::default()
        .reconfigure(&mut sys, &bs, Mode::Raw)
        .unwrap();
    assert_eq!(
        sys.transfer_watchdog(),
        None,
        "policy watchdog does not leak"
    );
    sys.set_transfer_watchdog(Some(SimTime::from_us(700)));
    let bs2 = bitstream(sys.device(), 15);
    RecoveryPolicy::default()
        .reconfigure(&mut sys, &bs2, Mode::Raw)
        .unwrap();
    assert_eq!(sys.transfer_watchdog(), Some(SimTime::from_us(700)));
}

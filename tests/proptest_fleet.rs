//! Property-based tests of the fleet chaos layer.
//!
//! Three invariants over arbitrary chaos campaigns (random death/wedge
//! schedules and emergencies): the accounting identity — every request
//! is completed exactly once or shed with a reason, none lost, none
//! double-served; worker-count identity — the same campaign renders
//! byte-identically at 1 and 6 sweep workers; and campaign purity — the
//! same seed reproduces the same outcome bit for bit.

use proptest::prelude::*;
use uparc_repro::fleet::{
    synthetic_catalog, ChaosSpec, EmergencyWindow, Fleet, FleetConfig, FleetWorkloadSpec,
    HealthConfig, RoutePolicy,
};
use uparc_repro::sim::obs::Obs;
use uparc_repro::sim::sweep;
use uparc_repro::sim::time::{Frequency, SimTime};

fn small_fleet(chips: usize) -> Fleet {
    let catalog = synthetic_catalog(12, 12, 17);
    Fleet::new(
        catalog,
        FleetConfig {
            chips,
            rack_cap_mw: chips as f64 * 700.0,
            epoch: SimTime::from_us(50),
            chip_cache_bytes: 64 * 1024,
            route: RoutePolicy::Locality {
                spill_window: SimTime::from_us(5),
            },
            min_frequency: Frequency::from_mhz(50.0),
            health: HealthConfig::default(),
            shed_backlog: None,
            failover_retries: 3,
        },
    )
    .unwrap()
}

fn chaos_strategy() -> impl Strategy<Value = ChaosSpec> {
    (
        any::<u64>(),
        0u32..600,
        0u32..800,
        0u32..500,
        prop_oneof![
            Just(Vec::new()),
            (60u64..200, 200u64..400).prop_map(|(from, to)| vec![EmergencyWindow {
                from: SimTime::from_us(from),
                to: SimTime::from_us(to),
                cap_mw: 4.0 * 700.0 * 0.8,
            }]),
        ],
    )
        .prop_map(|(seed, loss, wedge, seu, emergencies)| ChaosSpec {
            seed,
            horizon: SimTime::from_us(250),
            loss_permille: loss,
            wedge_permille: wedge,
            wedge_window: SimTime::from_us(15),
            seu_permille: seu,
            seu_window: SimTime::from_us(25),
            seu_faults_per_request: 1,
            emergencies,
            ..ChaosSpec::quiet()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random death/wedge schedules never lose or double-serve a
    /// request: `completed + shed == requests` holds (the run itself
    /// asserts no index is served twice), and chip deaths show up as
    /// failovers or sheds, never as silent losses.
    #[test]
    fn accounting_is_exact_under_random_chaos(chaos in chaos_strategy()) {
        let fleet = small_fleet(4);
        let spec = FleetWorkloadSpec {
            requests: 300,
            mean_gap: SimTime::from_ns(400),
            seed: 0xF1EE7,
        };
        let out = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
        prop_assert_eq!(out.completed + out.shed.total(), spec.requests);
        prop_assert_eq!(out.cap_violations, 0);
        prop_assert_eq!(out.cap_violations_emergency, 0);
    }

    /// The same campaign is worker-count independent and pure: pinning
    /// the sweep pool to 1 vs 6 workers — and re-running at 6 — yields
    /// byte-identical outcomes.
    #[test]
    fn chaos_runs_are_worker_count_independent(chaos in chaos_strategy()) {
        let fleet = small_fleet(4);
        let spec = FleetWorkloadSpec {
            requests: 300,
            mean_gap: SimTime::from_ns(400),
            seed: 0xF1EE7,
        };
        sweep::pin_workers(1);
        let one = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
        sweep::pin_workers(6);
        let six = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
        let again = fleet.run_chaos(&spec, &chaos, &Obs::null()).unwrap();
        sweep::unpin_workers();
        prop_assert_eq!(&one, &six);
        prop_assert_eq!(one.render(), six.render());
        prop_assert_eq!(&six, &again);
    }
}

//! Property-based equivalence tests for the event kernel.
//!
//! The calendar-queue [`EventQueue`] replaced a plain binary heap and must
//! be observationally identical to it: events pop in nondecreasing time
//! order, ties break in schedule (FIFO) order, `pop_instant` drains exactly
//! one timestamp, and scheduling into the past panics. These tests drive
//! the queue and a `BinaryHeap`-based reference model with the same
//! randomized op sequences and compare every observable at every step.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;
use uparc_repro::sim::queue::EventQueue;
use uparc_repro::sim::time::SimTime;

/// The exact behavioural contract the calendar queue must honour, stated
/// as the simplest possible implementation: a binary heap keyed on
/// `(time, insertion sequence)`.
#[derive(Default)]
struct HeapReference {
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    next_seq: u64,
    now: SimTime,
}

impl HeapReference {
    fn schedule(&mut self, at: SimTime, event: u32) {
        assert!(at >= self.now, "reference model scheduled into the past");
        self.heap.push(Reverse((at, self.next_seq, event)));
        self.next_seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        let Reverse((t, _, e)) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }

    fn pop_instant(&mut self, out: &mut Vec<u32>) -> Option<SimTime> {
        let Reverse((at, _, _)) = *self.heap.peek()?;
        while let Some(&Reverse((t, _, _))) = self.heap.peek() {
            if t != at {
                break;
            }
            out.push(self.heap.pop().expect("peeked").0 .2);
        }
        self.now = at;
        Some(at)
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|&Reverse((t, _, _))| t)
    }
}

/// One step of a randomized queue workout.
#[derive(Clone, Debug)]
enum Op {
    /// Schedule at `now + offset` femtoseconds (0 ⇒ a same-instant tie).
    Schedule(u64),
    /// Schedule a burst at one instant, stressing FIFO among ties.
    ScheduleBurst(u64, u8),
    Pop,
    PopInstant,
}

/// Offsets cluster small so ties and near-ties are common, with an
/// occasional huge jump to force epoch turnover / overflow handling.
fn offset_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        1u64..50,
        1u64..100_000,
        1_000_000_000u64..u64::from(u32::MAX),
    ]
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        offset_strategy().prop_map(Op::Schedule),
        (offset_strategy(), 2u8..8).prop_map(|(o, n)| Op::ScheduleBurst(o, n)),
        Just(Op::Pop),
        Just(Op::PopInstant),
    ];
    proptest::collection::vec(op, 0..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn calendar_queue_equals_heap_reference(ops in ops_strategy()) {
        let mut q = EventQueue::new();
        let mut model = HeapReference::default();
        let mut event = 0u32;

        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Schedule(offset) => {
                    let at = q.now() + SimTime::from_fs(offset);
                    q.schedule(at, event);
                    model.schedule(at, event);
                    event += 1;
                }
                Op::ScheduleBurst(offset, n) => {
                    let at = q.now() + SimTime::from_fs(offset);
                    for _ in 0..n {
                        q.schedule(at, event);
                        model.schedule(at, event);
                        event += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(q.pop(), model.pop(), "pop diverged at op {}", i);
                }
                Op::PopInstant => {
                    let mut got = Vec::new();
                    let mut want = Vec::new();
                    let gt = q.pop_instant(&mut got);
                    let wt = model.pop_instant(&mut want);
                    prop_assert_eq!(gt, wt, "pop_instant time diverged at op {}", i);
                    prop_assert_eq!(&got, &want, "pop_instant batch diverged at op {}", i);
                }
            }
            prop_assert_eq!(q.len(), model.heap.len(), "len diverged at op {}", i);
            prop_assert_eq!(q.is_empty(), model.heap.is_empty());
            prop_assert_eq!(q.peek_time(), model.peek_time(), "peek diverged at op {}", i);
            prop_assert_eq!(q.now(), model.now, "clock diverged at op {}", i);
        }

        // Drain whatever is left; order must match to the last event.
        loop {
            let (a, b) = (q.pop(), model.pop());
            prop_assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn equal_times_pop_in_schedule_order(
        burst in 1usize..64,
        offset in 0u64..1000,
        presort in proptest::collection::vec(0u64..500, 0..32),
    ) {
        // Mix the burst in with other events; among the tied ones, FIFO
        // order must survive bucket sorting and epoch turnover.
        let mut q = EventQueue::new();
        let at = SimTime::from_fs(offset + 500);
        for (i, &t) in presort.iter().enumerate() {
            q.schedule(SimTime::from_fs(t), 10_000 + i as u32);
        }
        for i in 0..burst {
            q.schedule(at, i as u32);
        }
        let mut tied = Vec::new();
        while let Some((t, e)) = q.pop() {
            if t == at && e < 10_000 {
                tied.push(e);
            }
        }
        let expected: Vec<u32> = (0..burst as u32).collect();
        prop_assert_eq!(tied, expected, "FIFO violated among ties");
    }

    #[test]
    fn scheduling_into_the_past_always_panics(
        times in proptest::collection::vec(1u64..1_000_000, 2..20),
        back in 1u64..1_000_000,
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_fs(t), i as u32);
        }
        // Advance the clock to the latest scheduled instant...
        while q.pop().is_some() {}
        let now = q.now();
        prop_assert_eq!(now, SimTime::from_fs(*times.iter().max().expect("nonempty")));

        // ...then any earlier schedule must panic, and by exactly the
        // contract's message (not some internal index error).
        let past = SimTime::from_fs(now.as_fs().saturating_sub(back));
        let err = catch_unwind(AssertUnwindSafe(|| q.schedule(past, 99)))
            .expect_err("scheduling into the past must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default();
        prop_assert!(msg.contains("cannot schedule"), "unexpected panic: {}", msg);
    }
}

//! Compressed-mode integration across every hardware-decodable algorithm:
//! each slot stages, decompresses and configures identically to the raw
//! path, at its own characteristic throughput.

use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::compress::Algorithm;
use uparc_repro::core::uparc::{Mode, UParc};
use uparc_repro::fpga::Device;
use uparc_repro::sim::time::Frequency;

fn bitstream(device: &Device, frames: u32) -> PartialBitstream {
    let payload = SynthProfile::dense().generate(device, 70, frames, 9);
    PartialBitstream::build(device, 70, &payload)
}

/// The algorithms with streaming hardware decoders.
const HW_ALGS: [Algorithm; 4] = [
    Algorithm::XMatchPro,
    Algorithm::Rle,
    Algorithm::Lz77,
    Algorithm::Huffman,
];

#[test]
fn every_hw_algorithm_configures_identically_to_raw() {
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 250);
    let mut reference = UParc::builder(device.clone()).build().expect("build");
    reference
        .reconfigure_bitstream(&bs, Mode::Raw)
        .expect("raw");

    for alg in HW_ALGS {
        let mut sys = UParc::builder(device.clone())
            .decompressor(alg)
            .build()
            .expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(200.0))
            .expect("tune");
        let r = sys
            .reconfigure_bitstream(&bs, Mode::Compressed)
            .expect("compressed");
        assert!(r.compressed, "{alg}");
        assert_eq!(
            reference
                .icap()
                .config_memory()
                .diff_frames(sys.icap().config_memory()),
            0,
            "{alg} must configure the same frames"
        );
    }
}

#[test]
fn staging_footprint_follows_table1_ordering() {
    // Better Table I ratio ⇒ smaller BRAM footprint for the same module.
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 600);
    let mut stored = Vec::new();
    for alg in [Algorithm::Rle, Algorithm::Lz77, Algorithm::XMatchPro] {
        let mut sys = UParc::builder(device.clone())
            .decompressor(alg)
            .build()
            .expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(200.0))
            .expect("tune");
        let pre = sys.preload(&bs, Mode::Compressed).expect("stage");
        stored.push((alg, pre.stored_bytes));
    }
    // RLE stores the most, X-MatchPRO the least (cf. Table I: 63/71.4/74.2
    // on the calibrated workload; LZ77 and X-MatchPRO are close).
    assert!(stored[0].1 > stored[2].1, "{stored:?}");
    assert!(stored[0].1 > stored[1].1, "{stored:?}");
}

#[test]
fn throughput_reflects_each_decoder_rate() {
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 800);
    let run = |alg: Algorithm| {
        let mut sys = UParc::builder(device.clone())
            .decompressor(alg)
            .build()
            .expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(255.0))
            .expect("tune");
        sys.reconfigure_bitstream(&bs, Mode::Compressed)
            .expect("run")
    };
    // X-MatchPRO: 2 w/c at ≤126 MHz ⇒ ~1 GB/s.
    let xmp = run(Algorithm::XMatchPro);
    let bw = |r: &uparc_repro::core::uparc::UparcReport| {
        r.bytes as f64 / r.transfer_time.as_secs_f64() / 1e6
    };
    assert!((bw(&xmp) - 1000.0).abs() < 20.0, "xmp {:.0}", bw(&xmp));
    // FaRM-class RLE: 1 w/c at ≤200 MHz ⇒ ~800 MB/s.
    let rle = run(Algorithm::Rle);
    assert!((bw(&rle) - 800.0).abs() < 20.0, "rle {:.0}", bw(&rle));
    // Bit-serial Huffman decoder: ~0.25 w/c at ≤150 MHz ⇒ ~150 MB/s.
    let huf = run(Algorithm::Huffman);
    assert!((bw(&huf) - 150.0).abs() < 10.0, "huffman {:.0}", bw(&huf));
}

#[test]
fn pipeline_and_analytic_pacing_agree_on_the_paper_point() {
    // The X-MatchPRO slot (integer 2 w/c) uses the cycle-faithful FIFO
    // pipeline; its result must sit within warm-up distance of the
    // steady-state bound the paper's 1.008 GB/s figure assumes.
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 1300);
    let mut sys = UParc::builder(device.clone()).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(255.0))
        .expect("tune");
    let r = sys
        .reconfigure_bitstream(&bs, Mode::Compressed)
        .expect("run");
    let out_words = (r.bytes / 4) as u64;
    let f3 = r.decompressor_frequency.expect("compressed");
    let steady = f3.time_of_cycles(out_words.div_ceil(2));
    let ratio = r.transfer_time.as_secs_f64() / steady.as_secs_f64();
    assert!((1.0..1.01).contains(&ratio), "ratio {ratio:.4}");
}

//! Integration tests for the extension features: SEU scrubbing, sample
//! screening, floorplanning, and the DES engine driving a reconfiguration
//! scenario.

use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::compress::stats;
use uparc_repro::core::scrub::Scrubber;
use uparc_repro::core::uparc::{Mode, UParc};
use uparc_repro::fpga::floorplan::Floorplan;
use uparc_repro::fpga::variation::SampleLot;
use uparc_repro::fpga::{Device, Family};
use uparc_repro::sim::engine::{Context, Engine, Process, ProcessId};
use uparc_repro::sim::time::{Frequency, SimTime};

#[test]
fn scrubbing_protects_a_floorplanned_partition() {
    let device = Device::xc5vsx50t();
    let mut fp = Floorplan::new(device.clone());
    let rp = fp.add_partition("protected", 800..1000).expect("fits");
    let range = fp.partition(rp).frames();

    let payload = SynthProfile::dense().generate(&device, range.start, range.end - range.start, 1);
    let bs = PartialBitstream::build(&device, range.start, &payload);
    let mut sys = UParc::builder(device).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(362.5))
        .expect("tune");
    sys.reconfigure_bitstream(&bs, Mode::Raw)
        .expect("configure");

    let scrubber =
        Scrubber::capture(&mut sys, range.start, range.end - range.start).expect("golden");
    // Hit the partition with upsets at both ends.
    sys.inject_upset(range.start, 0, 0).expect("seu");
    sys.inject_upset(range.end - 1, 40, 31).expect("seu");
    let report = scrubber.scrub(&mut sys).expect("scrub");
    assert_eq!(report.dirty.len(), 2);
    assert_eq!(report.repairs.len(), 2);
    assert!(scrubber.scrub(&mut sys).expect("verify").dirty.is_empty());
}

#[test]
fn screening_and_system_limits_agree() {
    // The family ceilings enforced by the system are exactly the screened
    // minima of the sample lots.
    for family in [Family::Virtex5, Family::Virtex6] {
        let lot = SampleLot::draw(family, 200, 9);
        let screened = lot.screen(family.icap_overclock_limit());
        assert_eq!(screened.passed, screened.total, "{family}");
    }
    // And the UPaRC builder rejects clocks above them.
    let mut v6 = UParc::builder(Device::xc6vlx240t()).build().expect("build");
    assert!(v6
        .set_reconfiguration_frequency(Family::Virtex6.icap_overclock_limit())
        .is_ok());
    assert!(v6
        .set_reconfiguration_frequency(Frequency::from_mhz(362.5))
        .is_err());
}

#[test]
fn synthetic_profiles_have_distinct_statistics() {
    let device = Device::xc5vsx50t();
    let measure = |profile: &SynthProfile| {
        let words = profile.generate_bytes(&device, 64 * 1024, 5);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        stats::analyze(&bytes)
    };
    let dense = measure(&SynthProfile::dense());
    let sparse = measure(&SynthProfile::sparse());
    let noise = measure(&SynthProfile::noise());
    // Entropy ordering: noise ≫ dense > sparse.
    assert!(noise.entropy_bits > 7.9);
    assert!(dense.entropy_bits > sparse.entropy_bits);
    assert!(dense.entropy_bits < 3.5);
    // Run mass ordering: sparse blankest.
    assert!(sparse.runs.very_long > dense.runs.very_long);
    assert!(noise.runs.very_long < 0.01);
}

/// A requester/controller pair on the DES engine: the requester fires
/// module-swap requests; the controller process owns a `UParc` and serves
/// them, replying with the measured latency.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Swap(u32),
    Done(SimTime),
}

struct ControllerProc {
    sys: UParc,
    served: Vec<SimTime>,
    requester: Option<ProcessId>,
}

impl Process<Ev> for ControllerProc {
    fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Swap(seed) => {
                let device = self.sys.device().clone();
                let payload = SynthProfile::dense().generate(&device, 0, 200, u64::from(seed));
                let bs = PartialBitstream::build(&device, 0, &payload);
                let r = self
                    .sys
                    .reconfigure_bitstream(&bs, Mode::Raw)
                    .expect("swap");
                let latency = r.elapsed();
                self.served.push(latency);
                if let Some(req) = self.requester {
                    ctx.send_in(latency, req, Ev::Done(latency));
                }
            }
            Ev::Done(_) => {}
        }
    }
}

struct RequesterProc {
    controller: Option<ProcessId>,
    remaining: u32,
    completions: u32,
}

impl Process<Ev> for RequesterProc {
    fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
        if let Ev::Done(_) = ev {
            self.completions += 1;
            if self.remaining > 0 {
                self.remaining -= 1;
                let ctrl = self.controller.expect("wired");
                ctx.send_in(SimTime::from_us(500), ctrl, Ev::Swap(self.remaining));
            }
        }
    }
}

#[test]
fn engine_drives_an_asynchronous_swap_pipeline() {
    let mut sys = UParc::builder(Device::xc5vsx50t()).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(300.0))
        .expect("tune");

    let mut engine = Engine::new();
    let requester = engine.spawn(Box::new(RequesterProc {
        controller: None,
        remaining: 4,
        completions: 0,
    }));
    let controller = engine.spawn(Box::new(ControllerProc {
        sys,
        served: Vec::new(),
        requester: Some(requester),
    }));
    // Wire the requester now that the controller's id exists.
    let req: &mut RequesterProc = (engine.process_mut(requester) as &mut dyn std::any::Any)
        .downcast_mut()
        .expect("concrete type");
    req.controller = Some(controller);

    engine.schedule(SimTime::ZERO, controller, Ev::Swap(5));
    engine.run();

    // 5 swaps total: the initial one plus 4 chained by the requester.
    let ctrl: &ControllerProc = (engine.process(controller) as &dyn std::any::Any)
        .downcast_ref()
        .expect("concrete type");
    assert_eq!(ctrl.served.len(), 5);
    assert_eq!(ctrl.sys.icap().frames_committed(), 5 * 200);
    let req: &RequesterProc = (engine.process(requester) as &dyn std::any::Any)
        .downcast_ref()
        .expect("concrete type");
    assert_eq!(req.completions, 5);
    // The engine's clock advanced through the 500 µs gaps + swap latencies.
    assert!(engine.now() > SimTime::from_ms(2));
}

//! Property-based tests of the frame-ECC SECDED edge cases.
//!
//! The scrubbing story leans on exact ECC semantics: a single-bit upset
//! must be *located* (correctable in place), while any double-bit upset —
//! including flips straddling the byte/16-bit table lanes of the
//! word-parallel syndrome kernel, and flips of the stored parity word
//! itself — must come back detected-but-uncorrectable, never silently
//! clean and never miscorrected to a wrong location.

use proptest::prelude::*;
use uparc_repro::fpga::ecc::{check, copy_with_parity, frame_parity, EccStatus};

/// Frames of 1..=64 words (the real V5 frame is 41 words; odd sizes
/// exercise the `word < frame.len()` guard in `check`).
fn frame_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        proptest::collection::vec(any::<u32>(), 41..42),
        proptest::collection::vec(any::<u32>(), 1..64),
        // Sparse, bitstream-like frames: mostly zero words.
        proptest::collection::vec(prop_oneof![Just(0u32), any::<u32>()], 1..64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn clean_frames_check_clean(frame in frame_strategy()) {
        let p = frame_parity(&frame);
        prop_assert_eq!(check(&frame, p), EccStatus::Clean);
    }

    #[test]
    fn every_single_bit_flip_is_located_exactly(
        frame in frame_strategy(),
        pick in any::<u32>(),
    ) {
        let golden = frame_parity(&frame);
        let bits = frame.len() as u32 * 32;
        let index = pick % bits;
        let (word, bit) = ((index / 32) as usize, index % 32);
        let mut upset = frame;
        upset[word] ^= 1 << bit;
        prop_assert_eq!(
            check(&upset, golden),
            EccStatus::SingleBit { word, bit },
            "flip at {}:{}", word, bit
        );
    }

    #[test]
    fn any_distinct_double_flip_is_multibit(
        frame in frame_strategy(),
        pick in any::<u32>(),
        offset in any::<u32>(),
    ) {
        let golden = frame_parity(&frame);
        let bits = frame.len() as u32 * 32;
        prop_assume!(bits >= 2);
        let i1 = pick % bits;
        let i2 = (i1 + 1 + offset % (bits - 1)) % bits;
        prop_assert_ne!(i1, i2);
        let mut upset = frame;
        upset[(i1 / 32) as usize] ^= 1 << (i1 % 32);
        upset[(i2 / 32) as usize] ^= 1 << (i2 % 32);
        prop_assert_eq!(
            check(&upset, golden),
            EccStatus::MultiBit,
            "double flip at {} and {}", i1, i2
        );
    }

    #[test]
    fn lane_straddling_double_flips_are_multibit(
        frame in proptest::collection::vec(any::<u32>(), 2..64),
        word_pick in any::<u32>(),
        boundary in 0u32..4,
    ) {
        // Adjacent-bit pairs across the syndrome kernel's table-lane
        // boundaries: byte lanes (7|8, 23|24), the 16-bit WIDE lanes
        // (15|16), and the word boundary (31 of w | 0 of w+1) whose
        // carry fix-up is the trickiest path in the kernel.
        let golden = frame_parity(&frame);
        let mut upset = frame;
        let w = (word_pick as usize) % (upset.len() - 1);
        match boundary {
            0 => { upset[w] ^= 1 << 7;  upset[w] ^= 1 << 8; }
            1 => { upset[w] ^= 1 << 15; upset[w] ^= 1 << 16; }
            2 => { upset[w] ^= 1 << 23; upset[w] ^= 1 << 24; }
            _ => { upset[w] ^= 1 << 31; upset[w + 1] ^= 1; }
        }
        prop_assert_eq!(
            check(&upset, golden),
            EccStatus::MultiBit,
            "boundary pair {} at word {}", boundary, w
        );
    }

    #[test]
    fn parity_word_flips_are_detected_not_correctable(
        frame in frame_strategy(),
        pbit in 0u32..32,
    ) {
        // An SEU in the *stored parity* leaves the data intact: the
        // syndrome must flag the frame (so a scrubber rewrites it) but a
        // lone parity-bit delta never forms a valid single-bit signature.
        let golden = frame_parity(&frame);
        let struck = golden ^ (1 << pbit);
        prop_assert_eq!(
            check(&frame, struck),
            EccStatus::MultiBit,
            "parity flip at bit {}", pbit
        );
    }

    #[test]
    fn simultaneous_data_and_parity_flips_never_pass_clean(
        frame in frame_strategy(),
        pick in any::<u32>(),
        pbit in 0u32..32,
    ) {
        // The nastiest aliasing candidate: one data flip plus one stored-
        // parity flip. Locating it correctly is not guaranteed (SECDED's
        // limit), but it must never read back as Clean.
        let golden = frame_parity(&frame);
        let bits = frame.len() as u32 * 32;
        let index = pick % bits;
        let mut upset = frame;
        upset[(index / 32) as usize] ^= 1 << (index % 32);
        prop_assert_ne!(
            check(&upset, golden ^ (1 << pbit)),
            EccStatus::Clean,
            "data flip {} + parity flip {}", index, pbit
        );
    }

    #[test]
    fn copy_with_parity_agrees_with_frame_parity(frame in frame_strategy()) {
        let mut dst = vec![0u32; frame.len()];
        let p = copy_with_parity(&mut dst, &frame);
        prop_assert_eq!(&dst, &frame, "copy is exact");
        prop_assert_eq!(p, frame_parity(&frame), "fused parity matches");
        prop_assert_eq!(check(&dst, p), EccStatus::Clean);
    }
}

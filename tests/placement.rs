//! End-to-end tests of the dynamic placement stack: admission through
//! [`DynamicCatalog`], manual compaction with the [`Defragmenter`]
//! planner, and the full churn simulation with a recording observer.

use std::sync::Arc;

use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::fpga::alloc::FitPolicy;
use uparc_repro::fpga::device::Geometry;
use uparc_repro::fpga::{Device, Family, Icap};
use uparc_repro::place::churn::ChurnSpec;
use uparc_repro::place::defrag::Defragmenter;
use uparc_repro::place::sim::{run_churn, PlacementConfig};
use uparc_repro::serve::dynamic::{DynamicCatalog, PlacementError};
use uparc_repro::serve::request::BitstreamId;
use uparc_repro::sim::obs::{Obs, TraceRecorder};

fn arena(frames_minor: u32) -> Device {
    let geometry = Geometry {
        rows: 1,
        majors: 1,
        minors: frames_minor,
    };
    Device::custom("xcItest", Family::Virtex5, 0x0123_4567, geometry, 100, 10)
}

fn image(device: &Device, frames: u32, seed: u64) -> PartialBitstream {
    let payload = SynthProfile::dense().generate(device, 0, frames, seed);
    PartialBitstream::build(device, 0, &payload)
}

/// Churn a catalog into a fragmented state, then drive the planner to
/// quiescence by hand and check the frame space is fully compacted and
/// every surviving image still executes on the ICAP at its new address.
#[test]
fn manual_compaction_restores_contiguity() {
    let device = arena(64);
    let mut catalog = DynamicCatalog::new(device.clone(), FitPolicy::FirstFit);
    for id in 1u32..=6 {
        catalog
            .load(BitstreamId(id), &image(&device, 8, u64::from(id)))
            .unwrap();
    }
    // Punch holes: drop every other tenant.
    for id in [1u32, 3, 5] {
        catalog.unload(BitstreamId(id)).unwrap();
    }
    assert!(
        catalog.frag_stats().free_blocks > 1,
        "churn should fragment"
    );

    let planner = Defragmenter;
    let mut moves = 0;
    while let Some(plan) = planner.plan(&catalog) {
        let (from, to) = catalog.relocate_to(plan.id, plan.to).unwrap();
        assert_eq!(from.start, plan.from.start);
        assert_eq!(to.start, plan.to);
        catalog.check_invariants().unwrap();
        moves += 1;
        assert!(moves <= 16, "compaction does not terminate");
    }

    let stats = catalog.frag_stats();
    assert_eq!(stats.free_blocks, 1, "free space not coalesced");
    assert_eq!(stats.largest_free, stats.total_free);
    // Live images are packed from frame 0 with no gaps.
    let mut expected_start = 0;
    for live in catalog.allocator().live() {
        assert_eq!(live.start, expected_start);
        expected_start = live.end;
    }
    // Every relocated image still passes ICAP CRC verification.
    for (_, placed) in catalog.iter() {
        let mut icap = Icap::new(device.clone());
        icap.write_words(placed.bitstream().words()).unwrap();
        assert_eq!(
            icap.frames_committed(),
            u64::from(placed.bitstream().frame_count())
        );
    }
}

/// Admission failures are typed: a request larger than the total free
/// space is a hard rejection, while one blocked only by fragmentation
/// reports trapped capacity (a defragmenter could have admitted it).
#[test]
fn rejections_distinguish_trapped_capacity() {
    let device = arena(32);
    let mut catalog = DynamicCatalog::new(device.clone(), FitPolicy::FirstFit);
    for id in 1u32..=4 {
        catalog
            .load(BitstreamId(id), &image(&device, 8, u64::from(id)))
            .unwrap();
    }
    catalog.unload(BitstreamId(1)).unwrap();
    catalog.unload(BitstreamId(3)).unwrap();
    // 16 free frames in two 8-frame holes: 12 is trapped, 20 is not.
    let trapped = catalog
        .load(BitstreamId(9), &image(&device, 12, 9))
        .unwrap_err();
    match &trapped {
        PlacementError::NoCapacity {
            largest_free,
            total_free,
            ..
        } => {
            assert_eq!((*largest_free, *total_free), (8, 16));
        }
        other => panic!("expected NoCapacity, got {other}"),
    }
    assert!(trapped.is_trapped_capacity());
    let hard = catalog
        .load(BitstreamId(9), &image(&device, 20, 9))
        .unwrap_err();
    assert!(!hard.is_trapped_capacity());
}

/// The full churn simulation under a recording observer: the trace
/// export carries the placement taxonomy and the run's accounting holds.
#[test]
fn churn_simulation_emits_placement_taxonomy() {
    let recorder = Arc::new(TraceRecorder::new());
    let spec = ChurnSpec {
        tenants: 120,
        frames_min: 4,
        frames_max: 10,
        ..ChurnSpec::default()
    };
    let out = run_churn(
        &spec,
        7,
        PlacementConfig {
            device: arena(48),
            defrag: true,
            verify_moves: true,
            obs: Obs::recording(Arc::clone(&recorder)),
            ..PlacementConfig::default()
        },
    );
    assert_eq!(out.placed + out.rejected, out.arrivals);
    assert_eq!(out.invariant_violations, 0);
    assert_eq!(out.verify_failures, 0);
    assert!(out.moves > 0, "no compaction under churn");

    let trace = recorder.chrome_trace(None);
    assert!(trace.contains("\"name\":\"Relocate\""));
    assert!(trace.contains("\"name\":\"Compact\""));
    assert!(trace.contains("\"cat\":\"place\""));
    uparc_repro::sim::obs::json::parse(&trace).expect("trace export parses");
}

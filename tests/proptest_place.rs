//! Property-based tests of the placement layer.
//!
//! Two families of invariants over arbitrary inputs: bitstream
//! relocation is indistinguishable from building at the target address
//! in the first place (byte-identical words, ICAP CRC acceptance), and
//! the frame allocator maintains a perfect tiling of the device — no
//! overlap, eager coalescing, and full recovery once everything is
//! freed.

use proptest::prelude::*;
use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::fpga::alloc::{FitPolicy, FrameAllocator};
use uparc_repro::fpga::{Device, Icap};

fn profile_strategy() -> impl Strategy<Value = SynthProfile> {
    prop_oneof![
        Just(SynthProfile::dense()),
        Just(SynthProfile::sparse()),
        Just(SynthProfile::noise()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Relocating an image is byte-identical to building it fresh at
    /// the destination FAR, and the relocated stream still passes ICAP
    /// CRC verification end to end.
    #[test]
    fn relocation_round_trips(
        profile in profile_strategy(),
        seed in 0u64..1_000_000,
        frames in 1u32..48,
        far in 0u32..2_000,
        new_far in 0u32..2_000,
    ) {
        let device = Device::xc5vsx50t();
        let payload = profile.generate(&device, far, frames, seed);
        let bs = PartialBitstream::build(&device, far, &payload);

        let moved = bs.relocate(&device, new_far).unwrap();
        let fresh = PartialBitstream::build(&device, new_far, &payload);
        prop_assert_eq!(&moved, &fresh);
        prop_assert_eq!(moved.far(), new_far);

        // Round trip: moving back restores the original stream.
        let back = moved.relocate(&device, far).unwrap();
        prop_assert_eq!(&back, &bs);

        let mut icap = Icap::new(device);
        icap.write_words(moved.words()).unwrap();
        prop_assert_eq!(icap.frames_committed(), u64::from(frames));
    }

    /// Random alloc/free interleavings never violate the allocator
    /// invariants: live windows are disjoint, the free list is sorted
    /// and coalesced, and live + free always tile the device exactly.
    #[test]
    fn allocator_invariants_hold(
        frames in 64u32..512,
        requests in proptest::collection::vec((1u32..40, any::<bool>(), any::<u8>()), 1..64),
    ) {
        let mut alloc = FrameAllocator::new(frames);
        let mut live: Vec<std::ops::Range<u32>> = Vec::new();

        for (len, best, victim) in requests {
            let policy = if best { FitPolicy::BestFit } else { FitPolicy::FirstFit };
            if let Ok(window) = alloc.alloc(len, policy) {
                // A fresh window never overlaps an existing live one.
                for held in &live {
                    prop_assert!(window.end <= held.start || held.end <= window.start);
                }
                live.push(window);
            }
            // Free a pseudo-random held window about half the time.
            if !live.is_empty() && victim & 1 == 1 {
                let idx = usize::from(victim >> 1) % live.len();
                let window = live.swap_remove(idx);
                alloc.free(window).unwrap();
            }
            alloc.check_invariants().unwrap();
            prop_assert_eq!(alloc.live().len(), live.len());
        }

        // Freeing everything coalesces back to one block spanning the
        // whole device, and freeing is not repeatable (no double free).
        for window in live.drain(..) {
            alloc.free(window.clone()).unwrap();
            prop_assert!(alloc.free(window).is_err());
        }
        alloc.check_invariants().unwrap();
        prop_assert_eq!(alloc.free_blocks().len(), 1);
        prop_assert_eq!(alloc.free_blocks()[0].clone(), 0..frames);
        prop_assert_eq!(alloc.largest_free(), frames);
    }

    /// `alloc` then `free` is the identity on the allocator state: the
    /// free list after the pair equals the free list before it.
    #[test]
    fn alloc_free_is_identity(
        frames in 64u32..512,
        warmup in proptest::collection::vec(1u32..24, 0..8),
        len in 1u32..32,
    ) {
        let mut alloc = FrameAllocator::new(frames);
        for w in warmup {
            let _ = alloc.alloc(w, FitPolicy::FirstFit);
        }
        let before = alloc.free_blocks().to_vec();
        if let Ok(window) = alloc.alloc(len, FitPolicy::FirstFit) {
            alloc.free(window).unwrap();
        }
        prop_assert_eq!(alloc.free_blocks(), &before[..]);
        alloc.check_invariants().unwrap();
    }
}

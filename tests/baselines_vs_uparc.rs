//! Cross-crate comparison tests: the Table III ordering, the §V energy
//! ratio, and the Fig. 5 bandwidth laws, measured through the public APIs.

use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::controllers::adapter::UparcController;
use uparc_repro::controllers::bram_hwicap::BramHwicap;
use uparc_repro::controllers::farm::Farm;
use uparc_repro::controllers::flashcap::FlashCap;
use uparc_repro::controllers::mst_icap::MstIcap;
use uparc_repro::controllers::xps_hwicap::XpsHwicap;
use uparc_repro::controllers::ReconfigController;
use uparc_repro::core::uparc::{Mode, UParc};
use uparc_repro::fpga::Device;
use uparc_repro::sim::time::Frequency;

fn bitstream(device: &Device, bytes: usize, seed: u64) -> PartialBitstream {
    let frames = (bytes / device.family().frame_bytes()) as u32;
    let payload = SynthProfile::dense().generate(device, 0, frames, seed);
    PartialBitstream::build(device, 0, &payload)
}

#[test]
fn table3_ordering_holds_on_a_common_workload() {
    let v5 = Device::xc5vsx50t;
    let bs = bitstream(&v5(), 100 * 1024, 1);
    let mut controllers: Vec<Box<dyn ReconfigController>> = vec![
        Box::new(XpsHwicap::new(v5())),
        Box::new(MstIcap::new(v5())),
        Box::new(FlashCap::new(v5())),
        Box::new(BramHwicap::new(v5())),
        Box::new(Farm::new(v5())),
        Box::new(UparcController::uparc_ii(v5()).expect("uparc_ii")),
        Box::new(UparcController::uparc_i(v5()).expect("uparc_i")),
    ];
    let mut bws = Vec::new();
    for c in &mut controllers {
        let r = c.reconfigure(&bs).expect("reconfigure");
        // All controllers really configured the device.
        assert_eq!(c.icap().frames_committed() as usize, 100 * 1024 / 164);
        bws.push((r.controller, r.bandwidth_mb_s()));
    }
    for pair in bws.windows(2) {
        assert!(
            pair[1].1 > pair[0].1,
            "{} ({:.0}) must beat {} ({:.0})",
            pair[1].0,
            pair[1].1,
            pair[0].0,
            pair[0].1
        );
    }
    // And the span matches the paper: ~14.5 MB/s to ~1.4 GB/s.
    assert!(bws.first().unwrap().1 < 20.0);
    assert!(bws.last().unwrap().1 > 1300.0);
}

#[test]
fn uparc_is_tens_of_times_more_energy_efficient_than_xps() {
    // §V: 30 µJ/KB vs 0.66 µJ/KB ⇒ 45×. Our calibration lands at ≈41×.
    let device = Device::xc6vlx240t();
    let bs = bitstream(&device, (216.5 * 1024.0) as usize, 2);
    let mut xps = XpsHwicap::unoptimized(device.clone());
    let rx = xps.reconfigure(&bs).expect("xps");
    let mut sys = UParc::builder(device).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(50.0))
        .expect("tune");
    let ru = sys.reconfigure_bitstream(&bs, Mode::Raw).expect("uparc");
    let ratio = rx.uj_per_kb() / ru.uj_per_kb();
    assert!(
        (35.0..60.0).contains(&ratio),
        "efficiency ratio {ratio:.1} (paper: 45x)"
    );
}

#[test]
fn effective_bandwidth_is_monotone_in_frequency_and_size() {
    // The two monotonicity laws of the Fig. 5 surface.
    let device = Device::xc5vsx50t();
    let mut last_bw = 0.0;
    for mhz in [50.0, 100.0, 200.0, 300.0, 362.5] {
        let bs = bitstream(&device, 49 * 1024, 3);
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(mhz))
            .expect("tune");
        let r = sys
            .reconfigure_bitstream(&bs, Mode::Raw)
            .expect("reconfigure");
        assert!(r.bandwidth_mb_s() > last_bw, "{mhz} MHz");
        last_bw = r.bandwidth_mb_s();
    }
    let mut last_eff = 0.0;
    for kb in [6usize, 12, 49, 156, 247] {
        let bs = bitstream(&device, kb * 1024, 4);
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(362.5))
            .expect("tune");
        let r = sys
            .reconfigure_bitstream(&bs, Mode::Raw)
            .expect("reconfigure");
        assert!(r.efficiency() > last_eff, "{kb} KB");
        last_eff = r.efficiency();
    }
    assert!(last_eff > 0.98, "247 KB is ≈99% of theoretical");
}

#[test]
fn farm_vs_uparc_gap_is_about_1_8x() {
    // §IV: UPaRC_i's 1433 MB/s "is 1.8 times higher than the fastest
    // controller found in the literature (FaRM — 800 MB/s)".
    let v5 = Device::xc5vsx50t;
    let bs = bitstream(&v5(), 120 * 1024, 5);
    let mut farm = Farm::new(v5());
    let rf = farm.reconfigure(&bs).expect("farm");
    let mut uparc = UparcController::uparc_i(v5()).expect("uparc");
    let ru = uparc.reconfigure(&bs).expect("uparc");
    let gap = ru.bandwidth_mb_s() / rf.bandwidth_mb_s();
    assert!((gap - 1.8).abs() < 0.05, "gap {gap:.2}");
}

#[test]
fn compressed_capacity_reaches_the_992_kb_claim() {
    // §IV: with compression, 256 KB of BRAM stores bitstreams up to
    // ~992 KB — >40% of the 2444 KB full-device bitstream.
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 992 * 1024, 6);
    let mut sys = UParc::builder(device.clone()).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(255.0))
        .expect("tune");
    let pre = sys.preload(&bs, Mode::Compressed).expect("fits compressed");
    assert!(pre.stored_bytes <= 256 * 1024);
    let full = device.full_bitstream_bytes() as f64;
    assert!(
        bs.size_bytes() as f64 / full > 0.40,
        "more than 40% of the device"
    );
    let r = sys.reconfigure().expect("reconfigure");
    assert!(r.bandwidth_mb_s() > 900.0);
}

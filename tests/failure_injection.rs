//! Failure-injection tests: corrupted streams, wrong devices, capacity
//! violations and illegal clocks must surface as typed errors — never as
//! silent misconfiguration.

use uparc_repro::bitstream::bramimg::{BramImage, ModeWord};
use uparc_repro::bitstream::builder::PartialBitstream;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::compress::Algorithm;
use uparc_repro::controllers::farm::Farm;
use uparc_repro::controllers::{ControllerError, ReconfigController};
use uparc_repro::core::scrub::Scrubber;
use uparc_repro::core::uparc::{Mode, UParc};
use uparc_repro::core::UparcError;
use uparc_repro::fpga::{Device, FpgaError, Icap};
use uparc_repro::sim::fault::{FaultInjector, FaultKind};
use uparc_repro::sim::time::{Frequency, SimTime};

fn bitstream(device: &Device, frames: u32, seed: u64) -> PartialBitstream {
    let payload = SynthProfile::dense().generate(device, 0, frames, seed);
    PartialBitstream::build(device, 0, &payload)
}

#[test]
fn flipped_payload_bit_is_caught_by_the_config_crc() {
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 50, 1);
    let mut words = bs.words().to_vec();
    // Flip one bit deep in the FDRI payload.
    let idx = words.len() / 2;
    words[idx] ^= 1 << 7;
    let mut icap = Icap::new(device);
    let err = icap.write_words(&words).expect_err("must fail");
    assert!(matches!(err, FpgaError::CrcMismatch { .. }), "{err}");
}

#[test]
fn bitstream_for_the_wrong_device_is_rejected_everywhere() {
    let v5 = Device::xc5vsx50t();
    let bs = bitstream(&v5, 10, 2);
    // Direct ICAP.
    let mut icap = Icap::new(Device::xc6vlx240t());
    assert!(matches!(
        icap.write_words(bs.words()),
        Err(FpgaError::WrongDevice { .. })
    ));
    // Through a controller.
    let mut farm = Farm::new(Device::xc6vlx240t());
    assert!(matches!(
        farm.reconfigure(&bs),
        Err(ControllerError::Fpga(FpgaError::WrongDevice { .. }))
    ));
    // Through UPaRC.
    let mut sys = UParc::builder(Device::xc6vlx240t()).build().expect("build");
    assert!(matches!(
        sys.reconfigure_bitstream(&bs, Mode::Raw),
        Err(UparcError::Fpga(FpgaError::WrongDevice { .. }))
    ));
}

#[test]
fn corrupt_compressed_staging_is_detected_not_executed() {
    // A compressed BRAM image whose payload bytes are garbage must fail in
    // the decompressor, not push garbage into the ICAP.
    let garbage = vec![0xFFu8; 600];
    let img = BramImage::compressed(4, &garbage); // codec 4 = X-MatchPRO
    let (_, payload) = img.compressed_payload().expect("well-formed wrapper");
    let codec = Algorithm::XMatchPro.codec();
    // Either the codec errors, or its output is not a valid config stream;
    // both are caught before any frame is committed.
    if let Ok(decoded) = codec.decompress(&payload) {
        let mut icap = Icap::new(Device::xc5vsx50t());
        let words: Vec<u32> = decoded
            .chunks(4)
            .map(|c| {
                let mut b = [0u8; 4];
                b[..c.len()].copy_from_slice(c);
                u32::from_be_bytes(b)
            })
            .collect();
        let _ = icap.write_words(&words); // may or may not error…
        assert_eq!(icap.frames_committed(), 0, "…but nothing is committed");
    }
}

#[test]
fn inconsistent_mode_word_is_rejected() {
    let stream: Vec<u32> = (0..50).collect();
    let img = BramImage::uncompressed(&stream);
    let mut words = img.words().to_vec();
    // Tamper with the size field: claims more words than present.
    words[0] = ModeWord {
        compressed: false,
        codec_id: 0,
        size_words: 1000,
    }
    .encode();
    let broken = BramImage::from_words(words);
    assert!(broken.mode().is_err());
}

#[test]
fn capacity_violations_are_typed_not_truncated() {
    let device = Device::xc5vsx50t();
    // ~1.1 MB raw — beyond even compressed staging at dense statistics? No:
    // dense compresses ~75%, so 1.1 MB → ~280 KB > 256 KB BRAM. Auto must
    // fail with a capacity error rather than store a truncated image.
    let bs = bitstream(&device, 7000, 3);
    let mut sys = UParc::builder(device).build().expect("build");
    match sys.preload(&bs, Mode::Auto) {
        Err(UparcError::BramCapacity {
            required,
            available,
        }) => {
            assert!(required > available);
        }
        Err(other) => panic!("unexpected error {other}"),
        Ok(pre) => panic!("must not fit, stored {}", pre.stored_bytes),
    }
    // And nothing is staged afterwards.
    assert!(matches!(
        sys.reconfigure(),
        Err(UparcError::NothingPreloaded)
    ));
}

#[test]
fn clock_ceilings_are_enforced_per_component() {
    let device = Device::xc5vsx50t();
    let mut sys = UParc::builder(device).build().expect("build");
    // Raw-path ceiling (ICAP/BRAM overclock).
    assert!(matches!(
        sys.set_reconfiguration_frequency(Frequency::from_mhz(400.0)),
        Err(UparcError::Frequency { .. })
    ));
    // Decompressor ceiling (126 MHz for X-MatchPRO).
    assert!(matches!(
        sys.set_decompressor_frequency(Frequency::from_mhz(200.0)),
        Err(UparcError::Frequency { .. })
    ));
    // And the compressed datapath rejects >255 MHz at reconfigure time.
    let bs = bitstream(sys.device(), 100, 4).clone();
    sys.set_reconfiguration_frequency(Frequency::from_mhz(300.0))
        .expect("legal raw clock");
    sys.preload(&bs, Mode::Compressed).expect("stages fine");
    assert!(matches!(
        sys.reconfigure(),
        Err(UparcError::Frequency {
            limited_by: "compressed datapath",
            ..
        })
    ));
}

#[test]
fn upsets_struck_mid_schedule_are_scrubbed_back_bit_identical() {
    // End-to-end self-healing: a live partition is protected by a golden
    // Scrubber while the system keeps reconfiguring *another* partition.
    // Seeded SEUs strike the live partition between those operations
    // (radiation does not wait for idle); a scrub pass must find every
    // upset frame and restore a bit-identical readback.
    let device = Device::xc5vsx50t();
    let mut sys = UParc::builder(device).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(362.5))
        .expect("retune");
    sys.advance_idle(SimTime::from_ms(1)); // let the DCM lock

    // Configure and capture the live partition at frames 400..480.
    let live_payload = SynthProfile::dense().generate(sys.device(), 400, 80, 21);
    let live = PartialBitstream::build(sys.device(), 400, &live_payload);
    sys.reconfigure_bitstream(&live, Mode::Raw).expect("live");
    let golden = Scrubber::capture(&mut sys, 400, 80).expect("capture");
    let pristine = sys.readback(400, 80).expect("readback");

    // Schedule the upsets: three SEUs (two in one frame — beyond SECDED
    // correction, so the golden copy is genuinely needed) spread across
    // the next millisecond of operation.
    let mut inj = FaultInjector::empty();
    let t = sys.now();
    for (dt_us, frame, word, bit) in [(50, 410, 7, 3), (250, 410, 20, 30), (600, 455, 0, 0)] {
        inj.schedule(
            t + SimTime::from_us(dt_us),
            FaultKind::ConfigSeu { frame, word, bit },
        );
    }
    sys.attach_fault_injector(inj);

    // The "schedule": keep swapping an unrelated partition while the
    // upsets land at operation boundaries in between.
    for seed in 0..4 {
        let bs = bitstream(sys.device(), 40, 30 + seed);
        sys.reconfigure_bitstream(&bs, Mode::Raw).expect("swap");
        sys.advance_idle(SimTime::from_us(300));
    }
    let inj = sys.fault_injector().expect("attached");
    assert_eq!(inj.remaining(), 0, "all upsets struck during the schedule");
    assert_eq!(inj.log().len(), 3);

    // The live partition is corrupt now — and one scrub pass heals it.
    assert_ne!(sys.readback(400, 80).expect("readback"), pristine);
    let report = golden.scrub(&mut sys).expect("scrub");
    assert_eq!(report.dirty, vec![410, 455]);
    assert_eq!(report.repairs.len(), 2, "one repair per dirty range");
    let healed = sys.readback(400, 80).expect("readback");
    assert_eq!(healed, pristine, "bit-identical restore");
    // A second pass confirms the repair took.
    assert!(golden.scrub(&mut sys).expect("rescrub").dirty.is_empty());
}

#[test]
fn truncated_bit_container_fails_cleanly() {
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 20, 5);
    let bytes = bs.to_bitfile("trunc").to_bytes();
    for cut in [0, 10, 13, 40, bytes.len() - 1] {
        assert!(
            uparc_repro::bitstream::bitfile::BitFile::parse(&bytes[..cut]).is_err(),
            "cut {cut}"
        );
    }
}

//! Property-based equivalence tests for the batched fast paths.
//!
//! Every fast path in the tree is paired with the slow path it replaces
//! and must be *bit-exact* with it — same outputs, same counters, same
//! errors at the same positions. These tests enforce that contract on
//! randomized inputs:
//!
//! * batched [`Icap::write_words`] ≡ the per-cycle reference, on
//!   well-formed, corrupted, truncated and off-device streams, under any
//!   chunking of the input;
//! * the two-level-LUT Huffman decoder ≡ the bit-at-a-time reference;
//! * the word-at-a-time LZ77 match extension ≡ byte-at-a-time extension
//!   (identical token streams, so the compression ratio cannot regress);
//! * every codec's incremental [`StreamDecoder`] ≡ one-shot `decompress`,
//!   under arbitrary per-call budgets;
//! * [`BlockCodec`] frames are byte-identical across worker counts, and
//!   its streaming decoder matches its one-shot path.

use proptest::prelude::*;
use uparc_repro::compress::bitio::{BitReader, BitWriter};
use uparc_repro::compress::huffman::{canonical_codes, code_lengths, CanonicalDecoder};
use uparc_repro::compress::lz77::Lz77;
use uparc_repro::compress::parallel::BlockCodec;
use uparc_repro::compress::{Algorithm, Codec};
use uparc_repro::fpga::format::{
    type1, type2, Command, ConfigCrc, ConfigRegister, Opcode, DUMMY_WORD, NOOP, SYNC_WORD,
};
use uparc_repro::fpga::{Device, Icap};

// ---------------------------------------------------------------- ICAP --

/// Builds a well-formed partial bitstream configuring `frames` frames of
/// `fill`-derived content starting at `far` — without going through
/// `PartialBitstream`, so out-of-range FARs can be encoded too.
fn stream(dev: &Device, far: u32, payload: &[u32]) -> Vec<u32> {
    let mut v = vec![DUMMY_WORD, SYNC_WORD, NOOP];
    let mut crc = ConfigCrc::new();
    let push = |v: &mut Vec<u32>, crc: &mut ConfigCrc, reg: ConfigRegister, w: u32| {
        v.push(type1(Opcode::Write, reg, 1));
        v.push(w);
        crc.update(reg, w);
    };
    push(&mut v, &mut crc, ConfigRegister::Cmd, Command::Rcrc as u32);
    crc.reset();
    push(&mut v, &mut crc, ConfigRegister::Idcode, dev.idcode());
    push(&mut v, &mut crc, ConfigRegister::Cmd, Command::Wcfg as u32);
    push(&mut v, &mut crc, ConfigRegister::Far, far);
    v.push(type1(Opcode::Write, ConfigRegister::Fdri, 0));
    v.push(type2(Opcode::Write, payload.len() as u32));
    for &w in payload {
        v.push(w);
        crc.update(ConfigRegister::Fdri, w);
    }
    v.push(type1(Opcode::Write, ConfigRegister::Crc, 1));
    v.push(crc.value());
    v.push(type1(Opcode::Write, ConfigRegister::Cmd, 1));
    v.push(Command::Desync as u32);
    v
}

/// Asserts the two ports ended in the same externally observable state.
fn assert_same_state(fast: &Icap, slow: &Icap) {
    assert_eq!(fast.words_consumed(), slow.words_consumed(), "word counter");
    assert_eq!(
        fast.frames_committed(),
        slow.frames_committed(),
        "frame counter"
    );
    assert_eq!(fast.status(), slow.status(), "port status");
    assert_eq!(
        fast.config_memory().diff_frames(slow.config_memory()),
        0,
        "configuration plane contents"
    );
    assert_eq!(
        fast.config_memory().write_count(),
        slow.config_memory().write_count(),
        "frame write count"
    );
}

/// A randomized stream: a well-formed base, optionally mutated (bit flip,
/// truncation, or an off-device FAR), for a handful of frames.
fn icap_stream_strategy() -> impl Strategy<Value = Vec<u32>> {
    let dev = Device::xc5vsx50t();
    let fw = dev.family().frame_words();
    let device_frames = dev.frames();
    (
        0u32..1000,
        0usize..5,
        proptest::collection::vec(any::<u32>(), 0..(5 * fw)),
        prop_oneof![
            Just(0u8), // pristine
            Just(1),   // single bit flip
            Just(2),   // truncation
            Just(3),   // FAR pushed off the device
        ],
        any::<u32>(),
    )
        .prop_map(move |(far, frames, pool, mutation, r)| {
            let payload = &pool[..(frames * fw).min(pool.len()) / fw * fw];
            let far = if mutation == 3 {
                device_frames - 1
            } else {
                far
            };
            let mut s = stream(&dev, far, payload);
            match mutation {
                1 => {
                    let i = r as usize % s.len();
                    s[i] ^= 1 << (r % 32);
                }
                2 => s.truncate(r as usize % (s.len() + 1)),
                _ => {}
            }
            s
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn batched_icap_equals_per_cycle_reference(words in icap_stream_strategy()) {
        let dev = Device::xc5vsx50t();
        let mut fast = Icap::new(dev.clone());
        let mut slow = Icap::new(dev);
        let fr = fast.write_words(&words);
        let sr = slow.write_words_reference(&words);
        prop_assert_eq!(
            fr.map_err(|e| e.to_string()),
            sr.map_err(|e| e.to_string()),
            "result mismatch"
        );
        assert_same_state(&fast, &slow);
    }

    #[test]
    fn batched_icap_is_chunking_invariant(
        words in icap_stream_strategy(),
        cuts in proptest::collection::vec(any::<u32>(), 0..6),
    ) {
        let dev = Device::xc5vsx50t();
        let mut whole = Icap::new(dev.clone());
        let whole_result = whole.write_words(&words).map_err(|e| e.to_string());

        // Feed the same stream in arbitrary pieces; stop at the first
        // error exactly like the single call does.
        let mut bounds: Vec<usize> =
            cuts.iter().map(|&c| c as usize % (words.len() + 1)).collect();
        bounds.push(0);
        bounds.push(words.len());
        bounds.sort_unstable();
        let mut chunked = Icap::new(dev);
        let mut chunked_result = Ok(());
        for pair in bounds.windows(2) {
            let r = chunked.write_words(&words[pair[0]..pair[1]]);
            if let Err(e) = r {
                chunked_result = Err(e.to_string());
                break;
            }
        }
        prop_assert_eq!(whole_result, chunked_result, "result mismatch");
        assert_same_state(&chunked, &whole);
    }
}

// ------------------------------------------------------------- Huffman --

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lut_huffman_decode_matches_bit_at_a_time(
        freqs in proptest::collection::vec(0u64..1000, 2..260),
        picks in proptest::collection::vec(any::<u32>(), 0..400),
    ) {
        // At least two coded symbols, so a real tree exists.
        let mut freqs = freqs;
        freqs[0] = freqs[0].max(1);
        freqs[1] = freqs[1].max(1);

        let lengths = code_lengths(&freqs);
        let codes = canonical_codes(&lengths);
        let coded: Vec<u32> = (0..freqs.len() as u32)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();

        // Encode a random message MSB-first, exactly as the codecs do.
        let message: Vec<u32> =
            picks.iter().map(|&p| coded[p as usize % coded.len()]).collect();
        let mut w = BitWriter::new();
        for &sym in &message {
            let (code, len) = codes[sym as usize];
            for i in (0..len).rev() {
                w.write_bit((code >> i) & 1 == 1);
            }
        }
        let bytes = w.finish();

        let decoder = CanonicalDecoder::from_lengths(&lengths).expect("valid lengths");
        let mut slow = BitReader::new(&bytes);
        let mut fast = BitReader::new(&bytes);
        for (i, &expect) in message.iter().enumerate() {
            let s = decoder.decode(&mut slow).expect("reference decode");
            let f = decoder.decode_fast(&mut fast).expect("fast decode");
            prop_assert_eq!(s, expect, "reference wrong at {}", i);
            prop_assert_eq!(f, expect, "fast path wrong at {}", i);
            prop_assert_eq!(slow.remaining(), fast.remaining(), "cursor split at {}", i);
        }
    }
}

// ---------------------------------------------------------------- LZ77 --

fn lz_input_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..2048),
        // Low-entropy, match-rich data (bitstream-like).
        proptest::collection::vec(prop_oneof![Just(0u8), 1u8..6], 0..3072),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn word_at_a_time_lz77_matches_byte_at_a_time(data in lz_input_strategy()) {
        for lz in [Lz77::hardware(), Lz77::with_geometry(6, 4), Lz77::with_geometry(12, 8)] {
            let fast = lz.tokenize(&data);
            let slow = lz.tokenize_reference(&data);
            prop_assert_eq!(&fast, &slow, "token streams diverge");
        }
    }

    #[test]
    fn lz77_round_trips_at_every_geometry(data in lz_input_strategy()) {
        for lz in [Lz77::hardware(), Lz77::with_geometry(6, 4), Lz77::with_geometry(12, 8)] {
            let packed = lz.compress(&data);
            prop_assert_eq!(lz.decompress(&packed).expect("decompress"), data.clone());
        }
    }
}

// ----------------------------------------------------- streaming decode --

fn codec_corpus_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..4096),
        // Low-entropy, match-rich data (bitstream-like).
        proptest::collection::vec(prop_oneof![Just(0u8), 1u8..6], 0..6144),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every codec's incremental decoder must emit exactly the one-shot
    /// decompression, no matter how the caller slices its budgets — the
    /// contract the decode/ICAP overlap in `transfer_compressed` rests on.
    #[test]
    fn streaming_decode_equals_one_shot_for_every_codec(
        data in codec_corpus_strategy(),
        budgets in proptest::collection::vec(1usize..4096, 1..8),
    ) {
        for alg in Algorithm::ALL {
            let codec = alg.codec();
            let packed = codec.compress(&data);
            let expect = codec.decompress(&packed).expect("one-shot decompress");
            let mut dec = codec.stream_decoder(&packed).expect("open stream");
            let mut out = Vec::new();
            let mut i = 0usize;
            while !dec.is_finished() {
                let before = out.len();
                dec.decode_into(&mut out, budgets[i % budgets.len()])
                    .expect("streamed decode");
                i += 1;
                prop_assert!(
                    out.len() > before || dec.is_finished(),
                    "{}: decoder made no progress",
                    codec.name()
                );
            }
            prop_assert_eq!(&out, &expect, "{}: streamed bytes diverge", codec.name());
            prop_assert_eq!(&expect, &data, "{}: round trip", codec.name());
        }
    }

    /// Block-parallel frames are deterministic: the same input compresses
    /// to the same bytes whether one, two or eight workers encode it, and
    /// both decode paths (one-shot and lazy streaming) restore the input.
    #[test]
    fn block_codec_is_byte_identical_across_worker_counts(
        data in codec_corpus_strategy(),
        block_shift in 9u32..13, // 512 B .. 4 KB blocks
    ) {
        let bc = BlockCodec::with_block_size(Algorithm::XMatchPro, 1 << block_shift);
        let mut frames = Vec::new();
        for threads in ["1", "2", "8"] {
            std::env::set_var("UPARC_SWEEP_THREADS", threads);
            frames.push(bc.compress(&data));
        }
        std::env::remove_var("UPARC_SWEEP_THREADS");
        prop_assert_eq!(&frames[0], &frames[1], "1 vs 2 workers");
        prop_assert_eq!(&frames[0], &frames[2], "1 vs 8 workers");
        let round = bc.decompress(&frames[0]).expect("block decompress");
        prop_assert_eq!(&round, &data, "block round trip");

        let mut dec = bc.stream_decoder(&frames[0]).expect("open block stream");
        let mut out = Vec::new();
        while !dec.is_finished() {
            dec.decode_into(&mut out, 777).expect("streamed block decode");
        }
        prop_assert_eq!(&out, &data, "streamed block bytes diverge");
    }
}

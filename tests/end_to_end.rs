//! End-to-end integration: `.bit` container → Manager preload → UReC
//! transfer → ICAP → configuration memory, across crates.

use uparc_repro::bitstream::bitfile::BitFile;
use uparc_repro::bitstream::builder::{bytes_to_words, PartialBitstream};
use uparc_repro::bitstream::parser::StreamInfo;
use uparc_repro::bitstream::synth::SynthProfile;
use uparc_repro::core::uparc::{Mode, UParc};
use uparc_repro::fpga::{Device, Icap};
use uparc_repro::sim::time::{Frequency, SimTime};

fn bitstream(device: &Device, far: u32, frames: u32, seed: u64) -> PartialBitstream {
    let payload = SynthProfile::dense().generate(device, far, frames, seed);
    PartialBitstream::build(device, far, &payload)
}

#[test]
fn bit_container_round_trips_through_the_whole_stack() {
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 500, 120, 1);

    // Wrap in a .bit container as a vendor tool would.
    let file = bs.to_bitfile("e2e_module_rp0");
    let on_disk = file.to_bytes();

    // "Read the bitstream file in the external memory, parse the preamble"
    // (§III-A1) — then push the configuration payload into an ICAP.
    let parsed = BitFile::parse(&on_disk).expect("preamble parse");
    assert_eq!(parsed.design_name, "e2e_module_rp0");
    let words = bytes_to_words(&parsed.data).expect("word alignment");
    let info = StreamInfo::scan(device.family(), &words).expect("structural scan");
    assert_eq!(info.idcode, Some(device.idcode()));
    assert_eq!(info.far, Some(500));
    assert_eq!(info.frames, 120);

    let mut icap = Icap::new(device);
    icap.write_words(&words).expect("configuration");
    assert_eq!(icap.frames_committed(), 120);
}

#[test]
fn configuration_memory_contains_exactly_the_payload() {
    let device = Device::xc5vsx50t();
    let fw = device.family().frame_words();
    let payload = SynthProfile::dense().generate(&device, 1000, 50, 2);
    let bs = PartialBitstream::build(&device, 1000, &payload);

    let mut sys = UParc::builder(device).build().expect("build");
    sys.reconfigure_bitstream(&bs, Mode::Raw)
        .expect("reconfigure");
    for (i, frame_payload) in payload.chunks(fw).enumerate() {
        let frame = sys
            .icap()
            .config_memory()
            .read_frame(1000 + i as u32)
            .expect("in range");
        assert_eq!(frame, frame_payload, "frame {i}");
    }
    // Frames outside the partition stayed blank.
    let untouched = sys
        .icap()
        .config_memory()
        .read_frame(999)
        .expect("in range");
    assert!(untouched.iter().all(|&w| w == 0));
}

#[test]
fn repeated_swaps_accumulate_in_config_memory_and_trace() {
    let device = Device::xc5vsx50t();
    let mut sys = UParc::builder(device.clone()).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(300.0))
        .expect("tune");
    let mut total_frames = 0;
    for seed in 0..5 {
        let bs = bitstream(&device, 100 * seed, 80, u64::from(seed));
        sys.reconfigure_bitstream(&bs, Mode::Raw)
            .expect("reconfigure");
        sys.advance_idle(SimTime::from_us(200));
        total_frames += 80;
    }
    assert_eq!(sys.icap().frames_committed(), total_frames);
    let trace = sys.power_trace();
    // Five reconfiguration plateaus above the manager level: each 80-frame
    // transfer is ≈3300 words / 300 MHz ≈ 11 µs.
    let plateau = trace.time_above(200.0);
    assert!(
        plateau > SimTime::from_us(50) && plateau < SimTime::from_us(60),
        "plateaus present: {plateau}"
    );
    // Energy of the full trace is finite and positive.
    assert!(trace.energy_uj() > 0.0);
}

#[test]
fn both_paper_devices_work_end_to_end() {
    for device in [Device::xc5vsx50t(), Device::xc6vlx240t()] {
        let cap = device
            .family()
            .icap_overclock_limit()
            .min(device.family().bram_overclock_limit());
        let bs = bitstream(&device, 0, 100, 3);
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(cap).expect("tune");
        let r = sys
            .reconfigure_bitstream(&bs, Mode::Raw)
            .expect("reconfigure");
        assert!(
            r.bandwidth_mb_s() > 1000.0,
            "{}: {:.0} MB/s",
            device.name(),
            r.bandwidth_mb_s()
        );
        assert_eq!(sys.icap().frames_committed(), 100);
    }
}

#[test]
fn v6_cannot_reach_the_v5_headline_clock() {
    // §IV: "362.5 MHz is not reliable" on the tested Virtex-6 samples.
    let mut sys = UParc::builder(Device::xc6vlx240t()).build().expect("build");
    assert!(sys
        .set_reconfiguration_frequency(Frequency::from_mhz(362.5))
        .is_err());
    assert!(sys
        .set_reconfiguration_frequency(Frequency::from_mhz(350.0))
        .is_ok());
}

#[test]
fn preload_overlap_does_not_change_outcome() {
    // Preloading early (prefetch) and reconfiguring later produces the
    // same configuration result and the same transfer time.
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, 40, 150, 4);

    let mut eager = UParc::builder(device.clone()).build().expect("build");
    eager.preload(&bs, Mode::Raw).expect("preload");
    eager.advance_idle(SimTime::from_ms(10)); // module keeps running
    let r_eager = eager.reconfigure().expect("reconfigure");

    let mut lazy = UParc::builder(device).build().expect("build");
    let r_lazy = lazy
        .reconfigure_bitstream(&bs, Mode::Raw)
        .expect("reconfigure");

    assert_eq!(r_eager.transfer_time, r_lazy.transfer_time);
    assert_eq!(
        eager
            .icap()
            .config_memory()
            .diff_frames(lazy.icap().config_memory()),
        0
    );
}

//! Adapter exposing UPaRC through the common [`ReconfigController`] trait,
//! so the Table III harness (and downstream users) can sweep all seven
//! controllers uniformly.
//!
//! The two Table III instances are provided as constructors:
//! [`UparcController::uparc_i`] (preloading without compression, clocked at
//! the family's ceiling — 362.5 MHz on Virtex-5) and
//! [`UparcController::uparc_ii`] (preloading with compression, clocked at
//! the 255 MHz compressed-datapath ceiling).

use crate::{ControllerError, ControllerSpec, LargeBitstream, ReconfigController, ReconfigReport};
use uparc_bitstream::builder::PartialBitstream;
use uparc_core::uparc::{Mode, UParc, COMPRESSED_MODE_MAX};
use uparc_core::UparcError;
use uparc_fpga::{Device, Icap};
use uparc_sim::time::Frequency;

/// UPaRC wrapped as a [`ReconfigController`] with a fixed operating mode.
#[derive(Debug)]
pub struct UparcController {
    system: UParc,
    mode: Mode,
    name: &'static str,
    max_frequency: Frequency,
    large: LargeBitstream,
}

impl UparcController {
    /// `UPaRC_i` — preloading without compression at the family ceiling
    /// (1.433 GB/s on Virtex-5).
    ///
    /// # Errors
    ///
    /// Propagates system construction/retune failures.
    pub fn uparc_i(device: Device) -> Result<Self, UparcError> {
        let family = device.family();
        let cap = family
            .icap_overclock_limit()
            .min(family.bram_overclock_limit());
        let mut system = UParc::builder(device).build()?;
        let f = system.set_reconfiguration_frequency(cap)?;
        Ok(UparcController {
            system,
            mode: Mode::Raw,
            name: "UPaRC_i",
            max_frequency: f,
            large: LargeBitstream::Limited,
        })
    }

    /// `UPaRC_ii` — preloading with compression at the 255 MHz compressed-
    /// datapath ceiling (decompressor-paced, ≈1.0 GB/s).
    ///
    /// # Errors
    ///
    /// Propagates system construction/retune failures.
    pub fn uparc_ii(device: Device) -> Result<Self, UparcError> {
        let mut system = UParc::builder(device).build()?;
        let f = system.set_reconfiguration_frequency(Frequency::from_mhz(COMPRESSED_MODE_MAX))?;
        Ok(UparcController {
            system,
            mode: Mode::Compressed,
            name: "UPaRC_ii",
            max_frequency: f,
            large: LargeBitstream::Extended,
        })
    }

    /// The wrapped system (e.g. for power traces).
    #[must_use]
    pub fn system(&self) -> &UParc {
        &self.system
    }
}

impl From<UparcError> for ControllerError {
    fn from(e: UparcError) -> Self {
        match e {
            UparcError::BramCapacity {
                required,
                available,
            }
            | UparcError::RawTooLarge {
                required,
                available,
            } => ControllerError::CapacityExceeded {
                required,
                available,
            },
            UparcError::Frequency { requested, max, .. } => {
                ControllerError::FrequencyTooHigh { requested, max }
            }
            UparcError::Fpga(e) => ControllerError::Fpga(e),
            other => ControllerError::Compression(other.to_string()),
        }
    }
}

impl ReconfigController for UparcController {
    fn spec(&self) -> ControllerSpec {
        ControllerSpec {
            name: self.name,
            max_frequency: self.max_frequency,
            large_bitstream: self.large,
        }
    }

    fn reconfigure(&mut self, bs: &PartialBitstream) -> Result<ReconfigReport, ControllerError> {
        let report = self.system.reconfigure_bitstream(bs, self.mode)?;
        Ok(ReconfigReport {
            controller: self.name,
            bytes: report.bytes,
            stored_bytes: report.stored_bytes,
            elapsed: report.elapsed(),
            control_overhead: report.control_overhead,
            frequency: report.frequency,
            energy_uj: report.energy_uj,
        })
    }

    fn icap(&self) -> &Icap {
        self.system.icap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::synth::SynthProfile;

    fn bitstream(device: &Device, frames: u32) -> PartialBitstream {
        let payload = SynthProfile::dense().generate(device, 0, frames, 3);
        PartialBitstream::build(device, 0, &payload)
    }

    #[test]
    fn uparc_i_tops_table3() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 1540); // ≈247 KB
        let mut ctrl = UparcController::uparc_i(device).unwrap();
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(
            (r.bandwidth_mb_s() - 1433.0).abs() < 15.0,
            "{:.0}",
            r.bandwidth_mb_s()
        );
        assert_eq!(ctrl.spec().max_frequency, Frequency::from_mhz(362.5));
    }

    #[test]
    fn uparc_ii_is_the_compressed_row() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 1300);
        let mut ctrl = UparcController::uparc_ii(device).unwrap();
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(r.stored_bytes < r.bytes / 2);
        assert!(r.bandwidth_mb_s() > 900.0, "{:.0}", r.bandwidth_mb_s());
        assert_eq!(ctrl.spec().large_bitstream, LargeBitstream::Extended);
    }

    #[test]
    fn every_table3_controller_fits_one_vec() {
        // The point of the adapter: heterogeneous sweep over the trait.
        let v5 = Device::xc5vsx50t;
        let mut all: Vec<Box<dyn ReconfigController>> = vec![
            Box::new(crate::xps_hwicap::XpsHwicap::new(v5())),
            Box::new(crate::mst_icap::MstIcap::new(v5())),
            Box::new(crate::flashcap::FlashCap::new(v5())),
            Box::new(crate::bram_hwicap::BramHwicap::new(v5())),
            Box::new(crate::farm::Farm::new(v5())),
            Box::new(UparcController::uparc_ii(v5()).unwrap()),
            Box::new(UparcController::uparc_i(v5()).unwrap()),
        ];
        let bs = bitstream(&v5(), 500); // ~82 KB fits every store
        let mut last_bw = 0.0;
        for ctrl in &mut all {
            let r = ctrl.reconfigure(&bs).unwrap();
            assert!(
                r.bandwidth_mb_s() > last_bw,
                "{} ({:.1} MB/s) must beat the previous row ({last_bw:.1})",
                r.controller,
                r.bandwidth_mb_s()
            );
            last_bw = r.bandwidth_mb_s();
        }
    }

    #[test]
    fn error_conversion_maps_capacity() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 2200); // ≈361 KB, too big raw
        let mut ctrl = UparcController::uparc_i(device).unwrap();
        assert!(matches!(
            ctrl.reconfigure(&bs),
            Err(ControllerError::CapacityExceeded { .. })
        ));
    }
}

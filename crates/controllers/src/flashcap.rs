//! FlashCAP \[11\] — streaming X-MatchPRO decompression into the ICAP.
//!
//! FlashCAP stages X-MatchPRO-compressed bitstreams (better ratio than
//! FaRM's RLE: 74.2% vs 63%, Table I) and decompresses them on the fly.
//! Its integration is limited to 120 MHz and the 32-bit decoder sustains
//! ~0.75 words per cycle, capping the reconfiguration bandwidth at
//! ≈358 MB/s (Table III) — the paper's UPaRC_ii fixes exactly these two
//! limits with a 64-bit, 2-words/cycle decompressor behind a faster ICAP.

use crate::store::BramStore;
use crate::{
    energy_uj, ControllerError, ControllerSpec, LargeBitstream, ReconfigController, ReconfigReport,
};
use uparc_bitstream::builder::{bytes_to_words, PartialBitstream};
use uparc_compress::hw::HwDecompressor;
use uparc_compress::xmatchpro::XMatchPro;
use uparc_compress::Codec;
use uparc_fpga::{Device, Icap};
use uparc_sim::power::calib;
use uparc_sim::time::Frequency;

/// FlashCAP data-path coefficient, mW/MHz (includes the decompressor).
const FLASHCAP_PATH_MW_PER_MHZ: f64 = 2.6;

/// The FlashCAP controller model (the `FlashCAP_i` instance of Table III).
#[derive(Debug, Clone)]
pub struct FlashCap {
    icap: Icap,
    store: BramStore,
    hw: HwDecompressor,
    clock: Frequency,
    setup_cycles: u64,
}

impl FlashCap {
    /// The published configuration: 120 MHz, 128 KB staging BRAM,
    /// X-MatchPRO streaming decoder.
    #[must_use]
    pub fn new(device: Device) -> Self {
        FlashCap {
            icap: Icap::new(device),
            store: BramStore::new(128 * 1024),
            hw: HwDecompressor::flashcap_xmatchpro(),
            clock: Frequency::from_mhz(120.0),
            setup_cycles: 300,
        }
    }

    /// The decompressor model in use.
    #[must_use]
    pub fn decompressor(&self) -> &HwDecompressor {
        &self.hw
    }
}

impl ReconfigController for FlashCap {
    fn spec(&self) -> ControllerSpec {
        ControllerSpec {
            name: "FlashCAP_i",
            max_frequency: Frequency::from_mhz(120.0),
            large_bitstream: LargeBitstream::Extended,
        }
    }

    fn reconfigure(&mut self, bs: &PartialBitstream) -> Result<ReconfigReport, ControllerError> {
        let raw = bs.to_bytes();
        let codec = XMatchPro::new();
        let packed = codec.compress(&raw);
        let unpacked = codec
            .decompress(&packed)
            .map_err(|e| ControllerError::Compression(e.to_string()))?;
        if unpacked != raw {
            return Err(ControllerError::Compression(
                "x-matchpro round-trip mismatch".into(),
            ));
        }
        if !self.store.fits(packed.len()) {
            return Err(ControllerError::CapacityExceeded {
                required: packed.len(),
                available: self.store.capacity_bytes(),
            });
        }
        let words = bytes_to_words(&raw).expect("builder output is word-aligned");
        self.icap.set_frequency(self.clock)?;
        self.icap.write_words(&words)?;

        // The decompressor's sustained output rate paces the transfer.
        let transfer = self.hw.decompression_time(raw.len(), self.clock);
        let setup = self.clock.time_of_cycles(self.setup_cycles);
        let elapsed = setup + transfer;
        let energy = energy_uj(&[
            (calib::MANAGER_ACTIVE_WAIT_MW, elapsed),
            (FLASHCAP_PATH_MW_PER_MHZ * self.clock.as_mhz(), transfer),
        ]);
        Ok(ReconfigReport {
            controller: "FlashCAP_i",
            bytes: raw.len(),
            stored_bytes: packed.len(),
            elapsed,
            control_overhead: setup,
            frequency: self.clock,
            energy_uj: energy,
        })
    }

    fn icap(&self) -> &Icap {
        &self.icap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::synth::SynthProfile;

    fn bitstream(device: &Device, frames: u32) -> PartialBitstream {
        let payload = SynthProfile::dense().generate(device, 0, frames, 3);
        PartialBitstream::build(device, 0, &payload)
    }

    #[test]
    fn bandwidth_lands_at_358_mb_s() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 1200); // ~197 KB raw, compressed fits
        let mut ctrl = FlashCap::new(device);
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(
            (r.bandwidth_mb_s() - 358.0).abs() < 6.0,
            "{:.1} MB/s",
            r.bandwidth_mb_s()
        );
    }

    #[test]
    fn stores_compressed_extends_capacity() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 1200);
        let mut ctrl = FlashCap::new(device);
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(r.bytes > ctrl.store.capacity_bytes(), "raw would not fit");
        assert!(r.stored_bytes < ctrl.store.capacity_bytes());
    }

    #[test]
    fn faster_than_mst_icap_slower_than_farm() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 600);
        let mut flash = FlashCap::new(device.clone());
        let mut farm = crate::farm::Farm::new(device.clone());
        let rfl = flash.reconfigure(&bs).unwrap();
        let rfa = farm.reconfigure(&bs).unwrap();
        assert!(rfl.bandwidth_mb_s() < rfa.bandwidth_mb_s());
        assert!(rfl.bandwidth_mb_s() > 235.0);
    }

    #[test]
    fn frames_land_in_config_memory() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 25);
        let mut ctrl = FlashCap::new(device);
        ctrl.reconfigure(&bs).unwrap();
        assert_eq!(ctrl.icap().frames_committed(), 25);
    }
}

//! MST_ICAP \[9\] — DMA master fetching the bitstream from DDR2 SDRAM.
//!
//! Same DMA front-end as BRAM_HWICAP, but the bitstream lives in DDR2: the
//! capacity problem disappears (hundreds of MB, `+++` in Table III) at the
//! price of memory-controller efficiency — burst gaps cap the effective
//! fetch rate at ≈235 MB/s at the 100 MHz system clock, well below the
//! BRAM design's 371 MB/s. This is the trade the UPaRC paper's compressed
//! mode dissolves (large bitstreams *and* on-chip speed).

use crate::store::Ddr2;
use crate::{
    energy_uj, ControllerError, ControllerSpec, LargeBitstream, ReconfigController, ReconfigReport,
};
use uparc_bitstream::builder::PartialBitstream;
use uparc_fpga::{Device, Icap};
use uparc_sim::power::calib;
use uparc_sim::time::Frequency;

/// DMA + DDR2 I/O dynamic coefficient, mW/MHz (off-chip I/O is expensive).
const DDR2_PATH_MW_PER_MHZ: f64 = 2.1;

/// The MST_ICAP controller model.
#[derive(Debug, Clone)]
pub struct MstIcap {
    icap: Icap,
    ddr2: Ddr2,
    clock: Frequency,
    setup_cycles: u64,
}

impl MstIcap {
    /// The published configuration: 100 MHz system clock, MIG-style DDR2
    /// controller.
    #[must_use]
    pub fn new(device: Device) -> Self {
        MstIcap {
            icap: Icap::new(device),
            ddr2: Ddr2::ml506_mig(),
            clock: Frequency::from_mhz(100.0),
            setup_cycles: 400,
        }
    }

    /// Runs the design at a different system clock.
    ///
    /// # Errors
    ///
    /// [`ControllerError::FrequencyTooHigh`] above the 120 MHz design limit.
    pub fn set_clock(&mut self, f: Frequency) -> Result<(), ControllerError> {
        let max = self.spec().max_frequency;
        if f > max {
            return Err(ControllerError::FrequencyTooHigh { requested: f, max });
        }
        self.clock = f;
        Ok(())
    }
}

impl ReconfigController for MstIcap {
    fn spec(&self) -> ControllerSpec {
        ControllerSpec {
            name: "MST_ICAP",
            max_frequency: Frequency::from_mhz(120.0),
            large_bitstream: LargeBitstream::Unlimited,
        }
    }

    fn reconfigure(&mut self, bs: &PartialBitstream) -> Result<ReconfigReport, ControllerError> {
        let words = bs.words();
        self.icap.set_frequency(self.clock)?;
        self.icap.write_words(words)?;

        // The ICAP write is pipelined behind the DDR2 fetch; the fetch is
        // strictly slower, so it sets the pace.
        let transfer = self.ddr2.fetch_time(words.len() as u64, self.clock);
        let setup = self.clock.time_of_cycles(self.setup_cycles);
        let elapsed = setup + transfer;
        let energy = energy_uj(&[
            (calib::MANAGER_ACTIVE_WAIT_MW, elapsed),
            (DDR2_PATH_MW_PER_MHZ * self.clock.as_mhz(), transfer),
        ]);
        Ok(ReconfigReport {
            controller: "MST_ICAP",
            bytes: bs.size_bytes(),
            stored_bytes: bs.size_bytes(),
            elapsed,
            control_overhead: setup,
            frequency: self.clock,
            energy_uj: energy,
        })
    }

    fn icap(&self) -> &Icap {
        &self.icap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::synth::SynthProfile;

    fn bitstream(device: &Device, frames: u32) -> PartialBitstream {
        let payload = SynthProfile::dense().generate(device, 0, frames, 3);
        PartialBitstream::build(device, 0, &payload)
    }

    #[test]
    fn bandwidth_lands_at_235_mb_s() {
        let device = Device::xc4vfx60();
        let bs = bitstream(&device, 1500); // ~246 KB — DDR2 has room
        let mut ctrl = MstIcap::new(device);
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(
            (r.bandwidth_mb_s() - 235.0).abs() < 5.0,
            "{:.1} MB/s",
            r.bandwidth_mb_s()
        );
    }

    #[test]
    fn slower_than_bram_hwicap_but_unlimited() {
        let device = Device::xc4vfx60();
        let bs = bitstream(&device, 600);
        let mut mst = MstIcap::new(device.clone());
        let mut bram = crate::bram_hwicap::BramHwicap::new(device);
        let rm = mst.reconfigure(&bs).unwrap();
        let rb = bram.reconfigure(&bs).unwrap();
        assert!(rm.bandwidth_mb_s() < rb.bandwidth_mb_s());
        assert!(mst.spec().large_bitstream > bram.spec().large_bitstream);
    }

    #[test]
    fn bandwidth_scales_with_clock_up_to_limit() {
        let device = Device::xc4vfx60();
        let bs = bitstream(&device, 600);
        let mut ctrl = MstIcap::new(device);
        let r100 = ctrl.reconfigure(&bs).unwrap();
        ctrl.set_clock(Frequency::from_mhz(120.0)).unwrap();
        let r120 = ctrl.reconfigure(&bs).unwrap();
        let ratio = r120.bandwidth_mb_s() / r100.bandwidth_mb_s();
        assert!((ratio - 1.2).abs() < 0.02, "ratio {ratio:.3}");
    }

    #[test]
    fn frames_land_in_config_memory() {
        let device = Device::xc4vfx60();
        let bs = bitstream(&device, 30);
        let mut ctrl = MstIcap::new(device);
        ctrl.reconfigure(&bs).unwrap();
        assert_eq!(ctrl.icap().frames_committed(), 30);
    }
}

//! FaRM \[10\] — Fast Reconfiguration Manager with optional RLE compression.
//!
//! FaRM preloads the bitstream (optionally RLE-compressed) into BRAM and
//! streams it through a FIFO into the ICAP at one word per cycle. It was
//! the fastest controller in the literature before UPaRC: its vendor
//! DMA/FIFO front-end closes timing at 200 MHz ⇒ 800 MB/s (Table III).
//! The paper's critique (§II): the frequency is *fixed*, the effective
//! throughput in compressed mode varies with the bitstream's regularity,
//! and RLE saves much less storage than X-MatchPRO (Table I: 63% vs 74.2%).

use crate::store::BramStore;
use crate::{
    energy_uj, ControllerError, ControllerSpec, LargeBitstream, ReconfigController, ReconfigReport,
};
use uparc_bitstream::builder::{bytes_to_words, PartialBitstream};
use uparc_compress::rle::Rle;
use uparc_compress::Codec;
use uparc_core::cache::{CacheKey, CacheStats, DecompCache};
use uparc_fpga::{Device, Icap};
use uparc_sim::fault::{FaultInjector, FaultKind};
use uparc_sim::power::calib;
use uparc_sim::time::{Frequency, SimTime};

/// FaRM data-path coefficient, mW/MHz.
const FARM_PATH_MW_PER_MHZ: f64 = 1.35;

/// The FaRM controller model.
#[derive(Debug, Clone)]
pub struct Farm {
    icap: Icap,
    store: BramStore,
    clock: Frequency,
    compression: bool,
    setup_cycles: u64,
    cache: DecompCache,
    injector: Option<FaultInjector>,
}

impl Farm {
    /// Uncompressed mode at the design's 200 MHz ceiling with 128 KB of
    /// staging BRAM.
    #[must_use]
    pub fn new(device: Device) -> Self {
        Farm {
            icap: Icap::new(device),
            store: BramStore::new(128 * 1024),
            clock: Frequency::from_mhz(200.0),
            compression: false,
            setup_cycles: 240,
            cache: DecompCache::new(0),
            injector: None,
        }
    }

    /// Enables RLE-compressed staging (capacity stretches by the achieved
    /// ratio; the inline decoder sustains one output word per cycle).
    #[must_use]
    pub fn with_compression(mut self) -> Self {
        self.compression = true;
        self
    }

    /// Whether compressed staging is enabled.
    #[must_use]
    pub fn compression(&self) -> bool {
        self.compression
    }

    /// Enables a host-side cache of decoded RLE payloads (`budget` bytes;
    /// see [`uparc_core::cache::DecompCache`]): repeated swaps of the same
    /// bitstream skip re-decoding. Simulated timing is unaffected — FaRM's
    /// inline decoder always runs at one output word per cycle.
    #[must_use]
    pub fn with_cache(mut self, budget: usize) -> Self {
        self.cache = DecompCache::new(budget);
        self
    }

    /// Hit/miss/eviction counters of the host-side decode cache.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Attaches a fault injector. FaRM has no simulated clock of its own,
    /// so *every* scheduled fault it understands (staged-stream flips,
    /// transient CRC glitches) fires on the next `reconfigure` call; faults
    /// it has no hardware for are left pending. FaRM has no recovery layer
    /// either — this is the unprotected baseline a resilience campaign
    /// compares the UPaRC policy against.
    pub fn attach_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// Detaches the injector, returning it (with its applied-fault log).
    pub fn detach_fault_injector(&mut self) -> Option<FaultInjector> {
        self.injector.take()
    }
}

impl ReconfigController for Farm {
    fn spec(&self) -> ControllerSpec {
        ControllerSpec {
            name: "FaRM",
            max_frequency: Frequency::from_mhz(200.0),
            large_bitstream: LargeBitstream::Extended,
        }
    }

    fn reconfigure(&mut self, bs: &PartialBitstream) -> Result<ReconfigReport, ControllerError> {
        let raw = bs.to_bytes();
        let stored_bytes = if self.compression {
            let rle = Rle::new();
            let packed = rle.compress(&raw);
            // The hardware decoder's output is what reaches the ICAP —
            // model it faithfully by actually decompressing. RLE is
            // deterministic and lossless, so a packed payload already
            // decoded (and verified) once can skip the re-decode.
            let key = CacheKey::of(0, &packed);
            if self.cache.get(&key).is_none() {
                let unpacked = rle
                    .decompress(&packed)
                    .map_err(|e| ControllerError::Compression(e.to_string()))?;
                if unpacked != raw {
                    return Err(ControllerError::Compression(
                        "rle round-trip mismatch".into(),
                    ));
                }
                self.cache.insert(key, std::sync::Arc::new(unpacked));
            }
            packed.len()
        } else {
            raw.len()
        };
        if !self.store.fits(stored_bytes) {
            return Err(ControllerError::CapacityExceeded {
                required: stored_bytes,
                available: self.store.capacity_bytes(),
            });
        }
        let mut words = bytes_to_words(&raw).expect("builder output is word-aligned");
        if let Some(injector) = self.injector.as_mut() {
            let flips =
                injector.take_all_due(SimTime::MAX, |k| matches!(k, FaultKind::StagedFlip { .. }));
            for kind in flips {
                if let FaultKind::StagedFlip { word, bit } = kind {
                    // Fold into the FDRI payload (indices 14..len-5), as a
                    // flip on real staged data would land.
                    let idx = 14 + word as usize % words.len().saturating_sub(19).max(1);
                    words[idx] ^= 1 << (u32::from(bit) % 32);
                }
            }
            if injector
                .take_due(SimTime::MAX, |k| matches!(k, FaultKind::CrcTransient))
                .is_some()
            {
                self.icap.arm_transient_crc();
            }
        }
        self.icap.set_frequency(self.clock)?;
        self.icap.write_words(&words)?;

        // The RLE decoder emits one word per cycle (repeats are free), so
        // transfer time is set by the *output* word count either way.
        let transfer = self.clock.time_of_cycles(words.len() as u64);
        let setup = self.clock.time_of_cycles(self.setup_cycles);
        let elapsed = setup + transfer;
        let energy = energy_uj(&[
            (calib::MANAGER_ACTIVE_WAIT_MW, elapsed),
            (FARM_PATH_MW_PER_MHZ * self.clock.as_mhz(), transfer),
        ]);
        Ok(ReconfigReport {
            controller: "FaRM",
            bytes: raw.len(),
            stored_bytes,
            elapsed,
            control_overhead: setup,
            frequency: self.clock,
            energy_uj: energy,
        })
    }

    fn icap(&self) -> &Icap {
        &self.icap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::synth::SynthProfile;

    fn bitstream(device: &Device, frames: u32) -> PartialBitstream {
        let payload = SynthProfile::dense().generate(device, 0, frames, 3);
        PartialBitstream::build(device, 0, &payload)
    }

    #[test]
    fn bandwidth_lands_at_800_mb_s() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 700); // ~115 KB
        let mut ctrl = Farm::new(device);
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(
            (r.bandwidth_mb_s() - 800.0).abs() < 10.0,
            "{:.1} MB/s",
            r.bandwidth_mb_s()
        );
    }

    #[test]
    fn compression_stretches_capacity_without_slowing_down() {
        let device = Device::xc5vsx50t();
        // ~197 KB raw: does not fit 128 KB raw, fits RLE-compressed.
        let bs = bitstream(&device, 1200);
        let mut raw = Farm::new(device.clone());
        assert!(matches!(
            raw.reconfigure(&bs),
            Err(ControllerError::CapacityExceeded { .. })
        ));
        let mut comp = Farm::new(device).with_compression();
        let r = comp.reconfigure(&bs).unwrap();
        assert!(
            r.stored_bytes < r.bytes / 2,
            "rle stored {}",
            r.stored_bytes
        );
        assert!((r.bandwidth_mb_s() - 800.0).abs() < 10.0);
    }

    #[test]
    fn farm_is_fastest_baseline() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 600);
        let mut farm = Farm::new(device.clone());
        let rf = farm.reconfigure(&bs).unwrap();
        let mut xps = crate::xps_hwicap::XpsHwicap::new(device);
        let rx = xps.reconfigure(&bs).unwrap();
        assert!(rf.bandwidth_mb_s() > 50.0 * rx.bandwidth_mb_s());
    }

    #[test]
    fn decode_cache_leaves_reports_identical_and_counts_hits() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 500);
        let mut plain = Farm::new(device.clone()).with_compression();
        let mut cached = Farm::new(device)
            .with_compression()
            .with_cache(8 * 1024 * 1024);
        for _ in 0..3 {
            let a = plain.reconfigure(&bs).unwrap();
            let b = cached.reconfigure(&bs).unwrap();
            assert_eq!(a.elapsed, b.elapsed);
            assert_eq!(a.stored_bytes, b.stored_bytes);
            assert_eq!(a.energy_uj, b.energy_uj);
        }
        assert_eq!(plain.cache_stats(), CacheStats::default());
        let stats = cached.cache_stats();
        assert_eq!(stats.misses, 1, "{stats:?}");
        assert_eq!(stats.hits, 2, "{stats:?}");
    }

    #[test]
    fn injected_staged_flip_fails_without_recovery() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 40);
        let mut ctrl = Farm::new(device);
        let mut inj = FaultInjector::empty();
        inj.schedule(SimTime::ZERO, FaultKind::StagedFlip { word: 17, bit: 5 });
        ctrl.attach_fault_injector(inj);
        // The baseline has no healing: the corrupted stream errors out and
        // a bare retry (fault consumed) succeeds.
        assert!(matches!(
            ctrl.reconfigure(&bs),
            Err(ControllerError::Fpga(_))
        ));
        let log = ctrl.detach_fault_injector().unwrap();
        assert_eq!(log.log().len(), 1);
        assert!(!log.log()[0].recovered);
    }

    #[test]
    fn frames_land_in_config_memory() {
        let device = Device::xc5vsx50t();
        let bs = bitstream(&device, 40);
        let mut ctrl = Farm::new(device).with_compression();
        ctrl.reconfigure(&bs).unwrap();
        assert_eq!(ctrl.icap().frames_committed(), 40);
    }
}

//! BRAM_HWICAP \[9\] — vendor-DMA burst transfer from on-chip BRAM.
//!
//! The fastest of the \[9\] designs: the bitstream is preloaded into BRAM and
//! a Xilinx DMA engine bursts it into the ICAP at the system clock. Two
//! structural limits, both from reusing the vendor DMA (paper §III-B):
//! the design closes timing only up to ~120 MHz, and bursts pay a
//! per-burst bus cycle plus a fixed setup, capping the measured bandwidth
//! at ≈371 MB/s (93% of the 100 MHz theoretical 400 MB/s). Storage is
//! limited to on-chip BRAM with no compression (`-` in Table III).

use crate::store::BramStore;
use crate::{
    energy_uj, ControllerError, ControllerSpec, LargeBitstream, ReconfigController, ReconfigReport,
};
use uparc_bitstream::builder::PartialBitstream;
use uparc_fpga::{Device, Icap};
use uparc_sim::power::calib;
use uparc_sim::time::Frequency;

/// Dynamic-power coefficient of the vendor DMA + bus path, mW/MHz (larger
/// than UReC's 1.09 — the engine is "very large", §III-B).
const DMA_PATH_MW_PER_MHZ: f64 = 1.55;

/// The BRAM_HWICAP controller model.
#[derive(Debug, Clone)]
pub struct BramHwicap {
    icap: Icap,
    store: BramStore,
    clock: Frequency,
    /// Bus words per DMA burst.
    burst_words: u64,
    /// Bus cycles consumed per burst (burst_words + arbitration).
    burst_cycles: u64,
    /// Fixed DMA descriptor setup cycles per transfer.
    setup_cycles: u64,
}

impl BramHwicap {
    /// The published configuration on its Virtex-4 platform: 100 MHz system
    /// clock, 128 KB of staging BRAM, 16-word bursts.
    #[must_use]
    pub fn new(device: Device) -> Self {
        BramHwicap {
            icap: Icap::new(device),
            store: BramStore::new(128 * 1024),
            clock: Frequency::from_mhz(100.0),
            burst_words: 16,
            burst_cycles: 17,
            setup_cycles: 400,
        }
    }

    /// Runs the design at a different system clock.
    ///
    /// # Errors
    ///
    /// [`ControllerError::FrequencyTooHigh`] above the 120 MHz design limit.
    pub fn set_clock(&mut self, f: Frequency) -> Result<(), ControllerError> {
        let max = self.spec().max_frequency;
        if f > max {
            return Err(ControllerError::FrequencyTooHigh { requested: f, max });
        }
        self.clock = f;
        Ok(())
    }
}

impl ReconfigController for BramHwicap {
    fn spec(&self) -> ControllerSpec {
        ControllerSpec {
            name: "BRAM_HWICAP",
            max_frequency: Frequency::from_mhz(120.0),
            large_bitstream: LargeBitstream::Limited,
        }
    }

    fn reconfigure(&mut self, bs: &PartialBitstream) -> Result<ReconfigReport, ControllerError> {
        if !self.store.fits(bs.size_bytes()) {
            return Err(ControllerError::CapacityExceeded {
                required: bs.size_bytes(),
                available: self.store.capacity_bytes(),
            });
        }
        let words = bs.words();
        self.icap.set_frequency(self.clock)?;
        self.icap.write_words(words)?;

        let n = words.len() as u64;
        let bursts = n.div_ceil(self.burst_words);
        let transfer_cycles = bursts * self.burst_cycles;
        let transfer = self.clock.time_of_cycles(transfer_cycles);
        let setup = self.clock.time_of_cycles(self.setup_cycles);
        let elapsed = setup + transfer;
        let energy = energy_uj(&[
            (calib::MANAGER_ACTIVE_WAIT_MW, elapsed),
            (DMA_PATH_MW_PER_MHZ * self.clock.as_mhz(), transfer),
        ]);
        Ok(ReconfigReport {
            controller: "BRAM_HWICAP",
            bytes: bs.size_bytes(),
            stored_bytes: bs.size_bytes(),
            elapsed,
            control_overhead: setup,
            frequency: self.clock,
            energy_uj: energy,
        })
    }

    fn icap(&self) -> &Icap {
        &self.icap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::synth::SynthProfile;
    use uparc_sim::time::SimTime;

    fn bitstream(device: &Device, frames: u32) -> PartialBitstream {
        let payload = SynthProfile::dense().generate(device, 0, frames, 3);
        PartialBitstream::build(device, 0, &payload)
    }

    #[test]
    fn bandwidth_lands_at_371_mb_s() {
        // Its native Virtex-4 platform, ~100 KB bitstream.
        let device = Device::xc4vfx60();
        let bs = bitstream(&device, 600);
        let mut ctrl = BramHwicap::new(device);
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(
            (r.bandwidth_mb_s() - 371.0).abs() < 6.0,
            "{:.1} MB/s",
            r.bandwidth_mb_s()
        );
    }

    #[test]
    fn oversized_bitstream_rejected() {
        let device = Device::xc4vfx60();
        let bs = bitstream(&device, 900); // ~148 KB > 128 KB store
        let mut ctrl = BramHwicap::new(device);
        assert!(matches!(
            ctrl.reconfigure(&bs),
            Err(ControllerError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn clock_limit_enforced() {
        let mut ctrl = BramHwicap::new(Device::xc4vfx60());
        assert!(ctrl.set_clock(Frequency::from_mhz(120.0)).is_ok());
        assert!(matches!(
            ctrl.set_clock(Frequency::from_mhz(200.0)),
            Err(ControllerError::FrequencyTooHigh { .. })
        ));
    }

    #[test]
    fn setup_shrinks_relative_share_with_size() {
        let device = Device::xc4vfx60();
        let mut ctrl = BramHwicap::new(device.clone());
        let small = ctrl.reconfigure(&bitstream(&device, 20)).unwrap();
        let large = ctrl.reconfigure(&bitstream(&device, 700)).unwrap();
        let share = |r: &ReconfigReport| r.control_overhead.as_secs_f64() / r.elapsed.as_secs_f64();
        assert!(share(&small) > share(&large));
        assert_eq!(small.control_overhead, SimTime::from_us(4));
    }

    #[test]
    fn frames_land_in_config_memory() {
        let device = Device::xc4vfx60();
        let bs = bitstream(&device, 50);
        let mut ctrl = BramHwicap::new(device);
        ctrl.reconfigure(&bs).unwrap();
        assert_eq!(ctrl.icap().frames_committed(), 50);
    }
}

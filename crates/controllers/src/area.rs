//! Area estimates for the baseline controllers.
//!
//! §V's energy argument rests on area: "Net capacitance is a parameter of
//! the dynamic power consumption … Thanks to the lightweight of our
//! reconfiguration controller, the power and energy consumptions are very
//! low compared to state-of-the-art controllers." This module carries the
//! primitive inventories behind each controller's dynamic-power
//! coefficient, so the mW/MHz numbers used by the models are traceable to
//! a size, not pulled from thin air.
//!
//! Inventories are engineering estimates from each design's structure
//! (vendor DMA engines are hundreds of slices; a MicroBlaze-based
//! controller carries the processor; UReC is 26 slices — Table II).

use uparc_fpga::family::Family;
use uparc_fpga::resources::{AreaEstimator, PrimitiveInventory};

/// Inventory of the xps_hwicap peripheral plus its MicroBlaze driver core.
pub const XPS_HWICAP: PrimitiveInventory = PrimitiveInventory::logic(2200, 1900);
/// Inventory of the BRAM_HWICAP vendor-DMA design.
pub const BRAM_HWICAP: PrimitiveInventory = PrimitiveInventory::logic(950, 1100);
/// Inventory of MST_ICAP (vendor DMA + DDR2 memory controller port).
pub const MST_ICAP: PrimitiveInventory = PrimitiveInventory::logic(1500, 1750);
/// Inventory of FaRM (DMA + FIFOs + RLE decoder).
pub const FARM: PrimitiveInventory = PrimitiveInventory::logic(820, 980);
/// Inventory of FlashCAP (control + X-MatchPRO decompressor).
pub const FLASHCAP: PrimitiveInventory = PrimitiveInventory::logic(3100, 3600);
/// Inventory of UPaRC's data path (UReC + DyCloGen, decompressor excluded —
/// Table II).
pub const UPARC_PATH: PrimitiveInventory = PrimitiveInventory::logic(138, 140);

/// Slice estimate of a controller inventory on `family`.
#[must_use]
pub fn slices(inventory: &PrimitiveInventory, family: Family) -> u32 {
    AreaEstimator::new(family).slices(inventory)
}

/// `(name, inventory)` rows for all baselines plus UPaRC's path.
#[must_use]
pub fn all() -> Vec<(&'static str, PrimitiveInventory)> {
    vec![
        ("xps_hwicap", XPS_HWICAP),
        ("BRAM_HWICAP", BRAM_HWICAP),
        ("MST_ICAP", MST_ICAP),
        ("FaRM", FARM),
        ("FlashCAP_i", FLASHCAP),
        ("UPaRC (UReC+DyCloGen)", UPARC_PATH),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uparc_path_matches_table2() {
        // UReC (82/64) + DyCloGen (56/76) summed as one inventory; packing
        // them together beats the 26 + 24 = 50 of the separate Table II
        // rows because the combined LUT/FF mix fills slices better.
        assert_eq!(slices(&UPARC_PATH, Family::Virtex5), 44);
    }

    #[test]
    fn uparc_is_several_times_smaller_than_every_baseline() {
        let uparc = slices(&UPARC_PATH, Family::Virtex5);
        for (name, inv) in all() {
            if name.starts_with("UPaRC") {
                continue;
            }
            let s = slices(&inv, Family::Virtex5);
            assert!(s > 6 * uparc, "{name}: {s} vs {uparc}");
        }
    }

    #[test]
    fn area_ordering_tracks_the_power_coefficients() {
        // The models' mW/MHz coefficients must be ordered like the areas
        // (capacitance ∝ area, §V): UPaRC 1.09 < FaRM 1.35 < BRAM_HWICAP
        // 1.55 < MST_ICAP 2.1 < FlashCAP 2.6.
        let v5 = Family::Virtex5;
        let order = ["FaRM", "BRAM_HWICAP", "MST_ICAP", "FlashCAP_i"];
        let rows = all();
        let slice_of = |n: &str| {
            rows.iter()
                .find(|(name, _)| *name == n)
                .map(|(_, inv)| slices(inv, v5))
                .expect("row exists")
        };
        let mut last = slices(&UPARC_PATH, v5);
        for name in order {
            let s = slice_of(name);
            assert!(s > last, "{name} ({s}) must exceed the previous ({last})");
            last = s;
        }
    }
}

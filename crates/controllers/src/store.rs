//! Bitstream staging-memory models.
//!
//! Every controller's effective bandwidth is set by where the bitstream
//! lives before it reaches the ICAP. The paper's related-work section maps
//! out the options: external non-volatile CompactFlash (huge but slow),
//! DDR2 SDRAM (large, medium speed), on-chip BRAM (small, fast), and the
//! processor cache (the configuration used for xps_hwicap's 14.5 MB/s
//! figure in \[9\]).

use uparc_sim::time::{Frequency, SimTime};

/// CompactFlash card behind the SystemACE/filesystem stack.
///
/// The paper measures ~180 KB/s end-to-end for xps_hwicap reading from CF
/// (§IV); the card+driver read bandwidth is the bottleneck.
#[derive(Debug, Clone, Copy)]
pub struct CompactFlash {
    /// Sustained read bandwidth, bytes/second.
    read_bw: f64,
}

impl CompactFlash {
    /// The ML506-era card + SystemACE driver stack.
    #[must_use]
    pub fn ml506() -> Self {
        CompactFlash {
            read_bw: 180.0 * 1024.0,
        }
    }

    /// Sustained read bandwidth in bytes/second.
    #[must_use]
    pub fn read_bandwidth(&self) -> f64 {
        self.read_bw
    }

    /// Time to fetch `bytes` from the card.
    #[must_use]
    pub fn fetch_time(&self, bytes: usize) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.read_bw)
    }
}

/// DDR2 SDRAM behind a memory controller, fetched in bursts.
///
/// MST_ICAP \[9\] reads the bitstream from DDR2; row-activation and
/// controller overhead between bursts cap the efficiency well below the
/// bus peak — the paper's Table III shows 235 MB/s at a 100 MHz ICAP clock
/// (59% of the 400 MB/s peak).
#[derive(Debug, Clone, Copy)]
pub struct Ddr2 {
    /// Words fetched per burst.
    burst_words: u32,
    /// Dead cycles between bursts (activation, turnaround, arbitration) in
    /// tenths of a cycle (to model fractional averages exactly).
    overhead_decicycles: u32,
}

impl Ddr2 {
    /// The \[9\] configuration: 8-word bursts, 5.6 cycles of overhead per
    /// burst ⇒ ≈235 MB/s at 100 MHz.
    #[must_use]
    pub fn ml506_mig() -> Self {
        Ddr2 {
            burst_words: 8,
            overhead_decicycles: 56,
        }
    }

    /// Cycles (in tenths) to fetch `words` at the bus clock.
    #[must_use]
    pub fn fetch_decicycles(&self, words: u64) -> u64 {
        let bursts = words.div_ceil(u64::from(self.burst_words));
        words * 10 + bursts * u64::from(self.overhead_decicycles)
    }

    /// Time to fetch `words` at bus clock `f`.
    #[must_use]
    pub fn fetch_time(&self, words: u64, f: Frequency) -> SimTime {
        let deci = self.fetch_decicycles(words);
        // time = deci/10 cycles; compute exactly via cycles*10 trick.
        SimTime::from_fs((f.time_of_cycles(deci).as_fs()) / 10)
    }

    /// Effective read bandwidth at bus clock `f`, bytes/second.
    #[must_use]
    pub fn effective_bandwidth(&self, f: Frequency) -> f64 {
        let words = 1_000_000u64;
        let t = self.fetch_time(words, f);
        words as f64 * 4.0 / t.as_secs_f64()
    }
}

/// On-chip BRAM staging store: one word per cycle at the port clock, with
/// a hard capacity limit.
#[derive(Debug, Clone, Copy)]
pub struct BramStore {
    capacity_bytes: usize,
}

impl BramStore {
    /// A store of the given capacity.
    #[must_use]
    pub fn new(capacity_bytes: usize) -> Self {
        BramStore { capacity_bytes }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Whether a payload fits.
    #[must_use]
    pub fn fits(&self, bytes: usize) -> bool {
        bytes <= self.capacity_bytes
    }

    /// Time to stream `words` out at port clock `f` (1 word/cycle).
    #[must_use]
    pub fn stream_time(&self, words: u64, f: Frequency) -> SimTime {
        f.time_of_cycles(words)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_flash_is_the_slow_path() {
        let cf = CompactFlash::ml506();
        // 216.5 KB at ~180 KB/s ≈ 1.2 s.
        let t = cf.fetch_time(216_500);
        assert!(
            t > SimTime::from_ms(1100) && t < SimTime::from_ms(1300),
            "{t}"
        );
    }

    #[test]
    fn ddr2_lands_at_235_mb_s_at_100mhz() {
        let ddr = Ddr2::ml506_mig();
        let bw = ddr.effective_bandwidth(Frequency::from_mhz(100.0)) / 1e6;
        assert!((bw - 235.0).abs() < 3.0, "effective {bw:.1} MB/s");
    }

    #[test]
    fn ddr2_scales_with_bus_clock() {
        let ddr = Ddr2::ml506_mig();
        let b100 = ddr.effective_bandwidth(Frequency::from_mhz(100.0));
        let b120 = ddr.effective_bandwidth(Frequency::from_mhz(120.0));
        assert!((b120 / b100 - 1.2).abs() < 0.01);
    }

    #[test]
    fn bram_store_capacity_and_rate() {
        let store = BramStore::new(256 * 1024);
        assert!(store.fits(247 * 1024));
        assert!(!store.fits(300 * 1024));
        // 64k words at 100 MHz = 655.36 µs.
        let t = store.stream_time(65_536, Frequency::from_mhz(100.0));
        assert_eq!(t, SimTime::from_ns(655_360));
    }
}

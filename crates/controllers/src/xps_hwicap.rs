//! xps_hwicap \[6\] — the vendor's processor-driven reconfiguration
//! controller.
//!
//! A MicroBlaze copies the bitstream word by word from its bitstream source
//! into the HWICAP write FIFO over the peripheral bus, polling status along
//! the way. Per-word driver cycles are the bottleneck:
//!
//! * **unoptimized driver** (~267 cycles/word at 100 MHz): ≈1.5 MB/s — the
//!   configuration the paper measures for its §V energy comparison
//!   (30 µJ/KB);
//! * **cache-resident, optimized driver** (~28 cycles/word): ≈14.5 MB/s —
//!   the best published figure \[9\], used in Table III;
//! * **CompactFlash source**: the card+driver read path (~180 KB/s)
//!   dominates everything — but capacity is effectively unlimited (`+++`).

use crate::store::CompactFlash;
use crate::{
    energy_uj, ControllerError, ControllerSpec, LargeBitstream, ReconfigController, ReconfigReport,
};
use uparc_bitstream::builder::PartialBitstream;
use uparc_fpga::{Device, Icap};
use uparc_sim::power::calib;
use uparc_sim::time::{Frequency, SimTime};

/// Where xps_hwicap reads the bitstream from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Bitstream resident in processor-cached memory.
    CachedMemory,
    /// Bitstream on a CompactFlash card (SystemACE path).
    CompactFlash,
}

/// The xps_hwicap controller model.
#[derive(Debug, Clone)]
pub struct XpsHwicap {
    icap: Icap,
    source: Source,
    /// MicroBlaze driver cost per 32-bit word.
    cycles_per_word: u64,
    /// Processor clock.
    mgr_clock: Frequency,
    cf: CompactFlash,
}

impl XpsHwicap {
    /// Cache-resident source with the optimized driver (Table III row:
    /// 14.5 MB/s).
    #[must_use]
    pub fn new(device: Device) -> Self {
        XpsHwicap {
            icap: Icap::new(device),
            source: Source::CachedMemory,
            cycles_per_word: 28,
            mgr_clock: Frequency::from_mhz(100.0),
            cf: CompactFlash::ml506(),
        }
    }

    /// The unoptimized driver of the paper's §V measurement (≈1.5 MB/s,
    /// ≈30 µJ/KB).
    #[must_use]
    pub fn unoptimized(device: Device) -> Self {
        XpsHwicap {
            cycles_per_word: 267,
            ..XpsHwicap::new(device)
        }
    }

    /// CompactFlash-resident bitstreams (≈180 KB/s, unlimited capacity).
    #[must_use]
    pub fn with_compact_flash(device: Device) -> Self {
        XpsHwicap {
            source: Source::CompactFlash,
            ..XpsHwicap::new(device)
        }
    }

    /// The driver cost per word currently modeled.
    #[must_use]
    pub fn cycles_per_word(&self) -> u64 {
        self.cycles_per_word
    }

    /// The configured bitstream source.
    #[must_use]
    pub fn source(&self) -> Source {
        self.source
    }
}

impl ReconfigController for XpsHwicap {
    fn spec(&self) -> ControllerSpec {
        ControllerSpec {
            name: "xps_hwicap",
            max_frequency: Frequency::from_mhz(120.0),
            large_bitstream: LargeBitstream::Unlimited,
        }
    }

    fn reconfigure(&mut self, bs: &PartialBitstream) -> Result<ReconfigReport, ControllerError> {
        let words = bs.words();
        self.icap.set_frequency(self.mgr_clock)?;
        self.icap.write_words(words)?;

        let copy_time = self
            .mgr_clock
            .time_of_cycles(words.len() as u64 * self.cycles_per_word);
        let fetch_time = match self.source {
            Source::CachedMemory => SimTime::ZERO,
            // File read and FIFO copy are serialised in the driver.
            Source::CompactFlash => self.cf.fetch_time(bs.size_bytes()),
        };
        let elapsed = fetch_time + copy_time;
        // The MicroBlaze runs the copy loop for the whole duration; the
        // ICAP itself is active only one cycle in `cycles_per_word`.
        let icap_duty = 1.0 / self.cycles_per_word as f64;
        let energy = energy_uj(&[
            (calib::MANAGER_COPY_MW, elapsed),
            (
                calib::RECONFIG_PATH_MW_PER_MHZ * self.mgr_clock.as_mhz() * icap_duty,
                copy_time,
            ),
        ]);
        Ok(ReconfigReport {
            controller: "xps_hwicap",
            bytes: bs.size_bytes(),
            stored_bytes: bs.size_bytes(),
            elapsed,
            control_overhead: fetch_time,
            frequency: self.mgr_clock,
            energy_uj: energy,
        })
    }

    fn icap(&self) -> &Icap {
        &self.icap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::synth::SynthProfile;

    fn bitstream(frames: u32) -> (Device, PartialBitstream) {
        let device = Device::xc5vsx50t();
        let payload = SynthProfile::dense().generate(&device, 0, frames, 3);
        let bs = PartialBitstream::build(&device, 0, &payload);
        (device, bs)
    }

    #[test]
    fn optimized_driver_hits_14_5_mb_s() {
        let (device, bs) = bitstream(600);
        let mut ctrl = XpsHwicap::new(device);
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(
            (r.bandwidth_mb_s() - 14.5).abs() < 0.5,
            "{:.2} MB/s",
            r.bandwidth_mb_s()
        );
        assert_eq!(ctrl.icap().frames_committed(), 600);
    }

    #[test]
    fn unoptimized_driver_hits_1_5_mb_s_and_30_uj_per_kb() {
        let (device, bs) = bitstream(600);
        let mut ctrl = XpsHwicap::unoptimized(device);
        let r = ctrl.reconfigure(&bs).unwrap();
        assert!(
            (r.bandwidth_mb_s() - 1.5).abs() < 0.05,
            "{:.2} MB/s",
            r.bandwidth_mb_s()
        );
        // §V: "30 µJ/KB of bitstream".
        assert!(
            (r.uj_per_kb() - 30.0).abs() < 2.0,
            "{:.2} µJ/KB",
            r.uj_per_kb()
        );
    }

    #[test]
    fn compact_flash_source_crawls_at_180_kb_s() {
        let (device, bs) = bitstream(600);
        let mut ctrl = XpsHwicap::with_compact_flash(device);
        let r = ctrl.reconfigure(&bs).unwrap();
        let kb_s = r.bandwidth_mb_s() * 1000.0;
        assert!(kb_s > 150.0 && kb_s < 190.0, "{kb_s:.0} KB/s");
    }

    #[test]
    fn configuration_memory_is_actually_written() {
        let (device, bs) = bitstream(5);
        let expected = bs.words().to_vec();
        let mut ctrl = XpsHwicap::new(device);
        ctrl.reconfigure(&bs).unwrap();
        // The first written frame appears in configuration memory.
        let fw = ctrl.icap().config_memory().frame_words();
        let frame = ctrl.icap().config_memory().read_frame(0).unwrap();
        // The builder's preamble is 14 words (dummy, sync, noop, RCRC,
        // noop, IDCODE, WCFG, FAR, FDRI type-1 + type-2); payload follows.
        let payload_start = 14;
        assert_eq!(frame, &expected[payload_start..payload_start + fw]);
    }

    #[test]
    fn spec_matches_table3_row() {
        let ctrl = XpsHwicap::new(Device::xc5vsx50t());
        let spec = ctrl.spec();
        assert_eq!(spec.name, "xps_hwicap");
        assert_eq!(spec.large_bitstream, LargeBitstream::Unlimited);
        assert_eq!(spec.max_frequency, Frequency::from_mhz(120.0));
    }
}

//! # uparc-controllers — the baseline reconfiguration controllers
//!
//! Table III of the paper compares UPaRC against five controllers from the
//! literature. This crate reimplements all five as behavioural models, each
//! with its published bottleneck:
//!
//! | Controller | Bottleneck | Paper BW | Max freq |
//! |---|---|---|---|
//! | [`xps_hwicap::XpsHwicap`] | processor-driven word copy (per-word driver cycles) | 14.5 MB/s (cache) / ~180 KB/s (CompactFlash) | 120 MHz |
//! | [`mst_icap::MstIcap`] | DDR2 fetch efficiency | 235 MB/s | 120 MHz |
//! | [`flashcap::FlashCap`] | streaming X-MatchPRO decompressor | 358 MB/s | 120 MHz |
//! | [`bram_hwicap::BramHwicap`] | vendor DMA burst overhead | 371 MB/s | 120 MHz |
//! | [`farm::Farm`] | vendor DMA 200 MHz ceiling | 800 MB/s | 200 MHz |
//!
//! Every controller implements [`ReconfigController`]: it pushes a real
//! configuration word stream through a real [`uparc_fpga::Icap`] (so the
//! configuration memory is genuinely written and CRC-checked) while a cycle
//! model accounts the elapsed time and a calibrated power model accounts
//! the energy.
//!
//! # Example
//!
//! ```
//! use uparc_controllers::{farm::Farm, ReconfigController};
//! use uparc_bitstream::{builder::PartialBitstream, synth::SynthProfile};
//! use uparc_fpga::Device;
//!
//! let device = Device::xc5vsx50t();
//! let payload = SynthProfile::dense().generate(&device, 0, 100, 1);
//! let bs = PartialBitstream::build(&device, 0, &payload);
//! let mut farm = Farm::new(device);
//! let report = farm.reconfigure(&bs)?;
//! // FaRM saturates at ~800 MB/s.
//! assert!(report.bandwidth_mb_s() > 700.0);
//! # Ok::<(), uparc_controllers::ControllerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod area;
pub mod bram_hwicap;
pub mod farm;
pub mod flashcap;
pub mod mst_icap;
pub mod store;
pub mod xps_hwicap;

use std::fmt;
use uparc_bitstream::builder::PartialBitstream;
use uparc_fpga::{FpgaError, Icap};
use uparc_sim::time::{Frequency, SimTime};

/// Large-bitstream handling capability, in the paper's `+++`/`++`/`-`
/// notation (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LargeBitstream {
    /// `-` — limited to what fits raw in on-chip BRAM.
    Limited,
    /// `++` — extended by compression (or sizeable off-chip RAM).
    Extended,
    /// `+++` — effectively unlimited (external non-volatile storage).
    Unlimited,
}

impl fmt::Display for LargeBitstream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LargeBitstream::Limited => "-",
            LargeBitstream::Extended => "++",
            LargeBitstream::Unlimited => "+++",
        };
        f.write_str(s)
    }
}

/// Static characteristics of a controller (the non-measured Table III
/// columns).
#[derive(Debug, Clone)]
pub struct ControllerSpec {
    /// Controller name as in Table III.
    pub name: &'static str,
    /// Maximum operating frequency of the controller design.
    pub max_frequency: Frequency,
    /// Large-bitstream capability class.
    pub large_bitstream: LargeBitstream,
}

/// Outcome of one reconfiguration run.
#[derive(Debug, Clone)]
pub struct ReconfigReport {
    /// Controller name.
    pub controller: &'static str,
    /// Size of the (uncompressed) configuration stream delivered to ICAP.
    pub bytes: usize,
    /// Bytes occupied in the controller's staging memory (differs from
    /// `bytes` when compression is used).
    pub stored_bytes: usize,
    /// Total elapsed time from "Start" to "Finish".
    pub elapsed: SimTime,
    /// Control/setup share of `elapsed` (manager overhead).
    pub control_overhead: SimTime,
    /// Clock the transfer ran at.
    pub frequency: Frequency,
    /// Total energy above idle spent on the reconfiguration, µJ.
    pub energy_uj: f64,
}

impl ReconfigReport {
    /// Effective reconfiguration bandwidth in MB/s (paper convention:
    /// decimal megabytes of *configuration data* per second).
    #[must_use]
    pub fn bandwidth_mb_s(&self) -> f64 {
        self.bytes as f64 / self.elapsed.as_secs_f64() / 1e6
    }

    /// Energy efficiency in µJ per KiB of configuration data (the §V unit).
    #[must_use]
    pub fn uj_per_kb(&self) -> f64 {
        self.energy_uj / (self.bytes as f64 / 1024.0)
    }
}

/// Errors from the controller models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControllerError {
    /// The bitstream does not fit the controller's staging memory.
    CapacityExceeded {
        /// Required bytes.
        required: usize,
        /// Available bytes.
        available: usize,
    },
    /// A requested clock exceeds the controller's design limit.
    FrequencyTooHigh {
        /// Requested frequency.
        requested: Frequency,
        /// The controller's limit.
        max: Frequency,
    },
    /// The configuration port rejected the stream.
    Fpga(FpgaError),
    /// Compression round-trip failed (should never happen — indicates a
    /// corrupt staging memory).
    Compression(String),
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::CapacityExceeded {
                required,
                available,
            } => {
                write!(
                    f,
                    "bitstream of {required} bytes exceeds {available}-byte storage"
                )
            }
            ControllerError::FrequencyTooHigh { requested, max } => {
                write!(f, "requested {requested} exceeds controller limit {max}")
            }
            ControllerError::Fpga(e) => write!(f, "configuration port error: {e}"),
            ControllerError::Compression(s) => write!(f, "compression error: {s}"),
        }
    }
}

impl std::error::Error for ControllerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ControllerError::Fpga(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FpgaError> for ControllerError {
    fn from(e: FpgaError) -> Self {
        ControllerError::Fpga(e)
    }
}

/// A reconfiguration controller: stages a partial bitstream and drives it
/// into the ICAP, reporting time/bandwidth/energy.
pub trait ReconfigController {
    /// Static characteristics (Table III columns).
    fn spec(&self) -> ControllerSpec;

    /// Performs a full reconfiguration with the controller's default
    /// operating point.
    ///
    /// # Errors
    ///
    /// [`ControllerError`] on capacity/frequency/protocol failures.
    fn reconfigure(&mut self, bs: &PartialBitstream) -> Result<ReconfigReport, ControllerError>;

    /// The ICAP (and behind it the configuration memory) this controller
    /// drives — lets tests verify the reconfiguration actually landed.
    fn icap(&self) -> &Icap;
}

/// Integrates a set of `(power-mW, duration)` phases into µJ.
///
/// Controllers report energy *above idle*, matching how the paper extracts
/// reconfiguration energy from the oscilloscope traces.
#[must_use]
pub fn energy_uj(phases: &[(f64, SimTime)]) -> f64 {
    phases
        .iter()
        .map(|&(mw, t)| mw * t.as_secs_f64() * 1e3)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_bitstream_ordering_and_symbols() {
        assert!(LargeBitstream::Limited < LargeBitstream::Extended);
        assert!(LargeBitstream::Extended < LargeBitstream::Unlimited);
        assert_eq!(LargeBitstream::Limited.to_string(), "-");
        assert_eq!(LargeBitstream::Extended.to_string(), "++");
        assert_eq!(LargeBitstream::Unlimited.to_string(), "+++");
    }

    #[test]
    fn report_derives_bandwidth_and_efficiency() {
        let r = ReconfigReport {
            controller: "test",
            bytes: 216_500,
            stored_bytes: 216_500,
            elapsed: SimTime::from_us(550),
            control_overhead: SimTime::from_us(1),
            frequency: Frequency::from_mhz(100.0),
            energy_uj: 143.0,
        };
        assert!((r.bandwidth_mb_s() - 216_500.0 / 550e-6 / 1e6).abs() < 1e-9);
        assert!((r.uj_per_kb() - 143.0 / (216_500.0 / 1024.0)).abs() < 1e-9);
    }

    #[test]
    fn controller_error_display() {
        let e = ControllerError::CapacityExceeded {
            required: 10,
            available: 5,
        };
        assert!(e.to_string().contains("10"));
        let e: ControllerError = FpgaError::NotSynced.into();
        assert!(e.to_string().contains("sync"));
    }
}

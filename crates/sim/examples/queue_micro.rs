//! Micro-benchmark for the calendar queue, mirroring the `event_queue`
//! workload in `bench_throughput` (schedule 200k pseudo-random events,
//! drain them all) plus an interleaved schedule/pop variant. Useful for
//! tuning the bucket-geometry constants without running the full bench.
//!
//! Run with `cargo run --release -p uparc-sim --example queue_micro`.

use std::time::Instant;
use uparc_sim::queue::EventQueue;
use uparc_sim::time::SimTime;

fn main() {
    let events = 200_000u64;
    let reps = 7;

    let mut bulk = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut q = EventQueue::new();
        for i in 0..events {
            let at = SimTime::from_ns((i * 7919) % (events * 3));
            q.schedule(at, i);
        }
        let mut popped = 0u64;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, events);
        bulk = bulk.min(t.elapsed().as_secs_f64());
    }
    println!(
        "bulk schedule+drain: {:.1} Mops/s ({:.2} ms/pass)",
        2.0 * events as f64 / bulk / 1e6,
        bulk * 1e3
    );

    // Interleaved: keep ~1k events pending while streaming through.
    let mut inter = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let mut q = EventQueue::new();
        for i in 0..1_000u64 {
            q.schedule(SimTime::from_ns(i * 31), i);
        }
        for i in 0..events {
            let (at, _) = q.pop().expect("pending");
            q.schedule(at + SimTime::from_ns(1 + (i * 7919) % 30_000), i);
        }
        inter = inter.min(t.elapsed().as_secs_f64());
    }
    println!(
        "interleaved steady-state: {:.1} Mops/s ({:.2} ms/pass)",
        2.0 * events as f64 / inter / 1e6,
        inter * 1e3
    );
}

//! A deterministic discrete-event queue.
//!
//! Generic over the event payload so each system model (UPaRC, the baseline
//! controllers, the schedulers in the examples) can define its own event
//! vocabulary. Events at equal times pop in insertion order (FIFO), which
//! keeps simulations reproducible.

use crate::time::SimTime;
use std::collections::BinaryHeap;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use uparc_sim::queue::EventQueue;
/// use uparc_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(20), "finish");
/// q.schedule(SimTime::from_ns(10), "start");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "start")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "finish")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The time of the most recently popped event (time zero initially).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the simulation past (before [`EventQueue::now`]).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at}: simulation time is already {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time: at, seq, event });
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pops the earliest event, advancing [`EventQueue::now`] to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            (e.time, e.event)
        })
    }

    /// Peeks at the time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.schedule_in(SimTime::from_ns(25), ()); // at 25 ns (now == 0)
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(10));
        q.schedule_in(SimTime::from_ns(5), ()); // at 15 ns
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

//! A deterministic discrete-event queue.
//!
//! Generic over the event payload so each system model (UPaRC, the baseline
//! controllers, the schedulers in the examples) can define its own event
//! vocabulary. Events at equal times pop in insertion order (FIFO), which
//! keeps simulations reproducible.
//!
//! # Implementation: a hierarchical calendar queue
//!
//! The queue is a calendar-queue/timer-wheel hybrid rather than a binary
//! heap: per-event cost is O(1) amortised instead of O(log n), which makes
//! the many-small-events regime (schedulers juggling partitions, controller
//! farms, back-to-back reconfigurations) kernel-bound no longer.
//!
//! Three tiers hold pending events, ordered nearest-future first:
//!
//! 1. **`current`** — a drain buffer holding the events of the earliest
//!    non-empty calendar bucket, sorted descending so the next event to
//!    pop is a `Vec::pop` from the back; schedules landing inside its
//!    time window are insertion-sorted.
//! 2. **`buckets`** — a one-shot calendar covering one *epoch*
//!    `[epoch_start, epoch_start + N·width)`. A schedule inside the epoch
//!    is an O(1) push into its bucket; buckets are sorted lazily, one at a
//!    time, as the drain reaches them.
//! 3. **`overflow`** — an unsorted vector for everything beyond the epoch.
//!    When the calendar runs dry the overflow is *repartitioned* into a
//!    fresh epoch: bucket count and width are re-derived from the pending
//!    population (targeting a handful of events per bucket), so the wheel
//!    adapts to any event-time distribution.
//!
//! Buckets never extend past the epoch horizon mid-flight (the calendar is
//! one-shot, not a ring): extending it would let a fresh schedule overtake
//! an older equal-time event parked in the overflow, breaking FIFO.
//!
//! **Determinism contract**: pops come in exact `(time, insertion-seq)`
//! order — bit-identical to a binary-heap reference, including FIFO ties —
//! regardless of bucket geometry (`tests/proptest_kernel.rs` checks this
//! against a heap model on arbitrary interleavings). All drained
//! containers keep their allocations, so a steady-state schedule/pop loop
//! performs no heap allocation.

use crate::time::SimTime;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    /// Packed `(time, seq)` sort key — one u128 comparison instead of a
    /// two-field tuple compare (measurably faster in the bucket sorts).
    #[inline]
    fn key(&self) -> u128 {
        (u128::from(self.time.as_fs()) << 64) | u128::from(self.seq)
    }
}

/// Smallest bucket count an epoch is built with.
const MIN_BUCKETS: usize = 16;
/// Largest bucket count an epoch is built with. Tuned with
/// `examples/queue_micro.rs`: past ~32k buckets the scatter in
/// `repartition` turns into random cache misses and bulk throughput
/// drops again, so large populations saturate here.
const MAX_BUCKETS: usize = 1 << 15;
/// Target average number of events per bucket when repartitioning. Small
/// averages keep the per-bucket drain sort near-free (the sort is the
/// dominant drain cost); the floor on useful bucket counts is
/// [`MAX_BUCKETS`], not this constant, for big populations.
const EVENTS_PER_BUCKET: usize = 4;

/// A time-ordered event queue with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use uparc_sim::queue::EventQueue;
/// use uparc_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ns(20), "finish");
/// q.schedule(SimTime::from_ns(10), "start");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "start")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(20), "finish")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Drain buffer: the globally earliest events, sorted by `(time, seq)`
    /// *descending* so the next event to pop sits at the back (`Vec::pop`
    /// is branch-cheap, and a sorted bucket swaps in wholesale).
    current: Vec<Entry<E>>,
    /// Exclusive femtosecond upper bound of `current`'s time window.
    cur_end: u64,
    /// Calendar buckets of the active epoch; bucket `k` covers
    /// `[epoch_start + k·width, epoch_start + (k+1)·width)`.
    buckets: Vec<Vec<Entry<E>>>,
    /// Next bucket the drain will visit; buckets before it are empty.
    head: usize,
    /// Femtosecond start of bucket 0.
    epoch_start: u64,
    /// log2 of the femtosecond width of one bucket: widths are powers of
    /// two so the bucket index is a shift, not a division (a division per
    /// scheduled event dominated repartition cost).
    shift: u32,
    /// Events currently held in `buckets`.
    in_buckets: usize,
    /// Events at or beyond the epoch horizon, unsorted.
    overflow: Vec<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            current: Vec::new(),
            cur_end: 0,
            buckets: Vec::new(),
            head: 0,
            epoch_start: 0,
            shift: 0,
            in_buckets: 0,
            overflow: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            len: 0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// The time of the most recently popped event (time zero initially).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive femtosecond end of the active epoch, saturating.
    fn epoch_end(&self) -> u64 {
        let end = u128::from(self.epoch_start) + ((self.buckets.len() as u128) << self.shift);
        u64::try_from(end).unwrap_or(u64::MAX)
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` lies in the simulation past (before [`EventQueue::now`]).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule at {at}: simulation time is already {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry {
            time: at,
            seq,
            event,
        };
        let t = at.as_fs();
        self.len += 1;
        if self.len == 1 {
            // Queue was empty: open a fresh one-event window just past `at`
            // so equal-time follow-ups append to `current` in O(1).
            self.current.clear();
            self.current.push(entry);
            self.cur_end = t.saturating_add(1);
            self.epoch_start = self.cur_end;
            self.head = 0;
            debug_assert_eq!(self.in_buckets, 0);
        } else if t < self.cur_end {
            // `current` is sorted descending; the new entry has the newest
            // seq, so among equal times it goes leftmost (pops last —
            // FIFO), i.e. right after the strictly-later entries.
            let idx = self.current.partition_point(|e| e.time > at);
            self.current.insert(idx, entry);
        } else if t < self.epoch_end() {
            let k = ((t - self.epoch_start) >> self.shift) as usize;
            debug_assert!(k >= self.head, "schedule into an already-drained bucket");
            self.buckets[k].push(entry);
            self.in_buckets += 1;
        } else {
            self.overflow.push(entry);
        }
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Schedules a batch of `(time, event)` pairs in iteration order
    /// (equal-time events keep that order when popped).
    ///
    /// # Panics
    ///
    /// Panics if any time lies in the simulation past.
    pub fn schedule_batch<I: IntoIterator<Item = (SimTime, E)>>(&mut self, batch: I) {
        for (at, event) in batch {
            self.schedule(at, event);
        }
    }

    /// Pops the earliest event, advancing [`EventQueue::now`] to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.current.pop()?;
        self.len -= 1;
        self.now = entry.time;
        if self.current.is_empty() {
            self.refill();
        }
        Some((entry.time, entry.event))
    }

    /// Drains *all* events at the earliest pending timestamp into `out`
    /// (in FIFO order), advancing [`EventQueue::now`] to that time; returns
    /// the timestamp, or `None` if the queue is empty.
    ///
    /// `out` is appended to, not cleared — pass a reusable buffer for
    /// allocation-free batch dispatch.
    pub fn pop_instant(&mut self, out: &mut Vec<E>) -> Option<SimTime> {
        let at = self.peek_time()?;
        while self.current.last().is_some_and(|e| e.time == at) {
            let entry = self.current.pop().expect("checked last");
            self.len -= 1;
            out.push(entry.event);
            if self.current.is_empty() {
                self.refill();
            }
        }
        self.now = at;
        Some(at)
    }

    /// Peeks at the time of the earliest pending event.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.current.last().map(|e| e.time)
    }

    /// Re-establishes the invariant that `current` holds the globally
    /// earliest events whenever the queue is non-empty.
    fn refill(&mut self) {
        while self.current.is_empty() {
            if self.in_buckets > 0 {
                self.advance_calendar();
            } else if !self.overflow.is_empty() {
                self.repartition();
            } else {
                return;
            }
        }
    }

    /// Moves the next non-empty calendar bucket into `current` (sorted).
    fn advance_calendar(&mut self) {
        loop {
            debug_assert!(self.head < self.buckets.len(), "in_buckets miscount");
            let k = self.head;
            self.head += 1;
            if self.buckets[k].is_empty() {
                continue;
            }
            // Sort the bucket descending and *swap* it in as the new
            // drain buffer — no per-element copies; the old (empty)
            // `current` becomes the bucket, keeping its capacity.
            let bucket = &mut self.buckets[k];
            bucket.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
            self.in_buckets -= bucket.len();
            debug_assert!(self.current.is_empty());
            std::mem::swap(&mut self.current, bucket);
            let end = u128::from(self.epoch_start) + ((self.head as u128) << self.shift);
            self.cur_end = u64::try_from(end).unwrap_or(u64::MAX);
            return;
        }
    }

    /// Builds a fresh epoch from the overflow: bucket count targets a few
    /// events per bucket; the bucket width is the smallest power of two
    /// that makes the pending time span fit the bucket count.
    fn repartition(&mut self) {
        debug_assert!(self.current.is_empty() && self.in_buckets == 0);
        let n_items = self.overflow.len();
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in &self.overflow {
            let t = e.time.as_fs();
            lo = lo.min(t);
            hi = hi.max(t);
        }
        let target = (n_items / EVENTS_PER_BUCKET + 1)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        if self.buckets.len() < target {
            self.buckets.resize_with(target, Vec::new);
        } else if self.buckets.len() > target * 4 {
            // Shed an oversized previous epoch (all tail buckets are empty).
            self.buckets.truncate(target);
        }
        // Smallest shift with (span >> shift) < bucket count, so every
        // index from the shift lands in range.
        let span = hi - lo;
        let span_bits = u64::BITS - span.leading_zeros();
        self.shift = span_bits.saturating_sub(self.buckets.len().trailing_zeros());
        self.epoch_start = lo;
        self.cur_end = lo;
        self.head = 0;
        // Two-pass scatter: counting first lets every bucket reserve its
        // exact occupancy, so the placement pass never regrows (one counts
        // allocation instead of a realloc-and-copy per touched bucket).
        let mut counts = vec![0u32; self.buckets.len()];
        for e in &self.overflow {
            counts[((e.time.as_fs() - lo) >> self.shift) as usize] += 1;
        }
        for (bucket, &c) in self.buckets.iter_mut().zip(&counts) {
            bucket.reserve(c as usize);
        }
        for entry in self.overflow.drain(..) {
            let k = ((entry.time.as_fs() - lo) >> self.shift) as usize;
            self.buckets[k].push(entry);
        }
        self.in_buckets = n_items;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(30), 3);
        q.schedule(SimTime::from_ns(10), 1);
        q.schedule(SimTime::from_ns(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.schedule_in(SimTime::from_ns(25), ()); // at 25 ns (now == 0)
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_ns(10));
        q.schedule_in(SimTime::from_ns(5), ()); // at 15 ns
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ns(15));
    }

    #[test]
    #[should_panic(expected = "cannot schedule")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_ns(10), ());
        q.pop();
        q.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::from_ns(1), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(1)));
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop_stay_ordered() {
        // Widely spread times force epoch rollovers and overflow
        // repartitions; a pseudo-random walk covers the interesting
        // interleavings deterministically.
        let mut q = EventQueue::new();
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut popped: Vec<(SimTime, u64)> = Vec::new();
        let mut scheduled = 0u64;
        for _ in 0..5_000 {
            if q.is_empty() || rng() % 3 != 0 {
                let delay = rng() % 1_000_000_000; // up to 1 µs in fs
                q.schedule(q.now() + SimTime::from_fs(delay), scheduled);
                scheduled += 1;
            } else {
                popped.push(q.pop().unwrap());
            }
        }
        while let Some(p) = q.pop() {
            popped.push(p);
        }
        assert_eq!(popped.len() as u64, scheduled);
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "time order violated: {w:?}");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "FIFO tie order violated: {w:?}");
            }
        }
    }

    #[test]
    fn pop_instant_drains_one_timestamp() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(7);
        q.schedule(t, 1);
        q.schedule(SimTime::from_ns(9), 99);
        q.schedule(t, 2);
        q.schedule(t, 3);
        let mut out = Vec::new();
        assert_eq!(q.pop_instant(&mut out), Some(t));
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(q.now(), t);
        assert_eq!(q.len(), 1);
        out.clear();
        assert_eq!(q.pop_instant(&mut out), Some(SimTime::from_ns(9)));
        assert_eq!(out, vec![99]);
        out.clear();
        assert_eq!(q.pop_instant(&mut out), None);
        assert!(out.is_empty());
    }

    #[test]
    fn schedule_batch_keeps_fifo_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(1);
        q.schedule(t, 0);
        q.schedule_batch((1..5).map(|i| (t, i)));
        q.schedule_batch([(SimTime::from_ns(10), 100)]);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![100, 0, 1, 2, 3, 4]);
    }

    #[test]
    fn schedule_into_the_window_being_drained() {
        // Pop one event of a same-bucket cluster, then schedule inside the
        // remaining window: the new event must slot into exact order.
        let mut q = EventQueue::new();
        for i in 0..20 {
            q.schedule(SimTime::from_fs(1000 + i * 2), i);
        }
        let (t0, e0) = q.pop().unwrap();
        assert_eq!((t0, e0), (SimTime::from_fs(1000), 0));
        q.schedule(SimTime::from_fs(1003), 777);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(&order[..3], &[1, 777, 2]);
    }

    #[test]
    fn far_future_and_max_time_events_survive() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::MAX, 2);
        q.schedule(SimTime::from_ns(1), 1);
        q.schedule(SimTime::MAX, 3);
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), 1)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 2)));
        assert_eq!(q.pop(), Some((SimTime::MAX, 3)));
        assert_eq!(q.pop(), None);
    }
}

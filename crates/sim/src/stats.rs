//! Small statistics helpers for the benchmark harnesses.
//!
//! The table/figure harnesses report means, spreads and fitted slopes (e.g.
//! the mW/MHz regression used to calibrate the power model). Nothing here is
//! FPGA-specific.

/// Arithmetic mean. Returns `None` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation. Returns `None` for an empty slice.
#[must_use]
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Geometric mean. Returns `None` if empty or any element is non-positive.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Linear-interpolated percentile (`p` in `[0, 100]`). Returns `None` for an
/// empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Number of buckets in a [`LogHistogram`]: one underflow bucket plus
/// 64 power-of-two decades × 8 mantissa sub-buckets.
pub const LOG_HISTOGRAM_BUCKETS: usize = 1 + 64 * SUB_BUCKETS;

/// Mantissa sub-buckets per power-of-two decade (3 mantissa bits).
const SUB_BUCKETS: usize = 8;

/// Lowest bucketed exponent: values below `2^-33` fall into the underflow
/// bucket. Mirrors the span of the exact-log₂ histogram in `obs::Metrics`.
const MIN_EXP: i64 = -33;

/// Streaming, mergeable log₂ histogram with 8 mantissa sub-buckets per
/// power-of-two decade.
///
/// This is the fixed-footprint replacement for `sort`-based
/// [`percentile`]: recording is O(1) (an IEEE-754 exponent/mantissa
/// extraction, same idiom as the exact-log₂ histograms in `obs::Metrics`),
/// the footprint is O(buckets) (≈4 KB) regardless of how many values are
/// observed, and two histograms [`merge`](Self::merge) by element-wise
/// addition — so per-shard histograms recorded in parallel combine into a
/// fleet-wide summary without ever materialising a latency vector.
///
/// The 3 extra mantissa bits bound each bucket's width to 12.5% of its
/// lower edge, so any reported quantile lands within one bucket (≤12.5%
/// relative error) of the exact sorted-vector answer; reported values are
/// additionally clamped to the observed `[min, max]`.
///
/// Values that are NaN, non-positive, or below `2^-33` land in a single
/// underflow bucket; values at or above `2^31` land in the top bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    buckets: [u64; LOG_HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; LOG_HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Bucket index for `value` (pure; exposed for tests).
    #[must_use]
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= 0.0 {
            return 0;
        }
        let bits = value.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
        if exp < MIN_EXP {
            return 0;
        }
        let sub = ((bits >> 49) & 0x7) as usize;
        let idx = 1 + (exp - MIN_EXP) as usize * SUB_BUCKETS + sub;
        idx.min(LOG_HISTOGRAM_BUCKETS - 1)
    }

    /// Lower and upper edges of bucket `idx` (underflow bucket spans
    /// `[0, 2^-33)`).
    #[must_use]
    fn bucket_edges(idx: usize) -> (f64, f64) {
        if idx == 0 {
            return (0.0, (MIN_EXP as f64).exp2());
        }
        let rel = idx - 1;
        let exp = (rel / SUB_BUCKETS) as i64 + MIN_EXP;
        let sub = (rel % SUB_BUCKETS) as f64;
        let base = (exp as f64).exp2();
        let lo = base * (1.0 + sub / SUB_BUCKETS as f64);
        let hi = base * (1.0 + (sub + 1.0) / SUB_BUCKETS as f64);
        (lo, hi)
    }

    /// Records one value.
    pub fn observe(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Resets the histogram to empty in place.
    ///
    /// This is the windowed-reporting primitive: snapshot a phase's
    /// percentiles, `clear()`, and keep observing into the same
    /// allocation — so a degraded phase's latencies can be reported on
    /// their own instead of being averaged into steady state.
    pub fn clear(&mut self) {
        self.buckets = [0; LOG_HISTOGRAM_BUCKETS];
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }

    /// Folds `other` into `self` (element-wise bucket addition).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest recorded value, or `None` if empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimated percentile (`p` in `[0, 100]`), or `None` if empty.
    ///
    /// Walks the cumulative bucket counts to the bucket holding the
    /// requested rank and interpolates linearly inside it, then clamps to
    /// the observed `[min, max]`. Within one bucket (≤12.5% relative
    /// error) of the exact [`percentile`] over the same values.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
        if self.count == 0 {
            return None;
        }
        if p == 0.0 {
            return Some(self.min);
        }
        if p == 100.0 {
            return Some(self.max);
        }
        // Fractional 0-indexed rank, matching `stats::percentile`.
        let rank = p / 100.0 * (self.count - 1) as f64;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            // This bucket covers ranks [cum, cum + c).
            if rank < (cum + c) as f64 {
                let (lo, hi) = Self::bucket_edges(idx);
                let frac = (rank - cum as f64 + 0.5) / c as f64;
                let v = lo + (hi - lo) * frac;
                return Some(v.clamp(self.min, self.max));
            }
            cum += c;
        }
        Some(self.max)
    }
}

/// Least-squares fit of `y = intercept + slope·x`.
///
/// Returns `None` for fewer than two points or zero variance in `x`.
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

/// Result of [`linear_fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), Some(0.0));
        let sd = std_dev(&[2.0, 4.0]).unwrap();
        assert!((sd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_basic() {
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[1.0, -1.0]), None);
        let g = geo_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn linear_fit_recovers_fig7_calibration() {
        // The exact fit used for the power calibration in DESIGN.md §3.
        let pts = [
            (50.0, 183.0),
            (100.0, 259.0),
            (200.0, 394.0),
            (300.0, 453.0),
        ];
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 1.0925).abs() < 1e-3, "slope {}", fit.slope);
        assert!(
            (fit.intercept - 144.7).abs() < 0.5,
            "intercept {}",
            fit.intercept
        );
        assert!(fit.r2 > 0.95, "r2 {}", fit.r2);
    }

    #[test]
    fn log_histogram_basics() {
        let mut h = LogHistogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.mean(), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(4.0));
        assert!((h.mean().unwrap() - 2.5).abs() < 1e-12);
        // Extremes clamp to observed min/max exactly.
        assert_eq!(h.percentile(0.0), Some(1.0));
        assert_eq!(h.percentile(100.0), Some(4.0));
    }

    #[test]
    fn log_histogram_percentiles_within_one_bucket_of_exact() {
        // The mergeable histogram must stay within one bucket (12.5%
        // relative) of the exact sorted-vector percentile for realistic
        // latency-shaped data spanning several decades.
        let mut xs = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for _ in 0..10_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Log-uniform over roughly [1, 8192) microseconds.
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            xs.push((u * 13.0).exp2());
        }
        let mut h = LogHistogram::new();
        for &x in &xs {
            h.observe(x);
        }
        for p in [1.0, 25.0, 50.0, 95.0, 99.0, 99.9] {
            let exact = percentile(&xs, p).unwrap();
            let est = h.percentile(p).unwrap();
            let ratio = est / exact;
            assert!(
                (1.0 / 1.125..=1.125).contains(&ratio),
                "p{p}: est {est} vs exact {exact} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn log_histogram_merge_equals_single_pass() {
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for i in 0..1000u64 {
            // 0.25-quantized values make every partial sum exact in f64,
            // so the merged sum is bit-identical regardless of order.
            let v = (i as f64).mul_add(0.25, 0.5);
            all.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all, "merged shard histograms must be bit-identical");
    }

    #[test]
    fn log_histogram_underflow_and_overflow() {
        let mut h = LogHistogram::new();
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        assert_eq!(LogHistogram::bucket_index(0.0), 0);
        assert_eq!(LogHistogram::bucket_index(-1.0), 0);
        assert_eq!(LogHistogram::bucket_index(f64::NAN), 0);
        assert_eq!(LogHistogram::bucket_index(1e300), LOG_HISTOGRAM_BUCKETS - 1);
        assert_eq!(h.count(), 3);
        // Bucket index of 1.0 starts the exponent-0 decade.
        assert_eq!(LogHistogram::bucket_index(1.0), 1 + 33 * 8);
        // 1.125 is the next sub-bucket up.
        assert_eq!(LogHistogram::bucket_index(1.125), 1 + 33 * 8 + 1);
    }

    #[test]
    fn log_histogram_clear_resets_to_empty() {
        let mut h = LogHistogram::new();
        for v in [0.5, 3.0, 700.0, 12_000.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        h.clear();
        assert_eq!(h, LogHistogram::new(), "clear must be a full reset");
        assert_eq!(h.percentile(99.0), None);
        // The cleared histogram is reusable: a fresh phase records into
        // the same allocation and reports only its own values.
        h.observe(42.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(42.0));
        assert_eq!(h.max(), Some(42.0));
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
        let exact = linear_fit(&[(0.0, 1.0), (1.0, 3.0)]).unwrap();
        assert!((exact.eval(2.0) - 5.0).abs() < 1e-12);
        assert!((exact.r2 - 1.0).abs() < 1e-12);
    }
}

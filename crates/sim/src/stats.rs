//! Small statistics helpers for the benchmark harnesses.
//!
//! The table/figure harnesses report means, spreads and fitted slopes (e.g.
//! the mW/MHz regression used to calibrate the power model). Nothing here is
//! FPGA-specific.

/// Arithmetic mean. Returns `None` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population standard deviation. Returns `None` for an empty slice.
#[must_use]
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64;
    Some(var.sqrt())
}

/// Geometric mean. Returns `None` if empty or any element is non-positive.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Linear-interpolated percentile (`p` in `[0, 100]`). Returns `None` for an
/// empty slice.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Least-squares fit of `y = intercept + slope·x`.
///
/// Returns `None` for fewer than two points or zero variance in `x`.
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

/// Result of [`linear_fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`.
    pub r2: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), Some(0.0));
        let sd = std_dev(&[2.0, 4.0]).unwrap();
        assert!((sd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_basic() {
        assert_eq!(geo_mean(&[]), None);
        assert_eq!(geo_mean(&[1.0, -1.0]), None);
        let g = geo_mean(&[1.0, 4.0]).unwrap();
        assert!((g - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn linear_fit_recovers_fig7_calibration() {
        // The exact fit used for the power calibration in DESIGN.md §3.
        let pts = [
            (50.0, 183.0),
            (100.0, 259.0),
            (200.0, 394.0),
            (300.0, 453.0),
        ];
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 1.0925).abs() < 1e-3, "slope {}", fit.slope);
        assert!(
            (fit.intercept - 144.7).abs() < 0.5,
            "intercept {}",
            fit.intercept
        );
        assert!(fit.r2 > 0.95, "r2 {}", fit.r2);
    }

    #[test]
    fn linear_fit_degenerate_cases() {
        assert!(linear_fit(&[(1.0, 1.0)]).is_none());
        assert!(linear_fit(&[(1.0, 1.0), (1.0, 2.0)]).is_none());
        let exact = linear_fit(&[(0.0, 1.0), (1.0, 3.0)]).unwrap();
        assert!((exact.eval(2.0) - 5.0).abs() < 1e-12);
        assert!((exact.r2 - 1.0).abs() < 1e-12);
    }
}

//! Clock domains with runtime frequency scaling, and multi-rate edge merging.
//!
//! UPaRC's DyCloGen retunes the reconfiguration clock while the rest of the
//! system keeps running; [`ClockDomain`] therefore supports changing the
//! frequency *mid-simulation* without perturbing edges already produced, by
//! re-anchoring the cycle counter at the change point.

use crate::time::{Frequency, SimTime};
use std::fmt;

/// Identifier of a clock domain inside a [`MultiClock`].
///
/// The UPaRC system uses three: `CLK_1` (preload), `CLK_2` (reconfiguration)
/// and `CLK_3` (decompressor); plus the manager's own system clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockId(pub usize);

impl fmt::Display for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

/// A clock domain: a frequency, an enable gate, and a cycle counter.
///
/// Edges are numbered from 0; edge `n` occurs at
/// `anchor_time + (n - anchor_cycle + 1) / f` relative to the most recent
/// frequency change ("anchor"). Frequency changes and gating re-anchor, so
/// past edges are never rewritten.
///
/// # Example
///
/// ```
/// use uparc_sim::clock::ClockDomain;
/// use uparc_sim::time::{Frequency, SimTime};
///
/// let mut clk = ClockDomain::new(Frequency::from_mhz(100.0));
/// assert_eq!(clk.next_edge(), SimTime::from_ns(10));
/// clk.advance_edges(9); // consume edges up to 100 ns
/// // Retune to 200 MHz at 100 ns (what DyCloGen does through the DRP).
/// clk.set_frequency_at(SimTime::from_ns(100), Frequency::from_mhz(200.0));
/// assert_eq!(clk.next_edge(), SimTime::from_ns(105));
/// ```
#[derive(Debug, Clone)]
pub struct ClockDomain {
    freq: Frequency,
    /// Time of the most recent re-anchor (start, gate toggle or retune).
    anchor: SimTime,
    /// Edges produced before the anchor.
    edges_before_anchor: u64,
    /// Edges produced since the anchor.
    edges_since_anchor: u64,
    enabled: bool,
}

impl ClockDomain {
    /// Creates an enabled clock domain starting at time zero.
    #[must_use]
    pub fn new(freq: Frequency) -> Self {
        ClockDomain {
            freq,
            anchor: SimTime::ZERO,
            edges_before_anchor: 0,
            edges_since_anchor: 0,
            enabled: true,
        }
    }

    /// The current frequency.
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.freq
    }

    /// Whether the clock is currently running (not gated).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Total edges produced so far.
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.edges_before_anchor + self.edges_since_anchor
    }

    /// Time of the next rising edge.
    ///
    /// # Panics
    ///
    /// Panics if the clock is gated off — a gated clock has no next edge;
    /// check [`ClockDomain::is_enabled`] first.
    #[must_use]
    pub fn next_edge(&self) -> SimTime {
        assert!(self.enabled, "gated clock has no next edge");
        self.anchor + self.freq.time_of_cycles(self.edges_since_anchor + 1)
    }

    /// Consumes the next rising edge, returning its time.
    pub fn tick(&mut self) -> SimTime {
        let t = self.next_edge();
        self.edges_since_anchor += 1;
        t
    }

    /// Consumes `n` edges at once, returning the time of the last one.
    ///
    /// Equivalent to calling [`ClockDomain::tick`] `n` times but O(1).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the clock is gated.
    pub fn advance_edges(&mut self, n: u64) -> SimTime {
        assert!(n > 0, "must advance by at least one edge");
        assert!(self.enabled, "gated clock has no edges");
        self.edges_since_anchor += n;
        self.anchor + self.freq.time_of_cycles(self.edges_since_anchor)
    }

    /// Retunes the clock to `freq`, effective at `at` (which must not precede
    /// the last produced edge). Edge numbering continues seamlessly.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the time of the last produced edge.
    pub fn set_frequency_at(&mut self, at: SimTime, freq: Frequency) {
        let last = self.last_edge_time();
        assert!(
            at >= last,
            "cannot retune at {at}, last edge already at {last}"
        );
        self.edges_before_anchor += self.edges_since_anchor;
        self.edges_since_anchor = 0;
        self.anchor = at;
        self.freq = freq;
    }

    /// Gates the clock off at `at` (EN deasserted — the power-saving measure
    /// UReC applies to BRAM and ICAP after "Finish").
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last produced edge.
    pub fn gate_off_at(&mut self, at: SimTime) {
        let f = self.freq;
        self.set_frequency_at(at, f);
        self.enabled = false;
    }

    /// Re-enables a gated clock at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the gate-off time.
    pub fn gate_on_at(&mut self, at: SimTime) {
        assert!(
            at >= self.anchor,
            "cannot ungate at {at}, clock was gated at {}",
            self.anchor
        );
        self.anchor = at;
        self.enabled = true;
    }

    fn last_edge_time(&self) -> SimTime {
        if self.edges_since_anchor == 0 {
            self.anchor
        } else {
            self.anchor + self.freq.time_of_cycles(self.edges_since_anchor)
        }
    }
}

/// Merges the rising edges of several clock domains into one deterministic,
/// time-ordered stream — the heart of multi-rate cycle simulation.
///
/// Ties (simultaneous edges of different domains) are broken by `ClockId`
/// order, so simulations are reproducible bit-for-bit.
///
/// # Example
///
/// ```
/// use uparc_sim::clock::{ClockDomain, MultiClock};
/// use uparc_sim::time::Frequency;
///
/// let mut mc = MultiClock::new();
/// let fast = mc.add(ClockDomain::new(Frequency::from_mhz(200.0)));
/// let slow = mc.add(ClockDomain::new(Frequency::from_mhz(100.0)));
/// // In 10 merged edges, the 200 MHz domain fires twice as often.
/// let mut fast_edges = 0;
/// for _ in 0..9 {
///     let (_, id) = mc.next_edge().unwrap();
///     if id == fast { fast_edges += 1; }
/// }
/// assert_eq!(fast_edges, 6);
/// # let _ = slow;
/// ```
#[derive(Debug, Default)]
pub struct MultiClock {
    domains: Vec<ClockDomain>,
}

impl MultiClock {
    /// Creates an empty merger.
    #[must_use]
    pub fn new() -> Self {
        MultiClock::default()
    }

    /// Adds a domain, returning its id.
    pub fn add(&mut self, domain: ClockDomain) -> ClockId {
        self.domains.push(domain);
        ClockId(self.domains.len() - 1)
    }

    /// Immutable access to a domain.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this merger.
    #[must_use]
    pub fn domain(&self, id: ClockId) -> &ClockDomain {
        &self.domains[id.0]
    }

    /// Mutable access to a domain (for retuning/gating mid-run).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this merger.
    pub fn domain_mut(&mut self, id: ClockId) -> &mut ClockDomain {
        &mut self.domains[id.0]
    }

    /// Consumes and returns the earliest pending edge across all enabled
    /// domains, or `None` if every domain is gated off.
    pub fn next_edge(&mut self) -> Option<(SimTime, ClockId)> {
        let mut best: Option<(SimTime, usize)> = None;
        for (i, d) in self.domains.iter().enumerate() {
            if !d.is_enabled() {
                continue;
            }
            let t = d.next_edge();
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, i));
            }
        }
        best.map(|(t, i)| {
            self.domains[i].tick();
            (t, ClockId(i))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_periodic() {
        let mut clk = ClockDomain::new(Frequency::from_mhz(100.0));
        assert_eq!(clk.tick(), SimTime::from_ns(10));
        assert_eq!(clk.tick(), SimTime::from_ns(20));
        assert_eq!(clk.tick(), SimTime::from_ns(30));
        assert_eq!(clk.edge_count(), 3);
    }

    #[test]
    fn advance_edges_matches_repeated_tick() {
        let mut a = ClockDomain::new(Frequency::from_mhz(362.5));
        let mut b = a.clone();
        let mut last = SimTime::ZERO;
        for _ in 0..1000 {
            last = a.tick();
        }
        assert_eq!(b.advance_edges(1000), last);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn retune_preserves_edge_history() {
        let mut clk = ClockDomain::new(Frequency::from_mhz(100.0));
        clk.advance_edges(10); // last edge at 100 ns
        clk.set_frequency_at(SimTime::from_ns(100), Frequency::from_mhz(50.0));
        assert_eq!(clk.next_edge(), SimTime::from_ns(120));
        assert_eq!(clk.edge_count(), 10);
        clk.tick();
        assert_eq!(clk.edge_count(), 11);
    }

    #[test]
    #[should_panic(expected = "cannot retune")]
    fn retune_in_the_past_panics() {
        let mut clk = ClockDomain::new(Frequency::from_mhz(100.0));
        clk.advance_edges(10);
        clk.set_frequency_at(SimTime::from_ns(50), Frequency::from_mhz(50.0));
    }

    #[test]
    fn gating_stops_and_resumes_edges() {
        let mut clk = ClockDomain::new(Frequency::from_mhz(100.0));
        clk.advance_edges(5); // 50 ns
        clk.gate_off_at(SimTime::from_ns(50));
        assert!(!clk.is_enabled());
        clk.gate_on_at(SimTime::from_us(1));
        assert_eq!(clk.next_edge(), SimTime::from_us(1) + SimTime::from_ns(10));
        assert_eq!(clk.edge_count(), 5);
    }

    #[test]
    #[should_panic(expected = "gated clock")]
    fn gated_clock_has_no_next_edge() {
        let mut clk = ClockDomain::new(Frequency::from_mhz(100.0));
        clk.gate_off_at(SimTime::ZERO);
        let _ = clk.next_edge();
    }

    #[test]
    fn multiclock_merges_in_time_order() {
        let mut mc = MultiClock::new();
        let a = mc.add(ClockDomain::new(Frequency::from_mhz(100.0)));
        let b = mc.add(ClockDomain::new(Frequency::from_mhz(300.0)));
        let mut last = SimTime::ZERO;
        let mut counts = [0u64; 2];
        for _ in 0..400 {
            let (t, id) = mc.next_edge().unwrap();
            assert!(t >= last, "edges must be non-decreasing");
            last = t;
            counts[id.0] += 1;
        }
        // 300 MHz fires 3x as often as 100 MHz.
        assert_eq!(counts[a.0], 100);
        assert_eq!(counts[b.0], 300);
    }

    #[test]
    fn multiclock_tie_break_is_deterministic() {
        // Two identical domains: the lower id must always fire first.
        let mut mc = MultiClock::new();
        let a = mc.add(ClockDomain::new(Frequency::from_mhz(100.0)));
        let _b = mc.add(ClockDomain::new(Frequency::from_mhz(100.0)));
        for _ in 0..10 {
            let (t1, id1) = mc.next_edge().unwrap();
            let (t2, id2) = mc.next_edge().unwrap();
            assert_eq!(t1, t2);
            assert_eq!(id1, a);
            assert_ne!(id2, a);
        }
    }

    #[test]
    fn multiclock_all_gated_yields_none() {
        let mut mc = MultiClock::new();
        let a = mc.add(ClockDomain::new(Frequency::from_mhz(100.0)));
        mc.domain_mut(a).gate_off_at(SimTime::ZERO);
        assert!(mc.next_edge().is_none());
    }
}

//! Std-only parallel map and deterministic sharding.
//!
//! The experiment harnesses evaluate grids of independent configurations
//! (size × frequency, algorithm × workload), and the block-parallel
//! encoders shard one input across cores. Each work item touches no
//! shared state, so both split trivially. This module is a minimal
//! std-only pool: scoped threads pull work items off an atomic index, so
//! there are no external dependencies and no `'static` bounds on the
//! closures.
//!
//! Results come back in input order regardless of which worker ran them,
//! so harness output is deterministic and independent of the core count
//! (including the single-core case, which degrades to a plain map).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Number of worker threads a sweep over `items` work items will use: the
/// `UPARC_SWEEP_THREADS` environment variable if set to a positive
/// integer (so CI and laptops can pin parallelism), otherwise the
/// machine's available parallelism — in both cases clamped to the work
/// count and at least 1.
///
/// A present-but-invalid `UPARC_SWEEP_THREADS` (empty, zero, garbage, or
/// non-unicode) still falls back to autodetection so a typo never breaks a
/// run, but the fallback is *loud*: a warning goes to stderr instead of
/// the variable being silently ignored.
#[must_use]
pub fn worker_count(items: usize) -> usize {
    let pinned = match std::env::var("UPARC_SWEEP_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!(
                    "warning: UPARC_SWEEP_THREADS={v:?} is not a positive integer; \
                     falling back to autodetected parallelism"
                );
                None
            }
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            eprintln!(
                "warning: UPARC_SWEEP_THREADS={raw:?} is not valid unicode; \
                 falling back to autodetected parallelism"
            );
            None
        }
    };
    let cores = pinned
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    cores.min(items).max(1)
}

/// Splits `items` into `n` contiguous shards whose sizes differ by at
/// most one (earlier shards get the remainder). Empty shards are omitted,
/// so fewer than `n` shards come back when `items` is short.
///
/// Sharding is purely positional — independent of core count and of
/// `UPARC_SWEEP_THREADS` — so a grid dispatched shard-by-shard (e.g. one
/// engine scenario per shard) is decomposed identically on every host.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn shards<T>(items: &[T], n: usize) -> Vec<&[T]> {
    assert!(n > 0, "cannot shard into zero shards");
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n.min(len));
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(&items[start..start + size]);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// `f` runs on multiple threads concurrently; items are handed out
/// one at a time from a shared atomic cursor, so uneven cell costs
/// (large bitstreams vs small) balance automatically.
///
/// # Panics
///
/// Propagates a panic from `f` (the pool panics once the workers join).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = worker_count(items.len());
    let cursor = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, R)> = chunks.drain(..).flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(10_000) >= 1);
    }

    #[test]
    fn worker_count_honors_env_override() {
        // Env vars are process-global and tests run concurrently, so this
        // test owns the variable: set → check → clear → check. Other tests
        // here don't read it.
        std::env::set_var("UPARC_SWEEP_THREADS", "3");
        assert_eq!(worker_count(10_000), 3);
        assert_eq!(worker_count(2), 2, "still clamped to the work count");
        std::env::set_var("UPARC_SWEEP_THREADS", "not-a-number");
        let fallback = worker_count(10_000);
        assert!(fallback >= 1, "garbage value falls back to autodetect");
        std::env::set_var("UPARC_SWEEP_THREADS", "0");
        assert!(worker_count(10_000) >= 1, "zero falls back to autodetect");
        std::env::remove_var("UPARC_SWEEP_THREADS");
        assert!(worker_count(10_000) >= 1);
    }

    #[test]
    fn shards_are_contiguous_and_balanced() {
        let items: Vec<u32> = (0..10).collect();
        let s = shards(&items, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], &[0, 1, 2, 3]);
        assert_eq!(s[1], &[4, 5, 6]);
        assert_eq!(s[2], &[7, 8, 9]);
        // Rebuilding the input proves coverage without overlap.
        let rebuilt: Vec<u32> = s.concat();
        assert_eq!(rebuilt, items);

        // More shards than items: one singleton shard per item.
        let few = shards(&items[..2], 5);
        assert_eq!(few.len(), 2);
        assert!(few.iter().all(|s| s.len() == 1));

        // Empty input and the n = 1 degenerate case.
        assert!(shards(&items[..0], 4).is_empty());
        assert_eq!(shards(&items, 1), vec![&items[..]]);
    }

    #[test]
    fn uneven_workloads_balance() {
        // Cells with wildly different costs still land in order.
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(&items, |&i| {
            let spin = if i % 7 == 0 { 20_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k).rotate_left(1);
            }
            (i, acc & 1)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }
}

//! Std-only parallel map and deterministic sharding.
//!
//! The experiment harnesses evaluate grids of independent configurations
//! (size × frequency, algorithm × workload), and the block-parallel
//! encoders shard one input across cores. Each work item touches no
//! shared state, so both split trivially. This module is a minimal
//! std-only pool: scoped threads pull work items off an atomic index, so
//! there are no external dependencies and no `'static` bounds on the
//! closures.
//!
//! Results come back in input order regardless of which worker ran them,
//! so harness output is deterministic and independent of the core count
//! (including the single-core case, which degrades to a plain map).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Cached worker override. `None` = not yet resolved (next read parses the
/// environment); `Some(inner)` = resolved, where `inner` is the effective
/// override (`None` = autodetect).
static WORKER_OVERRIDE: Mutex<Option<Option<usize>>> = Mutex::new(None);

/// Parses `UPARC_SWEEP_THREADS` from the environment (no caching).
///
/// A present-but-invalid value (empty, zero, garbage, or non-unicode)
/// falls back to autodetection so a typo never breaks a run, but the
/// fallback is *loud*: a warning goes to stderr instead of the variable
/// being silently ignored.
fn parse_env_override() -> Option<usize> {
    match std::env::var("UPARC_SWEEP_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!(
                    "warning: UPARC_SWEEP_THREADS={v:?} is not a positive integer; \
                     falling back to autodetected parallelism"
                );
                None
            }
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            eprintln!(
                "warning: UPARC_SWEEP_THREADS={raw:?} is not valid unicode; \
                 falling back to autodetected parallelism"
            );
            None
        }
    }
}

/// The effective worker override, if any: the value set by
/// [`pin_workers`], else the cached parse of `UPARC_SWEEP_THREADS`.
///
/// The environment variable is parsed (and, if malformed, warned about)
/// **once per process**, not on every sweep — every consumer of the
/// override ([`worker_count`], and through it `parallel_map`, the
/// block-parallel codecs, and fleet sharding) reads this one cached
/// accessor. Call [`unpin_workers`] to force a re-read after mutating the
/// variable at runtime (tests do this; production code should prefer
/// [`pin_workers`]).
#[must_use]
pub fn worker_override() -> Option<usize> {
    let mut cached = WORKER_OVERRIDE.lock().expect("worker override poisoned");
    *cached.get_or_insert_with(parse_env_override)
}

/// Pins the sweep worker count programmatically for the rest of the
/// process (until the next [`pin_workers`]/[`unpin_workers`] call),
/// overriding `UPARC_SWEEP_THREADS`. Benches use this to sweep worker
/// counts without mutating process-global environment variables.
///
/// # Panics
///
/// Panics if `workers` is zero.
pub fn pin_workers(workers: usize) {
    assert!(workers > 0, "cannot pin zero sweep workers");
    *WORKER_OVERRIDE.lock().expect("worker override poisoned") = Some(Some(workers));
}

/// Clears any pinned worker count *and* the cached environment parse, so
/// the next [`worker_override`] read re-parses `UPARC_SWEEP_THREADS`.
pub fn unpin_workers() {
    *WORKER_OVERRIDE.lock().expect("worker override poisoned") = None;
}

/// Number of worker threads a sweep over `items` work items will use: the
/// pinned/`UPARC_SWEEP_THREADS` override from [`worker_override`] if set
/// (so CI and laptops can pin parallelism), otherwise the machine's
/// available parallelism — in both cases clamped to the work count and at
/// least 1.
#[must_use]
pub fn worker_count(items: usize) -> usize {
    let cores = worker_override()
        .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
    cores.min(items).max(1)
}

/// Splits `items` into `n` contiguous shards whose sizes differ by at
/// most one (earlier shards get the remainder). Empty shards are omitted,
/// so fewer than `n` shards come back when `items` is short.
///
/// Sharding is purely positional — independent of core count and of
/// `UPARC_SWEEP_THREADS` — so a grid dispatched shard-by-shard (e.g. one
/// engine scenario per shard) is decomposed identically on every host.
///
/// # Panics
///
/// Panics if `n` is zero.
#[must_use]
pub fn shards<T>(items: &[T], n: usize) -> Vec<&[T]> {
    assert!(n > 0, "cannot shard into zero shards");
    let len = items.len();
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n.min(len));
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < extra);
        if size == 0 {
            break;
        }
        out.push(&items[start..start + size]);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// `f` runs on multiple threads concurrently; items are handed out
/// one at a time from a shared atomic cursor, so uneven cell costs
/// (large bitstreams vs small) balance automatically.
///
/// # Panics
///
/// Propagates a panic from `f` (the pool panics once the workers join).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = worker_count(items.len());
    let cursor = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, R)> = chunks.drain(..).flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = parallel_map(&items, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_and_single_item_sweeps() {
        let none: Vec<u32> = vec![];
        assert!(parallel_map(&none, |&x| x).is_empty());
        assert_eq!(parallel_map(&[41u32], |&x| x + 1), vec![42]);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(10_000) >= 1);
    }

    #[test]
    fn worker_count_honors_env_override() {
        // Env vars are process-global and tests run concurrently, so this
        // test owns the variable: set → check → clear → check. Other tests
        // here don't read it. The parse is cached, so every mutation is
        // followed by `unpin_workers()` to force a re-read.
        std::env::set_var("UPARC_SWEEP_THREADS", "3");
        unpin_workers();
        assert_eq!(worker_count(10_000), 3);
        assert_eq!(worker_count(2), 2, "still clamped to the work count");
        std::env::set_var("UPARC_SWEEP_THREADS", "not-a-number");
        unpin_workers();
        let fallback = worker_count(10_000);
        assert!(fallback >= 1, "garbage value falls back to autodetect");
        std::env::set_var("UPARC_SWEEP_THREADS", "0");
        unpin_workers();
        assert!(worker_count(10_000) >= 1, "zero falls back to autodetect");
        std::env::remove_var("UPARC_SWEEP_THREADS");
        unpin_workers();
        assert!(worker_count(10_000) >= 1);

        // Programmatic pinning wins over the environment and unpinning
        // restores the env-driven path.
        std::env::set_var("UPARC_SWEEP_THREADS", "2");
        unpin_workers();
        pin_workers(5);
        assert_eq!(worker_count(10_000), 5, "pin overrides the env var");
        unpin_workers();
        assert_eq!(worker_count(10_000), 2, "unpin re-reads the env var");
        std::env::remove_var("UPARC_SWEEP_THREADS");
        unpin_workers();
    }

    #[test]
    fn shards_are_contiguous_and_balanced() {
        let items: Vec<u32> = (0..10).collect();
        let s = shards(&items, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], &[0, 1, 2, 3]);
        assert_eq!(s[1], &[4, 5, 6]);
        assert_eq!(s[2], &[7, 8, 9]);
        // Rebuilding the input proves coverage without overlap.
        let rebuilt: Vec<u32> = s.concat();
        assert_eq!(rebuilt, items);

        // More shards than items: one singleton shard per item.
        let few = shards(&items[..2], 5);
        assert_eq!(few.len(), 2);
        assert!(few.iter().all(|s| s.len() == 1));

        // Empty input and the n = 1 degenerate case.
        assert!(shards(&items[..0], 4).is_empty());
        assert_eq!(shards(&items, 1), vec![&items[..]]);
    }

    #[test]
    fn uneven_workloads_balance() {
        // Cells with wildly different costs still land in order.
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(&items, |&i| {
            let spin = if i % 7 == 0 { 20_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k).rotate_left(1);
            }
            (i, acc & 1)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }
}

//! # uparc-sim — simulation substrate for the UPaRC reproduction
//!
//! The UPaRC paper (Bonamy et al., DATE 2012) evaluates a hardware
//! reconfiguration controller on real Virtex-5/Virtex-6 boards. This crate
//! provides the laptop-scale substitute: a deterministic, multi-clock-domain,
//! cycle-accurate simulation substrate with an analytic power model calibrated
//! against the paper's shunt-resistor measurements.
//!
//! The crate is deliberately generic — it knows nothing about FPGAs. It
//! provides:
//!
//! * [`time`] — femtosecond-resolution simulation time ([`SimTime`]) and
//!   exact frequency/period arithmetic ([`Frequency`]).
//! * [`clock`] — runtime-retunable clock domains ([`clock::ClockDomain`])
//!   and multi-rate edge merging ([`clock::MultiClock`]), the substrate for
//!   dynamic frequency scaling (DyCloGen in the paper).
//! * [`queue`] — a deterministic discrete-event queue ([`queue::EventQueue`]),
//!   a calendar-queue/timer-wheel hybrid with O(1) amortised operations,
//!   batch scheduling and whole-instant draining.
//! * [`engine`] — a process-based discrete-event kernel on top of it
//!   ([`engine::Engine`]) with a slab process table and batched
//!   same-instant dispatch, for asynchronous system-level scenarios.
//! * [`power`] — component-based power model (static + `mW/MHz` dynamic
//!   contributions with clock gating), plus the calibration constants fitted
//!   to the paper's Figure 7 in [`power::calib`].
//! * [`fault`] — seeded deterministic fault plans ([`fault::FaultPlan`]) and
//!   the [`fault::FaultInjector`] that dispenses SEUs, staged-stream flips,
//!   transfer stalls, transient CRC corruptions and DCM lock failures for
//!   resilience campaigns.
//! * [`trace`] — step-wise power traces with exact energy integration and an
//!   oscilloscope/shunt-resistor front-end model ([`trace::Oscilloscope`]).
//! * [`obs`] — structured observability: typed spans/instants recorded
//!   through the cheap [`obs::Obs`] handle, a deterministic metrics
//!   registry, and Chrome-trace / flamegraph exporters.
//! * [`stats`] — small statistics helpers used by the benchmark harnesses.
//! * [`sweep`] — a std-only scoped-thread parallel map and deterministic
//!   positional sharding, shared by the experiment harnesses and the
//!   block-parallel encoders.
//!
//! # Architecture
//!
//! Everything sits on the femtosecond [`SimTime`] axis; the layers above
//! only ever exchange timestamps, so a whole run is reproducible from a
//! seed:
//!
//! ```text
//!   +--------------------------------------------------------------+
//!   |  models (uparc-fpga / uparc-core / uparc-serve, downstream)  |
//!   +-------+----------------+----------------+--------------------+
//!           |                |                |
//!           v                v                v
//!      +---------+      +---------+      +----------+
//!      | engine  |      |  power  |      |   obs    |  spans/metrics
//!      | + queue |      | + trace |      | recorder |  -> Chrome JSON,
//!      +---------+      +---------+      +----------+     flamegraph
//!           |                |                |
//!           +----------------+----------------+
//!                            v
//!              +---------------------------+
//!              | time: SimTime / Frequency |   exact integer fs
//!              +---------------------------+
//! ```
//!
//! # Example
//!
//! Reconfiguring 216.5 KB at 100 MHz through a 32-bit port takes 554 µs of
//! simulated time; with the paper's calibrated power model that costs about
//! 259 mW while active:
//!
//! ```
//! use uparc_sim::time::{Frequency, SimTime};
//! use uparc_sim::power::{calib, PowerModel};
//!
//! let f = Frequency::from_mhz(100.0);
//! let words = 216_500 / 4 * 4 / 4; // 216.5 KB as 32-bit words
//! let t = f.time_of_cycles(words as u64);
//! assert!(t > SimTime::from_us(540) && t < SimTime::from_us(560));
//!
//! let model = PowerModel::virtex6_calibrated();
//! let p = model.reconfiguration_power_mw(f);
//! assert!((p - 259.0).abs() / 259.0 < 0.10); // within 10% of Fig. 7
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod fault;
pub mod obs;
pub mod power;
pub mod queue;
pub mod stats;
pub mod sweep;
pub mod time;
pub mod trace;

pub use clock::{ClockDomain, ClockId, MultiClock};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultRates, FaultRecord, FaultSpace};
pub use power::{ComponentId, PowerModel};
pub use queue::EventQueue;
pub use time::{Frequency, SimTime};
pub use trace::{Oscilloscope, PowerTrace};

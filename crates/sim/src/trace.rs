//! Power traces and the oscilloscope/shunt-resistor measurement model.
//!
//! The paper measures FPGA core power on the ML605 through a shunt resistor,
//! a high-precision current amplifier and a digital oscilloscope (Fig. 6).
//! [`PowerTrace`] is the ideal step-wise power waveform produced by the
//! simulation; [`Oscilloscope`] resamples it at a fixed sample rate through
//! the shunt/amplifier chain, which is how the Figure 7 curves are
//! regenerated.

use crate::time::SimTime;
use std::fmt::Write as _;

/// A step-wise power waveform: the power level holds between samples.
///
/// # Example
///
/// ```
/// use uparc_sim::trace::PowerTrace;
/// use uparc_sim::time::SimTime;
///
/// let mut tr = PowerTrace::new();
/// tr.push(SimTime::ZERO, 53.0);          // idle
/// tr.push(SimTime::from_us(100), 453.0); // reconfiguration burst
/// tr.push(SimTime::from_us(280), 53.0);  // back to idle
/// tr.finish(SimTime::from_us(400));
/// let e = tr.energy_uj();
/// assert!((e - (53.0*100e-6 + 453.0*180e-6 + 53.0*120e-6)*1e3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerTrace {
    /// (time, power-mW) step points, strictly increasing in time.
    steps: Vec<(SimTime, f64)>,
    /// End of the waveform; power is undefined past this point.
    end: Option<SimTime>,
}

impl PowerTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        PowerTrace::default()
    }

    /// Appends a power step at `at`. Consecutive equal-time pushes replace
    /// the previous level (last-write-wins within one instant).
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the last step or the trace is finished.
    pub fn push(&mut self, at: SimTime, power_mw: f64) {
        assert!(self.end.is_none(), "trace already finished");
        if let Some(&(last, _)) = self.steps.last() {
            assert!(at >= last, "trace steps must be time-ordered");
            if at == last {
                self.steps.last_mut().expect("nonempty").1 = power_mw;
                return;
            }
        }
        self.steps.push((at, power_mw));
    }

    /// Closes the waveform at `at`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, already finished, or `at` precedes the
    /// last step.
    pub fn finish(&mut self, at: SimTime) {
        assert!(self.end.is_none(), "trace already finished");
        let &(last, _) = self.steps.last().expect("cannot finish an empty trace");
        assert!(at >= last, "finish time precedes last step");
        self.end = Some(at);
    }

    /// The step points `(time, power-mW)`.
    #[must_use]
    pub fn steps(&self) -> &[(SimTime, f64)] {
        &self.steps
    }

    /// End time, if [`PowerTrace::finish`] was called.
    #[must_use]
    pub fn end(&self) -> Option<SimTime> {
        self.end
    }

    /// Power level at `at`, or `None` outside the waveform.
    #[must_use]
    pub fn power_at(&self, at: SimTime) -> Option<f64> {
        let end = self.end?;
        if at > end || self.steps.first().map(|&(t, _)| at < t).unwrap_or(true) {
            return None;
        }
        let idx = self.steps.partition_point(|&(t, _)| t <= at);
        Some(self.steps[idx - 1].1)
    }

    /// Exact energy of the waveform in microjoules.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not finished.
    #[must_use]
    pub fn energy_uj(&self) -> f64 {
        let end = self.end.expect("finish the trace before integrating");
        let mut e = 0.0;
        for w in self.steps.windows(2) {
            let (t0, p) = w[0];
            let (t1, _) = w[1];
            e += p * (t1 - t0).as_secs_f64();
        }
        if let Some(&(t_last, p_last)) = self.steps.last() {
            e += p_last * (end - t_last).as_secs_f64();
        }
        e * 1e3 // mW·s = mJ → µJ
    }

    /// Energy above a `floor_mw` baseline within the window `[from, to]`,
    /// in microjoules: `∫ max(0, p(t) − floor) dt`.
    ///
    /// This is the "extra energy" extraction a recovery layer needs: with
    /// `floor_mw` at the idle level, the integral isolates what the active
    /// phases inside the window actually cost.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not finished or `from > to`.
    #[must_use]
    pub fn energy_above_uj(&self, floor_mw: f64, from: SimTime, to: SimTime) -> f64 {
        let end = self.end.expect("finish the trace before integrating");
        assert!(from <= to, "energy window is reversed");
        let clip = |t: SimTime| t.clamp(from, to.min(end));
        let mut e = 0.0;
        for w in self.steps.windows(2) {
            let (t0, p) = w[0];
            let (t1, _) = w[1];
            e += (p - floor_mw).max(0.0) * (clip(t1) - clip(t0)).as_secs_f64();
        }
        if let Some(&(t_last, p_last)) = self.steps.last() {
            e += (p_last - floor_mw).max(0.0) * (clip(end) - clip(t_last)).as_secs_f64();
        }
        e * 1e3 // mW·s = mJ → µJ
    }

    /// Peak power level in mW.
    #[must_use]
    pub fn peak_mw(&self) -> f64 {
        self.steps.iter().map(|&(_, p)| p).fold(0.0, f64::max)
    }

    /// Duration for which power strictly exceeds `threshold_mw`.
    ///
    /// Useful for extracting "reconfiguration time" from a trace the way one
    /// would from an oscilloscope screenshot.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not finished.
    #[must_use]
    pub fn time_above(&self, threshold_mw: f64) -> SimTime {
        let end = self.end.expect("finish the trace first");
        let mut total = SimTime::ZERO;
        for w in self.steps.windows(2) {
            let (t0, p) = w[0];
            let (t1, _) = w[1];
            if p > threshold_mw {
                total += t1 - t0;
            }
        }
        if let Some(&(t_last, p_last)) = self.steps.last() {
            if p_last > threshold_mw {
                total += end - t_last;
            }
        }
        total
    }

    /// Renders the trace as `time_us,power_mw` CSV (header included).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut s = String::from("time_us,power_mw\n");
        for &(t, p) in &self.steps {
            let _ = writeln!(s, "{:.4},{:.3}", t.as_us_f64(), p);
        }
        if let Some(end) = self.end {
            if let Some(&(_, p)) = self.steps.last() {
                let _ = writeln!(s, "{:.4},{:.3}", end.as_us_f64(), p);
            }
        }
        s
    }
}

/// The ML605 measurement chain of Fig. 6: shunt resistor, precision current
/// amplifier and digital oscilloscope sampling at a fixed rate.
///
/// Given an ideal [`PowerTrace`] it produces `(time, sampled power)` points,
/// converting through core voltage → current → shunt voltage and back, so
/// quantisation of the amplifier can be modeled if desired.
#[derive(Debug, Clone)]
pub struct Oscilloscope {
    /// Core supply voltage (V). The paper runs the default 1.0 V.
    vcc: f64,
    /// Shunt resistance in ohms (ML605 uses milliohm-scale shunts).
    shunt_ohm: f64,
    /// Amplifier gain (V/V).
    gain: f64,
    /// Sample interval.
    sample_period: SimTime,
    /// ADC quantisation: `(bits, full-scale volts)`; `None` = ideal.
    adc: Option<(u32, f64)>,
}

impl Oscilloscope {
    /// Creates the default ML605-like chain: 1.0 V core, 5 mΩ shunt, 100×
    /// amplifier, 1 µs sample period.
    #[must_use]
    pub fn ml605() -> Self {
        Oscilloscope {
            vcc: 1.0,
            shunt_ohm: 0.005,
            gain: 100.0,
            sample_period: SimTime::from_us(1),
            adc: None,
        }
    }

    /// Models the scope's ADC: `bits` of resolution over `full_scale`
    /// volts at the amplifier output. Samples then show the quantisation
    /// staircase a real capture has.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ bits ≤ 24` and `full_scale > 0`.
    #[must_use]
    pub fn with_adc(mut self, bits: u32, full_scale: f64) -> Self {
        assert!((1..=24).contains(&bits), "adc resolution out of range");
        assert!(full_scale > 0.0, "full scale must be positive");
        self.adc = Some((bits, full_scale));
        self
    }

    /// Overrides the sample period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn with_sample_period(mut self, period: SimTime) -> Self {
        assert!(!period.is_zero(), "sample period must be non-zero");
        self.sample_period = period;
        self
    }

    /// Core current in amperes for a given power level.
    #[must_use]
    pub fn current_a(&self, power_mw: f64) -> f64 {
        power_mw / 1e3 / self.vcc
    }

    /// Amplifier output voltage for a given power level — what the scope
    /// actually digitises.
    #[must_use]
    pub fn scope_voltage(&self, power_mw: f64) -> f64 {
        self.current_a(power_mw) * self.shunt_ohm * self.gain
    }

    /// Samples a finished trace at the configured rate, returning
    /// `(time, power-mW)` points reconstructed from the scope voltage.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not finished.
    #[must_use]
    pub fn sample(&self, trace: &PowerTrace) -> Vec<(SimTime, f64)> {
        let end = trace.end().expect("finish the trace before sampling");
        let start = trace
            .steps()
            .first()
            .map(|&(t, _)| t)
            .unwrap_or(SimTime::ZERO);
        let mut out = Vec::new();
        let mut t = start;
        while t <= end {
            if let Some(p) = trace.power_at(t) {
                // Through the chain and back: voltage → current → power.
                let mut v = self.scope_voltage(p);
                if let Some((bits, full_scale)) = self.adc {
                    let levels = f64::from(1u32 << bits);
                    let lsb = full_scale / levels;
                    v = (v / lsb).round().clamp(0.0, levels) * lsb;
                }
                let i = v / self.gain / self.shunt_ohm;
                out.push((t, i * self.vcc * 1e3));
            }
            match t.checked_add(self.sample_period) {
                Some(next) => t = next,
                None => break,
            }
        }
        out
    }
}

impl Default for Oscilloscope {
    fn default() -> Self {
        Oscilloscope::ml605()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig7_like_trace() -> PowerTrace {
        // Manager burst, reconfiguration at 300 MHz, then idle (cf. Fig. 7).
        let mut tr = PowerTrace::new();
        tr.push(SimTime::ZERO, 53.0);
        tr.push(SimTime::from_us(10), 145.0); // manager control
        tr.push(SimTime::from_us(12), 453.0); // reconfiguration
        tr.push(SimTime::from_us(192), 53.0); // idle again
        tr.finish(SimTime::from_us(250));
        tr
    }

    #[test]
    fn energy_matches_hand_computation() {
        let tr = fig7_like_trace();
        let expected = (53.0 * 10.0 + 145.0 * 2.0 + 453.0 * 180.0 + 53.0 * 58.0) * 1e-6 * 1e3;
        assert!((tr.energy_uj() - expected).abs() < 1e-9);
    }

    #[test]
    fn power_at_interpolates_steps() {
        let tr = fig7_like_trace();
        assert_eq!(tr.power_at(SimTime::from_us(5)), Some(53.0));
        assert_eq!(tr.power_at(SimTime::from_us(12)), Some(453.0));
        assert_eq!(tr.power_at(SimTime::from_us(100)), Some(453.0));
        assert_eq!(tr.power_at(SimTime::from_us(200)), Some(53.0));
        assert_eq!(tr.power_at(SimTime::from_us(251)), None);
    }

    #[test]
    fn energy_above_integrates_only_the_window_excess() {
        let tr = fig7_like_trace();
        // Window covering everything, floor at idle: only the excess over
        // 53 mW counts.
        let expected = ((145.0 - 53.0) * 2.0 + (453.0 - 53.0) * 180.0) * 1e-6 * 1e3;
        let full = tr.energy_above_uj(53.0, SimTime::ZERO, SimTime::from_us(250));
        assert!((full - expected).abs() < 1e-9, "{full} vs {expected}");
        // A window clipped to half the reconfiguration plateau.
        let half = tr.energy_above_uj(53.0, SimTime::from_us(12), SimTime::from_us(102));
        assert!((half - (453.0 - 53.0) * 90.0 * 1e-6 * 1e3).abs() < 1e-9);
        // Floor above the peak: nothing left.
        assert_eq!(
            tr.energy_above_uj(1e6, SimTime::ZERO, SimTime::from_us(250)),
            0.0
        );
    }

    #[test]
    fn time_above_extracts_reconfiguration_duration() {
        let tr = fig7_like_trace();
        // Only the 453 mW plateau exceeds 200 mW; it lasts 180 µs.
        assert_eq!(tr.time_above(200.0), SimTime::from_us(180));
    }

    #[test]
    fn peak_is_reconfiguration_power() {
        assert!((fig7_like_trace().peak_mw() - 453.0).abs() < 1e-12);
    }

    #[test]
    fn equal_time_push_replaces() {
        let mut tr = PowerTrace::new();
        tr.push(SimTime::ZERO, 10.0);
        tr.push(SimTime::ZERO, 20.0);
        tr.finish(SimTime::from_us(1));
        assert_eq!(tr.steps().len(), 1);
        assert!((tr.energy_uj() - 20.0 * 1e-6 * 1e3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut tr = PowerTrace::new();
        tr.push(SimTime::from_us(5), 1.0);
        tr.push(SimTime::from_us(4), 1.0);
    }

    #[test]
    fn csv_contains_all_steps() {
        let tr = fig7_like_trace();
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_us,power_mw");
        assert_eq!(lines.len(), 1 + tr.steps().len() + 1);
    }

    #[test]
    fn oscilloscope_round_trips_power() {
        let tr = fig7_like_trace();
        let scope = Oscilloscope::ml605().with_sample_period(SimTime::from_us(10));
        let samples = scope.sample(&tr);
        assert!(!samples.is_empty());
        for (t, p) in samples {
            let ideal = tr.power_at(t).unwrap();
            assert!(
                (p - ideal).abs() < 1e-9,
                "sample at {t} off: {p} vs {ideal}"
            );
        }
    }

    #[test]
    fn oscilloscope_chain_voltages_are_sane() {
        let scope = Oscilloscope::ml605();
        // 453 mW at 1.0 V = 453 mA; through 5 mΩ = 2.265 mV; ×100 = 226.5 mV.
        assert!((scope.current_a(453.0) - 0.453).abs() < 1e-12);
        assert!((scope.scope_voltage(453.0) - 0.2265).abs() < 1e-12);
    }

    #[test]
    fn adc_quantisation_error_is_bounded_by_one_lsb() {
        let tr = fig7_like_trace();
        // 8-bit ADC over 1 V at the amplifier output: LSB = 3.9 mV, which
        // maps back to 1 LSB / (gain · shunt) · vcc = 7.8 mW of power.
        let scope = Oscilloscope::ml605()
            .with_sample_period(SimTime::from_us(10))
            .with_adc(8, 1.0);
        let lsb_power_mw = 1.0 / 256.0 / (100.0 * 0.005) * 1.0 * 1e3;
        for (t, p) in scope.sample(&tr) {
            let ideal = tr.power_at(t).unwrap();
            assert!(
                (p - ideal).abs() <= lsb_power_mw / 2.0 + 1e-9,
                "at {t}: {p} vs {ideal}"
            );
        }
        // And a coarse ADC really quantises (staircase ≠ ideal somewhere).
        let coarse = Oscilloscope::ml605()
            .with_sample_period(SimTime::from_us(10))
            .with_adc(4, 1.0);
        let any_off = coarse
            .sample(&tr)
            .iter()
            .any(|&(t, p)| (p - tr.power_at(t).unwrap()).abs() > 1.0);
        assert!(any_off, "4-bit quantisation must be visible");
    }

    #[test]
    fn sample_count_matches_duration() {
        let tr = fig7_like_trace();
        let scope = Oscilloscope::ml605(); // 1 µs period
        let samples = scope.sample(&tr);
        assert_eq!(samples.len(), 251); // 0..=250 µs inclusive
    }
}

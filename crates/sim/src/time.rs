//! Simulation time and frequency arithmetic.
//!
//! Simulated time is kept in integer **femtoseconds** so that every clock
//! frequency the UPaRC paper uses has an exactly representable period
//! ordering: 362.5 MHz has a period of 2 758 620 fs (truncated from
//! 2 758 620.689…), and cycle→time conversion is done with 128-bit
//! multiply-then-divide so the error never accumulates beyond one
//! femtosecond regardless of cycle count.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Femtoseconds per second (`1e15`).
pub const FS_PER_SEC: u64 = 1_000_000_000_000_000;
/// Femtoseconds per millisecond.
pub const FS_PER_MS: u64 = 1_000_000_000_000;
/// Femtoseconds per microsecond.
pub const FS_PER_US: u64 = 1_000_000_000;
/// Femtoseconds per nanosecond.
pub const FS_PER_NS: u64 = 1_000_000;
/// Femtoseconds per picosecond.
pub const FS_PER_PS: u64 = 1_000;

/// An instant (or duration) of simulated time, in femtoseconds.
///
/// `SimTime` is used both as a point on the simulation timeline and as a
/// duration; the arithmetic operators implement the usual affine mixing
/// (instant − instant = duration, instant + duration = instant).
///
/// The u64 range covers ~5.1 hours of simulated time at femtosecond
/// resolution, far beyond the sub-second experiments of the paper.
///
/// # Example
///
/// ```
/// use uparc_sim::time::SimTime;
///
/// let t = SimTime::from_us(550);
/// assert_eq!(t.as_ns(), 550_000);
/// assert!(t > SimTime::from_us(549));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (~5.1 simulated hours).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw femtoseconds.
    #[must_use]
    pub const fn from_fs(fs: u64) -> Self {
        SimTime(fs)
    }

    /// Creates a time from picoseconds.
    #[must_use]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps * FS_PER_PS)
    }

    /// Creates a time from nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * FS_PER_NS)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * FS_PER_US)
    }

    /// Creates a time from milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * FS_PER_MS)
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * FS_PER_SEC)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// femtosecond. Negative or non-finite inputs saturate to zero.
    #[must_use]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let fs = s * FS_PER_SEC as f64;
        if fs >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(fs.round() as u64)
        }
    }

    /// Raw femtosecond count.
    #[must_use]
    pub const fn as_fs(self) -> u64 {
        self.0
    }

    /// Truncating conversion to nanoseconds.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0 / FS_PER_NS
    }

    /// Truncating conversion to microseconds.
    #[must_use]
    pub const fn as_us(self) -> u64 {
        self.0 / FS_PER_US
    }

    /// Conversion to fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / FS_PER_SEC as f64
    }

    /// Conversion to fractional milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / FS_PER_MS as f64
    }

    /// Conversion to fractional microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / FS_PER_US as f64
    }

    /// Conversion to fractional nanoseconds.
    #[must_use]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / FS_PER_NS as f64
    }

    /// Checked addition; `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// Saturating subtraction (clamps at [`SimTime::ZERO`]).
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// `true` iff this is time zero.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulation time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation time underflow"),
        )
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("simulation time overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fs = self.0;
        if fs >= FS_PER_MS {
            write!(f, "{:.3} ms", self.as_ms_f64())
        } else if fs >= FS_PER_US {
            write!(f, "{:.3} us", self.as_us_f64())
        } else if fs >= FS_PER_NS {
            write!(f, "{:.3} ns", self.as_ns_f64())
        } else {
            write!(f, "{fs} fs")
        }
    }
}

/// A clock frequency in integer hertz.
///
/// The newtype keeps frequency arithmetic exact: cycle→time conversions go
/// through 128-bit integers, so `time_of_cycles(n)` is monotone in `n` and
/// never drifts more than 1 fs from the ideal `n / f`.
///
/// # Example
///
/// ```
/// use uparc_sim::time::Frequency;
///
/// // The paper's headline operating point.
/// let f = Frequency::from_mhz(362.5);
/// assert_eq!(f.as_hz(), 362_500_000);
/// // 32-bit ICAP word per cycle => 1.45 GB/s theoretical bandwidth.
/// assert_eq!(f.as_hz() * 4, 1_450_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// Creates a frequency from integer hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero — a stopped clock is expressed by gating, not
    /// by a zero frequency.
    #[must_use]
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Frequency(hz)
    }

    /// Creates a frequency from kilohertz.
    #[must_use]
    pub fn from_khz(khz: u64) -> Self {
        Frequency::from_hz(khz * 1_000)
    }

    /// Creates a frequency from (possibly fractional) megahertz, rounding to
    /// the nearest hertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not finite and strictly positive.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(
            mhz.is_finite() && mhz > 0.0,
            "frequency must be finite and positive, got {mhz}"
        );
        Frequency::from_hz((mhz * 1e6).round() as u64)
    }

    /// The frequency in hertz.
    #[must_use]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// The frequency in fractional megahertz.
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The period of one cycle, truncated to the femtosecond below.
    ///
    /// Prefer [`Frequency::time_of_cycles`] for multi-cycle spans — it does
    /// not accumulate the truncation error.
    #[must_use]
    pub fn period(self) -> SimTime {
        SimTime::from_fs(FS_PER_SEC / self.0)
    }

    /// Exact time at which cycle `n` completes (cycle 0 completes after one
    /// period), with ≤1 fs total error.
    #[must_use]
    pub fn time_of_cycles(self, cycles: u64) -> SimTime {
        let fs = (cycles as u128 * FS_PER_SEC as u128) / self.0 as u128;
        assert!(fs <= u64::MAX as u128, "cycle count overflows SimTime");
        SimTime::from_fs(fs as u64)
    }

    /// Number of *complete* cycles inside `window`.
    #[must_use]
    pub fn cycles_in(self, window: SimTime) -> u64 {
        let c = (window.as_fs() as u128 * self.0 as u128) / FS_PER_SEC as u128;
        c as u64
    }

    /// Multiplies by a rational factor `m / d` (the DCM output equation
    /// `F_out = F_in · M / D`), rounding to the nearest hertz.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero or the result rounds to zero hertz.
    #[must_use]
    pub fn scaled(self, m: u32, d: u32) -> Frequency {
        assert!(d > 0, "division factor must be non-zero");
        let hz = (self.0 as u128 * m as u128 + (d as u128 / 2)) / d as u128;
        assert!(
            hz > 0 && hz <= u64::MAX as u128,
            "scaled frequency out of range"
        );
        Frequency::from_hz(hz as u64)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.6} MHz", self.as_mhz())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3} kHz", self.0 as f64 / 1e3)
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

/// Bytes-per-second bandwidth helper built on exact time math.
///
/// The paper reports bandwidths in MB/s (decimal megabytes); this helper
/// centralises the convention.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Computes the effective bandwidth of moving `bytes` in `elapsed` time.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    #[must_use]
    pub fn from_transfer(bytes: u64, elapsed: SimTime) -> Self {
        assert!(
            !elapsed.is_zero(),
            "cannot compute bandwidth over zero time"
        );
        Bandwidth(bytes as f64 / elapsed.as_secs_f64())
    }

    /// Creates a bandwidth from decimal megabytes per second.
    #[must_use]
    pub fn from_mb_per_s(mb: f64) -> Self {
        Bandwidth(mb * 1e6)
    }

    /// Bandwidth in bytes per second.
    #[must_use]
    pub fn as_bytes_per_s(self) -> f64 {
        self.0
    }

    /// Bandwidth in decimal megabytes per second (the paper's unit).
    #[must_use]
    pub fn as_mb_per_s(self) -> f64 {
        self.0 / 1e6
    }

    /// Bandwidth in decimal gigabytes per second.
    #[must_use]
    pub fn as_gb_per_s(self) -> f64 {
        self.0 / 1e9
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3} GB/s", self.as_gb_per_s())
        } else {
            write!(f, "{:.1} MB/s", self.as_mb_per_s())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_unit_constructors_agree() {
        assert_eq!(SimTime::from_ps(1), SimTime::from_fs(1_000));
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn simtime_arithmetic() {
        let a = SimTime::from_ns(5);
        let b = SimTime::from_ns(3);
        assert_eq!(a + b, SimTime::from_ns(8));
        assert_eq!(a - b, SimTime::from_ns(2));
        assert_eq!(a * 4, SimTime::from_ns(20));
        assert_eq!(a / 5, SimTime::from_ns(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn simtime_sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn simtime_from_secs_f64_rounds_and_saturates() {
        assert_eq!(SimTime::from_secs_f64(1e-15), SimTime::from_fs(1));
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(1e30), SimTime::MAX);
    }

    #[test]
    fn simtime_display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_fs(12)), "12 fs");
        assert_eq!(format!("{}", SimTime::from_ns(1)), "1.000 ns");
        assert_eq!(format!("{}", SimTime::from_us(550)), "550.000 us");
        assert_eq!(format!("{}", SimTime::from_ms(2)), "2.000 ms");
    }

    #[test]
    fn frequency_period_of_paper_clocks() {
        // 100 MHz -> 10 ns.
        assert_eq!(Frequency::from_mhz(100.0).period(), SimTime::from_ns(10));
        // 362.5 MHz -> 2.758620... ns, truncated to fs.
        assert_eq!(
            Frequency::from_mhz(362.5).period(),
            SimTime::from_fs(2_758_620)
        );
    }

    #[test]
    fn frequency_time_of_cycles_has_no_drift() {
        let f = Frequency::from_mhz(362.5);
        // One million cycles at 362.5 MHz is exactly 1e6/362.5e6 s.
        let t = f.time_of_cycles(1_000_000);
        let ideal_fs = 1_000_000u128 * FS_PER_SEC as u128 / 362_500_000u128;
        assert_eq!(t.as_fs() as u128, ideal_fs);
        // Per-period truncation would have lost ~0.689 fs per cycle.
        let accumulated = f.period() * 1_000_000;
        assert!(t > accumulated);
    }

    #[test]
    fn frequency_cycles_in_inverts_time_of_cycles() {
        for &mhz in &[50.0, 100.0, 126.0, 200.0, 255.0, 300.0, 362.5] {
            let f = Frequency::from_mhz(mhz);
            for &n in &[1u64, 7, 1000, 123_456] {
                let t = f.time_of_cycles(n);
                let c = f.cycles_in(t);
                assert!(
                    c == n || c + 1 == n,
                    "{mhz} MHz, n={n}: round-trip gave {c}"
                );
            }
        }
    }

    #[test]
    fn frequency_scaled_matches_dcm_equation() {
        // The paper's DyCloGen point: 100 MHz * 29 / 8 = 362.5 MHz.
        let f = Frequency::from_mhz(100.0).scaled(29, 8);
        assert_eq!(f, Frequency::from_mhz(362.5));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn frequency_zero_rejected() {
        let _ = Frequency::from_hz(0);
    }

    #[test]
    fn bandwidth_from_transfer() {
        // 4 bytes per 10ns cycle = 400 MB/s.
        let bw = Bandwidth::from_transfer(4_000, SimTime::from_us(10));
        assert!((bw.as_mb_per_s() - 400.0).abs() < 1e-9);
        assert_eq!(format!("{bw}"), "400.0 MB/s");
        let fast = Bandwidth::from_mb_per_s(1433.0);
        assert_eq!(format!("{fast}"), "1.433 GB/s");
    }

    #[test]
    fn bandwidth_theoretical_icap_numbers() {
        // Theoretical ICAP bandwidth = 4 bytes x f. Check the paper's rows.
        let cases = [(100.0, 400.0), (200.0, 800.0), (362.5, 1450.0)];
        for (mhz, mbs) in cases {
            let f = Frequency::from_mhz(mhz);
            let t = f.time_of_cycles(1_000_000);
            let bw = Bandwidth::from_transfer(4_000_000, t);
            assert!(
                (bw.as_mb_per_s() - mbs).abs() < 0.01,
                "{mhz} MHz -> {}",
                bw.as_mb_per_s()
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn time_of_cycles_is_monotone_and_tight(
            hz in 1_000_000u64..500_000_000,
            n in 0u64..10_000_000,
        ) {
            let f = Frequency::from_hz(hz);
            let t0 = f.time_of_cycles(n);
            let t1 = f.time_of_cycles(n + 1);
            prop_assert!(t1 > t0, "strictly monotone");
            // Each cycle adds one period, up to 1 fs of truncation.
            let step = (t1 - t0).as_fs();
            let period = FS_PER_SEC / hz;
            prop_assert!(step == period || step == period + 1);
        }

        #[test]
        fn cycles_in_is_a_floor_inverse(
            hz in 1_000_000u64..500_000_000,
            n in 1u64..5_000_000,
        ) {
            let f = Frequency::from_hz(hz);
            let t = f.time_of_cycles(n);
            let c = f.cycles_in(t);
            // Truncation can lose at most one cycle.
            prop_assert!(c == n || c + 1 == n, "n={n}, c={c}");
            // And just before the nth edge, strictly fewer cycles fit.
            let before = t.saturating_sub(SimTime::from_fs(2));
            prop_assert!(f.cycles_in(before) < n);
        }

        #[test]
        fn scaled_matches_rational_arithmetic(
            hz in 1_000_000u64..200_000_000,
            m in 1u32..64,
            d in 1u32..64,
        ) {
            let f = Frequency::from_hz(hz).scaled(m, d);
            let exact = (u128::from(hz) * u128::from(m) + u128::from(d / 2)) / u128::from(d);
            prop_assert_eq!(u128::from(f.as_hz()), exact);
        }

        #[test]
        fn simtime_add_sub_round_trip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let x = SimTime::from_fs(a);
            let y = SimTime::from_fs(b);
            prop_assert_eq!((x + y) - y, x);
            prop_assert_eq!(x.saturating_sub(y) , SimTime::from_fs(a.saturating_sub(b)));
        }
    }
}

//! Deterministic fault injection: seeded plans of simulated hardware faults.
//!
//! The UPaRC paper motivates ultra-fast reconfiguration with fault-tolerant
//! systems (§I): a single-event upset (SEU) in configuration memory silently
//! corrupts the running circuit until a partial reconfiguration repairs it,
//! and the overclocked operating points of §IV (362.5 MHz ICAP, BRAM beyond
//! its 300 MHz guarantee) are exactly where transfers become marginal. This
//! module provides the *scheduling* half of a resilience campaign: a
//! [`FaultPlan`] expands a `u64` seed into a sorted list of
//! [`ScheduledFault`]s, and a [`FaultInjector`] hands them out as simulated
//! time advances while keeping a [`FaultRecord`] log of what was applied,
//! detected and recovered.
//!
//! The module is deliberately free of `uparc-fpga` types: fault kinds speak
//! in raw frame/word/bit coordinates and the consumer (the system model)
//! maps them onto its own address spaces. Everything is reproducible from
//! the seed — no wall-clock, no global RNG.

use crate::time::SimTime;

/// One kind of injectable hardware fault.
///
/// Coordinates are raw indices into a [`FaultSpace`]; the consumer maps
/// them onto concrete resources (configuration frames, staging BRAM words,
/// the ICAP datapath, a DCM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// SEU in a configuration-memory frame: one data bit flips.
    ConfigSeu {
        /// Frame address (within the plan's [`FaultSpace`]).
        frame: u32,
        /// Word index within the frame.
        word: u32,
        /// Bit index within the word (0..32).
        bit: u8,
    },
    /// SEU in the stored ECC parity word of a frame (the check word itself
    /// is upset, not the data it protects).
    ParitySeu {
        /// Frame address (within the plan's [`FaultSpace`]).
        frame: u32,
        /// Bit index within the parity word (0..32).
        bit: u8,
    },
    /// Bit flip in a staged raw/compressed stream sitting in BRAM.
    StagedFlip {
        /// Word offset into the staged image.
        word: u32,
        /// Bit index within the word (0..32).
        bit: u8,
    },
    /// Transient bus stall: the transfer engine sees no data for the given
    /// number of clock cycles before resuming.
    TransferStall {
        /// Stall length in cycles of the transfer clock.
        cycles: u32,
    },
    /// Transient CRC corruption at a marginal (overclocked) transfer clock:
    /// the next config-CRC comparison latches a corrupted checksum even if
    /// the stream itself arrived intact.
    CrcTransient,
    /// DCM retune lock failure: the next retune completes its DRP writes
    /// but the DCM never asserts LOCKED until it is retuned again.
    RetuneLockFailure,
}

impl FaultKind {
    /// Short stable label for reports and JSON output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ConfigSeu { .. } => "config_seu",
            FaultKind::ParitySeu { .. } => "parity_seu",
            FaultKind::StagedFlip { .. } => "staged_flip",
            FaultKind::TransferStall { .. } => "transfer_stall",
            FaultKind::CrcTransient => "crc_transient",
            FaultKind::RetuneLockFailure => "retune_lock_failure",
        }
    }
}

/// A fault scheduled at an exact simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Simulated time at which the fault becomes due.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The coordinate space a plan draws fault locations from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpace {
    /// First frame address eligible for SEUs.
    pub frame_base: u32,
    /// Number of frames eligible for SEUs (SEU frames land in
    /// `frame_base..frame_base + frames`).
    pub frames: u32,
    /// Words per configuration frame.
    pub frame_words: u32,
    /// Size of the staged image in BRAM words (staged flips land in
    /// `0..staged_words`).
    pub staged_words: u32,
}

/// How many faults of each kind a plan schedules over its horizon.
///
/// Counts (not probabilities) keep campaigns exactly reproducible and let a
/// grid sweep the "fault rate" axis deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultRates {
    /// SEUs in configuration-frame data.
    pub config_seu: u32,
    /// SEUs in stored frame parity words.
    pub parity_seu: u32,
    /// Bit flips in the staged BRAM image.
    pub staged_flip: u32,
    /// Transient transfer stalls.
    pub transfer_stall: u32,
    /// Transient CRC corruptions (consumed only at marginal clocks).
    pub crc_transient: u32,
    /// DCM retune lock failures.
    pub retune_lock_failure: u32,
}

impl FaultRates {
    /// Total number of faults the plan will schedule.
    #[must_use]
    pub fn total(&self) -> u32 {
        self.config_seu
            + self.parity_seu
            + self.staged_flip
            + self.transfer_stall
            + self.crc_transient
            + self.retune_lock_failure
    }
}

/// Longest stall a plan will schedule, in transfer-clock cycles (~1.6 ms at
/// the 300 MHz guaranteed BRAM clock — comfortably past any sane watchdog).
pub const MAX_STALL_CYCLES: u32 = 500_000;

/// Shortest stall a plan will schedule, in transfer-clock cycles.
pub const MIN_STALL_CYCLES: u32 = 1_000;

/// A seeded, deterministic schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<ScheduledFault>,
}

/// splitmix64 step — the same tiny generator used elsewhere in the
/// workspace; keeps `uparc-sim` dependency-free.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-stream seed from a campaign seed.
///
/// Campaign grids must never derive per-cell seeds from a flat running
/// counter: appending a chip (or a policy, or a seed replicate) would
/// shift every later cell's fault sequence and invalidate comparisons
/// across runs. `substream` is instead a pure splitmix64 mix of
/// `(seed, lane, index)` — `lane` names the grid axis (chip faults,
/// campaign cells, …), `index` the position along it — so sub-stream
/// *k*'s faults are a function of *k* alone, no matter how many other
/// sub-streams exist. `tests/fleet.rs` pins this chip-count invariance
/// for fleet chaos plans.
#[must_use]
pub fn substream(seed: u64, lane: u64, index: u64) -> u64 {
    let mut state = seed
        ^ lane.wrapping_mul(0xA076_1D64_78BD_642F)
        ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut state)
}

impl FaultPlan {
    /// Expands `seed` into a schedule of [`FaultRates::total`] faults with
    /// locations drawn from `space` and times uniform over `[0, horizon)`.
    ///
    /// The expansion is pure: the same `(seed, space, rates, horizon)`
    /// always yields the identical plan, byte for byte.
    #[must_use]
    pub fn generate(seed: u64, space: &FaultSpace, rates: &FaultRates, horizon: SimTime) -> Self {
        let mut rng = seed ^ 0xA076_1D64_78BD_642F;
        let span = horizon.as_fs().max(1);
        let at = |rng: &mut u64| SimTime::from_fs(splitmix64(rng) % span);
        let mut faults = Vec::with_capacity(rates.total() as usize);
        let frames = space.frames.max(1);
        let frame_words = space.frame_words.max(1);
        let staged_words = space.staged_words.max(1);
        for _ in 0..rates.config_seu {
            let t = at(&mut rng);
            let r = splitmix64(&mut rng);
            faults.push(ScheduledFault {
                at: t,
                kind: FaultKind::ConfigSeu {
                    frame: space.frame_base + (r as u32) % frames,
                    word: ((r >> 32) as u32) % frame_words,
                    bit: ((r >> 58) & 31) as u8,
                },
            });
        }
        for _ in 0..rates.parity_seu {
            let t = at(&mut rng);
            let r = splitmix64(&mut rng);
            faults.push(ScheduledFault {
                at: t,
                kind: FaultKind::ParitySeu {
                    frame: space.frame_base + (r as u32) % frames,
                    bit: ((r >> 58) & 31) as u8,
                },
            });
        }
        for _ in 0..rates.staged_flip {
            let t = at(&mut rng);
            let r = splitmix64(&mut rng);
            faults.push(ScheduledFault {
                at: t,
                kind: FaultKind::StagedFlip {
                    word: (r as u32) % staged_words,
                    bit: ((r >> 58) & 31) as u8,
                },
            });
        }
        for _ in 0..rates.transfer_stall {
            let t = at(&mut rng);
            let r = splitmix64(&mut rng);
            let range = MAX_STALL_CYCLES - MIN_STALL_CYCLES;
            faults.push(ScheduledFault {
                at: t,
                kind: FaultKind::TransferStall {
                    cycles: MIN_STALL_CYCLES + (r as u32) % range,
                },
            });
        }
        for _ in 0..rates.crc_transient {
            let t = at(&mut rng);
            faults.push(ScheduledFault {
                at: t,
                kind: FaultKind::CrcTransient,
            });
        }
        for _ in 0..rates.retune_lock_failure {
            let t = at(&mut rng);
            faults.push(ScheduledFault {
                at: t,
                kind: FaultKind::RetuneLockFailure,
            });
        }
        // Stable sort by time: equal-time faults keep generation order, so
        // the plan is a pure function of its inputs.
        faults.sort_by_key(|f| f.at);
        FaultPlan { seed, faults }
    }

    /// The seed this plan was expanded from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, ascending by time.
    #[must_use]
    pub fn faults(&self) -> &[ScheduledFault] {
        &self.faults
    }
}

/// Log entry for one fault that was handed out by a [`FaultInjector`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// When the plan scheduled the fault.
    pub scheduled_at: SimTime,
    /// Simulated time at which the consumer actually applied it (fault
    /// application happens at operation boundaries, so this trails
    /// `scheduled_at`).
    pub applied_at: SimTime,
    /// What was applied.
    pub kind: FaultKind,
    /// Whether any detection mechanism (CRC, ECC, watchdog, typed error)
    /// observed the fault.
    pub detected: bool,
    /// Whether the system completed its operation despite the fault.
    pub recovered: bool,
}

/// Hands out scheduled faults as simulated time advances and logs what was
/// applied.
///
/// The injector is passive: the system model polls it at operation
/// boundaries with [`FaultInjector::take_due`] /
/// [`FaultInjector::take_all_due`], which remove due faults from the
/// pending queue and append a [`FaultRecord`]. Recovery layers then mark
/// records `detected`/`recovered` via [`FaultInjector::log_mut`].
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    /// Pending faults, ascending by scheduled time.
    pending: Vec<ScheduledFault>,
    log: Vec<FaultRecord>,
}

impl FaultInjector {
    /// Creates an injector from a plan.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        FaultInjector {
            pending: plan.faults().to_vec(),
            log: Vec::new(),
        }
    }

    /// Creates an empty injector; faults can be added with
    /// [`FaultInjector::schedule`].
    #[must_use]
    pub fn empty() -> Self {
        FaultInjector::default()
    }

    /// Adds one fault, keeping the pending queue sorted by time.
    pub fn schedule(&mut self, at: SimTime, kind: FaultKind) {
        let idx = self.pending.partition_point(|f| f.at <= at);
        self.pending.insert(idx, ScheduledFault { at, kind });
    }

    /// Removes and returns the earliest pending fault that is due at `now`
    /// and matches `filter`, logging it as applied at `now`.
    pub fn take_due<F>(&mut self, now: SimTime, filter: F) -> Option<FaultKind>
    where
        F: Fn(&FaultKind) -> bool,
    {
        let idx = self
            .pending
            .iter()
            .position(|f| f.at <= now && filter(&f.kind))?;
        let fault = self.pending.remove(idx);
        self.log.push(FaultRecord {
            scheduled_at: fault.at,
            applied_at: now,
            kind: fault.kind,
            detected: false,
            recovered: false,
        });
        Some(fault.kind)
    }

    /// Removes and returns *all* pending faults due at `now` that match
    /// `filter`, in scheduled order, logging each.
    pub fn take_all_due<F>(&mut self, now: SimTime, filter: F) -> Vec<FaultKind>
    where
        F: Fn(&FaultKind) -> bool,
    {
        let mut taken = Vec::new();
        while let Some(kind) = self.take_due(now, &filter) {
            taken.push(kind);
        }
        taken
    }

    /// Faults not yet handed out, ascending by time.
    #[must_use]
    pub fn pending(&self) -> &[ScheduledFault] {
        &self.pending
    }

    /// Number of faults not yet handed out.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    /// The application log, in the order faults were handed out.
    #[must_use]
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Mutable access to the log, for recovery layers marking faults
    /// detected/recovered.
    pub fn log_mut(&mut self) -> &mut [FaultRecord] {
        &mut self.log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substreams_are_pure_and_lane_separated() {
        // Pure in (seed, lane, index): re-derivation is identical.
        assert_eq!(substream(7, 1, 0), substream(7, 1, 0));
        // Neighbouring indices, lanes and seeds all decorrelate.
        assert_ne!(substream(7, 1, 0), substream(7, 1, 1));
        assert_ne!(substream(7, 1, 0), substream(7, 2, 0));
        assert_ne!(substream(7, 1, 0), substream(8, 1, 0));
        // A whole plan expanded from a sub-stream seed is therefore
        // independent of how many sibling sub-streams the campaign has.
        let plan = |i: u64| {
            FaultPlan::generate(
                substream(99, 3, i),
                &space(),
                &FaultRates {
                    config_seu: 2,
                    transfer_stall: 1,
                    ..FaultRates::default()
                },
                SimTime::from_ms(1),
            )
        };
        assert_eq!(plan(5), plan(5));
        assert_ne!(plan(5).faults(), plan(6).faults());
    }

    fn space() -> FaultSpace {
        FaultSpace {
            frame_base: 100,
            frames: 50,
            frame_words: 41,
            staged_words: 2048,
        }
    }

    #[test]
    fn same_seed_same_plan() {
        let rates = FaultRates {
            config_seu: 3,
            parity_seu: 2,
            staged_flip: 4,
            transfer_stall: 1,
            crc_transient: 2,
            retune_lock_failure: 1,
        };
        let h = SimTime::from_us(500);
        let a = FaultPlan::generate(42, &space(), &rates, h);
        let b = FaultPlan::generate(42, &space(), &rates, h);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), rates.total() as usize);
        let c = FaultPlan::generate(43, &space(), &rates, h);
        assert_ne!(a, c, "different seed must change the plan");
    }

    #[test]
    fn plan_is_sorted_and_in_space() {
        let rates = FaultRates {
            config_seu: 20,
            staged_flip: 20,
            transfer_stall: 5,
            ..FaultRates::default()
        };
        let h = SimTime::from_ms(2);
        let plan = FaultPlan::generate(7, &space(), &rates, h);
        let faults = plan.faults();
        for pair in faults.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        for f in faults {
            assert!(f.at < h);
            match f.kind {
                FaultKind::ConfigSeu { frame, word, bit } => {
                    assert!((100..150).contains(&frame));
                    assert!(word < 41);
                    assert!(bit < 32);
                }
                FaultKind::StagedFlip { word, bit } => {
                    assert!(word < 2048);
                    assert!(bit < 32);
                }
                FaultKind::TransferStall { cycles } => {
                    assert!((MIN_STALL_CYCLES..MAX_STALL_CYCLES).contains(&cycles));
                }
                other => panic!("unexpected kind {other:?}"),
            }
        }
    }

    #[test]
    fn injector_hands_out_due_faults_in_order() {
        let mut inj = FaultInjector::empty();
        inj.schedule(SimTime::from_us(30), FaultKind::CrcTransient);
        inj.schedule(
            SimTime::from_us(10),
            FaultKind::StagedFlip { word: 5, bit: 3 },
        );
        inj.schedule(
            SimTime::from_us(20),
            FaultKind::TransferStall { cycles: 5_000 },
        );
        assert_eq!(inj.remaining(), 3);
        // Nothing due yet.
        assert_eq!(inj.take_due(SimTime::from_us(5), |_| true), None);
        // Filter skips non-matching kinds even when earlier.
        let stall = inj.take_due(SimTime::from_us(25), |k| {
            matches!(k, FaultKind::TransferStall { .. })
        });
        assert_eq!(stall, Some(FaultKind::TransferStall { cycles: 5_000 }));
        // take_all_due drains what is left in scheduled order.
        let rest = inj.take_all_due(SimTime::from_ms(1), |_| true);
        assert_eq!(
            rest,
            vec![
                FaultKind::StagedFlip { word: 5, bit: 3 },
                FaultKind::CrcTransient
            ]
        );
        assert_eq!(inj.remaining(), 0);
        assert_eq!(inj.log().len(), 3);
        assert!(inj.log().iter().all(|r| !r.detected && !r.recovered));
    }
}

//! Structured observability: typed trace events, a metrics registry, and
//! deterministic exporters.
//!
//! The paper's entire evaluation method is *instrumentation* — a
//! shunt-resistor/oscilloscope rig that turns reconfiguration activity
//! into timestamped power waveforms (Fig. 6–7). This module is the
//! software analogue for the whole stack: every subsystem (the ICAP burst
//! path, DyCloGen retunes, the compressed datapath, the recovery ladder,
//! the `uparc-serve` scheduler) reports *typed* spans and instants stamped
//! with [`SimTime`], and feeds named counters/gauges/histograms, through
//! one cheap handle — [`Obs`].
//!
//! # Architecture
//!
//! ```text
//!   UParc ── DyCloGen ── Icap ── RecoveryPolicy ── Service
//!      \        |          |          |              /
//!       `───────┴──────────┴── Obs ───┴─────────────'      (cheap handle:
//!                               │                           lane tag +
//!                  ┌────────────┴─────────────┐             enabled flag)
//!                  ▼                          ▼
//!         dyn Recorder                     Metrics
//!      (NullRecorder | TraceRecorder)   (counters/gauges/
//!                  │                     log₂ histograms)
//!                  ▼                          │
//!         ring buffer of TraceEvent           │
//!                  │                          │
//!        ┌─────────┴──────────┐               │
//!        ▼                    ▼               ▼
//!  chrome_trace()      flame_summary()   render_text()
//!  (chrome://tracing,  (per-lane text    (aligned name/
//!   Perfetto)           flamegraph)       value table)
//! ```
//!
//! # Design constraints
//!
//! * **Zero dependencies** — events, metrics, the Chrome `trace_event`
//!   exporter and the [`json`] round-trip parser are all std-only.
//! * **Hot path stays clean** — the default [`Obs::null`] handle carries a
//!   [`NullRecorder`] and reports [`Obs::enabled`]` == false`; every
//!   instrumentation site guards on that single bool, so an unobserved
//!   run does no formatting, no locking and no allocation
//!   (`bench_throughput` gates the overhead at ≤2%).
//! * **Determinism** — recorders stamp [`SimTime`] (never wall clock),
//!   span ids are assigned monotonically, histogram buckets are exact
//!   log₂ buckets, and exporters format floats with fixed precision, so
//!   identical seeds produce byte-identical exports.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use uparc_sim::obs::{EventKind, Obs, TraceRecorder};
//! use uparc_sim::time::SimTime;
//!
//! let recorder = Arc::new(TraceRecorder::new());
//! let obs = Obs::recording(Arc::clone(&recorder)).with_lane(0);
//!
//! let span = obs.begin(SimTime::ZERO, EventKind::IcapBurst { words: 1024 });
//! obs.count("icap.words", 1024);
//! obs.end(SimTime::from_us(3), span);
//!
//! let trace = recorder.chrome_trace(Some(obs.metrics()));
//! assert!(trace.contains("\"IcapBurst\""));
//! // The export is valid JSON by the in-repo parser:
//! uparc_sim::obs::json::parse(&trace).unwrap();
//! ```

mod event;
mod export;
pub mod json;
mod metrics;
mod recorder;

pub use event::{EventKind, SpanId, TraceEvent};
pub use export::{chrome_trace, flame_summary};
pub use metrics::{Histogram, Metrics, MetricsSnapshot};
pub use recorder::{NullRecorder, Recorder, TraceRecorder};

use crate::time::SimTime;
use std::sync::{Arc, OnceLock};

/// The cheap, clonable observability handle every instrumented component
/// holds: a [`Recorder`] for spans/instants, a [`Metrics`] registry, an
/// optional lane/region tag, and a cached `enabled` flag.
///
/// The default ([`Obs::null`]) is a no-op: [`Obs::enabled`] is `false`
/// and every call returns immediately after one branch. Components must
/// treat the handle as fire-and-forget — observability never changes
/// simulated time or behaviour.
#[derive(Clone)]
pub struct Obs {
    recorder: Arc<dyn Recorder>,
    metrics: Arc<Metrics>,
    /// Lane (serve: region index) stamped onto every event sent through
    /// this handle; `None` for system-wide events.
    lane: Option<u32>,
    /// Cached `recorder.is_enabled()` — the one branch hot paths pay.
    enabled: bool,
}

impl Obs {
    /// The disabled handle: a [`NullRecorder`] and a shared throwaway
    /// registry. Allocation-free (both are process-wide statics).
    #[must_use]
    pub fn null() -> Obs {
        static NULL_RECORDER: OnceLock<Arc<NullRecorder>> = OnceLock::new();
        static NULL_METRICS: OnceLock<Arc<Metrics>> = OnceLock::new();
        let recorder = Arc::clone(NULL_RECORDER.get_or_init(|| Arc::new(NullRecorder)));
        let metrics = Arc::clone(NULL_METRICS.get_or_init(|| Arc::new(Metrics::new())));
        Obs {
            recorder,
            metrics,
            lane: None,
            enabled: false,
        }
    }

    /// An enabled handle over `recorder` with a fresh [`Metrics`]
    /// registry.
    #[must_use]
    pub fn recording(recorder: Arc<TraceRecorder>) -> Obs {
        Obs::new(recorder, Arc::new(Metrics::new()))
    }

    /// An enabled/disabled handle (per `recorder.is_enabled()`) over an
    /// explicit recorder + registry pair.
    #[must_use]
    pub fn new(recorder: Arc<dyn Recorder>, metrics: Arc<Metrics>) -> Obs {
        let enabled = recorder.is_enabled();
        Obs {
            recorder,
            metrics,
            lane: None,
            enabled,
        }
    }

    /// A copy of this handle with every event tagged with `lane` (the
    /// serve layer tags one handle per region).
    #[must_use]
    pub fn with_lane(&self, lane: u32) -> Obs {
        let mut o = self.clone();
        o.lane = Some(lane);
        o
    }

    /// The lane tag of this handle, if any.
    #[must_use]
    pub fn lane(&self) -> Option<u32> {
        self.lane
    }

    /// Whether events are actually recorded. Instrumentation sites that
    /// would otherwise compute event payloads should guard on this.
    #[must_use]
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry behind this handle.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The shared metrics registry (for handing to another component).
    #[must_use]
    pub fn metrics_arc(&self) -> Arc<Metrics> {
        Arc::clone(&self.metrics)
    }

    /// Opens a span of `kind` at `at`; returns its id for [`Obs::end`].
    /// No-op ([`SpanId::NULL`]) when disabled.
    #[inline]
    pub fn begin(&self, at: SimTime, kind: EventKind) -> SpanId {
        if !self.enabled {
            return SpanId::NULL;
        }
        self.recorder.begin(at, self.lane, kind)
    }

    /// Closes span `span` at `at`. No-op when disabled or `span` is
    /// [`SpanId::NULL`].
    #[inline]
    pub fn end(&self, at: SimTime, span: SpanId) {
        if self.enabled && span != SpanId::NULL {
            self.recorder.end(at, span);
        }
    }

    /// Records a zero-duration instant of `kind` at `at`.
    #[inline]
    pub fn instant(&self, at: SimTime, kind: EventKind) {
        if self.enabled {
            self.recorder.instant(at, self.lane, kind);
        }
    }

    /// Adds `delta` to counter `name`. No-op when disabled.
    #[inline]
    pub fn count(&self, name: &str, delta: u64) {
        if self.enabled {
            self.metrics.count(name, delta);
        }
    }

    /// Sets gauge `name` to `value`. No-op when disabled.
    #[inline]
    pub fn gauge(&self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.gauge(name, value);
        }
    }

    /// Records `value` into histogram `name`. No-op when disabled.
    #[inline]
    pub fn observe(&self, name: &str, value: f64) {
        if self.enabled {
            self.metrics.observe(name, value);
        }
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::null()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled)
            .field("lane", &self.lane)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_handle_is_disabled_and_free() {
        let obs = Obs::null();
        assert!(!obs.enabled());
        let span = obs.begin(SimTime::ZERO, EventKind::Dispatch { request: 1 });
        assert_eq!(span, SpanId::NULL);
        obs.end(SimTime::from_us(1), span);
        obs.count("x", 1);
        obs.observe("y", 2.0);
        // Nothing reached the (shared) null registry.
        assert!(obs.metrics().snapshot().counters.is_empty());
    }

    #[test]
    fn recording_handle_captures_spans_with_lane_tags() {
        let rec = Arc::new(TraceRecorder::new());
        let obs = Obs::recording(Arc::clone(&rec)).with_lane(3);
        assert!(obs.enabled());
        let s = obs.begin(SimTime::from_us(1), EventKind::IcapBurst { words: 8 });
        obs.end(SimTime::from_us(2), s);
        obs.instant(
            SimTime::from_us(2),
            EventKind::CapSample {
                total_mw: 100.0,
                cap_mw: 500.0,
            },
        );
        let events = rec.events();
        assert_eq!(events.len(), 3);
        match &events[0] {
            TraceEvent::Begin { lane, .. } => assert_eq!(*lane, Some(3)),
            other => panic!("expected Begin, got {other:?}"),
        }
    }

    #[test]
    fn with_lane_does_not_alias_the_parent_tag() {
        let rec = Arc::new(TraceRecorder::new());
        let root = Obs::recording(rec);
        let tagged = root.with_lane(7);
        assert_eq!(root.lane(), None);
        assert_eq!(tagged.lane(), Some(7));
    }
}

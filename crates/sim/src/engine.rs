//! A small process-based discrete-event kernel.
//!
//! The cycle-stepped models (UReC, the baseline controllers) advance time
//! analytically; system-level scenarios — schedulers juggling several
//! partitions, managers reacting to completion events — want *asynchronous*
//! composition. The engine provides it: processes own their state, react to
//! typed events, and schedule further events; the kernel dispatches them in
//! deterministic time order (FIFO within an instant, by target id within a
//! batch).
//!
//! # Dispatch model
//!
//! Processes live in a **slab**: a slot table with a free list, so
//! [`Engine::despawn`] returns a process's state mid-simulation and its
//! slot is recycled by the next [`Engine::spawn`]. Events addressed to a
//! vacated slot are dropped (counted in [`Engine::dropped`]), mirroring a
//! hardware module that has been swapped out ignoring stale requests.
//!
//! The run loop is **batched**: [`Engine::step_instant`] drains *all*
//! events at the current timestamp in one [`EventQueue::pop_instant`] call
//! and dispatches them back-to-back from a reusable buffer. Steady-state
//! dispatch therefore performs no heap allocation — the queue's internal
//! containers and the engine's batch buffer all retain their capacity.
//! Delivery order within an instant is exactly insertion order, so the
//! batched loop is observably identical to the one-event [`Engine::step`]
//! loop (same handler order, same final state, same `now`).
//!
//! # Example
//!
//! A requester fires reconfiguration requests; a controller process serves
//! them with a fixed latency:
//!
//! ```
//! use uparc_sim::engine::{Engine, Process, ProcessId, Context};
//! use uparc_sim::time::SimTime;
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Ev { Request, Done }
//!
//! struct Controller { served: u32 }
//! impl Process<Ev> for Controller {
//!     fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
//!         if ev == Ev::Request {
//!             self.served += 1;
//!             ctx.send_in(SimTime::from_us(150), ctx.self_id(), Ev::Done);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let ctrl = engine.spawn(Box::new(Controller { served: 0 }));
//! engine.schedule(SimTime::ZERO, ctrl, Ev::Request);
//! engine.schedule(SimTime::from_us(100), ctrl, Ev::Request);
//! engine.run();
//! assert_eq!(engine.now(), SimTime::from_us(250)); // last Done event
//! ```

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Identifier of a spawned process: a slab slot index plus a generation
/// counter, so an id stays unique even after its slot is recycled (a stale
/// id never aliases the slot's next occupant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(usize, u32);

/// A reactive process: owns state, handles events, schedules more.
///
/// `Any` is a supertrait so callers can downcast [`Engine::process`] /
/// [`Engine::process_mut`] back to the concrete type — to wire mutually-
/// referencing processes after both ids are known, and to extract results
/// after a run.
pub trait Process<E>: std::any::Any {
    /// Reacts to `event`, possibly scheduling further events through `ctx`.
    fn handle(&mut self, ctx: &mut Context<'_, E>, event: E);
}

/// The scheduling interface handed to a process during dispatch.
#[derive(Debug)]
pub struct Context<'a, E> {
    queue: &'a mut EventQueue<(ProcessId, E)>,
    now: SimTime,
    self_id: ProcessId,
}

impl<E> Context<'_, E> {
    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the process being dispatched.
    #[must_use]
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Schedules `event` for `target` at `delay` after now.
    pub fn send_in(&mut self, delay: SimTime, target: ProcessId, event: E) {
        self.queue.schedule(self.now + delay, (target, event));
    }

    /// Schedules `event` for `target` at the current instant (delta cycle).
    pub fn send_now(&mut self, target: ProcessId, event: E) {
        self.queue.schedule(self.now, (target, event));
    }
}

/// One slab slot: the process (if live) and the slot's generation.
struct Slot<E> {
    /// Bumped on despawn, so stale [`ProcessId`]s never match again.
    generation: u32,
    process: Option<Box<dyn Process<E>>>,
}

/// The event-dispatch kernel.
///
/// `E: 'static` because processes are type-erased trait objects (events are
/// owned values, so this costs nothing in practice).
pub struct Engine<E: 'static> {
    /// Slab of process slots; `process: None` marks a recyclable slot.
    slots: Vec<Slot<E>>,
    /// Indices of vacated slots, reused LIFO by [`Engine::spawn`].
    free: Vec<usize>,
    /// Occupied slot count.
    live: usize,
    queue: EventQueue<(ProcessId, E)>,
    /// Reusable same-instant delivery buffer (empty between steps).
    batch: Vec<(ProcessId, E)>,
    dispatched: u64,
    dropped: u64,
}

impl<E: 'static> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: 'static> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("processes", &self.live)
            .field("pending", &self.queue.len())
            .field("dispatched", &self.dispatched)
            .field("dropped", &self.dropped)
            .field("now", &self.now())
            .finish()
    }
}

impl<E: 'static> Engine<E> {
    /// Creates an empty engine at time zero.
    #[must_use]
    pub fn new() -> Self {
        Engine {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            queue: EventQueue::new(),
            batch: Vec::new(),
            dispatched: 0,
            dropped: 0,
        }
    }

    /// Registers a process, returning its id (vacated slots are reused).
    pub fn spawn(&mut self, process: Box<dyn Process<E>>) -> ProcessId {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx];
            debug_assert!(slot.process.is_none());
            slot.process = Some(process);
            ProcessId(idx, slot.generation)
        } else {
            self.slots.push(Slot {
                generation: 0,
                process: Some(process),
            });
            ProcessId(self.slots.len() - 1, 0)
        }
    }

    /// Removes a process from the engine, returning its state. Pending
    /// events addressed to it are silently dropped at dispatch time
    /// (counted in [`Engine::dropped`]); the slot is recycled by the next
    /// [`Engine::spawn`] under a fresh generation, so stale ids never
    /// alias the newcomer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live process on this engine.
    pub fn despawn(&mut self, id: ProcessId) -> Box<dyn Process<E>> {
        let slot = self
            .slots
            .get_mut(id.0)
            .filter(|s| s.generation == id.1)
            .unwrap_or_else(|| panic!("unknown process {id:?}"));
        let process = slot
            .process
            .take()
            .unwrap_or_else(|| panic!("unknown process {id:?}"));
        slot.generation += 1;
        self.free.push(id.0);
        self.live -= 1;
        process
    }

    /// Number of live (spawned, not despawned) processes.
    #[must_use]
    pub fn live_processes(&self) -> usize {
        self.live
    }

    /// Schedules an initial event.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a live process on this engine, or `at`
    /// lies in the past.
    pub fn schedule(&mut self, at: SimTime, target: ProcessId, event: E) {
        assert!(
            self.slots
                .get(target.0)
                .is_some_and(|s| s.generation == target.1 && s.process.is_some()),
            "unknown process {target:?}"
        );
        self.queue.schedule(at, (target, event));
    }

    /// Current simulation time (time of the last dispatched event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Events dropped because their target had been despawned.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Dispatches the next single event; `false` when the queue is empty.
    ///
    /// The batched [`Engine::step_instant`] is the faster run-loop
    /// primitive; `step` remains for callers that want to observe the
    /// simulation between individual events.
    pub fn step(&mut self) -> bool {
        let Some((now, (target, event))) = self.queue.pop() else {
            return false;
        };
        self.deliver(now, target, event);
        true
    }

    /// Dispatches *all* events at the next pending timestamp as one batch
    /// (in FIFO order); `false` when the queue is empty.
    ///
    /// Events a handler schedules for the same instant (delta cycles) land
    /// in the *next* batch at the same timestamp, preserving the exact
    /// delivery order of the one-event loop.
    pub fn step_instant(&mut self) -> bool {
        let mut batch = std::mem::take(&mut self.batch);
        debug_assert!(batch.is_empty());
        let Some(now) = self.queue.pop_instant(&mut batch) else {
            self.batch = batch;
            return false;
        };
        for (target, event) in batch.drain(..) {
            self.deliver(now, target, event);
        }
        self.batch = batch;
        true
    }

    /// Hands one event to its target, or drops it if the target was
    /// despawned (vacant slot or stale generation).
    fn deliver(&mut self, now: SimTime, target: ProcessId, event: E) {
        let mut ctx = Context {
            queue: &mut self.queue,
            now,
            self_id: target,
        };
        let slot = &mut self.slots[target.0];
        match slot
            .process
            .as_deref_mut()
            .filter(|_| slot.generation == target.1)
        {
            Some(process) => {
                self.dispatched += 1;
                process.handle(&mut ctx, event);
            }
            None => self.dropped += 1,
        }
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        while self.step_instant() {}
    }

    /// Runs until `deadline` (events at later times stay queued).
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.queue.peek_time().is_some_and(|t| t <= deadline) {
            self.step_instant();
        }
    }

    /// Immutable access to a process (for result extraction after a run).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live process on this engine.
    #[must_use]
    pub fn process(&self, id: ProcessId) -> &dyn Process<E> {
        self.slots
            .get(id.0)
            .filter(|s| s.generation == id.1)
            .and_then(|s| s.process.as_deref())
            .unwrap_or_else(|| panic!("unknown process {id:?}"))
    }

    /// Mutable access to a process — used to wire mutually-referencing
    /// processes after both have been spawned (ids are only known then);
    /// downcast with `(… as &mut dyn Any).downcast_mut::<P>()`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a live process on this engine.
    pub fn process_mut(&mut self, id: ProcessId) -> &mut dyn Process<E> {
        self.slots
            .get_mut(id.0)
            .filter(|s| s.generation == id.1)
            .and_then(|s| s.process.as_deref_mut())
            .unwrap_or_else(|| panic!("unknown process {id:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Ev {
        Ping,
        Pong,
        Tick(u32),
    }

    /// Replies to Ping with Pong after 10 ns; counts everything it sees.
    struct Echo {
        peer: Option<ProcessId>,
        seen: u32,
    }

    impl Process<Ev> for Echo {
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            self.seen += 1;
            if ev == Ev::Ping {
                if let Some(peer) = self.peer {
                    ctx.send_in(SimTime::from_ns(10), peer, Ev::Pong);
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut engine = Engine::new();
        let b = engine.spawn(Box::new(Echo {
            peer: None,
            seen: 0,
        }));
        let a = engine.spawn(Box::new(Echo {
            peer: Some(b),
            seen: 0,
        }));
        engine.schedule(SimTime::from_ns(5), a, Ev::Ping);
        engine.run();
        assert_eq!(engine.now(), SimTime::from_ns(15));
        assert_eq!(engine.dispatched(), 2);
    }

    /// Emits Tick(n-1) to itself until n == 0.
    struct Countdown {
        fired: Vec<u32>,
    }

    impl Process<Ev> for Countdown {
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            if let Ev::Tick(n) = ev {
                self.fired.push(n);
                if n > 0 {
                    ctx.send_in(SimTime::from_us(1), ctx.self_id(), Ev::Tick(n - 1));
                }
            }
        }
    }

    #[test]
    fn self_scheduling_loops_terminate() {
        let mut engine = Engine::new();
        let c = engine.spawn(Box::new(Countdown { fired: Vec::new() }));
        engine.schedule(SimTime::ZERO, c, Ev::Tick(5));
        engine.run();
        assert_eq!(engine.now(), SimTime::from_us(5));
        assert_eq!(engine.dispatched(), 6);
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut engine = Engine::new();
        let c = engine.spawn(Box::new(Countdown { fired: Vec::new() }));
        engine.schedule(SimTime::ZERO, c, Ev::Tick(10));
        engine.run_until(SimTime::from_us(3));
        assert_eq!(engine.now(), SimTime::from_us(3));
        assert_eq!(engine.dispatched(), 4); // ticks 10, 9, 8, 7
        engine.run();
        assert_eq!(engine.dispatched(), 11);
    }

    #[test]
    fn delta_cycles_dispatch_in_fifo_order() {
        struct Recorder {
            order: Vec<u32>,
        }
        impl Process<Ev> for Recorder {
            fn handle(&mut self, _ctx: &mut Context<'_, Ev>, ev: Ev) {
                if let Ev::Tick(n) = ev {
                    self.order.push(n);
                }
            }
        }
        let mut engine = Engine::new();
        let r = engine.spawn(Box::new(Recorder { order: Vec::new() }));
        for n in 0..50 {
            engine.schedule(SimTime::from_ns(100), r, Ev::Tick(n));
        }
        engine.run();
        assert_eq!(engine.dispatched(), 50);
        assert_eq!(engine.now(), SimTime::from_ns(100));
        let rec: &Recorder = (engine.process(r) as &dyn std::any::Any)
            .downcast_ref()
            .expect("concrete type");
        assert_eq!(
            rec.order,
            (0..50).collect::<Vec<_>>(),
            "FIFO within an instant"
        );
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn scheduling_to_unknown_process_panics() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(SimTime::ZERO, ProcessId(3, 0), Ev::Ping);
    }

    #[test]
    fn same_instant_sends_land_in_the_next_batch_in_order() {
        /// On Ping, emits two same-instant Ticks to itself; records order.
        struct Delta {
            order: Vec<u32>,
            emitted: bool,
        }
        impl Process<Ev> for Delta {
            fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
                match ev {
                    Ev::Ping if !self.emitted => {
                        self.emitted = true;
                        ctx.send_now(ctx.self_id(), Ev::Tick(1));
                        ctx.send_now(ctx.self_id(), Ev::Tick(2));
                    }
                    Ev::Tick(n) => self.order.push(n),
                    _ => {}
                }
            }
        }
        let mut engine = Engine::new();
        let d = engine.spawn(Box::new(Delta {
            order: Vec::new(),
            emitted: false,
        }));
        engine.schedule(SimTime::from_ns(1), d, Ev::Ping);
        engine.schedule(SimTime::from_ns(1), d, Ev::Tick(0));
        engine.run();
        let delta: &Delta = (engine.process(d) as &dyn std::any::Any)
            .downcast_ref()
            .expect("concrete");
        // Tick(0) was already in the first batch; the delta-cycle sends
        // arrive in the follow-up batch at the same instant, in order.
        assert_eq!(delta.order, vec![0, 1, 2]);
        assert_eq!(engine.now(), SimTime::from_ns(1));
        assert_eq!(engine.dispatched(), 4);
    }

    #[test]
    fn despawn_recycles_slots_and_drops_stale_events() {
        let mut engine = Engine::new();
        let a = engine.spawn(Box::new(Echo {
            peer: None,
            seen: 0,
        }));
        let b = engine.spawn(Box::new(Echo {
            peer: None,
            seen: 0,
        }));
        engine.schedule(SimTime::from_ns(10), a, Ev::Ping);
        engine.schedule(SimTime::from_ns(10), b, Ev::Ping);
        let removed = engine.despawn(a);
        let echo: &Echo = (removed.as_ref() as &dyn std::any::Any)
            .downcast_ref()
            .expect("concrete");
        assert_eq!(echo.seen, 0);
        assert_eq!(engine.live_processes(), 1);

        // The vacated slot is reused under a fresh generation; the stale
        // event for `a` must NOT reach the newcomer in the same slot.
        let c = engine.spawn(Box::new(Countdown { fired: Vec::new() }));
        assert_eq!(c.0, a.0, "slab reuses the freed slot index");
        assert_ne!(c, a, "recycled slot gets a fresh generation");
        engine.run();
        assert_eq!(engine.dispatched(), 1); // only b's Ping
        assert_eq!(engine.dropped(), 1); // a's Ping
        let cd: &Countdown = (engine.process(c) as &dyn std::any::Any)
            .downcast_ref()
            .expect("concrete");
        assert!(cd.fired.is_empty(), "stale event leaked into recycled slot");
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn scheduling_to_despawned_process_panics() {
        let mut engine = Engine::new();
        let a = engine.spawn(Box::new(Echo {
            peer: None,
            seen: 0,
        }));
        engine.despawn(a);
        engine.schedule(SimTime::ZERO, a, Ev::Ping);
    }
}

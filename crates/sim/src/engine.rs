//! A small process-based discrete-event kernel.
//!
//! The cycle-stepped models (UReC, the baseline controllers) advance time
//! analytically; system-level scenarios — schedulers juggling several
//! partitions, managers reacting to completion events — want *asynchronous*
//! composition. The engine provides it: processes own their state, react to
//! typed events, and schedule further events; the kernel dispatches them in
//! deterministic time order (FIFO within an instant, by target id within a
//! batch).
//!
//! # Example
//!
//! A requester fires reconfiguration requests; a controller process serves
//! them with a fixed latency:
//!
//! ```
//! use uparc_sim::engine::{Engine, Process, ProcessId, Context};
//! use uparc_sim::time::SimTime;
//!
//! #[derive(Debug, Clone, PartialEq)]
//! enum Ev { Request, Done }
//!
//! struct Controller { served: u32 }
//! impl Process<Ev> for Controller {
//!     fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
//!         if ev == Ev::Request {
//!             self.served += 1;
//!             ctx.send_in(SimTime::from_us(150), ctx.self_id(), Ev::Done);
//!         }
//!     }
//! }
//!
//! let mut engine = Engine::new();
//! let ctrl = engine.spawn(Box::new(Controller { served: 0 }));
//! engine.schedule(SimTime::ZERO, ctrl, Ev::Request);
//! engine.schedule(SimTime::from_us(100), ctrl, Ev::Request);
//! engine.run();
//! assert_eq!(engine.now(), SimTime::from_us(250)); // last Done event
//! ```

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Identifier of a spawned process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProcessId(usize);

/// A reactive process: owns state, handles events, schedules more.
///
/// `Any` is a supertrait so callers can downcast [`Engine::process`] /
/// [`Engine::process_mut`] back to the concrete type — to wire mutually-
/// referencing processes after both ids are known, and to extract results
/// after a run.
pub trait Process<E>: std::any::Any {
    /// Reacts to `event`, possibly scheduling further events through `ctx`.
    fn handle(&mut self, ctx: &mut Context<'_, E>, event: E);
}

/// The scheduling interface handed to a process during dispatch.
#[derive(Debug)]
pub struct Context<'a, E> {
    queue: &'a mut EventQueue<(ProcessId, E)>,
    now: SimTime,
    self_id: ProcessId,
}

impl<E> Context<'_, E> {
    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the process being dispatched.
    #[must_use]
    pub fn self_id(&self) -> ProcessId {
        self.self_id
    }

    /// Schedules `event` for `target` at `delay` after now.
    pub fn send_in(&mut self, delay: SimTime, target: ProcessId, event: E) {
        self.queue.schedule(self.now + delay, (target, event));
    }

    /// Schedules `event` for `target` at the current instant (delta cycle).
    pub fn send_now(&mut self, target: ProcessId, event: E) {
        self.queue.schedule(self.now, (target, event));
    }
}

/// The event-dispatch kernel.
///
/// `E: 'static` because processes are type-erased trait objects (events are
/// owned values, so this costs nothing in practice).
pub struct Engine<E: 'static> {
    processes: Vec<Box<dyn Process<E>>>,
    queue: EventQueue<(ProcessId, E)>,
    dispatched: u64,
}

impl<E: 'static> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: 'static> std::fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("processes", &self.processes.len())
            .field("pending", &self.queue.len())
            .field("dispatched", &self.dispatched)
            .field("now", &self.now())
            .finish()
    }
}

impl<E: 'static> Engine<E> {
    /// Creates an empty engine at time zero.
    #[must_use]
    pub fn new() -> Self {
        Engine { processes: Vec::new(), queue: EventQueue::new(), dispatched: 0 }
    }

    /// Registers a process, returning its id.
    pub fn spawn(&mut self, process: Box<dyn Process<E>>) -> ProcessId {
        self.processes.push(process);
        ProcessId(self.processes.len() - 1)
    }

    /// Schedules an initial event.
    ///
    /// # Panics
    ///
    /// Panics if `target` was not spawned on this engine, or `at` lies in
    /// the past.
    pub fn schedule(&mut self, at: SimTime, target: ProcessId, event: E) {
        assert!(target.0 < self.processes.len(), "unknown process {target:?}");
        self.queue.schedule(at, (target, event));
    }

    /// Current simulation time (time of the last dispatched event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events dispatched so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Dispatches the next event; `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((now, (target, event))) = self.queue.pop() else {
            return false;
        };
        self.dispatched += 1;
        let mut ctx = Context { queue: &mut self.queue, now, self_id: target };
        self.processes[target.0].handle(&mut ctx, event);
        true
    }

    /// Runs until no events remain.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs until `deadline` (events at later times stay queued).
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.queue.peek_time().is_some_and(|t| t <= deadline) {
            self.step();
        }
    }

    /// Immutable access to a process (for result extraction after a run).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not spawned on this engine.
    #[must_use]
    pub fn process(&self, id: ProcessId) -> &dyn Process<E> {
        self.processes[id.0].as_ref()
    }

    /// Mutable access to a process — used to wire mutually-referencing
    /// processes after both have been spawned (ids are only known then);
    /// downcast with `(… as &mut dyn Any).downcast_mut::<P>()`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not spawned on this engine.
    pub fn process_mut(&mut self, id: ProcessId) -> &mut dyn Process<E> {
        self.processes[id.0].as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Ev {
        Ping,
        Pong,
        Tick(u32),
    }

    /// Replies to Ping with Pong after 10 ns; counts everything it sees.
    struct Echo {
        peer: Option<ProcessId>,
        seen: u32,
    }

    impl Process<Ev> for Echo {
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            self.seen += 1;
            if ev == Ev::Ping {
                if let Some(peer) = self.peer {
                    ctx.send_in(SimTime::from_ns(10), peer, Ev::Pong);
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut engine = Engine::new();
        let b = engine.spawn(Box::new(Echo { peer: None, seen: 0 }));
        let a = engine.spawn(Box::new(Echo { peer: Some(b), seen: 0 }));
        engine.schedule(SimTime::from_ns(5), a, Ev::Ping);
        engine.run();
        assert_eq!(engine.now(), SimTime::from_ns(15));
        assert_eq!(engine.dispatched(), 2);
    }

    /// Emits Tick(n-1) to itself until n == 0.
    struct Countdown {
        fired: Vec<u32>,
    }

    impl Process<Ev> for Countdown {
        fn handle(&mut self, ctx: &mut Context<'_, Ev>, ev: Ev) {
            if let Ev::Tick(n) = ev {
                self.fired.push(n);
                if n > 0 {
                    ctx.send_in(SimTime::from_us(1), ctx.self_id(), Ev::Tick(n - 1));
                }
            }
        }
    }

    #[test]
    fn self_scheduling_loops_terminate() {
        let mut engine = Engine::new();
        let c = engine.spawn(Box::new(Countdown { fired: Vec::new() }));
        engine.schedule(SimTime::ZERO, c, Ev::Tick(5));
        engine.run();
        assert_eq!(engine.now(), SimTime::from_us(5));
        assert_eq!(engine.dispatched(), 6);
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut engine = Engine::new();
        let c = engine.spawn(Box::new(Countdown { fired: Vec::new() }));
        engine.schedule(SimTime::ZERO, c, Ev::Tick(10));
        engine.run_until(SimTime::from_us(3));
        assert_eq!(engine.now(), SimTime::from_us(3));
        assert_eq!(engine.dispatched(), 4); // ticks 10, 9, 8, 7
        engine.run();
        assert_eq!(engine.dispatched(), 11);
    }

    #[test]
    fn delta_cycles_dispatch_in_fifo_order() {
        struct Recorder {
            order: Vec<u32>,
        }
        impl Process<Ev> for Recorder {
            fn handle(&mut self, _ctx: &mut Context<'_, Ev>, ev: Ev) {
                if let Ev::Tick(n) = ev {
                    self.order.push(n);
                }
            }
        }
        let mut engine = Engine::new();
        let r = engine.spawn(Box::new(Recorder { order: Vec::new() }));
        for n in 0..50 {
            engine.schedule(SimTime::from_ns(100), r, Ev::Tick(n));
        }
        engine.run();
        assert_eq!(engine.dispatched(), 50);
        assert_eq!(engine.now(), SimTime::from_ns(100));
        let rec: &Recorder = (engine.process(r) as &dyn std::any::Any)
            .downcast_ref()
            .expect("concrete type");
        assert_eq!(rec.order, (0..50).collect::<Vec<_>>(), "FIFO within an instant");
    }

    #[test]
    #[should_panic(expected = "unknown process")]
    fn scheduling_to_unknown_process_panics() {
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(SimTime::ZERO, ProcessId(3), Ev::Ping);
    }
}

//! Component-based analytic power model, calibrated to the paper.
//!
//! Classically (paper §V) FPGA core power splits into *static* power
//! (leakage; voltage- and device-dependent) and *dynamic* power (switching;
//! proportional to `α·C·V²·f`). At fixed core voltage the dynamic term of a
//! component reduces to a per-component coefficient in **mW/MHz** times its
//! clock frequency, gated by its activity (the EN signal in UReC).
//!
//! The [`calib`] module carries the constants fitted to the paper's measured
//! operating points (Figure 7 and the §V energy comparison); the model
//! reproduces all four measured reconfiguration powers within 10%.

use crate::time::{Frequency, SimTime};
use std::fmt;

/// Calibration constants for the Virtex-6 (ML605) measurement setup.
///
/// Derivation: the paper reports total FPGA core power during reconfiguration
/// of a 216.5 KB bitstream at four reconfiguration frequencies
/// (Fig. 7: 50 MHz → 183 mW, 100 → 259, 200 → 394, 300 → 453), with a
/// MicroBlaze manager in an active wait at a fixed 100 MHz. A least-squares
/// fit of `P = P_base + c·f` gives `c ≈ 1.09 mW/MHz` and
/// `P_base ≈ 145 mW`, which we split into the idle floor and the manager's
/// active-wait contribution using the §V energy figures
/// (xps_hwicap: 30 µJ/KB at 1.5 MB/s ⇒ the bare copy loop dissipates
/// ≈ 45 mW above idle; UPaRC at 50 MHz: 0.66 µJ/KB ⇒ idle ≈ 53 mW).
pub mod calib {
    /// Virtex-6 core idle power (static + clock infrastructure), mW.
    pub const V6_IDLE_MW: f64 = 53.0;
    /// MicroBlaze manager in active wait for "Finish" (100 MHz), mW above idle.
    pub const MANAGER_ACTIVE_WAIT_MW: f64 = 92.0;
    /// MicroBlaze manager running the xps_hwicap word-copy driver loop,
    /// mW above idle (lower switching activity than the tight spin loop).
    pub const MANAGER_COPY_MW: f64 = 45.0;
    /// MicroBlaze manager idle/sleeping contribution, mW (folded into idle).
    pub const MANAGER_IDLE_MW: f64 = 0.0;
    /// Reconfiguration data path (BRAM read + UReC + ICAP write), mW per MHz.
    pub const RECONFIG_PATH_MW_PER_MHZ: f64 = 1.09;
    /// Hardware decompressor dynamic coefficient, mW per MHz. The paper gives
    /// no direct measurement; scaled from its ~40x slice count versus UReC
    /// with a conservative activity factor.
    pub const DECOMPRESSOR_MW_PER_MHZ: f64 = 1.8;
    /// BRAM preload port (manager side) coefficient, mW per MHz.
    pub const PRELOAD_PATH_MW_PER_MHZ: f64 = 0.35;

    /// The four measured operating points of Fig. 7:
    /// `(reconfiguration frequency in MHz, total core power in mW)`.
    pub const FIG7_POINTS: [(f64, f64); 4] = [
        (50.0, 183.0),
        (100.0, 259.0),
        (200.0, 394.0),
        (300.0, 453.0),
    ];

    /// Reconfiguration times of the 216.5 KB bitstream reported in §V, per
    /// Fig. 7 frequency: `(MHz, microseconds)`.
    pub const FIG7_TIMES_US: [(f64, f64); 4] = [
        (50.0, 1100.0),
        (100.0, 550.0),
        (200.0, 270.0),
        (300.0, 180.0),
    ];
}

/// Identifier of a component registered in a [`PowerModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(usize);

#[derive(Debug, Clone)]
struct Component {
    name: String,
    static_mw: f64,
    dyn_mw_per_mhz: f64,
    freq: Option<Frequency>,
    active: bool,
}

impl Component {
    fn power_mw(&self) -> f64 {
        let dynamic = if self.active {
            self.freq.map_or(0.0, |f| self.dyn_mw_per_mhz * f.as_mhz())
        } else {
            0.0
        };
        self.static_mw + dynamic
    }
}

/// An additive per-component power model.
///
/// Components contribute a constant static term plus, while *active* and
/// clocked, `coefficient · frequency`. Gating a component (EN deasserted)
/// removes its dynamic term — exactly the power-saving mechanism UReC applies
/// to the BRAM and ICAP after reconfiguration completes.
///
/// # Example
///
/// ```
/// use uparc_sim::power::PowerModel;
/// use uparc_sim::time::Frequency;
///
/// let mut model = PowerModel::new();
/// let idle = model.add_static("idle", 53.0);
/// let path = model.add_dynamic("reconfig-path", 1.09);
/// model.set_frequency(path, Frequency::from_mhz(300.0));
/// model.set_active(path, true);
/// assert!((model.total_mw() - (53.0 + 327.0)).abs() < 1e-9);
/// model.set_active(path, false); // EN off
/// assert!((model.total_mw() - 53.0).abs() < 1e-9);
/// # let _ = idle;
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerModel {
    components: Vec<Component>,
}

impl PowerModel {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> Self {
        PowerModel::default()
    }

    /// The calibrated Virtex-6/ML605 model of the paper's measurement setup:
    /// idle floor, manager, reconfiguration path and decompressor components.
    ///
    /// Use [`PowerModel::find`] to look the pre-registered components up
    /// by name and drive them.
    #[must_use]
    pub fn virtex6_calibrated() -> Self {
        let mut m = PowerModel::new();
        m.add_static("idle", calib::V6_IDLE_MW);
        m.add_dynamic("manager", 0.92); // 92 mW at its fixed 100 MHz clock
        m.add_dynamic("reconfig-path", calib::RECONFIG_PATH_MW_PER_MHZ);
        m.add_dynamic("decompressor", calib::DECOMPRESSOR_MW_PER_MHZ);
        m.add_dynamic("preload-path", calib::PRELOAD_PATH_MW_PER_MHZ);
        m
    }

    /// Registers a component with only a static contribution. Returns its id.
    pub fn add_static(&mut self, name: &str, static_mw: f64) -> ComponentId {
        self.add_component(name, static_mw, 0.0)
    }

    /// Registers a purely dynamic component (`mw_per_mhz` coefficient),
    /// initially inactive and unclocked. Returns its id.
    pub fn add_dynamic(&mut self, name: &str, mw_per_mhz: f64) -> ComponentId {
        self.add_component(name, 0.0, mw_per_mhz)
    }

    /// Registers a component with both static and dynamic contributions.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative or non-finite.
    pub fn add_component(
        &mut self,
        name: &str,
        static_mw: f64,
        dyn_mw_per_mhz: f64,
    ) -> ComponentId {
        assert!(
            static_mw.is_finite() && static_mw >= 0.0,
            "static power must be finite and non-negative"
        );
        assert!(
            dyn_mw_per_mhz.is_finite() && dyn_mw_per_mhz >= 0.0,
            "dynamic coefficient must be finite and non-negative"
        );
        self.components.push(Component {
            name: name.to_owned(),
            static_mw,
            dyn_mw_per_mhz,
            freq: None,
            active: false,
        });
        ComponentId(self.components.len() - 1)
    }

    /// Looks a component up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<ComponentId> {
        self.components
            .iter()
            .position(|c| c.name == name)
            .map(ComponentId)
    }

    /// Sets a component's clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn set_frequency(&mut self, id: ComponentId, freq: Frequency) {
        self.components[id.0].freq = Some(freq);
    }

    /// Activates or gates a component's dynamic power.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn set_active(&mut self, id: ComponentId, active: bool) {
        self.components[id.0].active = active;
    }

    /// Instantaneous total power in milliwatts.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.components.iter().map(Component::power_mw).sum()
    }

    /// Instantaneous power of one component in milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    #[must_use]
    pub fn component_mw(&self, id: ComponentId) -> f64 {
        self.components[id.0].power_mw()
    }

    /// Closed-form total core power while UPaRC reconfigures at `freq` with
    /// the MicroBlaze manager in active wait — the quantity plotted in Fig. 7.
    #[must_use]
    pub fn reconfiguration_power_mw(&self, freq: Frequency) -> f64 {
        calib::V6_IDLE_MW
            + calib::MANAGER_ACTIVE_WAIT_MW
            + calib::RECONFIG_PATH_MW_PER_MHZ * freq.as_mhz()
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PowerModel ({:.1} mW total):", self.total_mw())?;
        for c in &self.components {
            writeln!(
                f,
                "  {:<16} static {:>6.1} mW, dyn {:>5.2} mW/MHz, {} {}",
                c.name,
                c.static_mw,
                c.dyn_mw_per_mhz,
                if c.active { "active" } else { "gated" },
                c.freq
                    .map_or_else(|| "unclocked".to_owned(), |x| x.to_string()),
            )?;
        }
        Ok(())
    }
}

/// Integrates power over simulated time into energy.
///
/// The meter assumes power is a step function: it holds the last reported
/// power level until the next [`PowerMeter::advance`].
///
/// # Example
///
/// ```
/// use uparc_sim::power::PowerMeter;
/// use uparc_sim::time::SimTime;
///
/// let mut meter = PowerMeter::new();
/// meter.set_power(SimTime::ZERO, 100.0);          // 100 mW
/// meter.advance(SimTime::from_ms(2));             // for 2 ms
/// assert!((meter.energy_uj() - 200.0).abs() < 1e-9); // = 200 µJ
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerMeter {
    energy_uj: f64,
    last_time: SimTime,
    power_mw: f64,
}

impl PowerMeter {
    /// Creates a meter at time zero with zero power.
    #[must_use]
    pub fn new() -> Self {
        PowerMeter::default()
    }

    /// Integrates up to `to` at the current power level.
    ///
    /// # Panics
    ///
    /// Panics if `to` precedes the meter's current time.
    pub fn advance(&mut self, to: SimTime) {
        assert!(to >= self.last_time, "power meter cannot run backwards");
        let dt = (to - self.last_time).as_secs_f64();
        self.energy_uj += self.power_mw * dt * 1e3; // mW * s = mJ; *1e3 = µJ
        self.last_time = to;
    }

    /// Integrates up to `at`, then switches to a new power level.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the meter's current time.
    pub fn set_power(&mut self, at: SimTime, power_mw: f64) {
        self.advance(at);
        self.power_mw = power_mw;
    }

    /// Accumulated energy in microjoules.
    #[must_use]
    pub fn energy_uj(&self) -> f64 {
        self.energy_uj
    }

    /// Accumulated energy in millijoules.
    #[must_use]
    pub fn energy_mj(&self) -> f64 {
        self.energy_uj / 1e3
    }

    /// The meter's current time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.last_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_model_matches_fig7_within_10_percent() {
        let model = PowerModel::virtex6_calibrated();
        for (mhz, measured) in calib::FIG7_POINTS {
            let predicted = model.reconfiguration_power_mw(Frequency::from_mhz(mhz));
            let err = (predicted - measured).abs() / measured;
            assert!(
                err < 0.10,
                "{mhz} MHz: predicted {predicted:.1} mW vs measured {measured} mW ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn gating_removes_dynamic_power() {
        let mut m = PowerModel::new();
        let c = m.add_component("x", 10.0, 2.0);
        m.set_frequency(c, Frequency::from_mhz(100.0));
        assert!(
            (m.total_mw() - 10.0).abs() < 1e-12,
            "inactive => static only"
        );
        m.set_active(c, true);
        assert!((m.total_mw() - 210.0).abs() < 1e-12);
        m.set_active(c, false);
        assert!((m.total_mw() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_scales_linearly_with_frequency() {
        let mut m = PowerModel::new();
        let c = m.add_dynamic("p", 1.09);
        m.set_active(c, true);
        m.set_frequency(c, Frequency::from_mhz(50.0));
        let p50 = m.total_mw();
        m.set_frequency(c, Frequency::from_mhz(200.0));
        let p200 = m.total_mw();
        assert!((p200 / p50 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn find_returns_registered_components() {
        let m = PowerModel::virtex6_calibrated();
        assert!(m.find("idle").is_some());
        assert!(m.find("manager").is_some());
        assert!(m.find("reconfig-path").is_some());
        assert!(m.find("decompressor").is_some());
        assert!(m.find("nonexistent").is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_static_power_rejected() {
        let mut m = PowerModel::new();
        m.add_static("bad", -1.0);
    }

    #[test]
    fn meter_integrates_step_function() {
        let mut meter = PowerMeter::new();
        meter.set_power(SimTime::ZERO, 183.0);
        meter.set_power(SimTime::from_ms(1), 53.0); // 1 ms at 183 mW
        meter.advance(SimTime::from_ms(2)); // 1 ms at 53 mW
        assert!((meter.energy_uj() - (183.0 + 53.0)).abs() < 1e-9);
        assert_eq!(meter.now(), SimTime::from_ms(2));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn meter_rejects_time_reversal() {
        let mut meter = PowerMeter::new();
        meter.advance(SimTime::from_ms(1));
        meter.advance(SimTime::from_us(1));
    }

    #[test]
    fn fig7_energy_decreases_with_frequency() {
        // Paper §V: with an actively-waiting manager, higher reconfiguration
        // frequency takes less time, so total energy decreases.
        let model = PowerModel::virtex6_calibrated();
        let mut last = f64::INFINITY;
        for (mhz, us) in calib::FIG7_TIMES_US {
            let p = model.reconfiguration_power_mw(Frequency::from_mhz(mhz));
            let e = p * us; // nJ-scale proportional
            assert!(e < last, "energy must decrease with frequency");
            last = e;
        }
    }
}

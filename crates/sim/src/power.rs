//! Component-based analytic power model, calibrated to the paper.
//!
//! Classically (paper §V) FPGA core power splits into *static* power
//! (leakage; voltage- and device-dependent) and *dynamic* power (switching;
//! proportional to `α·C·V²·f`). At fixed core voltage the dynamic term of a
//! component reduces to a per-component coefficient in **mW/MHz** times its
//! clock frequency, gated by its activity (the EN signal in UReC).
//!
//! The [`calib`] module carries the constants fitted to the paper's measured
//! operating points (Figure 7 and the §V energy comparison); the analytic
//! `P_base + c·f` regression reproduces all four measured reconfiguration
//! powers within 10%, and [`calib::fig7_measured_mw`] adds the *measured
//! overhead* residual on top (the Nafkha & Louet methodology: reconfiguration
//! power overhead is a first-class measured quantity, not a fit error), which
//! makes the model **exact** at the four anchors.
//!
//! [`VfTable`] extends the model to a second axis: discrete core-voltage
//! rails with `C·V²·f` dynamic scaling and regulator settle costs for rail
//! ramps (analogous to the DCM relock cost of a frequency retune). The full
//! methodology, with worked examples, is documented in the repository's
//! `POWER.md`.

use crate::time::{Frequency, SimTime};
use std::fmt;

/// Calibration constants for the Virtex-6 (ML605) measurement setup.
///
/// Derivation: the paper reports total FPGA core power during reconfiguration
/// of a 216.5 KB bitstream at four reconfiguration frequencies
/// (Fig. 7: 50 MHz → 183 mW, 100 → 259, 200 → 394, 300 → 453), with a
/// MicroBlaze manager in an active wait at a fixed 100 MHz. A least-squares
/// fit of `P = P_base + c·f` gives `c ≈ 1.09 mW/MHz` and
/// `P_base ≈ 145 mW`, which we split into the idle floor and the manager's
/// active-wait contribution using the §V energy figures
/// (xps_hwicap: 30 µJ/KB at 1.5 MB/s ⇒ the bare copy loop dissipates
/// ≈ 45 mW above idle; UPaRC at 50 MHz: 0.66 µJ/KB ⇒ idle ≈ 53 mW).
pub mod calib {
    /// Virtex-6 core idle power (static + clock infrastructure), mW.
    pub const V6_IDLE_MW: f64 = 53.0;
    /// MicroBlaze manager in active wait for "Finish" (100 MHz), mW above idle.
    pub const MANAGER_ACTIVE_WAIT_MW: f64 = 92.0;
    /// MicroBlaze manager running the xps_hwicap word-copy driver loop,
    /// mW above idle (lower switching activity than the tight spin loop).
    pub const MANAGER_COPY_MW: f64 = 45.0;
    /// MicroBlaze manager idle/sleeping contribution, mW (folded into idle).
    pub const MANAGER_IDLE_MW: f64 = 0.0;
    /// Reconfiguration data path (BRAM read + UReC + ICAP write), mW per MHz.
    pub const RECONFIG_PATH_MW_PER_MHZ: f64 = 1.09;
    /// Hardware decompressor dynamic coefficient, mW per MHz. The paper gives
    /// no direct measurement; scaled from its ~40x slice count versus UReC
    /// with a conservative activity factor.
    pub const DECOMPRESSOR_MW_PER_MHZ: f64 = 1.8;
    /// BRAM preload port (manager side) coefficient, mW per MHz.
    pub const PRELOAD_PATH_MW_PER_MHZ: f64 = 0.35;

    /// The four measured operating points of Fig. 7:
    /// `(reconfiguration frequency in MHz, total core power in mW)`.
    pub const FIG7_POINTS: [(f64, f64); 4] = [
        (50.0, 183.0),
        (100.0, 259.0),
        (200.0, 394.0),
        (300.0, 453.0),
    ];

    /// Reconfiguration times of the 216.5 KB bitstream reported in §V, per
    /// Fig. 7 frequency: `(MHz, microseconds)`.
    pub const FIG7_TIMES_US: [(f64, f64); 4] = [
        (50.0, 1100.0),
        (100.0, 550.0),
        (200.0, 270.0),
        (300.0, 180.0),
    ];

    /// Nominal VCCINT core voltage of the measurement setup, volts. All the
    /// Fig. 7 points were measured at this rail; the `C·V²·f` scaling of
    /// [`super::VfTable`] is relative to it.
    pub const V_NOM_V: f64 = 1.0;

    /// Core-rail regulator settle latency per 100 mV of swing, µs. A rail
    /// ramp is not usable until the regulator settles, exactly like a DCM
    /// is not usable until LOCKED re-asserts after a retune.
    pub const VRAIL_SETTLE_US_PER_100MV: f64 = 25.0;

    /// The analytic regression base `P_base` (idle floor plus the manager's
    /// active wait), mW — the intercept of the `P = P_base + c·f` fit.
    #[must_use]
    pub fn analytic_base_mw() -> f64 {
        V6_IDLE_MW + MANAGER_ACTIVE_WAIT_MW
    }

    /// Measured total core power during reconfiguration at `f_mhz` and
    /// nominal voltage, mW.
    ///
    /// This is the *primary* curve of the measured-overhead methodology:
    /// piecewise-linear interpolation of the four Fig. 7 anchors (so the
    /// model is **bit-exact** at every measured point), with the path term
    /// tapered linearly to zero below the measured span and the analytic
    /// `c` slope extrapolating above it.
    #[must_use]
    pub fn fig7_measured_mw(f_mhz: f64) -> f64 {
        let (f_lo, m_lo) = FIG7_POINTS[0];
        let (f_hi, m_hi) = FIG7_POINTS[FIG7_POINTS.len() - 1];
        if f_mhz <= f_lo {
            // Below the measured span the path term scales down from the
            // 50 MHz anchor so it hits zero at DC (a clock that never
            // edges switches nothing).
            let base = analytic_base_mw();
            return base + (m_lo - base) * (f_mhz.max(0.0) / f_lo);
        }
        if f_mhz >= f_hi {
            return m_hi + RECONFIG_PATH_MW_PER_MHZ * (f_mhz - f_hi);
        }
        for w in FIG7_POINTS.windows(2) {
            let (f0, m0) = w[0];
            let (f1, m1) = w[1];
            if f_mhz <= f1 {
                return m0 + (m1 - m0) * (f_mhz - f0) / (f1 - f0);
            }
        }
        unreachable!("the anchors cover the measured span")
    }

    /// Measured per-transfer reconfiguration-power overhead at `f_mhz`, mW:
    /// the residual of the measured curve above the analytic
    /// `P_base + c·f` regression (−16.5 mW at 50 MHz, +5 at 100, +31 at
    /// 200, −19 at 300). Per Nafkha & Louet, this is carried as a measured
    /// quantity rather than folded into the fit.
    #[must_use]
    pub fn reconfig_overhead_mw(f_mhz: f64) -> f64 {
        fig7_measured_mw(f_mhz) - (analytic_base_mw() + RECONFIG_PATH_MW_PER_MHZ * f_mhz)
    }
}

/// One discrete core-voltage operating rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageRail {
    /// Stable rail name (`"low"`, `"mid"`, `"nom"`).
    pub label: &'static str,
    /// Core voltage in volts.
    pub volts: f64,
    /// Highest reconfiguration clock the rail guarantees timing at;
    /// `None` means the rail is limited only by the family's overclock
    /// ceilings (the DCM grid cap).
    pub fmax: Option<Frequency>,
}

/// Discrete (V, f) operating points per family: a small set of voltage
/// rails, each with its own timing ceiling, plus the regulator settle
/// cost charged when a plan ramps the rail (VolTune-style fine-grained
/// runtime voltage control).
///
/// Dynamic power scales as `C·V²·f`: relative to the nominal rail, a
/// point at voltage `v` draws `(v / V_nom)²` of the nominal path power
/// at the same clock. Undervolted rails cap the clock (`fmax`) because
/// logic slows down as the rail drops — that tension is exactly what the
/// 2-D planner search trades off.
///
/// # Example
///
/// ```
/// use uparc_sim::power::{calib, VfTable};
///
/// let table = VfTable::voltune_virtex6();
/// let nom = table.nominal_index();
/// assert_eq!(table.rails()[nom].volts, calib::V_NOM_V);
/// // The low rail draws (0.85)² ≈ 72% of nominal path power.
/// assert!((table.scale(0) - 0.85_f64.powi(2)).abs() < 1e-12);
/// // Ramping between distinct rails costs regulator settle time.
/// assert!(table.settle(0, nom) > uparc_sim::time::SimTime::ZERO);
/// assert_eq!(table.settle(nom, nom), uparc_sim::time::SimTime::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VfTable {
    rails: Vec<VoltageRail>,
    settle_us_per_100mv: f64,
    measured_overhead: bool,
}

impl VfTable {
    /// The VolTune-style three-rail table for the Virtex-6 measurement
    /// setup: an undervolted 0.85 V rail good to 150 MHz, a 0.90 V rail
    /// good to 250 MHz, and the nominal 1.00 V rail limited only by the
    /// family ceilings. Planner predictions on the nominal rail use the
    /// measured Fig. 7 curve ([`calib::fig7_measured_mw`]).
    #[must_use]
    pub fn voltune_virtex6() -> Self {
        VfTable {
            rails: vec![
                VoltageRail {
                    label: "low",
                    volts: 0.85,
                    fmax: Some(Frequency::from_mhz(150.0)),
                },
                VoltageRail {
                    label: "mid",
                    volts: 0.90,
                    fmax: Some(Frequency::from_mhz(250.0)),
                },
                VoltageRail {
                    label: "nom",
                    volts: calib::V_NOM_V,
                    fmax: None,
                },
            ],
            settle_us_per_100mv: calib::VRAIL_SETTLE_US_PER_100MV,
            measured_overhead: true,
        }
    }

    /// The degenerate pre-DVFS table: the nominal rail only, zero settle,
    /// and the analytic (pre-overhead) power model — the configuration
    /// under which the (V, f) planner is bit-identical to the
    /// frequency-only planner it replaced.
    #[must_use]
    pub fn nominal_only() -> Self {
        VfTable {
            rails: vec![VoltageRail {
                label: "nom",
                volts: calib::V_NOM_V,
                fmax: None,
            }],
            settle_us_per_100mv: 0.0,
            measured_overhead: false,
        }
    }

    /// The rails, ascending by voltage.
    #[must_use]
    pub fn rails(&self) -> &[VoltageRail] {
        &self.rails
    }

    /// Index of the nominal rail.
    ///
    /// # Panics
    ///
    /// Panics if the table carries no rail at [`calib::V_NOM_V`] (every
    /// constructor includes one).
    #[must_use]
    pub fn nominal_index(&self) -> usize {
        self.rails
            .iter()
            .position(|r| r.volts == calib::V_NOM_V)
            .expect("every table carries the nominal rail")
    }

    /// Whether planner predictions on this table use the measured Fig. 7
    /// curve (`true`) or the analytic `P_base + c·f` regression (`false`,
    /// the pre-DVFS behaviour).
    #[must_use]
    pub fn measured_overhead(&self) -> bool {
        self.measured_overhead
    }

    /// The `(v / V_nom)²` dynamic-power scale of rail `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn scale(&self, idx: usize) -> f64 {
        let r = self.rails[idx].volts / calib::V_NOM_V;
        r * r
    }

    /// Regulator settle time for a ramp from rail `from` to rail `to`
    /// (zero for `from == to`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn settle(&self, from: usize, to: usize) -> SimTime {
        let dv = (self.rails[from].volts - self.rails[to].volts).abs();
        SimTime::from_secs_f64(dv / 0.1 * self.settle_us_per_100mv * 1e-6)
    }

    /// The worst-case settle across the table (the full rail swing) —
    /// what a conservative admission estimate charges when the dispatch
    /// rail is not yet known.
    #[must_use]
    pub fn max_settle(&self) -> SimTime {
        let lo = self.rails.first().map_or(calib::V_NOM_V, |r| r.volts);
        let hi = self.rails.last().map_or(calib::V_NOM_V, |r| r.volts);
        let dv = (hi - lo).abs();
        SimTime::from_secs_f64(dv / 0.1 * self.settle_us_per_100mv * 1e-6)
    }
}

/// Total core power while UPaRC reconfigures at `freq` on a rail at
/// `volts`, with the actively-waiting manager — the (V, f) extension of
/// the Fig. 7 curve. At nominal voltage this *is* the measured curve
/// ([`calib::fig7_measured_mw`], exact at the anchors); off-nominal, the
/// path term (measured overhead included) scales as `(v / V_nom)²`.
///
/// # Example
///
/// ```
/// use uparc_sim::power::{calib, reconfiguration_power_vf_mw};
/// use uparc_sim::time::Frequency;
///
/// // All four Fig. 7 anchors reproduce exactly at nominal voltage.
/// for (mhz, mw) in calib::FIG7_POINTS {
///     assert_eq!(
///         reconfiguration_power_vf_mw(calib::V_NOM_V, Frequency::from_mhz(mhz)),
///         mw,
///     );
/// }
/// // Undervolting scales only the path term, not the idle/manager base.
/// let p = reconfiguration_power_vf_mw(0.85, Frequency::from_mhz(100.0));
/// let expected = calib::analytic_base_mw() + 0.85_f64.powi(2) * (259.0 - calib::analytic_base_mw());
/// assert!((p - expected).abs() < 1e-9);
/// ```
#[must_use]
pub fn reconfiguration_power_vf_mw(volts: f64, freq: Frequency) -> f64 {
    let r = volts / calib::V_NOM_V;
    let scale = r * r;
    if scale == 1.0 {
        return calib::fig7_measured_mw(freq.as_mhz());
    }
    let base = calib::analytic_base_mw();
    base + scale * (calib::fig7_measured_mw(freq.as_mhz()) - base)
}

/// Identifier of a component registered in a [`PowerModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(usize);

#[derive(Debug, Clone)]
struct Component {
    name: String,
    static_mw: f64,
    dyn_mw_per_mhz: f64,
    freq: Option<Frequency>,
    active: bool,
}

impl Component {
    fn power_mw(&self) -> f64 {
        let dynamic = if self.active {
            self.freq.map_or(0.0, |f| self.dyn_mw_per_mhz * f.as_mhz())
        } else {
            0.0
        };
        self.static_mw + dynamic
    }
}

/// An additive per-component power model.
///
/// Components contribute a constant static term plus, while *active* and
/// clocked, `coefficient · frequency`. Gating a component (EN deasserted)
/// removes its dynamic term — exactly the power-saving mechanism UReC applies
/// to the BRAM and ICAP after reconfiguration completes.
///
/// # Example
///
/// ```
/// use uparc_sim::power::PowerModel;
/// use uparc_sim::time::Frequency;
///
/// let mut model = PowerModel::new();
/// let idle = model.add_static("idle", 53.0);
/// let path = model.add_dynamic("reconfig-path", 1.09);
/// model.set_frequency(path, Frequency::from_mhz(300.0));
/// model.set_active(path, true);
/// assert!((model.total_mw() - (53.0 + 327.0)).abs() < 1e-9);
/// model.set_active(path, false); // EN off
/// assert!((model.total_mw() - 53.0).abs() < 1e-9);
/// # let _ = idle;
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerModel {
    components: Vec<Component>,
}

impl PowerModel {
    /// Creates an empty model.
    #[must_use]
    pub fn new() -> Self {
        PowerModel::default()
    }

    /// The calibrated Virtex-6/ML605 model of the paper's measurement setup:
    /// idle floor, manager, reconfiguration path and decompressor components.
    ///
    /// Use [`PowerModel::find`] to look the pre-registered components up
    /// by name and drive them.
    #[must_use]
    pub fn virtex6_calibrated() -> Self {
        let mut m = PowerModel::new();
        m.add_static("idle", calib::V6_IDLE_MW);
        m.add_dynamic("manager", 0.92); // 92 mW at its fixed 100 MHz clock
        m.add_dynamic("reconfig-path", calib::RECONFIG_PATH_MW_PER_MHZ);
        m.add_dynamic("decompressor", calib::DECOMPRESSOR_MW_PER_MHZ);
        m.add_dynamic("preload-path", calib::PRELOAD_PATH_MW_PER_MHZ);
        m
    }

    /// Registers a component with only a static contribution. Returns its id.
    pub fn add_static(&mut self, name: &str, static_mw: f64) -> ComponentId {
        self.add_component(name, static_mw, 0.0)
    }

    /// Registers a purely dynamic component (`mw_per_mhz` coefficient),
    /// initially inactive and unclocked. Returns its id.
    pub fn add_dynamic(&mut self, name: &str, mw_per_mhz: f64) -> ComponentId {
        self.add_component(name, 0.0, mw_per_mhz)
    }

    /// Registers a component with both static and dynamic contributions.
    ///
    /// # Panics
    ///
    /// Panics if either coefficient is negative or non-finite.
    pub fn add_component(
        &mut self,
        name: &str,
        static_mw: f64,
        dyn_mw_per_mhz: f64,
    ) -> ComponentId {
        assert!(
            static_mw.is_finite() && static_mw >= 0.0,
            "static power must be finite and non-negative"
        );
        assert!(
            dyn_mw_per_mhz.is_finite() && dyn_mw_per_mhz >= 0.0,
            "dynamic coefficient must be finite and non-negative"
        );
        self.components.push(Component {
            name: name.to_owned(),
            static_mw,
            dyn_mw_per_mhz,
            freq: None,
            active: false,
        });
        ComponentId(self.components.len() - 1)
    }

    /// Looks a component up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<ComponentId> {
        self.components
            .iter()
            .position(|c| c.name == name)
            .map(ComponentId)
    }

    /// Sets a component's clock frequency.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn set_frequency(&mut self, id: ComponentId, freq: Frequency) {
        self.components[id.0].freq = Some(freq);
    }

    /// Activates or gates a component's dynamic power.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    pub fn set_active(&mut self, id: ComponentId, active: bool) {
        self.components[id.0].active = active;
    }

    /// Instantaneous total power in milliwatts.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.components.iter().map(Component::power_mw).sum()
    }

    /// Instantaneous power of one component in milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    #[must_use]
    pub fn component_mw(&self, id: ComponentId) -> f64 {
        self.components[id.0].power_mw()
    }

    /// Closed-form total core power while UPaRC reconfigures at `freq` with
    /// the MicroBlaze manager in active wait — the quantity plotted in Fig. 7.
    #[must_use]
    pub fn reconfiguration_power_mw(&self, freq: Frequency) -> f64 {
        calib::V6_IDLE_MW
            + calib::MANAGER_ACTIVE_WAIT_MW
            + calib::RECONFIG_PATH_MW_PER_MHZ * freq.as_mhz()
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PowerModel ({:.1} mW total):", self.total_mw())?;
        for c in &self.components {
            writeln!(
                f,
                "  {:<16} static {:>6.1} mW, dyn {:>5.2} mW/MHz, {} {}",
                c.name,
                c.static_mw,
                c.dyn_mw_per_mhz,
                if c.active { "active" } else { "gated" },
                c.freq
                    .map_or_else(|| "unclocked".to_owned(), |x| x.to_string()),
            )?;
        }
        Ok(())
    }
}

/// Integrates power over simulated time into energy.
///
/// The meter assumes power is a step function: it holds the last reported
/// power level until the next [`PowerMeter::advance`].
///
/// # Example
///
/// ```
/// use uparc_sim::power::PowerMeter;
/// use uparc_sim::time::SimTime;
///
/// let mut meter = PowerMeter::new();
/// meter.set_power(SimTime::ZERO, 100.0);          // 100 mW
/// meter.advance(SimTime::from_ms(2));             // for 2 ms
/// assert!((meter.energy_uj() - 200.0).abs() < 1e-9); // = 200 µJ
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerMeter {
    energy_uj: f64,
    last_time: SimTime,
    power_mw: f64,
}

impl PowerMeter {
    /// Creates a meter at time zero with zero power.
    #[must_use]
    pub fn new() -> Self {
        PowerMeter::default()
    }

    /// Integrates up to `to` at the current power level.
    ///
    /// # Panics
    ///
    /// Panics if `to` precedes the meter's current time.
    pub fn advance(&mut self, to: SimTime) {
        assert!(to >= self.last_time, "power meter cannot run backwards");
        let dt = (to - self.last_time).as_secs_f64();
        self.energy_uj += self.power_mw * dt * 1e3; // mW * s = mJ; *1e3 = µJ
        self.last_time = to;
    }

    /// Integrates up to `at`, then switches to a new power level.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the meter's current time.
    pub fn set_power(&mut self, at: SimTime, power_mw: f64) {
        self.advance(at);
        self.power_mw = power_mw;
    }

    /// Accumulated energy in microjoules.
    #[must_use]
    pub fn energy_uj(&self) -> f64 {
        self.energy_uj
    }

    /// Accumulated energy in millijoules.
    #[must_use]
    pub fn energy_mj(&self) -> f64 {
        self.energy_uj / 1e3
    }

    /// The meter's current time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.last_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_model_matches_fig7_within_10_percent() {
        let model = PowerModel::virtex6_calibrated();
        for (mhz, measured) in calib::FIG7_POINTS {
            let predicted = model.reconfiguration_power_mw(Frequency::from_mhz(mhz));
            let err = (predicted - measured).abs() / measured;
            assert!(
                err < 0.10,
                "{mhz} MHz: predicted {predicted:.1} mW vs measured {measured} mW ({:.1}% off)",
                err * 100.0
            );
        }
    }

    #[test]
    fn measured_curve_is_exact_at_every_anchor() {
        // The regression anchor of the DVFS model: the measured-overhead
        // curve reproduces all four Fig. 7 points bit-exactly, not within
        // a tolerance.
        for (mhz, mw) in calib::FIG7_POINTS {
            assert_eq!(calib::fig7_measured_mw(mhz), mw, "{mhz} MHz");
            assert_eq!(
                reconfiguration_power_vf_mw(calib::V_NOM_V, Frequency::from_mhz(mhz)),
                mw,
                "{mhz} MHz at nominal voltage"
            );
        }
    }

    #[test]
    fn measured_curve_interpolates_and_extrapolates_sanely() {
        // Between anchors: linear. 150 MHz sits midway on the 100→200
        // segment.
        let mid = calib::fig7_measured_mw(150.0);
        assert!((mid - (259.0 + 394.0) / 2.0).abs() < 1e-9, "{mid}");
        // Below the span the path term tapers to zero at DC.
        assert!((calib::fig7_measured_mw(0.0) - calib::analytic_base_mw()).abs() < 1e-12);
        let low = calib::fig7_measured_mw(25.0);
        assert!(low > calib::analytic_base_mw() && low < 183.0, "{low}");
        // Above the span the analytic slope extrapolates.
        let high = calib::fig7_measured_mw(362.5);
        assert!(
            (high - (453.0 + 1.09 * 62.5)).abs() < 1e-9,
            "{high} vs analytic extrapolation"
        );
    }

    #[test]
    fn overhead_residual_matches_measured_minus_analytic() {
        for (mhz, mw) in calib::FIG7_POINTS {
            let analytic = calib::analytic_base_mw() + calib::RECONFIG_PATH_MW_PER_MHZ * mhz;
            let r = calib::reconfig_overhead_mw(mhz);
            assert!((r - (mw - analytic)).abs() < 1e-9, "{mhz} MHz: {r}");
        }
        // The residual alternates in sign across the span — it is a
        // measurement structure, not a fit bias.
        assert!(calib::reconfig_overhead_mw(50.0) < 0.0);
        assert!(calib::reconfig_overhead_mw(200.0) > 0.0);
        assert!(calib::reconfig_overhead_mw(300.0) < 0.0);
    }

    #[test]
    fn vf_power_scales_the_path_term_quadratically() {
        let f = Frequency::from_mhz(150.0);
        let base = calib::analytic_base_mw();
        let nominal_path = reconfiguration_power_vf_mw(calib::V_NOM_V, f) - base;
        for volts in [0.85, 0.90, 0.95] {
            let path = reconfiguration_power_vf_mw(volts, f) - base;
            let ratio = path / nominal_path;
            assert!(
                (ratio - volts * volts).abs() < 1e-9,
                "{volts} V: path ratio {ratio}"
            );
        }
    }

    #[test]
    fn voltune_table_rails_are_ordered_and_settle_is_symmetric() {
        let t = VfTable::voltune_virtex6();
        assert!(t.rails().windows(2).all(|w| w[0].volts < w[1].volts));
        assert_eq!(t.rails()[t.nominal_index()].volts, calib::V_NOM_V);
        assert!(t.measured_overhead());
        let n = t.rails().len();
        for a in 0..n {
            for b in 0..n {
                assert_eq!(t.settle(a, b), t.settle(b, a));
                if a == b {
                    assert_eq!(t.settle(a, b), SimTime::ZERO);
                } else {
                    assert!(t.settle(a, b) > SimTime::ZERO);
                    assert!(t.settle(a, b) <= t.max_settle());
                }
            }
        }
        // 0.85 → 1.00 V is 1.5 swings of 100 mV at 25 µs each.
        let full = t.settle(0, t.nominal_index());
        assert!((full.as_us_f64() - 1.5 * calib::VRAIL_SETTLE_US_PER_100MV).abs() < 1e-6);
    }

    #[test]
    fn nominal_only_table_is_the_pre_dvfs_configuration() {
        let t = VfTable::nominal_only();
        assert_eq!(t.rails().len(), 1);
        assert_eq!(t.nominal_index(), 0);
        assert!(!t.measured_overhead());
        assert_eq!(t.scale(0), 1.0);
        assert_eq!(t.max_settle(), SimTime::ZERO);
    }

    #[test]
    fn gating_removes_dynamic_power() {
        let mut m = PowerModel::new();
        let c = m.add_component("x", 10.0, 2.0);
        m.set_frequency(c, Frequency::from_mhz(100.0));
        assert!(
            (m.total_mw() - 10.0).abs() < 1e-12,
            "inactive => static only"
        );
        m.set_active(c, true);
        assert!((m.total_mw() - 210.0).abs() < 1e-12);
        m.set_active(c, false);
        assert!((m.total_mw() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn dynamic_power_scales_linearly_with_frequency() {
        let mut m = PowerModel::new();
        let c = m.add_dynamic("p", 1.09);
        m.set_active(c, true);
        m.set_frequency(c, Frequency::from_mhz(50.0));
        let p50 = m.total_mw();
        m.set_frequency(c, Frequency::from_mhz(200.0));
        let p200 = m.total_mw();
        assert!((p200 / p50 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn find_returns_registered_components() {
        let m = PowerModel::virtex6_calibrated();
        assert!(m.find("idle").is_some());
        assert!(m.find("manager").is_some());
        assert!(m.find("reconfig-path").is_some());
        assert!(m.find("decompressor").is_some());
        assert!(m.find("nonexistent").is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_static_power_rejected() {
        let mut m = PowerModel::new();
        m.add_static("bad", -1.0);
    }

    #[test]
    fn meter_integrates_step_function() {
        let mut meter = PowerMeter::new();
        meter.set_power(SimTime::ZERO, 183.0);
        meter.set_power(SimTime::from_ms(1), 53.0); // 1 ms at 183 mW
        meter.advance(SimTime::from_ms(2)); // 1 ms at 53 mW
        assert!((meter.energy_uj() - (183.0 + 53.0)).abs() < 1e-9);
        assert_eq!(meter.now(), SimTime::from_ms(2));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn meter_rejects_time_reversal() {
        let mut meter = PowerMeter::new();
        meter.advance(SimTime::from_ms(1));
        meter.advance(SimTime::from_us(1));
    }

    #[test]
    fn fig7_energy_decreases_with_frequency() {
        // Paper §V: with an actively-waiting manager, higher reconfiguration
        // frequency takes less time, so total energy decreases.
        let model = PowerModel::virtex6_calibrated();
        let mut last = f64::INFINITY;
        for (mhz, us) in calib::FIG7_TIMES_US {
            let p = model.reconfiguration_power_mw(Frequency::from_mhz(mhz));
            let e = p * us; // nJ-scale proportional
            assert!(e < last, "energy must decrease with frequency");
            last = e;
        }
    }
}

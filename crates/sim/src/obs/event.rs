//! The typed event taxonomy: span/instant kinds and the raw trace record.
//!
//! Kinds are a closed enum rather than free-form strings so that every
//! subsystem reports the same vocabulary and exporters can render typed
//! payload fields (word counts, frequencies, power draws) without a
//! schema registry. The full taxonomy, with units, is documented in the
//! repository's `OBSERVABILITY.md`.

use crate::time::SimTime;

/// Identifier of one span, monotonically assigned by the recorder.
///
/// Ids are unique within one recorder's lifetime; [`SpanId::NULL`] (id 0)
/// is returned by disabled handles and never matches a recorded span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The id a disabled [`super::Obs`] hands out; never recorded.
    pub const NULL: SpanId = SpanId(0);
}

/// What happened. Spans use the durational kinds (a burst, a relock, a
/// dispatch); instants use the point kinds (an admission verdict, a power
/// sample, a recovery rung) — the recorder does not enforce the split,
/// the instrumentation sites do.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum EventKind {
    /// One BRAM→ICAP burst transfer (span). `words` is the configuration
    /// stream length handed to the port.
    IcapBurst {
        /// 32-bit words transferred in the burst.
        words: u64,
    },
    /// A DCM retune waiting for LOCKED (span), from the DRP write to the
    /// lock assertion.
    DcmRelock {
        /// Which DyCloGen output relocked (`"clk1"`/`"clk2"`/`"clk3"`).
        clock: &'static str,
        /// The requested output frequency in MHz.
        target_mhz: f64,
    },
    /// The compressed datapath decoding a staged image (span).
    DecompressStage {
        /// Raw (decompressed) bytes produced.
        bytes: u64,
    },
    /// A bitstream being staged into the BRAM (span).
    Preload {
        /// Bytes stored in the BRAM (mode word included).
        stored_bytes: u64,
        /// Whether the image was staged compressed.
        compressed: bool,
    },
    /// One rung of the self-healing ladder firing (instant).
    RecoveryRung {
        /// The rung's stable label (see `RecoveryAction::label`).
        rung: &'static str,
    },
    /// An admission verdict for one service request (instant).
    Admission {
        /// `"admitted"` or the `AdmissionError` label.
        outcome: &'static str,
        /// The request id.
        request: u64,
    },
    /// One service dispatch, queue-exit to lane-finish (span).
    Dispatch {
        /// The request id.
        request: u64,
    },
    /// A power sample at a scheduling instant (instant).
    CapSample {
        /// Summed chip draw at the instant, mW.
        total_mw: f64,
        /// The configured cap, mW (`f64::INFINITY` when uncapped).
        cap_mw: f64,
    },
    /// A fleet chip lost permanently to a chaos campaign (instant).
    ChipDown {
        /// The dead chip's fleet index.
        chip: u32,
    },
    /// A request re-routed off a dead chip to a surviving one (instant).
    Failover {
        /// The request's global stream index.
        request: u64,
        /// The chip the request was orphaned on.
        from: u32,
        /// The surviving chip it was re-queued to.
        to: u32,
    },
    /// A rack-level power emergency window opening: the rack cap is cut
    /// to `cap_mw` until the window closes (instant).
    CapEmergency {
        /// The emergency rack cap, mW.
        cap_mw: f64,
    },
    /// A fleet chip entering quarantine after repeated ICAP wedges — the
    /// router stops offering it new work until repair (instant).
    Quarantine {
        /// The quarantined chip's fleet index.
        chip: u32,
    },
    /// A live image being moved to a new frame window (span): the
    /// defragmenter streaming the relocated bitstream over idle ICAP
    /// bandwidth, FAR rewrite to commit.
    Relocate {
        /// Source frame address of the move.
        from: u32,
        /// Destination frame address of the move.
        to: u32,
        /// Frames carried by the image.
        frames: u32,
    },
    /// One background defragmentation pass finishing (instant).
    Compact {
        /// Images relocated during the pass.
        moves: u32,
        /// Growth of the largest free block over the pass, in frames.
        recovered_frames: u32,
    },
    /// The placement allocator rejecting an allocation request (instant).
    AllocFail {
        /// Contiguous frames the tenant asked for.
        frames: u32,
        /// Largest contiguous free block at the time of rejection.
        largest_free: u32,
    },
    /// A core-voltage rail ramp settling (span): from the regulator
    /// command to the rail being usable again — the voltage analogue of
    /// [`EventKind::DcmRelock`].
    Vf {
        /// Rail voltage before the ramp, millivolts.
        from_mv: u32,
        /// Target rail voltage, millivolts.
        to_mv: u32,
    },
    /// A thermal-governor verdict at a dispatch decision (instant).
    Thermal {
        /// Region temperature at the decision, °C.
        temp_c: f64,
        /// The configured junction limit, °C.
        limit_c: f64,
        /// Whether the preferred operating point was demoted (or the
        /// dispatch deferred) to stay under the limit.
        throttled: bool,
    },
}

impl EventKind {
    /// Stable name, used as the Chrome-trace event name and the
    /// flame-summary key.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::IcapBurst { .. } => "IcapBurst",
            EventKind::DcmRelock { .. } => "DcmRelock",
            EventKind::DecompressStage { .. } => "DecompressStage",
            EventKind::Preload { .. } => "Preload",
            EventKind::RecoveryRung { .. } => "RecoveryRung",
            EventKind::Admission { .. } => "Admission",
            EventKind::Dispatch { .. } => "Dispatch",
            EventKind::CapSample { .. } => "CapSample",
            EventKind::ChipDown { .. } => "ChipDown",
            EventKind::Failover { .. } => "Failover",
            EventKind::CapEmergency { .. } => "CapEmergency",
            EventKind::Quarantine { .. } => "Quarantine",
            EventKind::Relocate { .. } => "Relocate",
            EventKind::Compact { .. } => "Compact",
            EventKind::AllocFail { .. } => "AllocFail",
            EventKind::Vf { .. } => "Vf",
            EventKind::Thermal { .. } => "Thermal",
        }
    }
}

/// One raw record in a [`super::TraceRecorder`]'s ring buffer.
///
/// Records are kept exactly in emission order; exporters pair
/// `Begin`/`End` by span id. Emission order is *not* globally
/// time-sorted — a component may close a span whose end time it already
/// knows before an earlier-stamped instant from another component is
/// recorded — but every `End` follows its `Begin` and carries
/// `at >= begin.at`.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A span opened.
    Begin {
        /// Start time.
        at: SimTime,
        /// The span's id (monotonic per recorder).
        span: SpanId,
        /// Lane/region tag of the emitting handle.
        lane: Option<u32>,
        /// Typed payload.
        kind: EventKind,
    },
    /// A span closed.
    End {
        /// End time (`>=` the matching `Begin`'s time).
        at: SimTime,
        /// The id given out by the matching `Begin`.
        span: SpanId,
    },
    /// A zero-duration point event.
    Instant {
        /// Event time.
        at: SimTime,
        /// Lane/region tag of the emitting handle.
        lane: Option<u32>,
        /// Typed payload.
        kind: EventKind,
    },
}

impl TraceEvent {
    /// The record's timestamp.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Begin { at, .. }
            | TraceEvent::End { at, .. }
            | TraceEvent::Instant { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let kinds = [
            (EventKind::IcapBurst { words: 1 }, "IcapBurst"),
            (
                EventKind::DcmRelock {
                    clock: "clk2",
                    target_mhz: 362.5,
                },
                "DcmRelock",
            ),
            (EventKind::DecompressStage { bytes: 1 }, "DecompressStage"),
            (
                EventKind::Preload {
                    stored_bytes: 4,
                    compressed: false,
                },
                "Preload",
            ),
            (EventKind::RecoveryRung { rung: "restage" }, "RecoveryRung"),
            (
                EventKind::Admission {
                    outcome: "admitted",
                    request: 0,
                },
                "Admission",
            ),
            (EventKind::Dispatch { request: 0 }, "Dispatch"),
            (
                EventKind::CapSample {
                    total_mw: 0.0,
                    cap_mw: 0.0,
                },
                "CapSample",
            ),
            (EventKind::ChipDown { chip: 3 }, "ChipDown"),
            (
                EventKind::Failover {
                    request: 7,
                    from: 3,
                    to: 5,
                },
                "Failover",
            ),
            (EventKind::CapEmergency { cap_mw: 9000.0 }, "CapEmergency"),
            (EventKind::Quarantine { chip: 1 }, "Quarantine"),
            (
                EventKind::Relocate {
                    from: 440,
                    to: 0,
                    frames: 22,
                },
                "Relocate",
            ),
            (
                EventKind::Compact {
                    moves: 3,
                    recovered_frames: 66,
                },
                "Compact",
            ),
            (
                EventKind::AllocFail {
                    frames: 40,
                    largest_free: 12,
                },
                "AllocFail",
            ),
            (
                EventKind::Vf {
                    from_mv: 1000,
                    to_mv: 850,
                },
                "Vf",
            ),
            (
                EventKind::Thermal {
                    temp_c: 86.0,
                    limit_c: 85.0,
                    throttled: true,
                },
                "Thermal",
            ),
        ];
        for (kind, label) in kinds {
            assert_eq!(kind.label(), label);
        }
    }

    #[test]
    fn event_timestamp_accessor_covers_all_variants() {
        let t = SimTime::from_us(5);
        let b = TraceEvent::Begin {
            at: t,
            span: SpanId(1),
            lane: None,
            kind: EventKind::Dispatch { request: 1 },
        };
        let e = TraceEvent::End {
            at: t,
            span: SpanId(1),
        };
        let i = TraceEvent::Instant {
            at: t,
            lane: Some(0),
            kind: EventKind::RecoveryRung { rung: "restage" },
        };
        assert!(b.at() == t && e.at() == t && i.at() == t);
    }
}

//! A minimal, dependency-free JSON parser used to validate trace
//! exports in-repo.
//!
//! The repository is built offline with no third-party crates, so the
//! round-trip check demanded of `bench_service --trace` ("the emitted
//! file is valid Chrome `trace_event` JSON") is done with this small
//! recursive-descent parser instead of serde. It accepts strict JSON
//! (RFC 8259): objects, arrays, strings with escapes, numbers, booleans
//! and null — no comments, no trailing commas.
//!
//! # Example
//!
//! ```
//! use uparc_sim::obs::json::{parse, JsonValue};
//!
//! let doc = parse(r#"{"traceEvents":[{"ph":"X","ts":1.5}]}"#).unwrap();
//! let events = doc.get("traceEvents").unwrap().as_array().unwrap();
//! assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
//! assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.5));
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys sorted (JSON objects are unordered by spec).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member `key` of an object node, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements of an array node.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The contents of a string node.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value of a number node.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value of a boolean node.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parses `input` as a single JSON document (trailing whitespace
/// allowed, trailing garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first malformed byte.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX with a low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue; // hex4 already advanced past digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so bytes
                    // form valid UTF-8; copy the full sequence).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digits"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), JsonValue::Number(-2500.0));
        assert_eq!(
            parse(r#""a\nb\u0041""#).unwrap(),
            JsonValue::String("a\nbA".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse(r#"{"a":[1,{"b":false}],"c":"x"}"#).unwrap();
        let a = doc.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].get("b").unwrap().as_bool(), Some(false));
        assert_eq!(doc.get("c").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn parses_surrogate_pairs() {
        let doc = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(doc.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} garbage",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}

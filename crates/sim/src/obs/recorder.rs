//! The [`Recorder`] trait, its no-op default, and the ring-buffered
//! in-memory recorder.

use super::event::{EventKind, SpanId, TraceEvent};
use super::export;
use super::metrics::Metrics;
use crate::time::SimTime;
use std::collections::VecDeque;
use std::sync::Mutex;

/// A sink for trace events.
///
/// Implementations take `&self` (interior mutability) so one recorder can
/// be shared across every component of a system behind an `Arc`. The
/// simulation is single-threaded, so contention is nil; the `Send + Sync`
/// bound exists so sweep harnesses can run observed scenarios on worker
/// threads.
pub trait Recorder: Send + Sync {
    /// Whether events are recorded at all. [`super::Obs`] caches this at
    /// construction — it must be constant for a given recorder.
    fn is_enabled(&self) -> bool;

    /// Opens a span; returns a fresh id (monotonic per recorder).
    fn begin(&self, at: SimTime, lane: Option<u32>, kind: EventKind) -> SpanId;

    /// Closes the span `span` opened by [`Recorder::begin`].
    fn end(&self, at: SimTime, span: SpanId);

    /// Records a zero-duration instant.
    fn instant(&self, at: SimTime, lane: Option<u32>, kind: EventKind);
}

/// The no-op recorder behind [`super::Obs::null`]: discards everything,
/// reports disabled. Keeps observed and unobserved systems on the same
/// code path at the cost of one branch per site.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn is_enabled(&self) -> bool {
        false
    }

    fn begin(&self, _at: SimTime, _lane: Option<u32>, _kind: EventKind) -> SpanId {
        SpanId::NULL
    }

    fn end(&self, _at: SimTime, _span: SpanId) {}

    fn instant(&self, _at: SimTime, _lane: Option<u32>, _kind: EventKind) {}
}

/// Ring-buffer state behind the mutex.
#[derive(Debug)]
struct TraceBuf {
    events: VecDeque<TraceEvent>,
    /// Next span id to hand out (ids start at 1; 0 is [`SpanId::NULL`]).
    next_span: u64,
    /// Events evicted because the ring was full.
    dropped: u64,
}

/// An in-memory, bounded recorder: the last `capacity` events are kept,
/// older ones are evicted FIFO (and counted, so exports can flag the
/// truncation instead of silently presenting a partial timeline).
///
/// # Example
///
/// ```
/// use uparc_sim::obs::{EventKind, Recorder, TraceRecorder};
/// use uparc_sim::time::SimTime;
///
/// let rec = TraceRecorder::with_capacity(2);
/// for i in 0..3 {
///     rec.instant(SimTime::from_us(i), None, EventKind::RecoveryRung { rung: "restage" });
/// }
/// assert_eq!(rec.events().len(), 2); // ring kept the newest two
/// assert_eq!(rec.dropped(), 1);
/// ```
#[derive(Debug)]
pub struct TraceRecorder {
    buf: Mutex<TraceBuf>,
    capacity: usize,
}

/// Default ring capacity: a full `bench_service` run is ~10⁴ events, so
/// 2²⁰ leaves ample headroom while bounding memory at tens of MB.
const DEFAULT_CAPACITY: usize = 1 << 20;

impl TraceRecorder {
    /// A recorder with the default ring capacity (2²⁰ events).
    #[must_use]
    pub fn new() -> Self {
        TraceRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder keeping at most `capacity` events (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        TraceRecorder {
            buf: Mutex::new(TraceBuf {
                events: VecDeque::with_capacity(capacity.min(4096)),
                next_span: 1,
                dropped: 0,
            }),
            capacity,
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut buf = self.buf.lock().expect("trace buffer poisoned");
        if buf.events.len() == self.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(ev);
    }

    /// A snapshot of the buffered events, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("trace buffer poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.lock().expect("trace buffer poisoned").events.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.buf.lock().expect("trace buffer poisoned").dropped
    }

    /// Drops all buffered events (span-id assignment keeps counting).
    pub fn clear(&self) {
        let mut buf = self.buf.lock().expect("trace buffer poisoned");
        buf.events.clear();
        buf.dropped = 0;
    }

    /// Renders the buffer as Chrome `trace_event` JSON (see
    /// [`export::chrome_trace`]), embedding `metrics` when given.
    #[must_use]
    pub fn chrome_trace(&self, metrics: Option<&Metrics>) -> String {
        export::chrome_trace(&self.events(), self.dropped(), metrics)
    }

    /// Renders the buffer as the compact per-lane text flamegraph (see
    /// [`export::flame_summary`]).
    #[must_use]
    pub fn flame_summary(&self) -> String {
        export::flame_summary(&self.events())
    }
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl Recorder for TraceRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn begin(&self, at: SimTime, lane: Option<u32>, kind: EventKind) -> SpanId {
        let span = {
            let mut buf = self.buf.lock().expect("trace buffer poisoned");
            let id = SpanId(buf.next_span);
            buf.next_span += 1;
            id
        };
        self.push(TraceEvent::Begin {
            at,
            span,
            lane,
            kind,
        });
        span
    }

    fn end(&self, at: SimTime, span: SpanId) {
        self.push(TraceEvent::End { at, span });
    }

    fn instant(&self, at: SimTime, lane: Option<u32>, kind: EventKind) {
        self.push(TraceEvent::Instant { at, lane, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_monotonic_and_unique() {
        let rec = TraceRecorder::new();
        let a = rec.begin(SimTime::ZERO, None, EventKind::Dispatch { request: 1 });
        let b = rec.begin(SimTime::ZERO, None, EventKind::Dispatch { request: 2 });
        assert!(b > a);
        assert_ne!(a, SpanId::NULL);
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let rec = TraceRecorder::with_capacity(3);
        for i in 0..5u64 {
            rec.instant(
                SimTime::from_us(i),
                None,
                EventKind::RecoveryRung { rung: "restage" },
            );
        }
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.dropped(), 2);
        assert_eq!(events[0].at(), SimTime::from_us(2), "oldest two evicted");
    }

    #[test]
    fn clear_resets_buffer_but_not_span_ids() {
        let rec = TraceRecorder::new();
        let a = rec.begin(SimTime::ZERO, None, EventKind::Dispatch { request: 1 });
        rec.clear();
        assert!(rec.is_empty());
        let b = rec.begin(SimTime::ZERO, None, EventKind::Dispatch { request: 2 });
        assert!(b > a, "ids keep counting across clear");
    }

    #[test]
    fn null_recorder_discards_and_reports_disabled() {
        let rec = NullRecorder;
        assert!(!rec.is_enabled());
        let id = rec.begin(SimTime::ZERO, Some(1), EventKind::Dispatch { request: 1 });
        assert_eq!(id, SpanId::NULL);
    }
}

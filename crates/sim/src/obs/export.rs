//! Deterministic exporters: Chrome `trace_event` JSON and a compact
//! folded-stack text summary.
//!
//! Both exporters are pure functions of the event slice (plus the metrics
//! snapshot for the JSON export), format every float with fixed
//! precision, and iterate name-sorted maps — identical inputs produce
//! byte-identical output, which `tests/obs.rs` relies on.

use super::event::{EventKind, SpanId, TraceEvent};
use super::metrics::Metrics;
use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a fixed-precision JSON value; non-finite values
/// (the uncapped-power sentinel `f64::INFINITY`) become quoted strings,
/// which JSON proper cannot carry as numbers.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else if v == f64::INFINITY {
        "\"inf\"".to_owned()
    } else if v == f64::NEG_INFINITY {
        "\"-inf\"".to_owned()
    } else {
        "\"nan\"".to_owned()
    }
}

/// Timestamp in Chrome-trace microseconds, fixed 6-decimal (picosecond)
/// precision.
fn ts_us(at: SimTime) -> String {
    format!("{:.6}", at.as_us_f64())
}

/// Chrome-trace thread id for a lane tag: lane `n` maps to tid `n + 1`;
/// untagged (system-wide) events map to tid 0.
fn tid_of(lane: Option<u32>) -> u32 {
    lane.map_or(0, |l| l + 1)
}

/// The trace category for a kind — groups the timeline by subsystem.
fn category(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::IcapBurst { .. } => "icap",
        EventKind::DcmRelock { .. } => "clock",
        EventKind::DecompressStage { .. } | EventKind::Preload { .. } => "datapath",
        EventKind::RecoveryRung { .. } => "recovery",
        EventKind::Admission { .. } | EventKind::Dispatch { .. } | EventKind::CapSample { .. } => {
            "serve"
        }
        EventKind::ChipDown { .. }
        | EventKind::Failover { .. }
        | EventKind::CapEmergency { .. }
        | EventKind::Quarantine { .. } => "fleet",
        EventKind::Relocate { .. } | EventKind::Compact { .. } | EventKind::AllocFail { .. } => {
            "place"
        }
        EventKind::Vf { .. } | EventKind::Thermal { .. } => "power",
    }
}

/// The `"args"` object for a kind's typed payload.
fn args_json(kind: &EventKind) -> String {
    match kind {
        EventKind::IcapBurst { words } => format!("{{\"words\":{words}}}"),
        EventKind::DcmRelock { clock, target_mhz } => format!(
            "{{\"clock\":\"{}\",\"target_mhz\":{}}}",
            escape_json(clock),
            json_f64(*target_mhz)
        ),
        EventKind::DecompressStage { bytes } => format!("{{\"bytes\":{bytes}}}"),
        EventKind::Preload {
            stored_bytes,
            compressed,
        } => format!("{{\"stored_bytes\":{stored_bytes},\"compressed\":{compressed}}}"),
        EventKind::RecoveryRung { rung } => format!("{{\"rung\":\"{}\"}}", escape_json(rung)),
        EventKind::Admission { outcome, request } => format!(
            "{{\"outcome\":\"{}\",\"request\":{request}}}",
            escape_json(outcome)
        ),
        EventKind::Dispatch { request } => format!("{{\"request\":{request}}}"),
        EventKind::CapSample { total_mw, cap_mw } => format!(
            "{{\"total_mw\":{},\"cap_mw\":{}}}",
            json_f64(*total_mw),
            json_f64(*cap_mw)
        ),
        EventKind::ChipDown { chip } => format!("{{\"chip\":{chip}}}"),
        EventKind::Failover { request, from, to } => {
            format!("{{\"request\":{request},\"from\":{from},\"to\":{to}}}")
        }
        EventKind::CapEmergency { cap_mw } => {
            format!("{{\"cap_mw\":{}}}", json_f64(*cap_mw))
        }
        EventKind::Quarantine { chip } => format!("{{\"chip\":{chip}}}"),
        EventKind::Relocate { from, to, frames } => {
            format!("{{\"from\":{from},\"to\":{to},\"frames\":{frames}}}")
        }
        EventKind::Compact {
            moves,
            recovered_frames,
        } => format!("{{\"moves\":{moves},\"recovered_frames\":{recovered_frames}}}"),
        EventKind::AllocFail {
            frames,
            largest_free,
        } => format!("{{\"frames\":{frames},\"largest_free\":{largest_free}}}"),
        EventKind::Vf { from_mv, to_mv } => {
            format!("{{\"from_mv\":{from_mv},\"to_mv\":{to_mv}}}")
        }
        EventKind::Thermal {
            temp_c,
            limit_c,
            throttled,
        } => format!(
            "{{\"temp_c\":{},\"limit_c\":{},\"throttled\":{throttled}}}",
            json_f64(*temp_c),
            json_f64(*limit_c)
        ),
    }
}

/// Renders `events` as Chrome `trace_event` JSON, loadable in
/// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
///
/// * Spans become phase-`"X"` (complete) events — `Begin`/`End` records
///   are paired by span id; a span with no `End` in the buffer is
///   exported with zero duration and `"unclosed": true` in its args.
/// * Instants become phase-`"i"` events with `"s": "t"` (thread scope).
/// * `ts`/`dur` are microseconds at fixed 6-decimal precision; `pid` is
///   always 1; `tid` is `lane + 1` (0 for untagged events), with
///   `thread_name` metadata emitted per tid.
/// * `dropped` (ring-buffer evictions) lands in `otherData`; `metrics`,
///   when given, is embedded name-sorted under the top-level
///   `"uparcMetrics"` key, which trace viewers ignore.
///
/// Output is byte-identical for identical inputs.
#[must_use]
pub fn chrome_trace(events: &[TraceEvent], dropped: u64, metrics: Option<&Metrics>) -> String {
    // Pair every End with its Begin up front.
    let mut end_at: BTreeMap<SpanId, SimTime> = BTreeMap::new();
    for ev in events {
        if let TraceEvent::End { at, span } = ev {
            end_at.insert(*span, *at);
        }
    }

    let mut records: Vec<String> = Vec::new();
    let mut tids: BTreeMap<u32, ()> = BTreeMap::new();

    for ev in events {
        match ev {
            TraceEvent::Begin {
                at,
                span,
                lane,
                kind,
            } => {
                let tid = tid_of(*lane);
                tids.insert(tid, ());
                let (dur, unclosed) = match end_at.get(span) {
                    Some(end) => (end.saturating_sub(*at), false),
                    None => (SimTime::ZERO, true),
                };
                let mut args = args_json(kind);
                if unclosed {
                    // Every kind renders a non-empty object: splice the
                    // flag in before the closing brace.
                    args.truncate(args.len() - 1);
                    args.push_str(",\"unclosed\":true}");
                }
                records.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid},\"id\":{},\"args\":{args}}}",
                    kind.label(),
                    category(kind),
                    ts_us(*at),
                    ts_us(dur),
                    span.0,
                ));
            }
            TraceEvent::End { .. } => {}
            TraceEvent::Instant { at, lane, kind } => {
                let tid = tid_of(*lane);
                tids.insert(tid, ());
                records.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"args\":{}}}",
                    kind.label(),
                    category(kind),
                    ts_us(*at),
                    args_json(kind),
                ));
            }
        }
    }

    // Metadata: process and per-tid thread names, so Perfetto shows
    // "lane N" tracks instead of bare numbers.
    let mut meta: Vec<String> = Vec::new();
    meta.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"uparc\"}}"
            .to_owned(),
    );
    for tid in tids.keys() {
        let label = if *tid == 0 {
            "system".to_owned()
        } else {
            format!("lane {}", tid - 1)
        };
        meta.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for rec in meta.iter().chain(records.iter()) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(rec);
    }
    out.push_str("\n],\n\"displayTimeUnit\":\"ms\",\n");
    let _ = write!(
        out,
        "\"otherData\":{{\"producer\":\"uparc-sim::obs\",\"dropped_events\":\"{dropped}\"}}"
    );

    if let Some(metrics) = metrics {
        let snap = metrics.snapshot();
        out.push_str(",\n\"uparcMetrics\":{\"counters\":{");
        let mut first = true;
        for (name, v) in &snap.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", escape_json(name));
        }
        out.push_str("},\"gauges\":{");
        let mut first = true;
        for (name, v) in &snap.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", escape_json(name), json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, h) in &snap.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"mean\":{},\"min\":{},\"max\":{},\"p99_le\":{}}}",
                escape_json(name),
                h.count(),
                json_f64(h.mean()),
                json_f64(if h.count() == 0 { 0.0 } else { h.min() }),
                json_f64(if h.count() == 0 { 0.0 } else { h.max() }),
                json_f64(h.quantile_upper_bound(0.99)),
            );
        }
        out.push_str("}}");
    }
    out.push_str("\n}\n");
    out
}

/// Per-stack aggregate for the flame summary.
#[derive(Debug, Default, Clone, Copy)]
struct FlameCell {
    total: SimTime,
    count: u64,
}

/// Renders `events` as a compact folded-stack text summary: one line per
/// `(lane, span-stack path)`, with the stack rendered
/// `Outer;Inner`-style (flamegraph "folded" notation), the total time
/// spent in that stack, and the occurrence count. Instants appear as
/// zero-duration leaves. Lines are sorted by lane then path, so output
/// is deterministic.
///
/// ```text
/// [lane 0] Dispatch                      1423.250000 us  x12
/// [lane 0] Dispatch;IcapBurst             801.125000 us  x12
/// [system] CapSample                        0.000000 us  x40
/// ```
#[must_use]
pub fn flame_summary(events: &[TraceEvent]) -> String {
    // span id → (lane key, folded path, begin time)
    let mut open: BTreeMap<SpanId, (Option<u32>, String, SimTime)> = BTreeMap::new();
    // lane key → stack of open span ids (top = innermost)
    let mut stacks: BTreeMap<Option<u32>, Vec<SpanId>> = BTreeMap::new();
    // (lane key, path) → aggregate
    let mut cells: BTreeMap<(Option<u32>, String), FlameCell> = BTreeMap::new();

    let mut bump = |key: (Option<u32>, String), dur: SimTime| {
        let cell = cells.entry(key).or_default();
        cell.total = cell.total.checked_add(dur).unwrap_or(SimTime::MAX);
        cell.count += 1;
    };

    for ev in events {
        match ev {
            TraceEvent::Begin {
                at,
                span,
                lane,
                kind,
            } => {
                let stack = stacks.entry(*lane).or_default();
                let path = match stack.last().and_then(|top| open.get(top)) {
                    Some((_, parent, _)) => format!("{parent};{}", kind.label()),
                    None => kind.label().to_owned(),
                };
                stack.push(*span);
                open.insert(*span, (*lane, path, *at));
            }
            TraceEvent::End { at, span } => {
                if let Some((lane, path, begin)) = open.remove(span) {
                    if let Some(stack) = stacks.get_mut(&lane) {
                        if let Some(pos) = stack.iter().rposition(|s| s == span) {
                            stack.remove(pos);
                        }
                    }
                    bump((lane, path), at.saturating_sub(begin));
                }
            }
            TraceEvent::Instant { lane, kind, .. } => {
                let path = match stacks
                    .get(lane)
                    .and_then(|s| s.last())
                    .and_then(|top| open.get(top))
                {
                    Some((_, parent, _)) => format!("{parent};{}", kind.label()),
                    None => kind.label().to_owned(),
                };
                bump((*lane, path), SimTime::ZERO);
            }
        }
    }

    // Unclosed spans count once with zero duration.
    let leftovers: Vec<_> = open.into_values().collect();
    for (lane, path, _) in leftovers {
        bump((lane, path), SimTime::ZERO);
    }

    let width = cells
        .keys()
        .map(|(_, path)| path.len())
        .max()
        .unwrap_or(0)
        .max(4);
    let mut out = String::new();
    for ((lane, path), cell) in &cells {
        let lane_label = match lane {
            Some(l) => format!("[lane {l}]"),
            None => "[system]".to_owned(),
        };
        let _ = writeln!(
            out,
            "{lane_label:<9} {path:<width$}  {:>16.6} us  x{}",
            cell.total.as_us_f64(),
            cell.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{Obs, Recorder, TraceRecorder};
    use std::sync::Arc;

    fn sample_recorder() -> Arc<TraceRecorder> {
        let rec = Arc::new(TraceRecorder::new());
        let obs = Obs::recording(Arc::clone(&rec)).with_lane(0);
        let outer = obs.begin(SimTime::from_us(10), EventKind::Dispatch { request: 1 });
        let inner = obs.begin(SimTime::from_us(12), EventKind::IcapBurst { words: 512 });
        obs.end(SimTime::from_us(15), inner);
        obs.instant(
            SimTime::from_us(16),
            EventKind::RecoveryRung { rung: "restage" },
        );
        obs.end(SimTime::from_us(20), outer);
        rec.instant(
            SimTime::from_us(21),
            None,
            EventKind::CapSample {
                total_mw: 123.0,
                cap_mw: f64::INFINITY,
            },
        );
        rec
    }

    #[test]
    fn chrome_trace_pairs_spans_and_is_deterministic() {
        let rec = sample_recorder();
        let a = rec.chrome_trace(None);
        let b = rec.chrome_trace(None);
        assert_eq!(a, b, "export must be byte-stable");
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"name\":\"Dispatch\""));
        // Dispatch span: 10 µs → 20 µs.
        assert!(a.contains("\"ts\":10.000000,\"dur\":10.000000"), "{a}");
        // Infinity survives as a quoted sentinel, not invalid JSON.
        assert!(a.contains("\"cap_mw\":\"inf\""));
        // Lane 0 maps to tid 1, system events to tid 0.
        assert!(a.contains("\"tid\":1"));
        assert!(a.contains("\"name\":\"thread_name\""));
    }

    #[test]
    fn chrome_trace_flags_unclosed_spans() {
        let rec = TraceRecorder::new();
        rec.begin(
            SimTime::from_us(1),
            None,
            EventKind::Dispatch { request: 9 },
        );
        let trace = rec.chrome_trace(None);
        assert!(trace.contains("\"unclosed\":true"), "{trace}");
        assert!(trace.contains("\"dur\":0.000000"));
    }

    #[test]
    fn chrome_trace_parses_with_in_repo_parser() {
        let rec = sample_recorder();
        let obs = Obs::new(Arc::clone(&rec) as Arc<dyn Recorder>, Default::default());
        obs.metrics().count("icap.bursts", 1);
        obs.metrics().observe("serve.latency_us", 42.0);
        let trace = rec.chrome_trace(Some(obs.metrics()));
        let doc = crate::obs::json::parse(&trace).expect("export must be valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let metrics = doc.get("uparcMetrics").expect("embedded metrics");
        assert!(metrics.get("counters").is_some());
    }

    #[test]
    fn flame_summary_folds_nested_stacks() {
        let rec = sample_recorder();
        let flame = rec.flame_summary();
        assert!(flame.contains("Dispatch;IcapBurst"), "{flame}");
        assert!(flame.contains("Dispatch;RecoveryRung"), "{flame}");
        assert!(flame.contains("[system]"), "{flame}");
        assert!(flame.contains("x1"), "{flame}");
        // Deterministic.
        assert_eq!(flame, rec.flame_summary());
    }
}

//! The metrics registry: named counters, gauges, and log₂-bucketed
//! histograms with deterministic snapshots.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of histogram buckets: one per possible f64 magnitude class we
/// care about (values spanning 2⁻³² … 2³¹), plus underflow at index 0.
const BUCKETS: usize = 64;

/// A fixed-shape, log₂-bucketed histogram.
///
/// Bucket `i` (for `i >= 1`) holds values `v` with
/// `2^(i-33) <= v < 2^(i-32)`; bucket 0 holds everything below `2⁻³²`
/// (including zero and negatives). The shape is fixed and the bucketing
/// exact (float exponent extraction, no transcendental math), so two runs
/// that observe the same values produce identical histograms — a
/// requirement for byte-stable exports.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value < f64::MIN_POSITIVE {
            // Zero, negatives, NaN: underflow bucket.
            return 0;
        }
        // IEEE-754 unbiased exponent: floor(log2(value)) for normals.
        let exp = ((value.to_bits() >> 52) & 0x7ff) as i64 - 1023;
        (exp + 33).clamp(0, BUCKETS as i64 - 1) as usize
    }

    /// Records one value.
    pub fn observe(&mut self, value: f64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (+∞ when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded value (−∞ when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// An upper bound on the `q`-quantile (0.0–1.0), read off the bucket
    /// boundaries: the result is the inclusive upper edge of the bucket
    /// the quantile falls in, so it is within 2× of the true value.
    #[must_use]
    pub fn quantile_upper_bound(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                if i == 0 {
                    return 0.0;
                }
                // Upper edge of bucket i: 2^(i-32).
                return (2.0f64).powi(i as i32 - 32);
            }
        }
        self.max
    }

    /// The raw bucket counts (index → values in `[2^(i-33), 2^(i-32))`).
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// Registry state behind the mutex. `BTreeMap` keeps iteration order
/// deterministic (sorted by name) for snapshots and renders.
#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// A registry of named counters, gauges, and histograms.
///
/// Shared behind an `Arc` by every [`super::Obs`] handle cloned from the
/// same root; all methods take `&self` (interior mutability). Metric
/// names are dotted lowercase paths (`"icap.words"`,
/// `"serve.latency_us"`) — the full catalogue lives in `OBSERVABILITY.md`.
///
/// # Example
///
/// ```
/// use uparc_sim::obs::Metrics;
///
/// let m = Metrics::new();
/// m.count("icap.bursts", 1);
/// m.count("icap.bursts", 2);
/// m.observe("serve.latency_us", 42.0);
/// let snap = m.snapshot();
/// assert_eq!(snap.counters["icap.bursts"], 3);
/// assert_eq!(snap.histograms["serve.latency_us"].count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

impl Metrics {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to counter `name` (created at zero on first use).
    pub fn count(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match inner.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                inner.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .gauges
            .insert(name.to_owned(), value);
    }

    /// Records `value` into histogram `name` (created empty on first use).
    pub fn observe(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// A deterministic (name-sorted) copy of the registry's contents.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics poisoned");
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Renders the registry as an aligned `name value` text table, one
    /// metric per line, histograms summarised as
    /// `count/mean/min/max/p99≤`. Deterministic for a given registry
    /// state.
    #[must_use]
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// A point-in-time copy of a [`Metrics`] registry, name-sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → accumulated value.
    pub counters: BTreeMap<String, u64>,
    /// Gauge name → last written value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → distribution.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Whether the snapshot holds no metrics at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The text rendering described on [`Metrics::render_text`].
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:<width$}  {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name:<width$}  {v:.6}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name:<width$}  count={} mean={:.6} min={:.6} max={:.6} p99<={:.6}\n",
                h.count(),
                h.mean(),
                if h.count() == 0 { 0.0 } else { h.min() },
                if h.count() == 0 { 0.0 } else { h.max() },
                h.quantile_upper_bound(0.99),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.count("a", 1);
        m.count("a", 4);
        m.count("b", 2);
        let s = m.snapshot();
        assert_eq!(s.counters["a"], 5);
        assert_eq!(s.counters["b"], 2);
    }

    #[test]
    fn gauges_last_write_wins() {
        let m = Metrics::new();
        m.gauge("g", 1.0);
        m.gauge("g", 7.5);
        assert_eq!(m.snapshot().gauges["g"], 7.5);
    }

    #[test]
    fn histogram_buckets_are_exact_log2() {
        let mut h = Histogram::new();
        h.observe(1.0); // exponent 0 → bucket 33
        h.observe(1.5); // same bucket
        h.observe(2.0); // bucket 34
        h.observe(0.0); // underflow bucket 0
        assert_eq!(h.buckets()[33], 2);
        assert_eq!(h.buckets()[34], 1);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 2.0);
    }

    #[test]
    fn histogram_quantile_bound_brackets_true_value() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0, 1000.0] {
            h.observe(v);
        }
        let p99 = h.quantile_upper_bound(0.99);
        assert!(p99 >= 1000.0, "p99 bound {p99} below max sample");
        assert!(p99 <= 2000.0, "p99 bound {p99} looser than 2x");
        // True p50 is 4.0; its bucket is [4, 8), so the bound is 8.
        let p50 = h.quantile_upper_bound(0.5);
        assert!((4.0..=8.0).contains(&p50), "p50 bound {p50}");
    }

    #[test]
    fn render_text_is_deterministic_and_sorted() {
        let m = Metrics::new();
        m.count("z.last", 1);
        m.count("a.first", 2);
        m.observe("m.hist", 3.0);
        let a = m.render_text();
        let b = m.render_text();
        assert_eq!(a, b);
        let first = a.lines().next().unwrap();
        assert!(first.starts_with("a.first"), "sorted output: {first}");
    }

    #[test]
    fn empty_snapshot_is_empty() {
        assert!(Metrics::new().snapshot().is_empty());
    }
}

//! The event-driven placement simulation: churn in, fragmentation out.
//!
//! One [`uparc_sim::engine::Engine`] process owns a
//! [`DynamicCatalog`] and a single ICAP's time budget. Foreground work
//! (tenant loads) always wins the port; the [`Defragmenter`] only gets
//! cycles when the port is idle and no load is queued — the "idle ICAP
//! bandwidth" budget the paper's controller leaves on the table between
//! reconfigurations. Every relocation move is wrapped in a
//! `Relocate` span, every finished pass emits a `Compact` instant, and
//! every admission rejection an `AllocFail` instant, so a trace shows
//! exactly when compaction ran and what it bought.

use std::collections::VecDeque;

use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_fpga::alloc::{FitPolicy, FragStats};
use uparc_fpga::Device;
use uparc_serve::dynamic::{DynamicCatalog, PlacementError};
use uparc_serve::request::BitstreamId;
use uparc_sim::engine::{Context, Engine, Process};
use uparc_sim::fault::substream;
use uparc_sim::obs::{EventKind, Obs};
use uparc_sim::time::{Frequency, SimTime};

use crate::churn::{Arrival, ChurnSpec, LANE_PAYLOAD};
use crate::defrag::Defragmenter;

/// Configuration of one churn run.
#[derive(Debug, Clone)]
pub struct PlacementConfig {
    /// The device whose frame space is being managed.
    pub device: Device,
    /// Allocation policy for tenant admission.
    pub policy: FitPolicy,
    /// Whether the background defragmenter runs on idle ICAP time.
    pub defrag: bool,
    /// Verify every relocation against a fresh
    /// [`PartialBitstream::try_build`] at the destination (byte
    /// identity). Costs a rebuild per move; benches turn it on.
    pub verify_moves: bool,
    /// ICAP streaming frequency; defaults to the family's specified
    /// frequency when `None`.
    pub icap_frequency: Option<Frequency>,
    /// Observability handle (null by default).
    pub obs: Obs,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        PlacementConfig {
            device: Device::xc5vsx50t(),
            policy: FitPolicy::FirstFit,
            defrag: true,
            verify_moves: false,
            icap_frequency: None,
            obs: Obs::null(),
        }
    }
}

/// What a churn run did and where it left the frame space.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// Tenant arrivals offered.
    pub arrivals: u32,
    /// Loads admitted and completed.
    pub placed: u32,
    /// Arrivals shed with no window (the `AllocFail` count).
    pub rejected: u32,
    /// Of the rejections, how many were trapped-capacity cases (enough
    /// total free frames existed, but no single block fit).
    pub rejected_trapped: u32,
    /// Tenants that departed (windows freed).
    pub departed: u32,
    /// Defragmentation moves performed.
    pub moves: u32,
    /// Frames carried by those moves.
    pub moved_frames: u64,
    /// Completed compaction passes (`Compact` instants).
    pub compact_passes: u32,
    /// Moves verified byte-identical to a fresh build (0 unless
    /// [`PlacementConfig::verify_moves`]).
    pub verified_moves: u32,
    /// Verified moves that did NOT match a fresh build (must stay 0).
    pub verify_failures: u32,
    /// Catalog/allocator invariant violations observed (must stay 0).
    pub invariant_violations: u32,
    /// Live images at the end of the run.
    pub live_at_end: u32,
    /// Frames those images occupy.
    pub live_frames: u32,
    /// Fragmentation snapshot at the end of the run.
    pub final_frag: FragStats,
    /// Total time the ICAP spent streaming (loads + moves).
    pub icap_busy: SimTime,
    /// Of that, time spent on defragmentation moves alone.
    pub icap_defrag: SimTime,
    /// Simulated time at the last event.
    pub makespan: SimTime,
}

#[derive(Debug, Clone, PartialEq)]
enum PlaceEv {
    Arrive(u32),
    Depart(u32),
    IcapDone,
}

struct PlaceProcess {
    catalog: DynamicCatalog,
    device: Device,
    arrivals: Vec<Arrival>,
    seed: u64,
    freq: Frequency,
    defrag: Option<Defragmenter>,
    verify_moves: bool,
    obs: Obs,
    // ICAP occupancy: at most one transfer in flight.
    busy: bool,
    queue: VecDeque<u32>,
    // Current compaction pass (moves so far, largest-free at pass start).
    pass: Option<(u32, u32)>,
    out: ChurnOutcome,
}

/// Runs `spec` for `seed` under `config`, returning the outcome.
///
/// Fully deterministic: the same `(spec, seed, config)` triple produces
/// the same outcome, trace and metrics, byte for byte.
#[must_use]
pub fn run_churn(spec: &ChurnSpec, seed: u64, config: PlacementConfig) -> ChurnOutcome {
    let arrivals = spec.expand(seed);
    let freq = config
        .icap_frequency
        .unwrap_or_else(|| config.device.family().icap_spec_frequency());
    let process = PlaceProcess {
        catalog: DynamicCatalog::new(config.device.clone(), config.policy),
        device: config.device,
        seed,
        freq,
        defrag: config.defrag.then_some(Defragmenter),
        verify_moves: config.verify_moves,
        obs: config.obs,
        busy: false,
        queue: VecDeque::new(),
        pass: None,
        out: ChurnOutcome {
            arrivals: arrivals.len() as u32,
            placed: 0,
            rejected: 0,
            rejected_trapped: 0,
            departed: 0,
            moves: 0,
            moved_frames: 0,
            compact_passes: 0,
            verified_moves: 0,
            verify_failures: 0,
            invariant_violations: 0,
            live_at_end: 0,
            live_frames: 0,
            final_frag: FragStats {
                total_free: 0,
                largest_free: 0,
                free_blocks: 0,
                histogram: [0; 32],
            },
            icap_busy: SimTime::ZERO,
            icap_defrag: SimTime::ZERO,
            makespan: SimTime::ZERO,
        },
        arrivals,
    };

    let schedule: Vec<(SimTime, u32)> = process
        .arrivals
        .iter()
        .enumerate()
        .map(|(i, a)| (a.at, i as u32))
        .collect();
    let mut engine: Engine<PlaceEv> = Engine::new();
    let id = engine.spawn(Box::new(process));
    for (at, i) in schedule {
        engine.schedule(at, id, PlaceEv::Arrive(i));
    }
    engine.run();

    let boxed: Box<dyn std::any::Any> = engine.despawn(id);
    let mut process = boxed
        .downcast::<PlaceProcess>()
        .expect("despawned the process we spawned");
    process.out.makespan = engine.now();
    process.out.live_at_end = process.catalog.len() as u32;
    process.out.live_frames = process
        .catalog
        .iter()
        .map(|(_, img)| img.window().end - img.window().start)
        .sum();
    process.out.final_frag = process.catalog.frag_stats();
    process.check();
    process.out.clone()
}

impl PlaceProcess {
    fn check(&mut self) {
        if let Err(violation) = self.catalog.check_invariants() {
            self.out.invariant_violations += 1;
            self.obs.count("place.invariant_violations", 1);
            debug_assert!(false, "placement invariant violated: {violation}");
        }
    }

    fn tenant_image(&self, arrival: &Arrival) -> PartialBitstream {
        let image_seed = substream(self.seed, LANE_PAYLOAD, u64::from(arrival.tenant));
        let payload = SynthProfile::dense().generate(&self.device, 0, arrival.frames, image_seed);
        PartialBitstream::build(&self.device, 0, &payload)
    }

    /// Starts the next piece of ICAP work, foreground loads first, then
    /// (when idle and enabled) one defragmentation move.
    fn pump(&mut self, ctx: &mut Context<'_, PlaceEv>) {
        while !self.busy {
            if let Some(i) = self.queue.pop_front() {
                self.admit(ctx, i);
                continue;
            }
            if !self.step_defrag(ctx) {
                break;
            }
        }
    }

    fn admit(&mut self, ctx: &mut Context<'_, PlaceEv>, index: u32) {
        let arrival = self.arrivals[index as usize].clone();
        let image = self.tenant_image(&arrival);
        let now = ctx.now();
        match self.catalog.load(BitstreamId(arrival.tenant), &image) {
            Ok(_window) => {
                let placed = self
                    .catalog
                    .get(BitstreamId(arrival.tenant))
                    .expect("just placed");
                let words = placed.bitstream().words().len() as u64;
                let dt = self.freq.time_of_cycles(words);
                let span = self.obs.begin(now, EventKind::IcapBurst { words });
                self.obs.end(now + dt, span);
                self.obs.instant(
                    now,
                    EventKind::Admission {
                        outcome: "placed",
                        request: u64::from(arrival.tenant),
                    },
                );
                self.obs.count("place.allocs", 1);
                self.out.placed += 1;
                self.out.icap_busy += dt;
                self.busy = true;
                ctx.send_in(dt, ctx.self_id(), PlaceEv::IcapDone);
                if let Some(hold) = arrival.hold {
                    ctx.send_in(dt + hold, ctx.self_id(), PlaceEv::Depart(arrival.tenant));
                }
            }
            Err(err @ PlacementError::NoCapacity { .. }) => {
                self.obs.instant(
                    now,
                    EventKind::AllocFail {
                        frames: arrival.frames,
                        largest_free: self.catalog.allocator().largest_free(),
                    },
                );
                self.obs.instant(
                    now,
                    EventKind::Admission {
                        outcome: "no_capacity",
                        request: u64::from(arrival.tenant),
                    },
                );
                self.obs.count("place.alloc_fails", 1);
                self.out.rejected += 1;
                if err.is_trapped_capacity() {
                    self.out.rejected_trapped += 1;
                    self.obs.count("place.alloc_fails_trapped", 1);
                }
            }
            Err(err) => unreachable!("churn admission can only fail on capacity: {err}"),
        }
        self.check();
    }

    /// Performs one defragmentation move if the planner finds one.
    /// Returns whether a move was started.
    fn step_defrag(&mut self, ctx: &mut Context<'_, PlaceEv>) -> bool {
        let Some(defrag) = self.defrag else {
            return false;
        };
        let now = ctx.now();
        let Some(plan) = defrag.plan(&self.catalog) else {
            // Pass complete: report what compaction recovered.
            if let Some((moves, largest_before)) = self.pass.take() {
                let largest_now = self.catalog.allocator().largest_free();
                self.obs.instant(
                    now,
                    EventKind::Compact {
                        moves,
                        recovered_frames: largest_now.saturating_sub(largest_before),
                    },
                );
                self.obs
                    .gauge("place.contiguity", self.catalog.frag_stats().contiguity());
                self.out.compact_passes += 1;
            }
            return false;
        };
        if self.pass.is_none() {
            self.pass = Some((0, self.catalog.allocator().largest_free()));
        }
        // A move streams the image twice: frame readback, then the
        // relocated write.
        let words = 2 * self
            .catalog
            .get(plan.id)
            .expect("planned image is live")
            .bitstream()
            .words()
            .len() as u64;
        let dt = self.freq.time_of_cycles(words);
        let span = self.obs.begin(
            now,
            EventKind::Relocate {
                from: plan.from.start,
                to: plan.to,
                frames: plan.frames,
            },
        );
        self.obs.end(now + dt, span);
        self.catalog
            .relocate_to(plan.id, plan.to)
            .expect("planned moves land");
        if self.verify_moves {
            let moved = self.catalog.get(plan.id).expect("still live");
            let fresh =
                PartialBitstream::try_build(&self.device, plan.to, moved.bitstream().payload())
                    .expect("fresh build at a valid window");
            if *moved.bitstream() == fresh {
                self.out.verified_moves += 1;
            } else {
                self.out.verify_failures += 1;
            }
        }
        self.obs.count("place.moves", 1);
        self.out.moves += 1;
        self.out.moved_frames += u64::from(plan.frames);
        self.out.icap_busy += dt;
        self.out.icap_defrag += dt;
        if let Some((moves, _)) = self.pass.as_mut() {
            *moves += 1;
        }
        self.busy = true;
        ctx.send_in(dt, ctx.self_id(), PlaceEv::IcapDone);
        self.check();
        true
    }
}

impl Process<PlaceEv> for PlaceProcess {
    fn handle(&mut self, ctx: &mut Context<'_, PlaceEv>, event: PlaceEv) {
        match event {
            PlaceEv::Arrive(i) => {
                self.queue.push_back(i);
                self.pump(ctx);
            }
            PlaceEv::Depart(tenant) => {
                self.catalog
                    .unload(BitstreamId(tenant))
                    .expect("departing tenants are live");
                self.obs.count("place.frees", 1);
                self.out.departed += 1;
                self.check();
                self.pump(ctx);
            }
            PlaceEv::IcapDone => {
                self.busy = false;
                self.pump(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ChurnSpec {
        ChurnSpec {
            tenants: 120,
            mean_gap: SimTime::from_us(400),
            mean_hold: SimTime::from_ms(4),
            frames_min: 8,
            frames_max: 48,
            pinned_permille: 200,
        }
    }

    #[test]
    fn churn_runs_are_deterministic() {
        let cfg = || PlacementConfig {
            verify_moves: true,
            ..PlacementConfig::default()
        };
        let a = run_churn(&spec(), 11, cfg());
        let b = run_churn(&spec(), 11, cfg());
        assert_eq!(a, b);
        assert_eq!(a.arrivals, 120);
        assert_eq!(a.placed + a.rejected, a.arrivals);
        assert_eq!(a.invariant_violations, 0);
        assert_eq!(a.verify_failures, 0);
        assert_eq!(a.verified_moves, a.moves);
        assert_eq!(a.live_at_end, a.placed - a.departed);
    }

    #[test]
    fn defrag_only_uses_idle_time_and_recovers_capacity() {
        let on = run_churn(&spec(), 3, PlacementConfig::default());
        let off = run_churn(
            &spec(),
            3,
            PlacementConfig {
                defrag: false,
                ..PlacementConfig::default()
            },
        );
        assert_eq!(off.moves, 0);
        assert_eq!(off.icap_defrag, SimTime::ZERO);
        assert!(on.moves > 0, "churn at this rate must trigger compaction");
        assert!(on.compact_passes > 0);
        // Compaction never loses capacity and concentrates it.
        assert!(on.final_frag.largest_free >= off.final_frag.largest_free);
        assert!(on.final_frag.free_blocks <= off.final_frag.free_blocks);
        // Identical tenant stream either way (admission may differ only
        // through fragmentation, which defrag can only improve).
        assert!(on.rejected <= off.rejected);
    }

    #[test]
    fn trace_carries_relocation_spans() {
        use std::sync::Arc;
        use uparc_sim::obs::TraceRecorder;
        let rec = Arc::new(TraceRecorder::new());
        let out = run_churn(
            &spec(),
            5,
            PlacementConfig {
                obs: Obs::recording(Arc::clone(&rec)),
                ..PlacementConfig::default()
            },
        );
        assert!(out.moves > 0);
        let trace = rec.chrome_trace(None);
        assert!(trace.contains("\"name\":\"Relocate\""), "span missing");
        assert!(trace.contains("\"cat\":\"place\""));
        assert!(trace.contains("\"name\":\"Compact\""));
        // The export stays parseable with the in-repo parser.
        uparc_sim::obs::json::parse(&trace).expect("valid trace JSON");
    }
}

//! Background defragmentation: sliding compaction of live images.
//!
//! The defragmenter never preempts foreground loads — the placement sim
//! only asks it for work when the ICAP is idle. Each step is one *move*:
//! take the lowest free gap that has live frames above it and bring a
//! live image down into it (the image immediately above slides down even
//! when the windows overlap, because relocation frees the source before
//! claiming the destination). Every move strictly lowers the sum of live
//! window starts, so a compaction pass always terminates; when no move is
//! plannable the frame space is compact — live images packed low, free
//! capacity coalesced into one high block per reserved boundary.

use std::ops::Range;
use uparc_serve::dynamic::DynamicCatalog;
use uparc_serve::request::BitstreamId;

/// One planned relocation: move image `id` from `from` to frame `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MovePlan {
    /// The image to relocate.
    pub id: BitstreamId,
    /// Its current window.
    pub from: Range<u32>,
    /// Destination frame address.
    pub to: u32,
    /// Frames carried (the move streams these through the ICAP twice:
    /// readback, then the relocated write).
    pub frames: u32,
}

/// The compaction planner. Stateless: each call inspects the catalog and
/// proposes the single best next move, so the caller can interleave moves
/// with foreground work at any granularity.
#[derive(Debug, Clone, Copy, Default)]
pub struct Defragmenter;

impl Defragmenter {
    /// Proposes the next compaction move, or `None` when the layout is
    /// already compact.
    ///
    /// For each free gap (lowest first): the live image directly above it
    /// slides down when it is adjacent; otherwise (a reserved window
    /// intervenes) the first live image above that fits entirely inside
    /// the gap drops in. Gaps with no live frames above them are the
    /// compact tail and are left alone.
    #[must_use]
    pub fn plan(&self, catalog: &DynamicCatalog) -> Option<MovePlan> {
        let alloc = catalog.allocator();
        let live = alloc.live();
        for gap in alloc.free_blocks() {
            let gap_len = gap.end - gap.start;
            let above = live.partition_point(|l| l.start < gap.end);
            let candidates = &live[above..];
            let first = candidates.first()?;
            let pick = if first.start == gap.end {
                Some(first)
            } else {
                candidates.iter().find(|b| b.end - b.start <= gap_len)
            };
            if let Some(block) = pick {
                let id = catalog
                    .iter()
                    .find(|(_, img)| img.window() == *block)
                    .map(|(id, _)| id)
                    .expect("allocator live window belongs to a placed image");
                return Some(MovePlan {
                    id,
                    from: block.clone(),
                    to: gap.start,
                    frames: block.end - block.start,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::builder::PartialBitstream;
    use uparc_bitstream::synth::SynthProfile;
    use uparc_fpga::alloc::FitPolicy;
    use uparc_fpga::Device;

    fn load(cat: &mut DynamicCatalog, id: u32, frames: u32) {
        let device = cat.device().clone();
        let payload = SynthProfile::dense().generate(&device, 0, frames, u64::from(id));
        let bs = PartialBitstream::build(&device, 0, &payload);
        cat.load(BitstreamId(id), &bs).unwrap();
    }

    #[test]
    fn compaction_slides_images_down_until_compact() {
        let mut cat = DynamicCatalog::new(Device::xc5vsx50t(), FitPolicy::FirstFit);
        for id in 0..4u32 {
            load(&mut cat, id, 10);
        }
        // Free the first and third windows: layout hole/live/hole/live.
        cat.unload(BitstreamId(0)).unwrap();
        cat.unload(BitstreamId(2)).unwrap();
        let before = cat.frag_stats();
        let d = Defragmenter;
        let mut moves = 0;
        while let Some(plan) = d.plan(&cat) {
            let (from, to) = cat.relocate_to(plan.id, plan.to).unwrap();
            assert_eq!(from, plan.from);
            assert_eq!(to.start, plan.to);
            cat.check_invariants().unwrap();
            moves += 1;
            assert!(moves <= 8, "compaction must terminate");
        }
        // Both survivors packed at the bottom, free space coalesced.
        let after = cat.frag_stats();
        assert_eq!(after.free_blocks, 1);
        assert_eq!(after.largest_free, after.total_free);
        assert!(after.largest_free > before.largest_free);
        let windows: Vec<_> = cat.iter().map(|(_, img)| img.window()).collect();
        assert!(windows.contains(&(0..10)) && windows.contains(&(10..20)));
    }

    #[test]
    fn compact_layouts_plan_nothing() {
        let mut cat = DynamicCatalog::new(Device::xc5vsx50t(), FitPolicy::FirstFit);
        load(&mut cat, 0, 10);
        load(&mut cat, 1, 20);
        assert_eq!(Defragmenter.plan(&cat), None);
        // Tail-only free space after the last unload is also compact.
        cat.unload(BitstreamId(1)).unwrap();
        assert_eq!(Defragmenter.plan(&cat), None);
    }

    #[test]
    fn reserved_windows_are_stepped_over() {
        let mut cat = DynamicCatalog::new(Device::xc5vsx50t(), FitPolicy::FirstFit);
        cat.reserve_static(10..30).unwrap();
        load(&mut cat, 0, 10); // 0..10
        load(&mut cat, 1, 8); // 30..38
        cat.unload(BitstreamId(0)).unwrap();
        // Gap 0..10 sits below the reserved window; image 1 (8 frames)
        // fits inside it.
        let plan = Defragmenter.plan(&cat).unwrap();
        assert_eq!(plan.id, BitstreamId(1));
        assert_eq!(plan.to, 0);
        cat.relocate_to(plan.id, plan.to).unwrap();
        cat.check_invariants().unwrap();
        assert_eq!(Defragmenter.plan(&cat), None);
    }
}

//! Seeded tenant-churn workloads: allocate/free streams over hours of
//! simulated time.
//!
//! A churn trace is a sequence of tenant arrivals, each asking for a
//! contiguous frame window and (for transient tenants) holding it for a
//! residency time before departing. Expansion is pure: every per-tenant
//! draw comes from its own [`uparc_sim::fault::substream`] lane, so
//! tenant *i*'s size, gap, residency and payload are functions of
//! `(seed, i)` alone — growing the trace or reordering the grid never
//! shifts another tenant's draws (the same invariance the fault and
//! fleet campaigns pin).

use uparc_sim::fault::substream;
use uparc_sim::time::SimTime;

/// Sub-stream lanes, one per independent per-tenant draw.
const LANE_GAP: u64 = 0x70;
const LANE_FRAMES: u64 = 0x71;
const LANE_HOLD: u64 = 0x72;
const LANE_PIN: u64 = 0x73;
/// Payload lane, public so the placement sim derives each tenant's frame
/// data from the same seed discipline.
pub const LANE_PAYLOAD: u64 = 0x74;

/// Shape of a churn workload (the seed turns it into a concrete trace).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Tenant arrivals in the trace.
    pub tenants: u32,
    /// Mean inter-arrival gap (arrivals are jittered uniformly in
    /// `[0.5, 1.5) ×` this).
    pub mean_gap: SimTime,
    /// Mean residency of a transient tenant (same `[0.5, 1.5)` jitter).
    pub mean_hold: SimTime,
    /// Smallest window a tenant asks for, frames.
    pub frames_min: u32,
    /// Largest window a tenant asks for, frames (inclusive).
    pub frames_max: u32,
    /// Out of 1000 tenants, how many are *pinned*: they never depart, so
    /// they anchor the fragmentation the defragmenter has to work around.
    pub pinned_permille: u32,
}

impl Default for ChurnSpec {
    fn default() -> Self {
        ChurnSpec {
            tenants: 400,
            mean_gap: SimTime::from_us(500),
            mean_hold: SimTime::from_ms(20),
            frames_min: 8,
            frames_max: 48,
            pinned_permille: 150,
        }
    }
}

/// One tenant arrival in an expanded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Tenant index (also the bitstream id the sim places under).
    pub tenant: u32,
    /// Arrival time.
    pub at: SimTime,
    /// Contiguous frames requested.
    pub frames: u32,
    /// Residency after the load completes; `None` pins the tenant for
    /// the rest of the run.
    pub hold: Option<SimTime>,
}

impl ChurnSpec {
    /// Expands the spec into a time-sorted arrival trace for `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `frames_min` is zero or exceeds `frames_max`.
    #[must_use]
    pub fn expand(&self, seed: u64) -> Vec<Arrival> {
        assert!(
            0 < self.frames_min && self.frames_min <= self.frames_max,
            "frame range {}..={} is invalid",
            self.frames_min,
            self.frames_max
        );
        let jitter = |raw: u64, mean: SimTime| {
            // Uniform in [0.5, 1.5) × mean, in femtoseconds.
            let fs = mean.as_fs().max(1) as u128;
            let frac = u128::from(raw >> 11); // 53 significant bits
            let span = (fs / 2) + (fs * frac) / (1u128 << 53);
            SimTime::from_fs(span as u64)
        };
        let mut at = SimTime::ZERO;
        let mut out = Vec::with_capacity(self.tenants as usize);
        for tenant in 0..self.tenants {
            let t = u64::from(tenant);
            at += jitter(substream(seed, LANE_GAP, t), self.mean_gap);
            let spread = u64::from(self.frames_max - self.frames_min + 1);
            let frames = self.frames_min + (substream(seed, LANE_FRAMES, t) % spread) as u32;
            let pinned = substream(seed, LANE_PIN, t) % 1000 < u64::from(self.pinned_permille);
            let hold = if pinned {
                None
            } else {
                Some(jitter(substream(seed, LANE_HOLD, t), self.mean_hold))
            };
            out.push(Arrival {
                tenant,
                at,
                frames,
                hold,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic_and_sorted() {
        let spec = ChurnSpec::default();
        let a = spec.expand(42);
        let b = spec.expand(42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 400);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(a
            .iter()
            .all(|x| (spec.frames_min..=spec.frames_max).contains(&x.frames)));
        // Different seeds give different traces.
        assert_ne!(a, spec.expand(43));
    }

    #[test]
    fn tenant_draws_are_count_invariant() {
        // Growing the trace must not change earlier tenants' draws.
        let short = ChurnSpec {
            tenants: 50,
            ..ChurnSpec::default()
        };
        let long = ChurnSpec {
            tenants: 200,
            ..ChurnSpec::default()
        };
        let a = short.expand(7);
        let b = long.expand(7);
        assert_eq!(a[..], b[..50]);
    }

    #[test]
    fn pinned_fraction_tracks_the_permille() {
        let spec = ChurnSpec {
            tenants: 2000,
            pinned_permille: 250,
            ..ChurnSpec::default()
        };
        let pinned = spec.expand(1).iter().filter(|a| a.hold.is_none()).count();
        // 250‰ of 2000 = 500 expected; allow a generous band.
        assert!((380..=620).contains(&pinned), "{pinned}");
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn zero_frame_requests_rejected() {
        let spec = ChurnSpec {
            frames_min: 0,
            ..ChurnSpec::default()
        };
        let _ = spec.expand(0);
    }
}

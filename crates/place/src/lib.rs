//! # uparc-place — dynamic placement and defragmentation under churn
//!
//! The static pipeline places every bitstream at a floorplan region
//! fixed at design time. This crate is the run-time alternative a
//! multi-tenant deployment needs: tenants arrive asking for *n*
//! contiguous frames, an allocator hands out windows, images are
//! *relocated* to wherever they land (FAR rewrite + CRC replay,
//! byte-identical to a fresh build), and a background defragmenter
//! spends idle ICAP cycles compacting the frame space so churn does not
//! strand capacity in fragments.
//!
//! * [`churn`] — seeded tenant arrival/departure traces over hours of
//!   simulated time, one splitmix64 sub-stream per draw so traces are
//!   count-invariant;
//! * [`defrag`] — the sliding-compaction planner: one move at a time,
//!   foreground work always preempts it;
//! * [`sim`] — the event-engine run loop tying them to
//!   [`uparc_serve::dynamic::DynamicCatalog`]: admission consults the
//!   allocator, loads and moves share one ICAP's time, and every move,
//!   pass and rejection lands in the observability taxonomy
//!   (`Relocate` / `Compact` / `AllocFail`).
//!
//! # Architecture
//!
//! ```text
//!   churn trace ──arrivals──▶ admission ──window──▶ relocate + load
//!   (seeded)                 (FrameAllocator)       (FAR rewrite,
//!        │                        ▲   │              CRC replay)
//!        └──departs──▶ free ──────┘   │ idle?
//!            (coalesce)               ▼
//!                               defragmenter ──▶ Relocate spans,
//!                               (slide live images  Compact instants
//!                                into lowest gaps)
//! ```
//!
//! # Example
//!
//! ```
//! use uparc_place::churn::ChurnSpec;
//! use uparc_place::sim::{run_churn, PlacementConfig};
//!
//! let spec = ChurnSpec { tenants: 60, ..ChurnSpec::default() };
//! let out = run_churn(&spec, 42, PlacementConfig::default());
//! assert_eq!(out.placed + out.rejected, 60);
//! assert_eq!(out.invariant_violations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod defrag;
pub mod sim;

pub use churn::{Arrival, ChurnSpec};
pub use defrag::{Defragmenter, MovePlan};
pub use sim::{run_churn, ChurnOutcome, PlacementConfig};

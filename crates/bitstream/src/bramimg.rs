//! The BRAM image layout of paper Fig. 3.
//!
//! The Manager preloads the dual-port BRAM with one 32-bit *mode word* —
//! carrying the payload size and the operation mode (with or without
//! compression) — followed by the configuration data. UReC reads the mode
//! word first and then either streams the payload straight to the ICAP or
//! routes it through the decompressor (paper §III-B, Fig. 4).
//!
//! Mode word encoding (this implementation):
//! * bit 31 — compressed flag,
//! * bits 30..24 — codec identifier (0 when uncompressed),
//! * bits 23..0 — payload size in 32-bit words (excluding the mode word).
//!
//! Compressed payloads additionally lead with one word holding the exact
//! compressed byte count, because compressed streams are not word-aligned.

use crate::error::BitstreamError;

/// Maximum payload size encodable in the 24-bit size field.
pub const MAX_SIZE_WORDS: u32 = (1 << 24) - 1;

/// The first word of a BRAM image (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModeWord {
    /// Whether the payload is compressed.
    pub compressed: bool,
    /// Codec identifier (meaningful only when `compressed`).
    pub codec_id: u8,
    /// Payload length in words, excluding the mode word itself.
    pub size_words: u32,
}

impl ModeWord {
    /// Encodes the mode word.
    ///
    /// # Panics
    ///
    /// Panics if `size_words` exceeds [`MAX_SIZE_WORDS`] or `codec_id`
    /// exceeds 127.
    #[must_use]
    pub fn encode(self) -> u32 {
        assert!(self.size_words <= MAX_SIZE_WORDS, "size field overflow");
        assert!(self.codec_id < 128, "codec id field is 7 bits");
        (u32::from(self.compressed) << 31) | (u32::from(self.codec_id) << 24) | self.size_words
    }

    /// Decodes a mode word.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::BadModeWord`] if an uncompressed image carries a
    /// codec id.
    pub fn decode(word: u32) -> Result<Self, BitstreamError> {
        let compressed = word >> 31 == 1;
        let codec_id = ((word >> 24) & 0x7F) as u8;
        if !compressed && codec_id != 0 {
            return Err(BitstreamError::BadModeWord {
                detail: format!("uncompressed image with codec id {codec_id}"),
            });
        }
        Ok(ModeWord {
            compressed,
            codec_id,
            size_words: word & MAX_SIZE_WORDS,
        })
    }
}

/// A complete BRAM image: mode word plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BramImage {
    words: Vec<u32>,
}

impl BramImage {
    /// Builds an uncompressed image around a raw configuration word stream.
    ///
    /// # Panics
    ///
    /// Panics if the stream exceeds the 24-bit size field.
    #[must_use]
    pub fn uncompressed(stream: &[u32]) -> Self {
        let mode = ModeWord {
            compressed: false,
            codec_id: 0,
            size_words: stream.len() as u32,
        };
        let mut words = Vec::with_capacity(stream.len() + 1);
        words.push(mode.encode());
        words.extend_from_slice(stream);
        BramImage { words }
    }

    /// Builds a compressed image: `[mode][byte count][packed bytes…]`.
    ///
    /// # Panics
    ///
    /// Panics if the packed payload exceeds the 24-bit size field.
    #[must_use]
    pub fn compressed(codec_id: u8, compressed_bytes: &[u8]) -> Self {
        let packed_words = (compressed_bytes.len() as u32).div_ceil(4);
        let mode = ModeWord {
            compressed: true,
            codec_id,
            size_words: packed_words + 1, // +1 for the byte-count word
        };
        let mut words = Vec::with_capacity(packed_words as usize + 2);
        words.push(mode.encode());
        words.push(compressed_bytes.len() as u32);
        let mut chunks = compressed_bytes.chunks_exact(4);
        for c in &mut chunks {
            words.push(u32::from_be_bytes(c.try_into().expect("4 bytes")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut pad = [0u8; 4];
            pad[..rem.len()].copy_from_slice(rem);
            words.push(u32::from_be_bytes(pad));
        }
        BramImage { words }
    }

    /// The full image (mode word first) — what the Manager writes to BRAM.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Image size in bytes, including the mode word — what counts against
    /// the 256 KB BRAM capacity.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Decodes the mode word.
    ///
    /// # Errors
    ///
    /// [`BitstreamError`] for an empty or inconsistent image.
    pub fn mode(&self) -> Result<ModeWord, BitstreamError> {
        let &mode = self.words.first().ok_or(BitstreamError::Truncated)?;
        let mode = ModeWord::decode(mode)?;
        if 1 + mode.size_words as usize != self.words.len() {
            return Err(BitstreamError::BadModeWord {
                detail: format!(
                    "size field {} vs actual payload {}",
                    mode.size_words,
                    self.words.len() - 1
                ),
            });
        }
        Ok(mode)
    }

    /// The raw payload words of an uncompressed image.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::BadModeWord`] if the image is compressed.
    pub fn uncompressed_payload(&self) -> Result<&[u32], BitstreamError> {
        let mode = self.mode()?;
        if mode.compressed {
            return Err(BitstreamError::BadModeWord {
                detail: "image is compressed".to_owned(),
            });
        }
        Ok(&self.words[1..])
    }

    /// The codec id and exact compressed bytes of a compressed image.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::BadModeWord`] if the image is uncompressed or the
    /// byte count is inconsistent.
    pub fn compressed_payload(&self) -> Result<(u8, Vec<u8>), BitstreamError> {
        let mode = self.mode()?;
        if !mode.compressed {
            return Err(BitstreamError::BadModeWord {
                detail: "image is uncompressed".to_owned(),
            });
        }
        let byte_count = *self.words.get(1).ok_or(BitstreamError::Truncated)? as usize;
        let available = (self.words.len() - 2) * 4;
        if byte_count > available {
            return Err(BitstreamError::BadModeWord {
                detail: format!("byte count {byte_count} exceeds payload {available}"),
            });
        }
        let mut bytes = Vec::with_capacity(byte_count);
        for &w in &self.words[2..] {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        bytes.truncate(byte_count);
        Ok((mode.codec_id, bytes))
    }

    /// Reconstructs an image from words read back out of a BRAM.
    #[must_use]
    pub fn from_words(words: Vec<u32>) -> Self {
        BramImage { words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_word_round_trips() {
        for (c, id, size) in [
            (false, 0u8, 0u32),
            (true, 3, 12345),
            (true, 127, MAX_SIZE_WORDS),
        ] {
            let m = ModeWord {
                compressed: c,
                codec_id: id,
                size_words: size,
            };
            assert_eq!(ModeWord::decode(m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn uncompressed_mode_with_codec_rejected() {
        let word = 5 << 24; // codec 5, compressed bit clear
        assert!(matches!(
            ModeWord::decode(word),
            Err(BitstreamError::BadModeWord { .. })
        ));
    }

    #[test]
    fn uncompressed_image_round_trips() {
        let stream: Vec<u32> = (0..100).collect();
        let img = BramImage::uncompressed(&stream);
        let mode = img.mode().unwrap();
        assert!(!mode.compressed);
        assert_eq!(mode.size_words, 100);
        assert_eq!(img.uncompressed_payload().unwrap(), stream.as_slice());
        assert_eq!(img.size_bytes(), 101 * 4);
        assert!(img.compressed_payload().is_err());
    }

    #[test]
    fn compressed_image_round_trips_unaligned_lengths() {
        for n in [0usize, 1, 3, 4, 5, 1023] {
            let bytes: Vec<u8> = (0..n).map(|i| (i * 7) as u8).collect();
            let img = BramImage::compressed(9, &bytes);
            let (codec, back) = img.compressed_payload().unwrap();
            assert_eq!(codec, 9);
            assert_eq!(back, bytes, "n={n}");
            assert!(img.uncompressed_payload().is_err());
        }
    }

    #[test]
    fn inconsistent_size_field_detected() {
        let stream: Vec<u32> = (0..10).collect();
        let img = BramImage::uncompressed(&stream);
        let mut words = img.words().to_vec();
        words.pop(); // image now shorter than the mode word claims
        let broken = BramImage::from_words(words);
        assert!(matches!(
            broken.mode(),
            Err(BitstreamError::BadModeWord { .. })
        ));
    }

    #[test]
    fn oversized_byte_count_detected() {
        let img = BramImage::compressed(1, &[1, 2, 3, 4]);
        let mut words = img.words().to_vec();
        words[1] = 1000; // claims 1000 bytes, payload has 4
        let broken = BramImage::from_words(words);
        assert!(matches!(
            broken.compressed_payload(),
            Err(BitstreamError::BadModeWord { .. })
        ));
    }
}

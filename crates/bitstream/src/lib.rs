//! # uparc-bitstream — configuration bitstream construction and parsing
//!
//! Everything the UPaRC system does starts from a partial bitstream. This
//! crate provides:
//!
//! * [`bitfile`] — the `.bit` container with its textual preamble (design
//!   name, part, date, time), which the Manager parses during preloading
//!   (paper §III-A1).
//! * [`builder`] — composes raw configuration word streams (sync, IDCODE,
//!   FAR/FDRI packets, CRC, DESYNC) that the ICAP model executes.
//! * [`parser`] — a non-executing structural parser: extracts the device
//!   IDCODE, target frames and payload size (what a controller needs to
//!   know *before* pushing the stream).
//! * [`synth`] — a calibrated synthetic generator of dense partial-bitstream
//!   content, the workload generator behind Table I, Fig. 5 and Fig. 7.
//! * [`bramimg`] — the BRAM image layout of Fig. 3: a `size|mode` word
//!   followed by the configuration payload.
//!
//! # Example
//!
//! ```
//! use uparc_bitstream::builder::PartialBitstream;
//! use uparc_bitstream::synth::SynthProfile;
//! use uparc_fpga::{Device, Icap};
//!
//! let device = Device::xc5vsx50t();
//! // A dense 40-frame partial bitstream for frames 100..140.
//! let frames = SynthProfile::dense().generate(&device, 100, 40, 7);
//! let bs = PartialBitstream::build(&device, 100, &frames);
//! let mut icap = Icap::new(device);
//! icap.write_words(bs.words())?;
//! assert_eq!(icap.frames_committed(), 40);
//! # Ok::<(), uparc_fpga::FpgaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitfile;
pub mod bramimg;
pub mod builder;
pub mod error;
pub mod parser;
pub mod synth;

pub use bitfile::BitFile;
pub use bramimg::{BramImage, ModeWord};
pub use builder::PartialBitstream;
pub use error::BitstreamError;
pub use parser::StreamInfo;
pub use synth::SynthProfile;

//! Composes executable partial bitstreams.
//!
//! The builder emits exactly the packet sequence a vendor tool produces for
//! a partial bitstream: dummy/sync preamble, CRC reset, IDCODE check, WCFG,
//! the starting frame address, one large type-1+type-2 FDRI write carrying
//! all frame payloads, a CRC check word and the DESYNC trailer. The result
//! executes on [`uparc_fpga::Icap`] and is the byte payload that the
//! compression codecs and BRAM images operate on.

use crate::error::BitstreamError;
use uparc_fpga::device::Device;
use uparc_fpga::format::{
    type1, type2, Command, ConfigCrc, ConfigRegister, Opcode, DUMMY_WORD, NOOP, SYNC_WORD,
};

/// A fully assembled partial bitstream (word stream + metadata).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialBitstream {
    words: Vec<u32>,
    far: u32,
    frame_count: u32,
    device_name: &'static str,
}

impl PartialBitstream {
    /// Builds a partial bitstream writing `payload` (a whole number of
    /// frames) starting at frame address `far`.
    ///
    /// This is the panicking convenience over
    /// [`PartialBitstream::try_build`]; callers placing images at runtime
    /// (an allocator handing out windows under churn) should use the
    /// fallible form so a rejection is an error, not a crash.
    ///
    /// # Panics
    ///
    /// Panics if `payload` is empty or not a multiple of the family frame
    /// size, or if the frame range exceeds the device.
    #[must_use]
    pub fn build(device: &Device, far: u32, payload: &[u32]) -> Self {
        match Self::try_build(device, far, payload) {
            Ok(bs) => bs,
            Err(BitstreamError::EmptyPayload) => {
                panic!("payload must contain at least one frame")
            }
            Err(BitstreamError::RaggedPayload { frame_words, .. }) => {
                panic!("payload must be whole frames ({frame_words} words)")
            }
            Err(BitstreamError::FrameRange {
                far,
                frames,
                device_frames,
            }) => panic!(
                "frames {far}..{} exceed device ({device_frames} frames)",
                far.saturating_add(frames)
            ),
            Err(err) => panic!("{err}"),
        }
    }

    /// Builds a partial bitstream writing `payload` (a whole number of
    /// frames) starting at frame address `far`, reporting shape problems
    /// as typed errors.
    ///
    /// # Errors
    ///
    /// * [`BitstreamError::EmptyPayload`] — `payload` carries no frames.
    /// * [`BitstreamError::RaggedPayload`] — `payload` is not a whole
    ///   number of family frames.
    /// * [`BitstreamError::FrameRange`] — `far..far + frames` runs off the
    ///   end of the device.
    pub fn try_build(device: &Device, far: u32, payload: &[u32]) -> Result<Self, BitstreamError> {
        let fw = device.family().frame_words();
        if payload.is_empty() {
            return Err(BitstreamError::EmptyPayload);
        }
        if !payload.len().is_multiple_of(fw) {
            return Err(BitstreamError::RaggedPayload {
                words: payload.len(),
                frame_words: fw,
            });
        }
        let frame_count = (payload.len() / fw) as u32;
        if far
            .checked_add(frame_count)
            .is_none_or(|end| end > device.frames())
        {
            return Err(BitstreamError::FrameRange {
                far,
                frames: frame_count,
                device_frames: device.frames(),
            });
        }

        let mut words = Vec::with_capacity(payload.len() + 24);
        let mut crc = ConfigCrc::new();
        let reg_write = |words: &mut Vec<u32>, crc: &mut ConfigCrc, reg, value| {
            words.push(type1(Opcode::Write, reg, 1));
            words.push(value);
            crc.update(reg, value);
        };

        words.push(DUMMY_WORD);
        words.push(SYNC_WORD);
        words.push(NOOP);
        reg_write(
            &mut words,
            &mut crc,
            ConfigRegister::Cmd,
            Command::Rcrc as u32,
        );
        crc.reset();
        words.push(NOOP);
        reg_write(
            &mut words,
            &mut crc,
            ConfigRegister::Idcode,
            device.idcode(),
        );
        reg_write(
            &mut words,
            &mut crc,
            ConfigRegister::Cmd,
            Command::Wcfg as u32,
        );
        reg_write(&mut words, &mut crc, ConfigRegister::Far, far);
        words.push(type1(Opcode::Write, ConfigRegister::Fdri, 0));
        words.push(type2(Opcode::Write, payload.len() as u32));
        for &w in payload {
            words.push(w);
            crc.update(ConfigRegister::Fdri, w);
        }
        words.push(type1(Opcode::Write, ConfigRegister::Crc, 1));
        words.push(crc.value());
        reg_write(
            &mut words,
            &mut crc,
            ConfigRegister::Cmd,
            Command::Desync as u32,
        );
        words.push(NOOP);

        Ok(PartialBitstream {
            words,
            far,
            frame_count,
            device_name: device.name(),
        })
    }

    /// Rewrites the stream's frame address to `new_far` and recomputes
    /// the running CRC, so the relocated image is byte-identical to a
    /// fresh [`PartialBitstream::try_build`] of the same payload at the
    /// new address.
    ///
    /// Only two words change: the FAR register value and the CRC check
    /// word. The CRC is replayed from the post-RCRC register sequence
    /// (IDCODE, WCFG, the new FAR, then the FDRI run through the
    /// slicing kernel), so the result still passes ICAP verification.
    ///
    /// # Errors
    ///
    /// * [`BitstreamError::DeviceMismatch`] — `device` is not the device
    ///   the stream was built for.
    /// * [`BitstreamError::FrameRange`] — the image does not fit at
    ///   `new_far`.
    pub fn relocate(&self, device: &Device, new_far: u32) -> Result<Self, BitstreamError> {
        if device.name() != self.device_name {
            return Err(BitstreamError::DeviceMismatch {
                expected: self.device_name,
                found: device.name(),
            });
        }
        if new_far
            .checked_add(self.frame_count)
            .is_none_or(|end| end > device.frames())
        {
            return Err(BitstreamError::FrameRange {
                far: new_far,
                frames: self.frame_count,
                device_frames: device.frames(),
            });
        }

        let mut words = self.words.clone();
        debug_assert_eq!(
            words[10],
            type1(Opcode::Write, ConfigRegister::Far, 1),
            "FAR header drifted from the builder layout"
        );
        words[11] = new_far;
        let crc_index = words.len() - 4;
        let mut crc = ConfigCrc::new();
        crc.update(ConfigRegister::Idcode, device.idcode());
        crc.update(ConfigRegister::Cmd, Command::Wcfg as u32);
        crc.update(ConfigRegister::Far, new_far);
        crc.update_run(ConfigRegister::Fdri, self.payload());
        words[crc_index] = crc.value();

        Ok(PartialBitstream {
            words,
            far: new_far,
            frame_count: self.frame_count,
            device_name: self.device_name,
        })
    }

    /// The executable word stream.
    #[must_use]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Consumes the bitstream, returning the word stream.
    #[must_use]
    pub fn into_words(self) -> Vec<u32> {
        self.words
    }

    /// Starting frame address.
    #[must_use]
    pub fn far(&self) -> u32 {
        self.far
    }

    /// Number of frames written.
    #[must_use]
    pub fn frame_count(&self) -> u32 {
        self.frame_count
    }

    /// The FDRI frame data carried by this bitstream (`frame_count` frames
    /// of the device's frame words), without the command preamble and
    /// trailer. This is the golden copy a repair path needs to rebuild a
    /// single-frame bitstream from.
    #[must_use]
    pub fn payload(&self) -> &[u32] {
        &self.words[14..self.words.len() - 5]
    }

    /// Total size in bytes (the number the paper's bandwidth figures use).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Serialises to big-endian bytes (the on-disk/.bit byte order).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        words_to_bytes(&self.words)
    }

    /// Wraps the stream in a `.bit` container with the given design name.
    #[must_use]
    pub fn to_bitfile(&self, design_name: &str) -> crate::bitfile::BitFile {
        crate::bitfile::BitFile {
            design_name: design_name.to_owned(),
            part: self.device_name.to_lowercase(),
            date: "2011/09/14".to_owned(),
            time: "11:35:17".to_owned(),
            data: self.to_bytes(),
        }
    }
}

/// Serialises configuration words to big-endian bytes.
#[must_use]
pub fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for &w in words {
        out.extend_from_slice(&w.to_be_bytes());
    }
    out
}

/// Parses big-endian bytes back into configuration words.
///
/// # Errors
///
/// [`BitstreamError::Truncated`] if `bytes` is not a multiple of 4.
pub fn bytes_to_words(bytes: &[u8]) -> Result<Vec<u32>, BitstreamError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(BitstreamError::Truncated);
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes(c.try_into().expect("4 bytes")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_fpga::Icap;

    fn payload(device: &Device, frames: u32, fill: u32) -> Vec<u32> {
        vec![fill; device.family().frame_words() * frames as usize]
    }

    #[test]
    fn built_stream_executes_on_icap() {
        let device = Device::xc5vsx50t();
        let bs = PartialBitstream::build(&device, 200, &payload(&device, 5, 0xA5A5_5A5A));
        let mut icap = Icap::new(device);
        icap.write_words(bs.words()).unwrap();
        assert_eq!(icap.frames_committed(), 5);
        let frame = icap.config_memory().read_frame(202).unwrap();
        assert!(frame.iter().all(|&w| w == 0xA5A5_5A5A));
    }

    #[test]
    fn size_overhead_is_small_and_fixed() {
        let device = Device::xc5vsx50t();
        let bs1 = PartialBitstream::build(&device, 0, &payload(&device, 1, 0));
        let bs100 = PartialBitstream::build(&device, 0, &payload(&device, 100, 0));
        let fw = device.family().frame_words();
        let overhead1 = bs1.words().len() - fw;
        let overhead100 = bs100.words().len() - 100 * fw;
        assert_eq!(overhead1, overhead100, "overhead is size-independent");
        assert!(overhead1 < 32, "overhead {overhead1} words");
    }

    #[test]
    fn payload_accessor_returns_exactly_the_frame_data() {
        let device = Device::xc5vsx50t();
        let data = payload(&device, 3, 0xCAFE_F00D);
        let bs = PartialBitstream::build(&device, 50, &data);
        assert_eq!(bs.payload(), &data[..]);
    }

    #[test]
    fn byte_serialisation_round_trips() {
        let device = Device::xc5vsx50t();
        let bs = PartialBitstream::build(&device, 10, &payload(&device, 3, 0x1234_5678));
        let bytes = bs.to_bytes();
        assert_eq!(bytes.len(), bs.size_bytes());
        assert_eq!(bytes_to_words(&bytes).unwrap(), bs.words());
        assert!(bytes_to_words(&bytes[..5]).is_err());
    }

    #[test]
    fn bitfile_wrapping_preserves_payload() {
        let device = Device::xc6vlx240t();
        let bs = PartialBitstream::build(&device, 99, &payload(&device, 2, 7));
        let bf = bs.to_bitfile("demo_rp1");
        let parsed = crate::bitfile::BitFile::parse(&bf.to_bytes()).unwrap();
        assert_eq!(parsed.design_name, "demo_rp1");
        assert_eq!(parsed.part, "xc6vlx240t");
        assert_eq!(bytes_to_words(&parsed.data).unwrap(), bs.words());
    }

    #[test]
    fn wrong_device_stream_fails_on_other_icap() {
        let v5 = Device::xc5vsx50t();
        let bs = PartialBitstream::build(&v5, 0, &payload(&v5, 1, 0));
        let mut icap = Icap::new(Device::xc6vlx240t());
        assert!(icap.write_words(bs.words()).is_err());
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let device = Device::xc5vsx50t();
        assert_eq!(
            PartialBitstream::try_build(&device, 0, &[]),
            Err(BitstreamError::EmptyPayload)
        );
        assert_eq!(
            PartialBitstream::try_build(&device, 0, &[1, 2, 3]),
            Err(BitstreamError::RaggedPayload {
                words: 3,
                frame_words: device.family().frame_words(),
            })
        );
        let far = device.frames() - 1;
        assert_eq!(
            PartialBitstream::try_build(&device, far, &payload(&device, 2, 0)),
            Err(BitstreamError::FrameRange {
                far,
                frames: 2,
                device_frames: device.frames(),
            })
        );
        // A FAR near u32::MAX must not wrap into an accepted window.
        assert!(matches!(
            PartialBitstream::try_build(&device, u32::MAX, &payload(&device, 2, 0)),
            Err(BitstreamError::FrameRange { .. })
        ));
        let ok = PartialBitstream::try_build(&device, 100, &payload(&device, 2, 9)).unwrap();
        assert_eq!(
            ok,
            PartialBitstream::build(&device, 100, &payload(&device, 2, 9))
        );
    }

    #[test]
    fn relocation_is_byte_identical_to_fresh_build() {
        let device = Device::xc5vsx50t();
        let data = payload(&device, 7, 0xDEAD_BEEF);
        let bs = PartialBitstream::build(&device, 300, &data);
        let moved = bs.relocate(&device, 41).unwrap();
        let fresh = PartialBitstream::build(&device, 41, &data);
        assert_eq!(moved, fresh);
        assert_eq!(moved.far(), 41);
        assert_eq!(moved.frame_count(), 7);
        // The relocated stream still passes ICAP CRC verification.
        let mut icap = Icap::new(device);
        icap.write_words(moved.words()).unwrap();
        assert_eq!(icap.frames_committed(), 7);
    }

    #[test]
    fn relocation_rejects_bad_targets() {
        let device = Device::xc5vsx50t();
        let bs = PartialBitstream::build(&device, 0, &payload(&device, 4, 1));
        assert!(matches!(
            bs.relocate(&device, device.frames() - 3),
            Err(BitstreamError::FrameRange { .. })
        ));
        assert!(matches!(
            bs.relocate(&Device::xc6vlx240t(), 0),
            Err(BitstreamError::DeviceMismatch { .. })
        ));
        // Self-relocation is the identity.
        assert_eq!(bs.relocate(&device, 0).unwrap(), bs);
    }

    #[test]
    #[should_panic(expected = "whole frames")]
    fn ragged_payload_rejected() {
        let device = Device::xc5vsx50t();
        let _ = PartialBitstream::build(&device, 0, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "exceed device")]
    fn overflowing_frame_range_rejected() {
        let device = Device::xc5vsx50t();
        let far = device.frames() - 1;
        let _ = PartialBitstream::build(&device, far, &payload(&device, 2, 0));
    }
}

//! Synthetic partial-bitstream content, calibrated against Table I.
//!
//! We do not have the paper's real designs, so the compression experiments
//! run on synthetic frame data whose *statistics* match dense configuration
//! bitstreams. The generator models three kinds of content observed in
//! configuration frames:
//!
//! * **blank runs** — zero words (routing/unused resources); long runs,
//!   the food of RLE;
//! * **sparse-structured words** — interconnect/configuration flags: mostly
//!   zero bytes plus a small alphabet of set patterns (low order-0 entropy,
//!   little short-range repetition);
//! * **dense words** — LUT init data: high-entropy, incompressible.
//!
//! Frames follow a bank of *column templates* that repeats with a period of
//! several KB — beyond a hardware LZ77 window but well inside Zip's 32 KB,
//! which is precisely the mechanism behind Table I's LZ77-vs-Zip gap. A
//! small per-frame variation models instance-specific logic.
//!
//! The paper compresses only *high-utilization* partitions "in order not to
//! exaggerate the compression effectiveness"; [`SynthProfile::dense`] is the
//! corresponding profile, calibrated so the seven codecs land near Table I
//! (measured values are recorded in EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use uparc_fpga::device::Device;

/// Content-statistics profile for the generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthProfile {
    /// Fraction of template words inside blank (zero) runs.
    pub zero_fraction: f64,
    /// Mean length of a blank run, in words.
    pub zero_run_words: usize,
    /// Fraction of template words that are sparse-structured (the rest of
    /// the non-blank words are dense/high-entropy).
    pub sparse_fraction: f64,
    /// Number of distinct non-zero byte values in sparse words.
    pub sparse_alphabet: u8,
    /// Probability that a byte inside a sparse word is zero.
    pub sparse_zero_prob: f64,
    /// Column templates in the bank (period = `template_count` frames).
    pub template_count: usize,
    /// Per-word probability of an instance-specific (random) replacement.
    pub variation: f64,
}

impl SynthProfile {
    /// Dense, high-utilization partition — the Table I workload.
    #[must_use]
    pub fn dense() -> Self {
        SynthProfile {
            zero_fraction: 0.72,
            zero_run_words: 24,
            sparse_fraction: 0.24,
            sparse_alphabet: 8,
            sparse_zero_prob: 0.50,
            template_count: 1024,
            variation: 0.025,
        }
    }

    /// Mostly-blank partition (low utilization) — compresses far better
    /// than Table I; used to show why the paper excludes this case.
    #[must_use]
    pub fn sparse() -> Self {
        SynthProfile {
            zero_fraction: 0.92,
            zero_run_words: 120,
            sparse_fraction: 0.06,
            sparse_alphabet: 8,
            sparse_zero_prob: 0.7,
            template_count: 8,
            variation: 0.005,
        }
    }

    /// Incompressible content (e.g. encrypted bitstreams) — the worst case
    /// for UPaRC's compressed mode.
    #[must_use]
    pub fn noise() -> Self {
        SynthProfile {
            zero_fraction: 0.0,
            zero_run_words: 1,
            sparse_fraction: 0.0,
            sparse_alphabet: 255,
            sparse_zero_prob: 0.0,
            template_count: 1,
            variation: 1.0,
        }
    }

    /// Generates the frame payload for `frames` frames at frame address
    /// `far` of `device` (flat, `frames × frame_words` words).
    ///
    /// Deterministic in `(profile, device family, far, frames, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    #[must_use]
    pub fn generate(&self, device: &Device, far: u32, frames: u32, seed: u64) -> Vec<u32> {
        assert!(frames > 0, "at least one frame");
        let fw = device.family().frame_words();
        let templates = self.template_bank(fw, seed);
        let mut out = Vec::with_capacity(frames as usize * fw);
        let mut vary_rng = StdRng::seed_from_u64(seed ^ 0x5EED_0F0F ^ u64::from(far));
        for i in 0..frames {
            let t = &templates[(far + i) as usize % templates.len()];
            for &w in t {
                if self.variation > 0.0 && vary_rng.random::<f64>() < self.variation {
                    out.push(vary_rng.random::<u32>());
                } else {
                    out.push(w);
                }
            }
        }
        out
    }

    /// Convenience: generate a payload of at least `bytes` bytes (rounded up
    /// to whole frames).
    #[must_use]
    pub fn generate_bytes(&self, device: &Device, bytes: usize, seed: u64) -> Vec<u32> {
        let fb = device.family().frame_bytes();
        let frames = bytes.div_ceil(fb).max(1) as u32;
        self.generate(device, 0, frames, seed)
    }

    fn template_bank(&self, frame_words: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = self.template_count.max(1) * frame_words;
        let mut stream = Vec::with_capacity(total);
        // The fractions are *word-mass* targets; regions have different mean
        // lengths, so convert mass fractions to per-draw probabilities.
        let mean_blank = self.zero_run_words.max(1) as f64 + 0.5;
        let (mean_sparse, mean_dense) = (7.5, 3.5);
        let dense_fraction = (1.0 - self.zero_fraction - self.sparse_fraction).max(0.0);
        let wb = self.zero_fraction / mean_blank;
        let ws = self.sparse_fraction / mean_sparse;
        let wd = dense_fraction / mean_dense;
        let total_w = (wb + ws + wd).max(f64::MIN_POSITIVE);
        let (p_blank, p_sparse) = (wb / total_w, ws / total_w);
        // Motif pool: generated bursts are occasionally *replayed* at
        // mid-range distances. Real designs replicate logic columns, so the
        // same configuration burst recurs kilobytes apart — reachable by a
        // 32 KB Zip window or a persistent LZ78/LZMA dictionary, but not by
        // a 1 KB hardware LZ77 window. This is the Table I Zip-vs-LZ77 gap.
        let mut motifs: Vec<Vec<u32>> = Vec::new();
        while stream.len() < total {
            let roll: f64 = rng.random();
            if roll < p_blank {
                // Blank run with geometric-ish length around the mean.
                let len = 1 + rng.random_range(0..self.zero_run_words.max(1) * 2);
                stream.extend(std::iter::repeat_n(0u32, len));
            } else if roll < p_blank + p_sparse {
                // Sparse-structured burst — half the time a replayed motif.
                if !motifs.is_empty() && rng.random::<f64>() < 0.5 {
                    let idx = rng.random_range(0..motifs.len());
                    let m = motifs[idx].clone();
                    stream.extend_from_slice(&m);
                } else {
                    let len = 2 + rng.random_range(0..12);
                    // Configuration columns repeat words back-to-back;
                    // word-level runs are what FaRM's word-RLE feeds on.
                    let mut burst: Vec<u32> = Vec::with_capacity(len * 2);
                    for _ in 0..len {
                        let w = self.sparse_word(&mut rng);
                        let reps = if rng.random::<f64>() < 0.35 {
                            1 + rng.random_range(0..3usize)
                        } else {
                            1
                        };
                        for _ in 0..reps {
                            burst.push(w);
                        }
                    }
                    stream.extend_from_slice(&burst);
                    motifs.push(burst);
                }
            } else {
                // Dense burst (LUT contents) — replicated logic reuses its
                // LUT init data too, though less often.
                if !motifs.is_empty() && rng.random::<f64>() < 0.35 {
                    let idx = rng.random_range(0..motifs.len());
                    let m = motifs[idx].clone();
                    stream.extend_from_slice(&m);
                } else {
                    let len = 1 + rng.random_range(0..6);
                    let burst: Vec<u32> = (0..len).map(|_| rng.random::<u32>()).collect();
                    stream.extend_from_slice(&burst);
                    motifs.push(burst);
                }
            }
        }
        stream.truncate(total);
        stream.chunks(frame_words).map(<[u32]>::to_vec).collect()
    }

    fn sparse_word(&self, rng: &mut StdRng) -> u32 {
        let k = self.sparse_alphabet.max(1);
        // Biased pick from the small alphabet (min of two uniforms).
        let pick = |rng: &mut StdRng| {
            let idx = rng.random_range(0..u32::from(k)) as u8;
            let idx = idx.min(rng.random_range(0..u32::from(k)) as u8);
            idx.wrapping_mul(37).wrapping_add(1)
        };
        let mut bytes = [0u8; 4];
        if rng.random::<f64>() < 0.55 {
            // Repeated-byte configuration pattern (0xAAAAAAAA-style) —
            // these give RLE its byte-level runs inside dense content.
            let c = pick(rng);
            bytes = [c; 4];
            if rng.random::<f64>() < self.sparse_zero_prob * 0.4 {
                bytes[rng.random_range(0..4usize)] = 0;
            }
        } else {
            for b in &mut bytes {
                if rng.random::<f64>() >= self.sparse_zero_prob {
                    *b = pick(rng);
                }
            }
        }
        u32::from_be_bytes(bytes)
    }
}

impl Default for SynthProfile {
    fn default() -> Self {
        SynthProfile::dense()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> Device {
        Device::xc5vsx50t()
    }

    #[test]
    fn deterministic_in_seed() {
        let p = SynthProfile::dense();
        let a = p.generate(&device(), 10, 50, 123);
        let b = p.generate(&device(), 10, 50, 123);
        let c = p.generate(&device(), 10, 50, 124);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn payload_is_whole_frames() {
        let p = SynthProfile::dense();
        let fw = device().family().frame_words();
        assert_eq!(p.generate(&device(), 0, 7, 1).len(), 7 * fw);
        let by = p.generate_bytes(&device(), 216_500, 1);
        assert_eq!(by.len() % fw, 0);
        assert!(by.len() * 4 >= 216_500);
        assert!(by.len() * 4 < 216_500 + fw * 4);
    }

    #[test]
    fn dense_profile_statistics_are_plausible() {
        let p = SynthProfile::dense();
        let words = p.generate_bytes(&device(), 256 * 1024, 42);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        let zeros = bytes.iter().filter(|&&b| b == 0).count() as f64 / bytes.len() as f64;
        // Dense bitstreams are still mostly zero bytes, but far from blank.
        assert!(zeros > 0.55 && zeros < 0.92, "zero fraction {zeros:.3}");
    }

    #[test]
    fn sparse_profile_is_blanker_than_dense() {
        let zero_frac = |p: &SynthProfile| {
            let words = p.generate_bytes(&device(), 64 * 1024, 7);
            let total = words.len() as f64;
            words.iter().filter(|&&w| w == 0).count() as f64 / total
        };
        assert!(zero_frac(&SynthProfile::sparse()) > zero_frac(&SynthProfile::dense()) + 0.15);
    }

    #[test]
    fn noise_profile_is_incompressible_by_rle() {
        let p = SynthProfile::noise();
        let words = p.generate_bytes(&device(), 16 * 1024, 3);
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_be_bytes()).collect();
        // Count adjacent equal byte pairs — should be near 1/256.
        let runs =
            bytes.windows(2).filter(|w| w[0] == w[1]).count() as f64 / (bytes.len() - 1) as f64;
        assert!(runs < 0.02, "adjacent-equal fraction {runs:.4}");
    }

    #[test]
    fn templates_repeat_with_the_configured_period() {
        let mut p = SynthProfile::dense();
        p.variation = 0.0; // exact repetition
        let fw = device().family().frame_words();
        let n = p.template_count as u32;
        let words = p.generate(&device(), 0, 3 * n, 9);
        let (f0, f24) = (
            &words[..fw],
            &words[(n as usize * fw)..(n as usize + 1) * fw],
        );
        assert_eq!(f0, f24, "frame 0 and frame {n} share a template");
    }
}

//! The `.bit` file container.
//!
//! Xilinx tools wrap raw configuration data in a small record-oriented
//! container whose preamble carries the design name, target part, and build
//! date/time. The Manager parses this preamble during bitstream preloading
//! (paper §III-A1: "parsing the preamble of the partial bitstream") before
//! copying the configuration payload into BRAM.
//!
//! Layout (big-endian lengths, as in the real format):
//!
//! ```text
//! magic (13 bytes)
//! 'a' u16 len  design name (NUL-terminated)
//! 'b' u16 len  part name   (NUL-terminated)
//! 'c' u16 len  date        (NUL-terminated)
//! 'd' u16 len  time        (NUL-terminated)
//! 'e' u32 len  raw configuration bytes
//! ```

use crate::error::BitstreamError;

/// The fixed 13-byte `.bit` preamble magic.
pub const MAGIC: [u8; 13] = [
    0x00, 0x09, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x0F, 0xF0, 0x00, 0x00, 0x01,
];

/// A parsed (or to-be-written) `.bit` container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFile {
    /// Design name (field `a`).
    pub design_name: String,
    /// Target part (field `b`), e.g. `5vsx50tff1136`.
    pub part: String,
    /// Build date (field `c`).
    pub date: String,
    /// Build time (field `d`).
    pub time: String,
    /// Raw configuration bytes (field `e`) — what goes to the ICAP.
    pub data: Vec<u8>,
}

fn push_text(out: &mut Vec<u8>, key: u8, text: &str) {
    let mut bytes = text.as_bytes().to_vec();
    bytes.push(0);
    out.push(key);
    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
    out.extend_from_slice(&bytes);
}

fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], BitstreamError> {
    if input.len() < n {
        return Err(BitstreamError::Truncated);
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

fn read_text(input: &mut &[u8], expect_key: u8) -> Result<String, BitstreamError> {
    let key = take(input, 1)?[0];
    if key != expect_key {
        return Err(BitstreamError::UnexpectedField { key });
    }
    let len = u16::from_be_bytes(take(input, 2)?.try_into().expect("2 bytes")) as usize;
    let raw = take(input, len)?;
    let text = raw.strip_suffix(&[0]).unwrap_or(raw);
    String::from_utf8(text.to_vec()).map_err(|_| BitstreamError::BadText)
}

impl BitFile {
    /// Serialises the container.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() + 128);
        out.extend_from_slice(&MAGIC);
        push_text(&mut out, b'a', &self.design_name);
        push_text(&mut out, b'b', &self.part);
        push_text(&mut out, b'c', &self.date);
        push_text(&mut out, b'd', &self.time);
        out.push(b'e');
        out.extend_from_slice(&(self.data.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses a container.
    ///
    /// # Errors
    ///
    /// [`BitstreamError`] on bad magic, truncation, field order or non-UTF-8
    /// text fields.
    pub fn parse(mut input: &[u8]) -> Result<Self, BitstreamError> {
        let magic = take(&mut input, MAGIC.len())?;
        if magic != MAGIC {
            return Err(BitstreamError::BadMagic);
        }
        let design_name = read_text(&mut input, b'a')?;
        let part = read_text(&mut input, b'b')?;
        let date = read_text(&mut input, b'c')?;
        let time = read_text(&mut input, b'd')?;
        let key = take(&mut input, 1)?[0];
        if key != b'e' {
            return Err(BitstreamError::UnexpectedField { key });
        }
        let len = u32::from_be_bytes(take(&mut input, 4)?.try_into().expect("4 bytes")) as usize;
        let data = take(&mut input, len)?.to_vec();
        Ok(BitFile {
            design_name,
            part,
            date,
            time,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BitFile {
        BitFile {
            design_name: "fir_filter_rp0.ncd;UserID=0xFFFFFFFF".to_owned(),
            part: "5vsx50tff1136".to_owned(),
            date: "2011/09/14".to_owned(),
            time: "11:35:17".to_owned(),
            data: (0u32..500).flat_map(|w| w.to_be_bytes()).collect(),
        }
    }

    #[test]
    fn round_trips() {
        let f = sample();
        let bytes = f.to_bytes();
        assert_eq!(BitFile::parse(&bytes).unwrap(), f);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(BitFile::parse(&bytes), Err(BitstreamError::BadMagic));
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let bytes = sample().to_bytes();
        for cut in [0, 5, 13, 14, 20, bytes.len() - 1] {
            assert!(BitFile::parse(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn field_order_enforced() {
        let mut bytes = sample().to_bytes();
        // Overwrite key 'a' with 'b'.
        bytes[13] = b'b';
        assert_eq!(
            BitFile::parse(&bytes),
            Err(BitstreamError::UnexpectedField { key: b'b' })
        );
    }

    #[test]
    fn non_utf8_text_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[16] = 0xFF; // first byte of design name
        assert_eq!(BitFile::parse(&bytes), Err(BitstreamError::BadText));
    }

    #[test]
    fn empty_payload_is_legal() {
        let mut f = sample();
        f.data.clear();
        let bytes = f.to_bytes();
        assert_eq!(BitFile::parse(&bytes).unwrap(), f);
    }
}

//! Error type for bitstream parsing and construction.

/// Errors raised when parsing or building bitstream containers/streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitstreamError {
    /// The `.bit` container magic was not found.
    BadMagic,
    /// The container or stream ended early.
    Truncated,
    /// An unexpected record key in the `.bit` container.
    UnexpectedField {
        /// The key byte found.
        key: u8,
    },
    /// A text field was not valid UTF-8.
    BadText,
    /// The configuration stream has no sync word.
    NoSync,
    /// A structural problem in the configuration stream.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// A BRAM image mode word was inconsistent with the payload.
    BadModeWord {
        /// What was wrong.
        detail: String,
    },
}

impl BitstreamError {
    /// Convenience constructor for [`BitstreamError::Malformed`].
    #[must_use]
    pub fn malformed(detail: impl Into<String>) -> Self {
        BitstreamError::Malformed {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::BadMagic => write!(f, "not a .bit container (bad magic)"),
            BitstreamError::Truncated => write!(f, "bitstream truncated"),
            BitstreamError::UnexpectedField { key } => {
                write!(f, "unexpected .bit field key {key:#04x}")
            }
            BitstreamError::BadText => write!(f, "text field is not valid utf-8"),
            BitstreamError::NoSync => write!(f, "no sync word in configuration stream"),
            BitstreamError::Malformed { detail } => write!(f, "malformed stream: {detail}"),
            BitstreamError::BadModeWord { detail } => write!(f, "bad mode word: {detail}"),
        }
    }
}

impl std::error::Error for BitstreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BitstreamError::BadMagic.to_string().contains("magic"));
        assert!(BitstreamError::malformed("x").to_string().contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitstreamError>();
    }
}

//! Error type for bitstream parsing and construction.

/// Errors raised when parsing or building bitstream containers/streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BitstreamError {
    /// The `.bit` container magic was not found.
    BadMagic,
    /// The container or stream ended early.
    Truncated,
    /// An unexpected record key in the `.bit` container.
    UnexpectedField {
        /// The key byte found.
        key: u8,
    },
    /// A text field was not valid UTF-8.
    BadText,
    /// The configuration stream has no sync word.
    NoSync,
    /// A structural problem in the configuration stream.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// A BRAM image mode word was inconsistent with the payload.
    BadModeWord {
        /// What was wrong.
        detail: String,
    },
    /// A builder payload carried zero frames.
    EmptyPayload,
    /// A builder payload was not a whole number of frames.
    RaggedPayload {
        /// Words supplied.
        words: usize,
        /// The family frame size in words.
        frame_words: usize,
    },
    /// A frame window does not fit inside the device.
    FrameRange {
        /// Starting frame address of the window.
        far: u32,
        /// Frames in the window.
        frames: u32,
        /// Total frames the device has.
        device_frames: u32,
    },
    /// A bitstream was relocated against a different device than the one
    /// it was built for.
    DeviceMismatch {
        /// The device the stream was built for.
        expected: &'static str,
        /// The device handed to the operation.
        found: &'static str,
    },
}

impl BitstreamError {
    /// Convenience constructor for [`BitstreamError::Malformed`].
    #[must_use]
    pub fn malformed(detail: impl Into<String>) -> Self {
        BitstreamError::Malformed {
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitstreamError::BadMagic => write!(f, "not a .bit container (bad magic)"),
            BitstreamError::Truncated => write!(f, "bitstream truncated"),
            BitstreamError::UnexpectedField { key } => {
                write!(f, "unexpected .bit field key {key:#04x}")
            }
            BitstreamError::BadText => write!(f, "text field is not valid utf-8"),
            BitstreamError::NoSync => write!(f, "no sync word in configuration stream"),
            BitstreamError::Malformed { detail } => write!(f, "malformed stream: {detail}"),
            BitstreamError::BadModeWord { detail } => write!(f, "bad mode word: {detail}"),
            BitstreamError::EmptyPayload => {
                write!(f, "payload must contain at least one frame")
            }
            BitstreamError::RaggedPayload { words, frame_words } => write!(
                f,
                "payload must be whole frames ({frame_words} words), got {words} words"
            ),
            BitstreamError::FrameRange {
                far,
                frames,
                device_frames,
            } => write!(
                f,
                "frames {far}..{} exceed device ({device_frames} frames)",
                far.saturating_add(*frames)
            ),
            BitstreamError::DeviceMismatch { expected, found } => {
                write!(f, "bitstream built for {expected}, not {found}")
            }
        }
    }
}

impl std::error::Error for BitstreamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(BitstreamError::BadMagic.to_string().contains("magic"));
        assert!(BitstreamError::malformed("x").to_string().contains('x'));
        assert!(BitstreamError::EmptyPayload
            .to_string()
            .contains("at least one frame"));
        assert!(BitstreamError::RaggedPayload {
            words: 3,
            frame_words: 41
        }
        .to_string()
        .contains("whole frames"));
        let range = BitstreamError::FrameRange {
            far: 15311,
            frames: 2,
            device_frames: 15312,
        };
        assert!(range.to_string().contains("15311..15313"), "{range}");
        assert!(BitstreamError::DeviceMismatch {
            expected: "XC5VSX50T",
            found: "XC6VLX240T"
        }
        .to_string()
        .contains("built for"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitstreamError>();
    }
}

//! Non-executing structural analysis of configuration streams.
//!
//! Controllers (and the Manager during preloading) need to know a stream's
//! target device, frame range and payload size *without* pushing it through
//! the ICAP. [`StreamInfo::scan`] walks the packet structure and reports it.

use crate::error::BitstreamError;
use uparc_fpga::family::Family;
use uparc_fpga::format::{decode, Command, ConfigRegister, Opcode, Packet, SYNC_WORD};

/// Structural summary of a configuration word stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamInfo {
    /// IDCODE the stream asserts (if any).
    pub idcode: Option<u32>,
    /// First frame address written.
    pub far: Option<u32>,
    /// Total FDRI payload words.
    pub payload_words: u64,
    /// Whole frames the payload covers for the given family.
    pub frames: u32,
    /// Whether a CRC check word is present.
    pub has_crc: bool,
    /// Whether the stream ends with DESYNC.
    pub desynced: bool,
    /// Total stream length in words.
    pub total_words: usize,
}

impl StreamInfo {
    /// Scans `words` for family `family`.
    ///
    /// # Errors
    ///
    /// [`BitstreamError::NoSync`] if no sync word is found;
    /// [`BitstreamError::Malformed`] on undecodable packets or a ragged
    /// FDRI payload.
    pub fn scan(family: Family, words: &[u32]) -> Result<Self, BitstreamError> {
        let sync_pos = words
            .iter()
            .position(|&w| w == SYNC_WORD)
            .ok_or(BitstreamError::NoSync)?;
        let mut info = StreamInfo {
            idcode: None,
            far: None,
            payload_words: 0,
            frames: 0,
            has_crc: false,
            desynced: false,
            total_words: words.len(),
        };
        let mut i = sync_pos + 1;
        let mut last_reg: Option<ConfigRegister> = None;
        while i < words.len() && !info.desynced {
            let word = words[i];
            i += 1;
            let packet =
                decode(word).map_err(|e| BitstreamError::malformed(format!("at word {i}: {e}")))?;
            let (reg, count) = match packet {
                None => continue, // NOOP
                Some(Packet::Type1 { op, reg, count }) => {
                    last_reg = Some(reg);
                    if !matches!(op, Opcode::Write) {
                        continue;
                    }
                    (reg, u64::from(count))
                }
                Some(Packet::Type2 { op, count }) => {
                    let reg = last_reg
                        .ok_or_else(|| BitstreamError::malformed("type-2 without type-1"))?;
                    if !matches!(op, Opcode::Write) {
                        continue;
                    }
                    (reg, u64::from(count))
                }
            };
            let payload_end = i + count as usize;
            if payload_end > words.len() {
                return Err(BitstreamError::Truncated);
            }
            match reg {
                ConfigRegister::Fdri => info.payload_words += count,
                ConfigRegister::Idcode => info.idcode = words[i..payload_end].last().copied(),
                ConfigRegister::Far if info.far.is_none() => {
                    info.far = words[i..payload_end].last().copied();
                }
                ConfigRegister::Crc => info.has_crc = true,
                ConfigRegister::Cmd
                    if words[i..payload_end]
                        .iter()
                        .any(|&w| Command::from_value(w) == Some(Command::Desync)) =>
                {
                    info.desynced = true;
                }
                _ => {}
            }
            i = payload_end;
        }
        let fw = family.frame_words() as u64;
        if !info.payload_words.is_multiple_of(fw) {
            return Err(BitstreamError::malformed(format!(
                "payload of {} words is not whole {fw}-word frames",
                info.payload_words
            )));
        }
        info.frames = (info.payload_words / fw) as u32;
        Ok(info)
    }

    /// Payload size in bytes.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.payload_words * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PartialBitstream;
    use uparc_fpga::Device;

    #[test]
    fn scan_reports_builder_metadata() {
        let device = Device::xc5vsx50t();
        let fw = device.family().frame_words();
        let payload = vec![3u32; fw * 7];
        let bs = PartialBitstream::build(&device, 123, &payload);
        let info = StreamInfo::scan(device.family(), bs.words()).unwrap();
        assert_eq!(info.idcode, Some(device.idcode()));
        assert_eq!(info.far, Some(123));
        assert_eq!(info.frames, 7);
        assert_eq!(info.payload_words, (fw * 7) as u64);
        assert!(info.has_crc);
        assert!(info.desynced);
        assert_eq!(info.total_words, bs.words().len());
    }

    #[test]
    fn missing_sync_detected() {
        assert_eq!(
            StreamInfo::scan(Family::Virtex5, &[0xFFFF_FFFF, 0x2000_0000]),
            Err(BitstreamError::NoSync)
        );
    }

    #[test]
    fn truncated_payload_detected() {
        let device = Device::xc5vsx50t();
        let fw = device.family().frame_words();
        let bs = PartialBitstream::build(&device, 0, &vec![0u32; fw]);
        let words = bs.words();
        // Cut in the middle of the FDRI payload.
        assert_eq!(
            StreamInfo::scan(device.family(), &words[..words.len() - 30]),
            Err(BitstreamError::Truncated)
        );
    }

    #[test]
    fn ragged_frame_payload_detected() {
        // A V5 stream scanned as V6 (81-word frames) has a ragged payload.
        let device = Device::xc5vsx50t();
        let bs = PartialBitstream::build(&device, 0, &[0u32; 41]);
        assert!(matches!(
            StreamInfo::scan(Family::Virtex6, bs.words()),
            Err(BitstreamError::Malformed { .. })
        ));
    }

    #[test]
    fn payload_bytes_scales() {
        let device = Device::xc5vsx50t();
        let bs = PartialBitstream::build(&device, 0, &vec![0u32; 41 * 10]);
        let info = StreamInfo::scan(device.family(), bs.words()).unwrap();
        assert_eq!(info.payload_bytes(), 41 * 10 * 4);
    }
}

//! Deterministic fleet-scale chaos campaigns.
//!
//! A [`ChaosPlan`] expands a seeded [`ChaosSpec`] into per-chip event
//! schedules: permanent chip loss, transient brownouts (the chip's cap
//! slashed for a window), ICAP wedges (transfer stalls until the
//! watchdog fires), and elevated-SEU windows — plus rack-level power
//! [`EmergencyWindow`]s that cut the rack cap mid-run.
//!
//! Every per-chip schedule is a pure function of `(seed, chip)` through
//! [`uparc_sim::fault::substream`] sub-stream derivation: chip *c*'s
//! fate never depends on how many other chips the fleet has, so a
//! campaign is invariant to chip count and shard decomposition
//! (`tests/fleet.rs` pins this). Per-request fault coordinates come from
//! a further `(chip, request index)` sub-stream, so replaying any slice
//! of the request space reproduces the same faults.

use uparc_sim::fault::substream;
use uparc_sim::time::SimTime;

use crate::budget::EmergencyWindow;

/// Sub-stream lane for deriving per-chip seeds from the campaign seed.
const LANE_CHIP: u64 = 0xC4;
/// Per-chip lanes separating the independent event draws.
const LANE_LOSS: u64 = 1;
const LANE_BROWNOUT: u64 = 2;
const LANE_WEDGE: u64 = 3;
const LANE_SEU: u64 = 4;
/// Lane for per-request fault coordinate draws.
const LANE_REQUEST: u64 = 5;

/// The knobs of one chaos campaign. All probabilities are per chip and
/// drawn once per chip from its own sub-stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Campaign seed. Same seed, same campaign — byte for byte.
    pub seed: u64,
    /// Window in which chip-level events are drawn (event *onsets* land
    /// in `[0, horizon)`; their effects can extend past it).
    pub horizon: SimTime,
    /// Per-mille chance a chip dies permanently at a uniform instant.
    pub loss_permille: u32,
    /// Per-mille chance of one brownout window per chip.
    pub brownout_permille: u32,
    /// Brownout duration.
    pub brownout_window: SimTime,
    /// Fraction of the above-idle cap headroom a browned-out chip keeps
    /// (`0.0` = idle only, `1.0` = no effect).
    pub brownout_factor: f64,
    /// Per-mille chance of an ICAP-wedge episode (1–3 stall windows).
    pub wedge_permille: u32,
    /// Duration of one wedge window: dispatches starting inside it see a
    /// `TransferStall` past the watchdog and climb the recovery ladder.
    pub wedge_window: SimTime,
    /// Per-mille chance of one elevated-SEU window per chip.
    pub seu_permille: u32,
    /// Duration of the elevated-SEU window.
    pub seu_window: SimTime,
    /// Configuration-memory upsets injected into each dispatch that
    /// starts inside an SEU window.
    pub seu_faults_per_request: u32,
    /// Parts-per-million chance any individual dispatch (anywhere, any
    /// time) sees one ambient staged-image bit flip.
    pub ambient_fault_ppm: u32,
    /// Rack-level power emergencies, applied fleet-wide.
    pub emergencies: Vec<EmergencyWindow>,
}

impl ChaosSpec {
    /// A spec that injects nothing — the happy path.
    #[must_use]
    pub fn quiet() -> Self {
        ChaosSpec {
            seed: 0,
            horizon: SimTime::from_ms(1),
            loss_permille: 0,
            brownout_permille: 0,
            brownout_window: SimTime::ZERO,
            brownout_factor: 1.0,
            wedge_permille: 0,
            wedge_window: SimTime::ZERO,
            seu_permille: 0,
            seu_window: SimTime::ZERO,
            seu_faults_per_request: 0,
            ambient_fault_ppm: 0,
            emergencies: Vec::new(),
        }
    }
}

/// One chip's drawn chaos schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChipChaos {
    /// Permanent death instant, if the loss draw hit.
    pub loss_at: Option<SimTime>,
    /// `(from, to)` brownout window, if drawn (factor lives in the plan).
    pub brownout: Option<(SimTime, SimTime)>,
    /// ICAP wedge windows, ascending and non-overlapping.
    pub wedges: Vec<(SimTime, SimTime)>,
    /// `(from, to)` elevated-SEU window, if drawn.
    pub seu: Option<(SimTime, SimTime)>,
}

impl ChipChaos {
    /// Whether `at` falls inside a wedge window.
    #[must_use]
    pub fn wedged_at(&self, at: SimTime) -> bool {
        self.wedges.iter().any(|&(f, t)| f <= at && at < t)
    }

    /// Whether `at` falls inside the elevated-SEU window.
    #[must_use]
    pub fn seu_at(&self, at: SimTime) -> bool {
        self.seu.is_some_and(|(f, t)| f <= at && at < t)
    }
}

/// A fully expanded campaign: one [`ChipChaos`] per chip plus the
/// rack-level emergency windows.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    seed: u64,
    chips: Vec<ChipChaos>,
    emergencies: Vec<EmergencyWindow>,
    brownout_factor: f64,
    seu_faults_per_request: u32,
    ambient_fault_ppm: u32,
}

impl ChaosPlan {
    /// Expands `spec` for a fleet of `chips` chips.
    #[must_use]
    pub fn generate(spec: &ChaosSpec, chips: usize) -> Self {
        let mut emergencies = spec.emergencies.clone();
        emergencies.sort_by_key(|w| (w.from, w.to));
        ChaosPlan {
            seed: spec.seed,
            chips: (0..chips).map(|c| Self::chip_chaos(spec, c)).collect(),
            emergencies,
            brownout_factor: spec.brownout_factor,
            seu_faults_per_request: spec.seu_faults_per_request,
            ambient_fault_ppm: spec.ambient_fault_ppm,
        }
    }

    /// A plan that injects nothing for a fleet of `chips` chips.
    #[must_use]
    pub fn quiet(chips: usize) -> Self {
        Self::generate(&ChaosSpec::quiet(), chips)
    }

    /// Chip `chip`'s schedule — a pure function of `(spec, chip)`,
    /// independent of every other chip (the chip-count-invariance
    /// property the fleet's chaos tests pin).
    #[must_use]
    pub fn chip_chaos(spec: &ChaosSpec, chip: usize) -> ChipChaos {
        let cs = substream(spec.seed, LANE_CHIP, chip as u64);
        let horizon = spec.horizon.as_fs().max(1);
        let hit = |lane: u64, permille: u32| substream(cs, lane, 0) % 1000 < u64::from(permille);
        let at = |lane: u64, k: u64| SimTime::from_fs(substream(cs, lane, k) % horizon);
        let loss_at = hit(LANE_LOSS, spec.loss_permille).then(|| at(LANE_LOSS, 1));
        let brownout = (hit(LANE_BROWNOUT, spec.brownout_permille)
            && spec.brownout_window > SimTime::ZERO)
            .then(|| {
                let from = at(LANE_BROWNOUT, 1);
                (from, from + spec.brownout_window)
            });
        let mut wedges = Vec::new();
        if hit(LANE_WEDGE, spec.wedge_permille) && spec.wedge_window > SimTime::ZERO {
            let n = 1 + substream(cs, LANE_WEDGE, 1) % 3;
            let mut starts: Vec<SimTime> = (0..n).map(|k| at(LANE_WEDGE, 2 + k)).collect();
            starts.sort_unstable();
            let mut prev_end = SimTime::ZERO;
            for s in starts {
                // Windows are serialised: an overlapping draw starts
                // where the previous wedge ended.
                let from = s.max(prev_end);
                let to = from + spec.wedge_window;
                wedges.push((from, to));
                prev_end = to;
            }
        }
        let seu =
            (hit(LANE_SEU, spec.seu_permille) && spec.seu_window > SimTime::ZERO).then(|| {
                let from = at(LANE_SEU, 1);
                (from, from + spec.seu_window)
            });
        ChipChaos {
            loss_at,
            brownout,
            wedges,
            seu,
        }
    }

    /// Number of chips the plan covers.
    #[must_use]
    pub fn chips(&self) -> usize {
        self.chips.len()
    }

    /// Chip `c`'s schedule.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[must_use]
    pub fn chip(&self, c: usize) -> &ChipChaos {
        &self.chips[c]
    }

    /// The rack-level power emergencies, ascending by start.
    #[must_use]
    pub fn emergencies(&self) -> &[EmergencyWindow] {
        &self.emergencies
    }

    /// Fraction of above-idle cap headroom kept during a brownout.
    #[must_use]
    pub fn brownout_factor(&self) -> f64 {
        self.brownout_factor
    }

    /// Configuration upsets per dispatch inside an SEU window.
    #[must_use]
    pub fn seu_faults_per_request(&self) -> u32 {
        self.seu_faults_per_request
    }

    /// Parts-per-million ambient per-dispatch fault chance.
    #[must_use]
    pub fn ambient_fault_ppm(&self) -> u32 {
        self.ambient_fault_ppm
    }

    /// The `k`-th fault-coordinate draw for request `index` dispatched on
    /// chip `chip` — a pure sub-stream of `(seed, chip, index, k)`, so
    /// re-simulating any chip (or re-routing any request) reproduces the
    /// identical fault coordinates.
    #[must_use]
    pub fn request_draw(&self, chip: usize, index: u64, k: u64) -> u64 {
        let cs = substream(self.seed, LANE_CHIP, chip as u64);
        substream(substream(cs, LANE_REQUEST, index), LANE_REQUEST, k)
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.ambient_fault_ppm == 0
            && self.emergencies.is_empty()
            && self.chips.iter().all(|c| c == &ChipChaos::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spicy_spec(seed: u64) -> ChaosSpec {
        ChaosSpec {
            seed,
            horizon: SimTime::from_ms(2),
            loss_permille: 300,
            brownout_permille: 400,
            brownout_window: SimTime::from_us(100),
            brownout_factor: 0.4,
            wedge_permille: 500,
            wedge_window: SimTime::from_us(50),
            seu_permille: 250,
            seu_window: SimTime::from_us(80),
            seu_faults_per_request: 2,
            ambient_fault_ppm: 100,
            emergencies: vec![EmergencyWindow {
                from: SimTime::from_us(500),
                to: SimTime::from_us(900),
                cap_mw: 10_000.0,
            }],
        }
    }

    #[test]
    fn plans_are_seed_deterministic() {
        let spec = spicy_spec(77);
        assert_eq!(
            ChaosPlan::generate(&spec, 32),
            ChaosPlan::generate(&spec, 32)
        );
        assert_ne!(
            ChaosPlan::generate(&spec, 32),
            ChaosPlan::generate(&spicy_spec(78), 32)
        );
    }

    #[test]
    fn chip_streams_are_invariant_to_chip_count() {
        // The satellite-2 pin: adding chips to the fleet must never
        // perturb any existing chip's fault sequence. Chip c's schedule
        // in an N-chip plan equals its schedule in an (N+k)-chip plan.
        let spec = spicy_spec(2026);
        let small = ChaosPlan::generate(&spec, 8);
        let large = ChaosPlan::generate(&spec, 64);
        for c in 0..8 {
            assert_eq!(
                small.chip(c),
                large.chip(c),
                "chip {c}'s chaos changed when the fleet grew"
            );
        }
        // Per-request fault draws are sub-streams of the same chip seed,
        // so they are chip-count-invariant too.
        for c in 0..8 {
            for i in [0u64, 1, 999] {
                assert_eq!(small.request_draw(c, i, 0), large.request_draw(c, i, 0));
            }
        }
        // But distinct chips, requests and draw indices decorrelate.
        assert_ne!(small.request_draw(0, 5, 0), small.request_draw(1, 5, 0));
        assert_ne!(small.request_draw(0, 5, 0), small.request_draw(0, 6, 0));
        assert_ne!(small.request_draw(0, 5, 0), small.request_draw(0, 5, 1));
    }

    #[test]
    fn wedge_windows_are_sorted_and_disjoint() {
        let spec = ChaosSpec {
            wedge_permille: 1000,
            ..spicy_spec(3)
        };
        for c in 0..64 {
            let chaos = ChaosPlan::chip_chaos(&spec, c);
            for w in chaos.wedges.windows(2) {
                assert!(w[0].1 <= w[1].0, "chip {c}: overlapping wedges {w:?}");
            }
            for &(f, t) in &chaos.wedges {
                assert!(f < t);
                assert!(chaos.wedged_at(f));
                // End-exclusive — unless an adjacent window starts there.
                let adjacent = chaos.wedges.iter().any(|&(f2, _)| f2 == t);
                assert_eq!(chaos.wedged_at(t), adjacent);
            }
        }
    }

    #[test]
    fn quiet_plan_is_quiet() {
        let plan = ChaosPlan::quiet(16);
        assert!(plan.is_quiet());
        assert_eq!(plan.chips(), 16);
        for c in 0..16 {
            assert_eq!(plan.chip(c), &ChipChaos::default());
        }
        assert!(!ChaosPlan::generate(&spicy_spec(1), 16).is_quiet());
    }
}

//! Calibrated operating-point tables.
//!
//! `PowerAwarePolicy::plan_constrained` rebuilds the DCM frequency grid
//! and re-derives time/power/energy predictions on every call — fine for
//! hundreds of requests, ruinous for millions. This module hoists all of
//! that out of the dispatch path: the grid is built once, per-frequency
//! power is tabulated once, and per bitstream *shape* (raw size ×
//! staging mode) the full Start→Finish latency is **measured** once per
//! grid frequency with a real cycle-accurate [`UParc`] dispatch (retune +
//! preload + transfer), not predicted. Selecting an operating point for
//! a request is then a binary search over the power table — and a test
//! pins the selection against `plan_constrained` for the same query.

use std::collections::BTreeMap;
use std::sync::Arc;

use uparc_core::cache::CacheKey;
use uparc_core::manager::ManagerConfig;
use uparc_core::policy::PowerAwarePolicy;
use uparc_core::uparc::{codec_id, UParc, COMPRESSED_MODE_MAX};
use uparc_serve::catalog::Catalog;
use uparc_serve::request::BitstreamId;
use uparc_sim::power::{calib, VfTable};
use uparc_sim::time::{Frequency, SimTime};

use crate::FleetError;

/// Per-entry dispatch facts (precomputed so the hot loop never hashes or
/// re-derives them).
#[derive(Debug, Clone)]
pub struct EntryFacts {
    /// Index into the group tables.
    group: usize,
    /// Cache key of the staged compressed payload (None = raw staging,
    /// which bypasses the decompressed-image cache entirely).
    pub key: Option<CacheKey>,
    /// Decompressed image size in bytes (what the cache stores).
    pub image_bytes: usize,
    /// Transfer size in 32-bit words (mode word included), for
    /// throughput accounting.
    pub words: u64,
}

/// Calibrated tables for one bitstream shape.
#[derive(Debug, Clone)]
struct GroupTable {
    /// `grid[..admissible]` respects the datapath frequency ceiling.
    admissible: usize,
    /// Measured Start→Finish latency per admissible grid index.
    service: Vec<SimTime>,
    /// Above-idle energy per dispatch per admissible grid index, µJ
    /// (decompressor draw included for compressed staging).
    energy_uj: Vec<f64>,
    /// Extra steady draw during the transfer (decompressor), mW.
    extra_draw_mw: f64,
}

/// The fleet's precomputed planning tables.
///
/// Each index is one *(V, f)* operating point. For the frequency-only
/// [`PlanTables::build`] every point sits on the nominal rail; for
/// [`PlanTables::build_vf`] the points are the Pareto frontier of the
/// rail × grid product — strictly ascending in both power and
/// frequency, so the binary-search cap admission of
/// [`PlanTables::select`] keeps working unchanged and automatically
/// picks undervolted points when they buy clock under a tight cap.
#[derive(Debug, Clone)]
pub struct PlanTables {
    /// Synthesizable CLK_2 targets in the fleet operating range,
    /// ascending.
    grid: Vec<Frequency>,
    /// Core voltage per grid index (all nominal for [`PlanTables::build`]).
    volts: Vec<f64>,
    /// Total core power (idle included, decompressor excluded) per grid
    /// index — strictly ascending, so cap admission is a binary search.
    power_mw: Vec<f64>,
    groups: Vec<GroupTable>,
    entries: BTreeMap<u32, EntryFacts>,
}

impl PlanTables {
    /// Builds and calibrates tables for every entry of `catalog`.
    ///
    /// The grid is restricted to `min_frequency` and up: the slowest
    /// grid point defines the per-chip power floor the rack budget must
    /// fund, so a rack-scale deployment declares the slowest clock it is
    /// willing to run rather than reserving budget for pathological
    /// 6 MHz operating points.
    ///
    /// # Errors
    ///
    /// [`FleetError::EmptyCatalog`] for an empty catalog and
    /// [`FleetError::NoAdmissibleFrequency`] if the operating range is
    /// empty or excludes some entry's datapath ceiling.
    pub fn build(
        catalog: &Catalog,
        planner: &PowerAwarePolicy,
        min_frequency: Frequency,
    ) -> Result<Self, FleetError> {
        // The single-rail table pins the analytic power model, so these
        // tables are bit-identical to the pre-DVFS construction.
        Self::build_vf(catalog, planner, min_frequency, &VfTable::nominal_only())
    }

    /// Builds tables over the Pareto frontier of `vf`'s rails crossed
    /// with the DCM grid.
    ///
    /// Per grid frequency the cheapest rail that admits it (lowest
    /// voltage with `fmax` at or above it) is kept; the surviving points
    /// are sorted by power and pruned to a strictly ascending
    /// power-and-frequency frontier. Spending more power therefore
    /// always buys a faster point, which is exactly the invariant
    /// [`PlanTables::select`]'s binary search needs. Rail ramps are not
    /// charged into these coarse rack-planning tables; the per-chip
    /// dispatch paths account for them.
    ///
    /// # Errors
    ///
    /// Same contract as [`PlanTables::build`].
    pub fn build_vf(
        catalog: &Catalog,
        planner: &PowerAwarePolicy,
        min_frequency: Frequency,
        vf: &VfTable,
    ) -> Result<Self, FleetError> {
        if catalog.is_empty() {
            return Err(FleetError::EmptyCatalog);
        }
        let planner = planner.clone().with_vf_table(vf.clone());
        let mut points: Vec<(f64, Frequency, f64)> = planner
            .frequency_grid()
            .into_iter()
            .filter(|&f| f >= min_frequency)
            .filter_map(|f| {
                let rail = vf.rails().iter().find(|r| r.fmax.is_none_or(|m| f <= m))?;
                Some((rail.volts, f, planner.predicted_power_vf_mw(rail.volts, f)))
            })
            .collect();
        points.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.1.cmp(&b.1)));
        let mut grid = Vec::new();
        let mut volts = Vec::new();
        let mut power_mw = Vec::new();
        for (v, f, p) in points {
            if grid.last().is_some_and(|&g| f <= g) || power_mw.last().is_some_and(|&q| p <= q) {
                continue;
            }
            grid.push(f);
            volts.push(v);
            power_mw.push(p);
        }
        if grid.is_empty() {
            return Err(FleetError::NoAdmissibleFrequency);
        }
        let manager_mhz = ManagerConfig::default().clock.as_mhz();
        let codec = codec_id(catalog.algorithm());

        let mut tables = PlanTables {
            grid,
            volts,
            power_mw,
            groups: Vec::new(),
            entries: BTreeMap::new(),
        };
        let mut group_of: BTreeMap<(usize, bool), usize> = BTreeMap::new();
        for id in catalog.ids() {
            let entry = catalog.entry(id).expect("listed id resolves");
            let shape = (entry.raw_bytes(), entry.compressed());
            let group = match group_of.get(&shape) {
                Some(&g) => g,
                None => {
                    let ceiling = entry
                        .compressed()
                        .then(|| Frequency::from_mhz(COMPRESSED_MODE_MAX));
                    let admissible = match ceiling {
                        Some(c) => tables.grid.partition_point(|&f| f <= c),
                        None => tables.grid.len(),
                    };
                    if admissible == 0 {
                        return Err(FleetError::NoAdmissibleFrequency);
                    }
                    let extra_draw_mw = if entry.compressed() {
                        calib::DECOMPRESSOR_MW_PER_MHZ * manager_mhz
                    } else {
                        0.0
                    };
                    let mut service = Vec::with_capacity(admissible);
                    let mut energy_uj = Vec::with_capacity(admissible);
                    for i in 0..admissible {
                        let f = tables.grid[i];
                        // A fresh scratch controller per point: no DCM
                        // relock residue, no warm decompressed cache.
                        // Voltage does not change the cycle count, so
                        // the latency measurement is rail-independent.
                        let mut scratch = UParc::builder(catalog.device().clone())
                            .bram_bytes(catalog.bram_bytes())
                            .decompressor(catalog.algorithm())
                            .decompressed_cache_bytes(0)
                            .build()
                            .expect("catalog algorithm has a hardware decompressor");
                        scratch
                            .set_reconfiguration_frequency(f)
                            .expect("grid frequency is synthesizable");
                        scratch
                            .reconfigure_bitstream(entry.bitstream(), entry.mode())
                            .expect("fault-free calibration dispatch");
                        let measured = scratch.now();
                        service.push(measured);
                        energy_uj.push(
                            planner.predicted_energy_vf_uj(
                                entry.raw_bytes(),
                                tables.volts[i],
                                f,
                                SimTime::ZERO,
                            ) + extra_draw_mw * measured.as_secs_f64() * 1e3,
                        );
                    }
                    let g = tables.groups.len();
                    tables.groups.push(GroupTable {
                        admissible,
                        service,
                        energy_uj,
                        extra_draw_mw,
                    });
                    group_of.insert(shape, g);
                    g
                }
            };
            let (key, image_bytes) = match entry.packed_bytes() {
                Some(packed) => {
                    let image = catalog
                        .algorithm()
                        .codec()
                        .decompress(packed)
                        .expect("staged payload round-trips");
                    (Some(CacheKey::of(codec, packed)), image.len())
                }
                None => (None, entry.raw_bytes()),
            };
            tables.entries.insert(
                id.0,
                EntryFacts {
                    group,
                    key,
                    image_bytes,
                    words: (entry.raw_bytes() as u64).div_ceil(4) + 1,
                },
            );
        }
        Ok(tables)
    }

    /// The restricted frequency grid, ascending.
    #[must_use]
    pub fn grid(&self) -> &[Frequency] {
        &self.grid
    }

    /// Precomputed dispatch facts for `id`.
    ///
    /// # Panics
    ///
    /// Panics for an id the tables were not built over.
    #[must_use]
    pub fn facts(&self, id: BitstreamId) -> &EntryFacts {
        self.entries.get(&id.0).expect("id was calibrated")
    }

    /// Fastest admissible grid index for `id` under a total-power cap of
    /// `cap_mw` (idle and decompressor draw included), or `None` if even
    /// the slowest point exceeds the cap.
    #[must_use]
    pub fn select(&self, id: BitstreamId, cap_mw: f64) -> Option<usize> {
        let g = &self.groups[self.facts(id).group];
        let fit = self.power_mw[..g.admissible].partition_point(|&p| p + g.extra_draw_mw <= cap_mw);
        fit.checked_sub(1)
    }

    /// Measured Start→Finish latency of `id` at grid index `idx`.
    #[must_use]
    pub fn service(&self, id: BitstreamId, idx: usize) -> SimTime {
        self.groups[self.facts(id).group].service[idx]
    }

    /// The slowest admissible point's latency for `id` — the
    /// conservative window dispatch planning spans epoch caps with.
    #[must_use]
    pub fn slowest_service(&self, id: BitstreamId) -> SimTime {
        self.groups[self.facts(id).group].service[0]
    }

    /// Above-idle energy of one dispatch of `id` at grid index `idx`, µJ.
    #[must_use]
    pub fn energy_uj(&self, id: BitstreamId, idx: usize) -> f64 {
        self.groups[self.facts(id).group].energy_uj[idx]
    }

    /// Above-idle draw of `id`'s transfer at grid index `idx`, mW
    /// (reconfiguration path plus decompressor).
    #[must_use]
    pub fn draw_above_idle_mw(&self, id: BitstreamId, idx: usize) -> f64 {
        let g = &self.groups[self.facts(id).group];
        self.power_mw[idx] - calib::V6_IDLE_MW + g.extra_draw_mw
    }

    /// The CLK_2 frequency at grid index `idx`.
    #[must_use]
    pub fn frequency(&self, idx: usize) -> Frequency {
        self.grid[idx]
    }

    /// The core voltage at grid index `idx` (nominal for tables built
    /// with [`PlanTables::build`]).
    #[must_use]
    pub fn volts_at(&self, idx: usize) -> f64 {
        self.volts[idx]
    }

    /// The per-chip above-idle power floor: the draw of the slowest grid
    /// point plus the largest decompressor surcharge any entry needs.
    /// A chip whose cap funds idle + this floor can always dispatch.
    #[must_use]
    pub fn floor_mw(&self) -> f64 {
        let extra = self
            .groups
            .iter()
            .map(|g| g.extra_draw_mw)
            .fold(0.0, f64::max);
        self.power_mw[0] - calib::V6_IDLE_MW + extra
    }

    /// A mid-grid service-time estimate for router load modeling.
    #[must_use]
    pub fn mean_service_estimate(&self) -> SimTime {
        let g = &self.groups[0];
        g.service[g.admissible / 2]
    }

    /// An owned copy of the decompressed image of `id` (compressed
    /// staging only). Used by tests; the chip loop decompresses inline.
    #[must_use]
    pub fn decompress_image(&self, catalog: &Catalog, id: BitstreamId) -> Option<Arc<Vec<u8>>> {
        let entry = catalog.entry(id)?;
        let packed = entry.packed_bytes()?;
        Some(Arc::new(
            catalog
                .algorithm()
                .codec()
                .decompress(packed)
                .expect("staged payload round-trips"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::synthetic_catalog;

    #[test]
    fn build_keeps_the_pre_dvfs_nominal_tables() {
        let catalog = synthetic_catalog(2, 40, 9);
        let planner = PowerAwarePolicy::paper_setup(catalog.device().family());
        let min = Frequency::from_mhz(50.0);
        let tables = PlanTables::build(&catalog, &planner, min).unwrap();
        let expected: Vec<Frequency> = planner
            .frequency_grid()
            .into_iter()
            .filter(|&f| f >= min)
            .collect();
        assert_eq!(tables.grid(), expected.as_slice());
        for (i, &f) in expected.iter().enumerate() {
            assert_eq!(tables.volts_at(i), calib::V_NOM_V);
            // Bit-identical to the analytic model the pre-DVFS tables
            // were built from.
            assert_eq!(
                tables.power_mw[i].to_bits(),
                planner.predicted_power_mw(f).to_bits()
            );
        }
    }

    #[test]
    fn vf_frontier_trades_voltage_for_clock_under_a_tight_cap() {
        let catalog = synthetic_catalog(2, 40, 9);
        let planner = PowerAwarePolicy::paper_setup(catalog.device().family());
        let min = Frequency::from_mhz(50.0);
        let nominal = PlanTables::build(&catalog, &planner, min).unwrap();
        let dvfs =
            PlanTables::build_vf(&catalog, &planner, min, &VfTable::voltune_virtex6()).unwrap();
        // The frontier is strictly ascending in both axes — the
        // invariant `select`'s binary search rests on.
        for w in dvfs.grid.windows(2) {
            assert!(w[0] < w[1]);
        }
        for w in dvfs.power_mw.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(
            dvfs.volts.iter().any(|&v| v < calib::V_NOM_V),
            "the frontier must keep undervolted points"
        );
        // Under a cap that forces the nominal tables well below the
        // datapath ceiling, the undervolted frontier buys a faster
        // operating point without exceeding the cap.
        let id = BitstreamId(1);
        let cap = 430.0;
        let slow = nominal.select(id, cap).expect("cap admits a point");
        let fast = dvfs.select(id, cap).expect("cap admits a point");
        assert!(dvfs.frequency(fast) > nominal.frequency(slow));
        assert!(dvfs.volts_at(fast) < calib::V_NOM_V);
        assert!(dvfs.power_mw[fast] + dvfs.groups[dvfs.facts(id).group].extra_draw_mw <= cap);
        // Faster point, same image: the dispatch also finishes sooner.
        assert!(dvfs.service(id, fast) < nominal.service(id, slow));
    }
}

//! # uparc-fleet — rack-scale sharded UPaRC serving
//!
//! `uparc-serve` drives one chip; this crate drives a *rack*: N
//! independent simulated UPaRC devices served from one bitstream
//! catalog, millions of requests per run, under a rack-level power cap —
//! while staying bit-deterministic at any `UPARC_SWEEP_THREADS`.
//!
//! * [`workload`] — a counter-based request generator: request *i* is a
//!   pure function of `(seed, i)`, so any sharding of the index space
//!   reproduces the exact same per-request stream;
//! * [`router`] — the cross-chip request router: locality-aware (send a
//!   request to a chip whose decompressed-bitstream LRU already holds
//!   the image, with a load-aware spill fallback) or seeded-random
//!   baseline, with deterministic lowest-chip-id tie-breaks;
//! * [`budget`] — the hierarchical power budget: the rack cap is
//!   decomposed per rebalance epoch into per-chip caps proportional to
//!   routed demand, with a guaranteed per-chip dynamic floor so no chip
//!   ever starves;
//! * [`plan`] — calibrated operating-point tables: per distinct
//!   bitstream shape, the full Start→Finish latency is *measured* once
//!   per grid frequency on a real cycle-accurate [`uparc_core::UParc`]
//!   dispatch, then reused table-driven for millions of requests;
//! * [`chip`] — the per-chip simulation loop: FIFO service, table
//!   lookup under the epoch cap, a real [`uparc_core::cache::DecompCache`]
//!   per chip (misses run the actual codec), mergeable latency
//!   histograms;
//! * [`fleet`] — the orchestrator: sequential deterministic routing,
//!   cap scheduling, chip simulation fanned out over
//!   [`uparc_sim::sweep::parallel_map`], and an independent sweep over
//!   all transfer intervals that *verifies* the rack cap was never
//!   exceeded.
//!
//! # Architecture
//!
//! ```text
//!  (seed, i) ──> workload ──> router ──┬─> chip 0 queue ─┐
//!   pure fn      request i    locality │   chip 1 queue  │ parallel_map
//!                             or random├─> ...           ├─ (any worker
//!                                      │   chip N queue ─┘   count, same
//!                 per-epoch demand ────┘        │             bytes)
//!                        │                      v
//!                 rack cap ──> per-chip     table-driven dispatch
//!                 (budget)     epoch caps   + per-chip DecompCache
//!                                  │            │
//!                                  v            v
//!                           independent rack-cap verification sweep,
//!                           merged LogHistogram quantiles (p50…p999)
//! ```
//!
//! Determinism: routing and cap scheduling are sequential; chip
//! simulations are mutually independent and merged in chip order via the
//! order-preserving `parallel_map`, so a run is byte-identical at any
//! worker count (the `bench_fleet` harness asserts this by rendering the
//! outcome twice at 1 and 8 workers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod chaos;
pub mod chip;
pub mod fleet;
pub mod health;
pub mod plan;
pub mod router;
pub mod workload;

pub use budget::{CapSchedule, CapTimeline, EmergencyWindow, RackBudget};
pub use chaos::{ChaosPlan, ChaosSpec, ChipChaos};
pub use fleet::{synthetic_catalog, Fleet, FleetConfig, FleetOutcome};
pub use health::{ChipState, HealthConfig, HealthTimeline};
pub use plan::PlanTables;
pub use router::{RouteOutcome, RoutePolicy, Router, ShedReason};
pub use workload::{FleetRequest, FleetWorkloadSpec};

/// Errors the fleet layer can fail with.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// The catalog holds no bitstreams to serve.
    EmptyCatalog,
    /// A fleet must have at least one chip.
    NoChips,
    /// The rack cap cannot fund every chip's idle draw plus the dynamic
    /// floor that keeps the slowest admissible operating point available.
    InfeasibleRackCap {
        /// Minimum rack cap the configuration needs, mW.
        required_mw: f64,
        /// The configured rack cap, mW.
        cap_mw: f64,
    },
    /// No synthesizable frequency survives the fleet's operating range
    /// (`min_frequency` up to the datapath ceiling).
    NoAdmissibleFrequency,
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::EmptyCatalog => write!(f, "catalog holds no bitstreams"),
            FleetError::NoChips => write!(f, "fleet needs at least one chip"),
            FleetError::InfeasibleRackCap {
                required_mw,
                cap_mw,
            } => write!(
                f,
                "rack cap {cap_mw:.1} mW cannot fund idle + dynamic floor \
                 for every chip (needs at least {required_mw:.1} mW)"
            ),
            FleetError::NoAdmissibleFrequency => {
                write!(f, "no synthesizable frequency in the fleet operating range")
            }
        }
    }
}

impl std::error::Error for FleetError {}

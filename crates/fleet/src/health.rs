//! Per-chip health state machine driven by a chaos schedule.
//!
//! The router never inspects raw chaos events; it consumes a
//! [`HealthTimeline`] — the precomputed trajectory of one chip through
//!
//! ```text
//!            wedge              wedge (while Suspect)
//! Healthy ─────────▶ Suspect ─────────▶ Quarantined
//!    ▲                  │                    │ hold elapses
//!    │   decay elapses  │                    ▼
//!    ├──────────────────┘               Repairing
//!    │                                       │ repair elapses
//!    └───────────────────────────────────────┘
//!
//!        any state ──── chip loss ────▶ Down (absorbing)
//! ```
//!
//! A single wedge marks the chip Suspect (still routable — one stall is
//! survivable via the recovery ladder); a second wedge before the
//! suspicion decays tips it into Quarantined, where the router stops
//! offering it work until a repair window has run. Permanent loss
//! truncates the whole trajectory into the absorbing `Down` state.

use uparc_sim::time::SimTime;

use crate::chaos::ChipChaos;

/// Router-visible health of one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChipState {
    /// Fully operational.
    Healthy,
    /// Saw a recent wedge; still routable, but one more wedge before the
    /// suspicion decays quarantines it.
    Suspect,
    /// Held out of routing after repeated wedges.
    Quarantined,
    /// Running its repair window; not yet routable.
    Repairing,
    /// Permanently lost. Absorbing.
    Down,
}

impl ChipState {
    /// Stable label for rendering and traces.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ChipState::Healthy => "healthy",
            ChipState::Suspect => "suspect",
            ChipState::Quarantined => "quarantined",
            ChipState::Repairing => "repairing",
            ChipState::Down => "down",
        }
    }

    /// Whether the router may assign new work in this state.
    #[must_use]
    pub fn routable(&self) -> bool {
        matches!(self, ChipState::Healthy | ChipState::Suspect)
    }
}

/// Tuning of the health state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// How long a chip stays Suspect after a wedge ends before it is
    /// trusted again.
    pub suspect_decay: SimTime,
    /// How long a quarantined chip is held after its wedge ends before
    /// repair starts.
    pub quarantine_hold: SimTime,
    /// Length of the repair window.
    pub repair_time: SimTime,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_decay: SimTime::from_us(200),
            quarantine_hold: SimTime::from_us(100),
            repair_time: SimTime::from_us(100),
        }
    }
}

/// One chip's precomputed health trajectory: `(at_fs, state)` transitions
/// ascending in time, starting with `(0, Healthy)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTimeline {
    transitions: Vec<(u64, ChipState)>,
}

impl HealthTimeline {
    /// Runs the state machine over `chaos`'s wedge windows and loss
    /// instant.
    #[must_use]
    pub fn build(chaos: &ChipChaos, cfg: &HealthConfig) -> Self {
        let mut t: Vec<(u64, ChipState)> = vec![(0, ChipState::Healthy)];
        // Pending decay back to Healthy; kept out of `t` until we know no
        // further wedge lands first (pushing it eagerly would let a later
        // wedge see Healthy where the machine is still Suspect).
        let mut pending_heal: Option<u64> = None;
        let state_at = |t: &[(u64, ChipState)], at: u64| {
            let i = t.partition_point(|&(f, _)| f <= at);
            t[i - 1].1
        };
        for &(ws, we) in &chaos.wedges {
            let (ws, we) = (ws.as_fs(), we.as_fs());
            if let Some(heal) = pending_heal {
                if heal <= ws {
                    t.push((heal, ChipState::Healthy));
                    pending_heal = None;
                }
            }
            match state_at(&t, ws) {
                ChipState::Healthy => {
                    t.push((ws, ChipState::Suspect));
                    pending_heal = Some(we + cfg.suspect_decay.as_fs());
                }
                ChipState::Suspect => {
                    pending_heal = None;
                    t.push((ws, ChipState::Quarantined));
                    let repair = we + cfg.quarantine_hold.as_fs();
                    t.push((repair, ChipState::Repairing));
                    t.push((repair + cfg.repair_time.as_fs(), ChipState::Healthy));
                }
                // A wedge inside quarantine/repair changes nothing: the
                // chip is already out of rotation for the window.
                ChipState::Quarantined | ChipState::Repairing | ChipState::Down => {}
            }
        }
        if let Some(heal) = pending_heal {
            t.push((heal, ChipState::Healthy));
        }
        if let Some(loss) = chaos.loss_at {
            let loss = loss.as_fs();
            t.retain(|&(f, _)| f < loss);
            if t.is_empty() {
                t.push((0, ChipState::Healthy));
            }
            t.push((loss.max(t.last().map_or(0, |&(f, _)| f)), ChipState::Down));
        }
        HealthTimeline { transitions: t }
    }

    /// A chip that never leaves Healthy.
    #[must_use]
    pub fn healthy() -> Self {
        HealthTimeline {
            transitions: vec![(0, ChipState::Healthy)],
        }
    }

    /// State at `at_fs`.
    #[must_use]
    pub fn state_at(&self, at_fs: u64) -> ChipState {
        let i = self.transitions.partition_point(|&(f, _)| f <= at_fs);
        self.transitions[i - 1].1
    }

    /// The raw `(at_fs, state)` transition list, ascending.
    #[must_use]
    pub fn transitions(&self) -> &[(u64, ChipState)] {
        &self.transitions
    }

    /// Number of quarantine entries along the trajectory.
    #[must_use]
    pub fn quarantine_count(&self) -> u64 {
        self.transitions
            .iter()
            .filter(|&&(_, s)| s == ChipState::Quarantined)
            .count() as u64
    }

    /// Death instant, if the chip goes Down.
    #[must_use]
    pub fn down_at(&self) -> Option<SimTime> {
        self.transitions
            .iter()
            .find(|&&(_, s)| s == ChipState::Down)
            .map(|&(f, _)| SimTime::from_fs(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            suspect_decay: SimTime::from_us(200),
            quarantine_hold: SimTime::from_us(100),
            repair_time: SimTime::from_us(100),
        }
    }

    fn us(v: u64) -> SimTime {
        SimTime::from_us(v)
    }

    #[test]
    fn single_wedge_decays_back_to_healthy() {
        let chaos = ChipChaos {
            wedges: vec![(us(100), us(150))],
            ..ChipChaos::default()
        };
        let h = HealthTimeline::build(&chaos, &cfg());
        assert_eq!(h.state_at(us(50).as_fs()), ChipState::Healthy);
        assert_eq!(h.state_at(us(100).as_fs()), ChipState::Suspect);
        assert_eq!(h.state_at(us(349).as_fs()), ChipState::Suspect);
        // Decay = wedge end (150) + 200.
        assert_eq!(h.state_at(us(350).as_fs()), ChipState::Healthy);
        assert_eq!(h.quarantine_count(), 0);
        assert!(h.down_at().is_none());
    }

    #[test]
    fn second_wedge_while_suspect_quarantines_then_repairs() {
        let chaos = ChipChaos {
            wedges: vec![(us(100), us(150)), (us(200), us(250))],
            ..ChipChaos::default()
        };
        let h = HealthTimeline::build(&chaos, &cfg());
        assert_eq!(h.state_at(us(150).as_fs()), ChipState::Suspect);
        assert_eq!(h.state_at(us(200).as_fs()), ChipState::Quarantined);
        assert!(!h.state_at(us(200).as_fs()).routable());
        // Repair at wedge end (250) + hold (100); healthy again at +100.
        assert_eq!(h.state_at(us(350).as_fs()), ChipState::Repairing);
        assert_eq!(h.state_at(us(450).as_fs()), ChipState::Healthy);
        assert_eq!(h.quarantine_count(), 1);
    }

    #[test]
    fn wedge_after_decay_only_re_suspects() {
        // Second wedge lands after the first suspicion decayed: two
        // independent Suspect episodes, never a quarantine.
        let chaos = ChipChaos {
            wedges: vec![(us(100), us(150)), (us(600), us(650))],
            ..ChipChaos::default()
        };
        let h = HealthTimeline::build(&chaos, &cfg());
        assert_eq!(h.state_at(us(400).as_fs()), ChipState::Healthy);
        assert_eq!(h.state_at(us(600).as_fs()), ChipState::Suspect);
        assert_eq!(h.state_at(us(900).as_fs()), ChipState::Healthy);
        assert_eq!(h.quarantine_count(), 0);
    }

    #[test]
    fn loss_truncates_into_absorbing_down() {
        let chaos = ChipChaos {
            loss_at: Some(us(220)),
            wedges: vec![(us(100), us(150)), (us(200), us(250))],
            ..ChipChaos::default()
        };
        let h = HealthTimeline::build(&chaos, &cfg());
        assert_eq!(h.state_at(us(210).as_fs()), ChipState::Quarantined);
        assert_eq!(h.state_at(us(220).as_fs()), ChipState::Down);
        // The repair transitions scheduled after the loss are gone.
        assert_eq!(h.state_at(us(10_000).as_fs()), ChipState::Down);
        assert_eq!(h.down_at(), Some(us(220)));
        assert!(!ChipState::Down.routable());
    }

    #[test]
    fn loss_at_zero_is_down_from_the_start() {
        let chaos = ChipChaos {
            loss_at: Some(SimTime::ZERO),
            ..ChipChaos::default()
        };
        let h = HealthTimeline::build(&chaos, &cfg());
        assert_eq!(h.state_at(0), ChipState::Down);
    }
}

//! Cross-chip request routing.
//!
//! The router is the fleet's locality engine: it keeps a byte-budgeted
//! model of each chip's decompressed-bitstream LRU (the same budget and
//! eviction order as the real `uparc_core::cache::DecompCache` the chip
//! simulation runs) and sends each request to a chip that already holds
//! the image. When every holder is overloaded the request *spills* to
//! the least-loaded chip instead — locality never wins at the price of a
//! hot chip's queue growing without bound.
//!
//! Routing is strictly sequential and deterministic: chip load is
//! modeled as a finish horizon in femtoseconds, candidates are compared
//! by `(horizon, chip id)`, so equal-load ties always resolve to the
//! lowest chip id (pinned by `tests/fleet.rs`).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use uparc_serve::request::BitstreamId;
use uparc_sim::time::SimTime;

use crate::workload::{splitmix64, FleetRequest, GOLDEN};

/// How the fleet assigns requests to chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Prefer a chip whose modeled LRU holds the image; spill to the
    /// least-loaded chip when the best holder's backlog exceeds the
    /// fleet-wide minimum by more than `spill_window`.
    Locality {
        /// Maximum extra backlog a holder may carry over the least
        /// loaded chip before the request spills.
        spill_window: SimTime,
    },
    /// Seeded uniform-random assignment — the baseline the locality
    /// uplift is measured against.
    Random {
        /// Assignment seed (independent of the workload seed).
        seed: u64,
    },
}

/// Per-request routing tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Requests routed to a chip already holding the image.
    pub warm: u64,
    /// Requests whose image no chip held (first touch or fully evicted).
    pub cold: u64,
    /// Requests that had a holder but spilled to a less loaded chip.
    pub spills: u64,
}

/// Modeled per-chip LRU of decompressed images. Mirrors the byte-budget
/// semantics of `DecompCache`: inserting past the budget evicts
/// least-recently-used entries first; an entry larger than the whole
/// budget is not admitted.
#[derive(Debug, Clone)]
struct ModelLru {
    budget: usize,
    used: usize,
    tick: u64,
    /// `(id, bytes, last-touch tick)`; small (a handful of images per
    /// chip), so linear scans beat pointer-chasing.
    entries: Vec<(BitstreamId, usize, u64)>,
}

impl ModelLru {
    fn new(budget: usize) -> Self {
        ModelLru {
            budget,
            used: 0,
            tick: 0,
            entries: Vec::new(),
        }
    }

    fn touch(&mut self, id: BitstreamId) -> bool {
        self.tick += 1;
        for e in &mut self.entries {
            if e.0 == id {
                e.2 = self.tick;
                return true;
            }
        }
        false
    }

    /// Inserts `id`, returning the ids evicted to make room.
    fn insert(&mut self, id: BitstreamId, bytes: usize) -> Vec<BitstreamId> {
        self.tick += 1;
        let mut evicted = Vec::new();
        if bytes > self.budget || self.budget == 0 {
            return evicted;
        }
        while self.used + bytes > self.budget {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .expect("over budget implies a resident entry");
            let (gone, gone_bytes, _) = self.entries.swap_remove(lru);
            self.used -= gone_bytes;
            evicted.push(gone);
        }
        self.used += bytes;
        self.entries.push((id, bytes, self.tick));
        evicted
    }
}

/// The sequential, deterministic cross-chip router.
#[derive(Debug)]
pub struct Router {
    policy: RoutePolicy,
    /// Modeled finish horizon per chip, fs.
    horizons: Vec<u64>,
    /// Modeled cache content per chip (locality policy only).
    models: Vec<ModelLru>,
    /// Which chips currently hold each image (ascending chip ids).
    holders: BTreeMap<BitstreamId, Vec<usize>>,
    /// Lazy min-heap over `(horizon, chip)`; stale entries are skipped.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Mean service estimate used to advance horizons, fs.
    est_service_fs: u64,
    stats: RouteStats,
}

impl Router {
    /// A router over `chips` chips whose modeled LRUs hold
    /// `cache_budget` bytes each; `est_service` is the load-model cost
    /// of one request.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero.
    #[must_use]
    pub fn new(
        chips: usize,
        policy: RoutePolicy,
        cache_budget: usize,
        est_service: SimTime,
    ) -> Self {
        assert!(chips > 0, "router needs at least one chip");
        Router {
            policy,
            horizons: vec![0; chips],
            models: (0..chips).map(|_| ModelLru::new(cache_budget)).collect(),
            holders: BTreeMap::new(),
            heap: (0..chips).map(|c| Reverse((0, c))).collect(),
            est_service_fs: est_service.as_fs().max(1),
            stats: RouteStats::default(),
        }
    }

    /// Routing tallies so far.
    #[must_use]
    pub fn stats(&self) -> RouteStats {
        self.stats
    }

    /// The least-loaded chip by `(horizon, chip id)`; the heap is lazy,
    /// so stale keys are popped until the top matches reality.
    fn least_loaded(&mut self) -> (u64, usize) {
        loop {
            let &Reverse((h, c)) = self.heap.peek().expect("heap holds every chip");
            if self.horizons[c] == h {
                return (h, c);
            }
            self.heap.pop();
        }
    }

    /// Picks the target chip for `req` (an image of `image_bytes`
    /// decompressed bytes) and advances the load model.
    pub fn route(&mut self, req: &FleetRequest, image_bytes: usize) -> usize {
        let target = match self.policy {
            RoutePolicy::Random { seed } => {
                (splitmix64(seed.wrapping_add(req.index.wrapping_mul(GOLDEN)))
                    % self.horizons.len() as u64) as usize
            }
            RoutePolicy::Locality { spill_window } => {
                let (min_h, least) = self.least_loaded();
                let holder = self
                    .holders
                    .get(&req.bitstream)
                    .and_then(|chips| chips.iter().copied().min_by_key(|&c| (self.horizons[c], c)));
                match holder {
                    Some(h) if self.horizons[h] <= min_h.saturating_add(spill_window.as_fs()) => {
                        self.stats.warm += 1;
                        h
                    }
                    Some(_) => {
                        self.stats.spills += 1;
                        least
                    }
                    None => {
                        self.stats.cold += 1;
                        least
                    }
                }
            }
        };
        // Advance the modeled horizon and cache content.
        let start = self.horizons[target].max(req.arrival.as_fs());
        self.horizons[target] = start + self.est_service_fs;
        self.heap.push(Reverse((self.horizons[target], target)));
        if matches!(self.policy, RoutePolicy::Locality { .. })
            && !self.models[target].touch(req.bitstream)
        {
            for gone in self.models[target].insert(req.bitstream, image_bytes) {
                let held = self.holders.get_mut(&gone).expect("evictee was held");
                held.retain(|&c| c != target);
                if held.is_empty() {
                    self.holders.remove(&gone);
                }
            }
            if self.models[target].touch(req.bitstream) {
                let held = self.holders.entry(req.bitstream).or_default();
                match held.binary_search(&target) {
                    Ok(_) => {}
                    Err(pos) => held.insert(pos, target),
                }
            }
        }
        target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(index: u64, arrival_ns: u64, bs: u32) -> FleetRequest {
        FleetRequest {
            index,
            arrival: SimTime::from_ns(arrival_ns),
            bitstream: BitstreamId(bs),
        }
    }

    #[test]
    fn equal_load_ties_break_to_lowest_chip_id() {
        let mut r = Router::new(
            4,
            RoutePolicy::Locality {
                spill_window: SimTime::from_us(10),
            },
            1 << 20,
            SimTime::from_us(1),
        );
        // All chips idle at horizon 0: the first cold request must land
        // on chip 0, the next (different image, chip 0 now loaded) on 1.
        assert_eq!(r.route(&req(0, 0, 1), 1024), 0);
        assert_eq!(r.route(&req(1, 0, 2), 1024), 1);
        assert_eq!(r.route(&req(2, 0, 3), 1024), 2);
        assert_eq!(r.route(&req(3, 0, 4), 1024), 3);
    }

    #[test]
    fn warm_requests_follow_the_image() {
        let mut r = Router::new(
            3,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ms(1),
            },
            1 << 20,
            SimTime::from_us(1),
        );
        assert_eq!(r.route(&req(0, 0, 7), 1024), 0);
        // Image 7 now lives on chip 0; later requests for it stay there
        // even though chips 1 and 2 are idle (spill window is generous).
        assert_eq!(r.route(&req(1, 10, 7), 1024), 0);
        assert_eq!(r.route(&req(2, 20, 7), 1024), 0);
        assert_eq!(r.stats().warm, 2);
        assert_eq!(r.stats().cold, 1);
    }

    #[test]
    fn overloaded_holder_spills_to_least_loaded() {
        let mut r = Router::new(
            2,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ns(500),
            },
            1 << 20,
            SimTime::from_us(1),
        );
        // Pile image 1 onto chip 0 until its backlog exceeds the spill
        // window over idle chip 1.
        assert_eq!(r.route(&req(0, 0, 1), 1024), 0);
        assert_eq!(r.route(&req(1, 0, 1), 1024), 1, "backlogged holder spills");
        assert_eq!(r.stats().spills, 1);
    }

    #[test]
    fn eviction_forgets_holders() {
        let mut r = Router::new(
            1,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ms(1),
            },
            2048,
            SimTime::from_us(1),
        );
        // Budget fits two 1 KB images; the third insert evicts image 1.
        r.route(&req(0, 0, 1), 1024);
        r.route(&req(1, 0, 2), 1024);
        r.route(&req(2, 0, 3), 1024);
        assert!(!r.holders.contains_key(&BitstreamId(1)));
        assert!(r.holders.contains_key(&BitstreamId(2)));
        assert!(r.holders.contains_key(&BitstreamId(3)));
        // A re-request of the evicted image is cold again.
        let cold_before = r.stats().cold;
        r.route(&req(3, 0, 1), 1024);
        assert_eq!(r.stats().cold, cold_before + 1);
    }

    #[test]
    fn random_routing_is_seed_deterministic() {
        let route_all = |seed: u64| -> Vec<usize> {
            let mut r = Router::new(
                8,
                RoutePolicy::Random { seed },
                1 << 20,
                SimTime::from_us(1),
            );
            (0..256)
                .map(|i| r.route(&req(i, i * 10, (i % 5) as u32), 1024))
                .collect()
        };
        assert_eq!(route_all(9), route_all(9));
        assert_ne!(route_all(9), route_all(10));
    }
}

//! Cross-chip request routing, failure-aware.
//!
//! The router is the fleet's locality engine: it keeps a byte-budgeted
//! model of each chip's decompressed-bitstream LRU (the same budget and
//! eviction order as the real `uparc_core::cache::DecompCache` the chip
//! simulation runs) and sends each request to a chip that already holds
//! the image. When every holder is overloaded the request *spills* to
//! the least-loaded chip instead — locality never wins at the price of a
//! hot chip's queue growing without bound.
//!
//! Under a chaos campaign the router additionally consumes per-chip
//! [`HealthTimeline`]s: chips that go [`ChipState::Down`] are removed
//! from every holder list (their cache died with them — a re-election
//! happens naturally when the next request for the image routes to a
//! survivor and inserts it there), quarantined and repairing chips stop
//! receiving work until they heal, and requests that cannot be placed —
//! no live chip, or every candidate's backlog past the shed threshold —
//! are *shed* with a typed [`ShedReason`] instead of silently dropped.
//!
//! Routing is strictly sequential and deterministic: chip load is
//! modeled as a finish horizon in femtoseconds, candidates are compared
//! by `(horizon, chip id)`, so equal-load ties always resolve to the
//! lowest chip id (pinned by `tests/fleet.rs`). Health transitions are
//! applied monotonically as routing time advances, so the same request
//! sequence always sees the same health view.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use uparc_serve::request::BitstreamId;
use uparc_sim::obs::{EventKind, Obs};
use uparc_sim::time::SimTime;

use crate::health::{ChipState, HealthTimeline};
use crate::workload::{splitmix64, FleetRequest, GOLDEN};

/// How the fleet assigns requests to chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Prefer a chip whose modeled LRU holds the image; spill to the
    /// least-loaded chip when the best holder's backlog exceeds the
    /// fleet-wide minimum by more than `spill_window`.
    Locality {
        /// Maximum extra backlog a holder may carry over the least
        /// loaded chip before the request spills.
        spill_window: SimTime,
    },
    /// Seeded uniform-random assignment — the baseline the locality
    /// uplift is measured against. Under chaos the draw linear-probes to
    /// the next routable chip.
    Random {
        /// Assignment seed (independent of the workload seed).
        seed: u64,
    },
}

/// Why the router refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedReason {
    /// Every candidate chip's backlog exceeded the request's priority-
    /// scaled shed threshold.
    QueueFull,
    /// No routable chip exists (all down, quarantined, or repairing).
    NoLiveChip,
    /// The request was orphaned by chip deaths more times than the
    /// failover retry budget allows.
    RetriesExhausted,
    /// The dispatch itself failed terminally even after the recovery
    /// ladder ran.
    DispatchFailed,
}

impl ShedReason {
    /// Stable label for rendering and reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::NoLiveChip => "no_live_chip",
            ShedReason::RetriesExhausted => "retries_exhausted",
            ShedReason::DispatchFailed => "dispatch_failed",
        }
    }
}

/// The router's verdict on one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Assigned to the given chip.
    Assigned(usize),
    /// Refused, with the reason.
    Shed(ShedReason),
}

/// Per-request routing tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouteStats {
    /// Requests routed to a chip already holding the image.
    pub warm: u64,
    /// Requests whose image no chip held (first touch or fully evicted).
    pub cold: u64,
    /// Requests that had a holder but spilled to a less loaded chip.
    pub spills: u64,
    /// Requests the router refused.
    pub shed: u64,
}

/// Modeled per-chip LRU of decompressed images. Mirrors the byte-budget
/// semantics of `DecompCache`: inserting past the budget evicts
/// least-recently-used entries first; an entry larger than the whole
/// budget is not admitted.
#[derive(Debug, Clone)]
struct ModelLru {
    budget: usize,
    used: usize,
    tick: u64,
    /// `(id, bytes, last-touch tick)`; small (a handful of images per
    /// chip), so linear scans beat pointer-chasing.
    entries: Vec<(BitstreamId, usize, u64)>,
}

impl ModelLru {
    fn new(budget: usize) -> Self {
        ModelLru {
            budget,
            used: 0,
            tick: 0,
            entries: Vec::new(),
        }
    }

    fn touch(&mut self, id: BitstreamId) -> bool {
        self.tick += 1;
        for e in &mut self.entries {
            if e.0 == id {
                e.2 = self.tick;
                return true;
            }
        }
        false
    }

    /// Inserts `id`, returning the ids evicted to make room.
    fn insert(&mut self, id: BitstreamId, bytes: usize) -> Vec<BitstreamId> {
        self.tick += 1;
        let mut evicted = Vec::new();
        if bytes > self.budget || self.budget == 0 {
            return evicted;
        }
        while self.used + bytes > self.budget {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.2)
                .map(|(i, _)| i)
                .expect("over budget implies a resident entry");
            let (gone, gone_bytes, _) = self.entries.swap_remove(lru);
            self.used -= gone_bytes;
            evicted.push(gone);
        }
        self.used += bytes;
        self.entries.push((id, bytes, self.tick));
        evicted
    }

    fn forget_all(&mut self) {
        self.entries.clear();
        self.used = 0;
    }
}

/// The sequential, deterministic cross-chip router.
///
/// (No `Debug` impl: the embedded [`Obs`] handle is deliberately opaque.)
pub struct Router {
    policy: RoutePolicy,
    /// Modeled finish horizon per chip, fs.
    horizons: Vec<u64>,
    /// Modeled cache content per chip (locality policy only).
    models: Vec<ModelLru>,
    /// Which chips currently hold each image (ascending chip ids).
    holders: BTreeMap<BitstreamId, Vec<usize>>,
    /// Lazy min-heap over `(horizon, chip)`; stale entries are skipped.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Mean service estimate used to advance horizons, fs.
    est_service_fs: u64,
    stats: RouteStats,
    /// Flattened health transitions `(at_fs, chip, state)`, ascending;
    /// applied monotonically as routing time advances.
    transitions: Vec<(u64, usize, ChipState)>,
    /// Next unapplied transition index.
    applied: usize,
    /// Whether each chip may receive new work right now.
    routable: Vec<bool>,
    /// Whether each chip is permanently down.
    down: Vec<bool>,
    /// Backlog shed threshold, fs (`None` = never shed on backlog).
    shed_backlog_fs: Option<u64>,
    obs: Obs,
}

impl Router {
    /// A router over `chips` chips whose modeled LRUs hold
    /// `cache_budget` bytes each; `est_service` is the load-model cost
    /// of one request.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero.
    #[must_use]
    pub fn new(
        chips: usize,
        policy: RoutePolicy,
        cache_budget: usize,
        est_service: SimTime,
    ) -> Self {
        Self::with_chaos(
            chips,
            policy,
            cache_budget,
            est_service,
            vec![HealthTimeline::healthy(); chips],
            None,
            Obs::null(),
        )
    }

    /// The chaos-aware constructor: per-chip health trajectories, an
    /// optional backlog shed threshold, and an [`Obs`] handle that
    /// receives `ChipDown`/`Quarantine` instants as routing time crosses
    /// the transitions.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero or `health.len() != chips`.
    #[must_use]
    pub fn with_chaos(
        chips: usize,
        policy: RoutePolicy,
        cache_budget: usize,
        est_service: SimTime,
        health: Vec<HealthTimeline>,
        shed_backlog: Option<SimTime>,
        obs: Obs,
    ) -> Self {
        assert!(chips > 0, "router needs at least one chip");
        assert_eq!(health.len(), chips, "one health timeline per chip");
        let mut transitions: Vec<(u64, usize, ChipState)> = Vec::new();
        for (c, h) in health.iter().enumerate() {
            for &(at, state) in h.transitions() {
                if at == 0 && state == ChipState::Healthy {
                    continue; // the implicit starting state
                }
                transitions.push((at, c, state));
            }
        }
        transitions.sort_unstable_by_key(|&(at, c, _)| (at, c));
        let routable: Vec<bool> = health.iter().map(|h| h.state_at(0).routable()).collect();
        let down: Vec<bool> = health
            .iter()
            .map(|h| h.state_at(0) == ChipState::Down)
            .collect();
        let router = Router {
            policy,
            horizons: vec![0; chips],
            models: (0..chips).map(|_| ModelLru::new(cache_budget)).collect(),
            holders: BTreeMap::new(),
            heap: (0..chips)
                .filter(|&c| routable[c])
                .map(|c| Reverse((0, c)))
                .collect(),
            est_service_fs: est_service.as_fs().max(1),
            stats: RouteStats::default(),
            transitions,
            applied: 0,
            routable,
            down,
            shed_backlog_fs: shed_backlog.map(|t| t.as_fs()),
            obs,
        };
        // A chip dead at t=0 was never a holder, but emit its death.
        for c in 0..chips {
            if router.down[c] {
                router
                    .obs
                    .instant(SimTime::ZERO, EventKind::ChipDown { chip: c as u32 });
            }
        }
        router
    }

    /// Routing tallies so far.
    #[must_use]
    pub fn stats(&self) -> RouteStats {
        self.stats
    }

    /// Counts a shed the fleet decided outside the router (e.g. a
    /// failover retry budget running out) so [`RouteStats::shed`] stays
    /// the full tally.
    pub fn stats_shed(&mut self) {
        self.stats.shed += 1;
    }

    /// Whether chip `c` may receive new work at the current routing time.
    #[must_use]
    pub fn routable(&self, c: usize) -> bool {
        self.routable[c]
    }

    /// Applies every health transition at or before `now_fs`. Monotone:
    /// a caller moving backwards in time sees the latest view (the
    /// conservative direction — a chip the router already knows is dead
    /// never receives work dated before its death).
    pub fn advance(&mut self, now_fs: u64) {
        while let Some(&(at, c, state)) = self.transitions.get(self.applied) {
            if at > now_fs {
                break;
            }
            self.applied += 1;
            match state {
                ChipState::Down => {
                    self.down[c] = true;
                    self.routable[c] = false;
                    // The chip's staged images died with it: strike it
                    // from every holder list and drop its cache model so
                    // the next request for each image elects a new holder
                    // among the survivors.
                    self.holders.retain(|_, held| {
                        held.retain(|&h| h != c);
                        !held.is_empty()
                    });
                    self.models[c].forget_all();
                    self.obs
                        .instant(SimTime::from_fs(at), EventKind::ChipDown { chip: c as u32 });
                }
                ChipState::Quarantined => {
                    self.routable[c] = false;
                    self.obs.instant(
                        SimTime::from_fs(at),
                        EventKind::Quarantine { chip: c as u32 },
                    );
                }
                ChipState::Repairing => {
                    self.routable[c] = false;
                }
                ChipState::Healthy | ChipState::Suspect => {
                    if !self.down[c] && !self.routable[c] {
                        self.routable[c] = true;
                        // Re-enter the lazy heap at the current horizon.
                        self.heap.push(Reverse((self.horizons[c], c)));
                    } else {
                        self.routable[c] = true;
                    }
                }
            }
        }
    }

    /// The least-loaded routable chip by `(horizon, chip id)`; the heap
    /// is lazy, so stale or non-routable keys are popped until the top
    /// matches reality. `None` when no chip is routable.
    fn least_loaded(&mut self) -> Option<(u64, usize)> {
        loop {
            let &Reverse((h, c)) = self.heap.peek()?;
            if self.routable[c] && self.horizons[c] == h {
                return Some((h, c));
            }
            self.heap.pop();
        }
    }

    /// Picks the target chip for `req` (an image of `image_bytes`
    /// decompressed bytes) and advances the load model. The quiet-path
    /// entry point: every chip is permanently healthy, so placement
    /// cannot fail.
    ///
    /// # Panics
    ///
    /// Panics if the router sheds — impossible without chaos timelines
    /// or a shed threshold.
    pub fn route(&mut self, req: &FleetRequest, image_bytes: usize) -> usize {
        match self.try_route(req, req.arrival, image_bytes) {
            RouteOutcome::Assigned(c) => c,
            RouteOutcome::Shed(r) => unreachable!("quiet routing shed a request: {r:?}"),
        }
    }

    /// Picks a target for `req`, which becomes dispatchable at `ready`
    /// (its original arrival for first placement; death time plus backoff
    /// for a failover). Health transitions up to `ready` are applied
    /// first. Returns [`RouteOutcome::Shed`] when no routable chip
    /// exists or every candidate is past the priority-scaled backlog
    /// threshold.
    pub fn try_route(
        &mut self,
        req: &FleetRequest,
        ready: SimTime,
        image_bytes: usize,
    ) -> RouteOutcome {
        let ready_fs = ready.as_fs().max(req.arrival.as_fs());
        self.advance(ready_fs);
        // (target, warm/cold/spill bucket); stats only count on assignment.
        let picked = match self.policy {
            RoutePolicy::Random { seed } => {
                let n = self.horizons.len() as u64;
                let draw =
                    (splitmix64(seed.wrapping_add(req.index.wrapping_mul(GOLDEN))) % n) as usize;
                // Linear probe past dead/quarantined chips: the draw
                // stays a pure function of the request index, survivors
                // absorb their dead neighbours' share.
                (0..self.horizons.len())
                    .map(|k| (draw + k) % self.horizons.len())
                    .find(|&c| self.routable[c])
                    .map(|c| (c, None))
            }
            RoutePolicy::Locality { spill_window } => match self.least_loaded() {
                None => None,
                Some((min_h, least)) => {
                    let holder = self.holders.get(&req.bitstream).and_then(|chips| {
                        chips
                            .iter()
                            .copied()
                            .filter(|&c| self.routable[c])
                            .min_by_key(|&c| (self.horizons[c], c))
                    });
                    Some(match holder {
                        Some(h)
                            if self.horizons[h] <= min_h.saturating_add(spill_window.as_fs()) =>
                        {
                            (h, Some(true))
                        }
                        Some(_) => (least, Some(false)),
                        None => (least, None),
                    })
                }
            },
        };
        let Some((target, bucket)) = picked else {
            self.stats.shed += 1;
            return RouteOutcome::Shed(ShedReason::NoLiveChip);
        };
        if let Some(shed_fs) = self.shed_backlog_fs {
            // Graceful degradation: priority 0 (highest) tolerates 4× the
            // shed threshold, priority 3 (lowest) only 1× — under
            // overload the lowest classes are rejected first and the
            // highest survive longest.
            let allowance = shed_fs.saturating_mul(u64::from(4 - req.priority.min(3)));
            if self.horizons[target].saturating_sub(ready_fs) > allowance {
                self.stats.shed += 1;
                return RouteOutcome::Shed(ShedReason::QueueFull);
            }
        }
        match bucket {
            Some(true) => self.stats.warm += 1,
            Some(false) => self.stats.spills += 1,
            None => {
                if matches!(self.policy, RoutePolicy::Locality { .. }) {
                    self.stats.cold += 1;
                }
            }
        }
        // Advance the modeled horizon and cache content.
        let start = self.horizons[target].max(ready_fs);
        self.horizons[target] = start + self.est_service_fs;
        self.heap.push(Reverse((self.horizons[target], target)));
        if matches!(self.policy, RoutePolicy::Locality { .. })
            && !self.models[target].touch(req.bitstream)
        {
            for gone in self.models[target].insert(req.bitstream, image_bytes) {
                let held = self.holders.get_mut(&gone).expect("evictee was held");
                held.retain(|&c| c != target);
                if held.is_empty() {
                    self.holders.remove(&gone);
                }
            }
            if self.models[target].touch(req.bitstream) {
                let held = self.holders.entry(req.bitstream).or_default();
                match held.binary_search(&target) {
                    Ok(_) => {}
                    Err(pos) => held.insert(pos, target),
                }
            }
        }
        RouteOutcome::Assigned(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChipChaos;
    use crate::health::HealthConfig;

    fn req(index: u64, arrival_ns: u64, bs: u32) -> FleetRequest {
        FleetRequest {
            index,
            arrival: SimTime::from_ns(arrival_ns),
            bitstream: BitstreamId(bs),
            priority: 0,
        }
    }

    #[test]
    fn equal_load_ties_break_to_lowest_chip_id() {
        let mut r = Router::new(
            4,
            RoutePolicy::Locality {
                spill_window: SimTime::from_us(10),
            },
            1 << 20,
            SimTime::from_us(1),
        );
        // All chips idle at horizon 0: the first cold request must land
        // on chip 0, the next (different image, chip 0 now loaded) on 1.
        assert_eq!(r.route(&req(0, 0, 1), 1024), 0);
        assert_eq!(r.route(&req(1, 0, 2), 1024), 1);
        assert_eq!(r.route(&req(2, 0, 3), 1024), 2);
        assert_eq!(r.route(&req(3, 0, 4), 1024), 3);
    }

    #[test]
    fn warm_requests_follow_the_image() {
        let mut r = Router::new(
            3,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ms(1),
            },
            1 << 20,
            SimTime::from_us(1),
        );
        assert_eq!(r.route(&req(0, 0, 7), 1024), 0);
        // Image 7 now lives on chip 0; later requests for it stay there
        // even though chips 1 and 2 are idle (spill window is generous).
        assert_eq!(r.route(&req(1, 10, 7), 1024), 0);
        assert_eq!(r.route(&req(2, 20, 7), 1024), 0);
        assert_eq!(r.stats().warm, 2);
        assert_eq!(r.stats().cold, 1);
    }

    #[test]
    fn overloaded_holder_spills_to_least_loaded() {
        let mut r = Router::new(
            2,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ns(500),
            },
            1 << 20,
            SimTime::from_us(1),
        );
        // Pile image 1 onto chip 0 until its backlog exceeds the spill
        // window over idle chip 1.
        assert_eq!(r.route(&req(0, 0, 1), 1024), 0);
        assert_eq!(r.route(&req(1, 0, 1), 1024), 1, "backlogged holder spills");
        assert_eq!(r.stats().spills, 1);
    }

    #[test]
    fn eviction_forgets_holders() {
        let mut r = Router::new(
            1,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ms(1),
            },
            2048,
            SimTime::from_us(1),
        );
        // Budget fits two 1 KB images; the third insert evicts image 1.
        r.route(&req(0, 0, 1), 1024);
        r.route(&req(1, 0, 2), 1024);
        r.route(&req(2, 0, 3), 1024);
        assert!(!r.holders.contains_key(&BitstreamId(1)));
        assert!(r.holders.contains_key(&BitstreamId(2)));
        assert!(r.holders.contains_key(&BitstreamId(3)));
        // A re-request of the evicted image is cold again.
        let cold_before = r.stats().cold;
        r.route(&req(3, 0, 1), 1024);
        assert_eq!(r.stats().cold, cold_before + 1);
    }

    #[test]
    fn random_routing_is_seed_deterministic() {
        let route_all = |seed: u64| -> Vec<usize> {
            let mut r = Router::new(
                8,
                RoutePolicy::Random { seed },
                1 << 20,
                SimTime::from_us(1),
            );
            (0..256)
                .map(|i| r.route(&req(i, i * 10, (i % 5) as u32), 1024))
                .collect()
        };
        assert_eq!(route_all(9), route_all(9));
        assert_ne!(route_all(9), route_all(10));
    }

    #[test]
    fn dead_chip_loses_its_holders_and_work_reroutes() {
        let cfg = HealthConfig::default();
        let chaos = ChipChaos {
            loss_at: Some(SimTime::from_us(50)),
            ..ChipChaos::default()
        };
        let health = vec![
            HealthTimeline::build(&chaos, &cfg),
            HealthTimeline::healthy(),
        ];
        let mut r = Router::with_chaos(
            2,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ms(10),
            },
            1 << 20,
            SimTime::from_us(1),
            health,
            None,
            Obs::null(),
        );
        // Image 9 homes on chip 0...
        assert_eq!(r.route(&req(0, 0, 9), 1024), 0);
        assert_eq!(r.route(&req(1, 10_000, 9), 1024), 0);
        // ...chip 0 dies at 50 µs; the next request re-elects chip 1 as
        // the holder (cold — the cache died with the chip) and sticks.
        assert_eq!(r.route(&req(2, 60_000, 9), 1024), 1);
        assert!(!r.routable(0));
        assert_eq!(r.route(&req(3, 70_000, 9), 1024), 1);
        assert_eq!(r.stats().warm, 2);
    }

    #[test]
    fn quarantine_diverts_then_repair_restores_locality() {
        let cfg = HealthConfig {
            suspect_decay: SimTime::from_us(200),
            quarantine_hold: SimTime::from_us(100),
            repair_time: SimTime::from_us(100),
        };
        // Two wedges in quick succession: Suspect at 100 µs, Quarantined
        // at 200 µs, Repairing at 350, Healthy again at 450.
        let chaos = ChipChaos {
            wedges: vec![
                (SimTime::from_us(100), SimTime::from_us(150)),
                (SimTime::from_us(200), SimTime::from_us(250)),
            ],
            ..ChipChaos::default()
        };
        let health = vec![
            HealthTimeline::build(&chaos, &cfg),
            HealthTimeline::healthy(),
        ];
        let mut r = Router::with_chaos(
            2,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ms(10),
            },
            1 << 20,
            SimTime::from_us(1),
            health,
            None,
            Obs::null(),
        );
        // Image 4 homes on chip 0 pre-wedge.
        assert_eq!(r.route(&req(0, 0, 4), 1024), 0);
        // During quarantine the holder is unroutable: work diverts.
        assert_eq!(r.route(&req(1, 210_000, 4), 1024), 1);
        assert!(!r.routable(0));
        // After repair, chip 0 still holds image 4 (quarantine does not
        // wipe the cache) and is preferred again — warm.
        let warm_before = r.stats().warm;
        assert_eq!(r.route(&req(2, 500_000, 4), 1024), 0);
        assert!(r.routable(0));
        assert_eq!(r.stats().warm, warm_before + 1);
    }

    #[test]
    fn all_chips_dead_sheds_with_no_live_chip() {
        let chaos = ChipChaos {
            loss_at: Some(SimTime::ZERO),
            ..ChipChaos::default()
        };
        let cfg = HealthConfig::default();
        let health = vec![HealthTimeline::build(&chaos, &cfg); 2];
        for policy in [
            RoutePolicy::Locality {
                spill_window: SimTime::from_ms(1),
            },
            RoutePolicy::Random { seed: 3 },
        ] {
            let mut r = Router::with_chaos(
                2,
                policy,
                1 << 20,
                SimTime::from_us(1),
                health.clone(),
                None,
                Obs::null(),
            );
            assert_eq!(
                r.try_route(&req(0, 0, 1), SimTime::ZERO, 1024),
                RouteOutcome::Shed(ShedReason::NoLiveChip)
            );
            assert_eq!(r.stats().shed, 1);
        }
    }

    #[test]
    fn backlog_sheds_low_priority_first() {
        let mut r = Router::with_chaos(
            1,
            RoutePolicy::Locality {
                spill_window: SimTime::from_ms(10),
            },
            1 << 20,
            SimTime::from_us(1),
            vec![HealthTimeline::healthy()],
            Some(SimTime::from_us(2)),
            Obs::null(),
        );
        // Build ~5 µs of backlog on the only chip.
        for i in 0..5 {
            assert!(matches!(
                r.try_route(&req(i, 0, 1), SimTime::ZERO, 1024),
                RouteOutcome::Assigned(0)
            ));
        }
        // Priority 3 tolerates 1×2 µs = 2 µs < 5 µs backlog: shed.
        let mut low = req(5, 0, 1);
        low.priority = 3;
        assert_eq!(
            r.try_route(&low, SimTime::ZERO, 1024),
            RouteOutcome::Shed(ShedReason::QueueFull)
        );
        // Priority 0 tolerates 4×2 µs = 8 µs: still admitted.
        let high = req(6, 0, 1);
        assert!(matches!(
            r.try_route(&high, SimTime::ZERO, 1024),
            RouteOutcome::Assigned(0)
        ));
    }
}

//! Hierarchical rack-level power budgeting.
//!
//! The single-chip scheduler already plans under a per-chip cap via
//! `PowerAwarePolicy::plan_constrained`-style residual budgets. At rack
//! scale the cap is a *rack* number: this module decomposes it into
//! per-chip caps, once per deterministic rebalance epoch, proportionally
//! to the demand the router assigned to each chip in that epoch.
//!
//! Every chip always keeps `idle + floor` of budget — enough to run the
//! slowest admissible operating point — so no chip can starve; only the
//! *spare* headroom above that floor is redistributed by demand. By
//! construction the per-chip caps sum to exactly the rack cap in every
//! epoch, which is what makes the fleet's independent verification sweep
//! (`fleet::verify_rack`) come out at zero violations.

use uparc_sim::time::SimTime;

use crate::FleetError;

/// A rack-level power emergency: between `from` and `to` the rack cap is
/// cut to `cap_mw` (facility brownout, cooling failure, grid curtailment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmergencyWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub to: SimTime,
    /// The emergency rack cap inside the window, mW.
    pub cap_mw: f64,
}

impl EmergencyWindow {
    /// Whether `at_fs` falls inside the window.
    #[must_use]
    pub fn contains(&self, at_fs: u64) -> bool {
        self.from.as_fs() <= at_fs && at_fs < self.to.as_fs()
    }
}

/// The rack cap as a function of time: a base cap cut down by any
/// overlapping [`EmergencyWindow`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct CapTimeline {
    base_mw: f64,
    emergencies: Vec<EmergencyWindow>,
}

impl CapTimeline {
    /// A constant cap with no emergencies.
    #[must_use]
    pub fn constant(base_mw: f64) -> Self {
        CapTimeline {
            base_mw,
            emergencies: Vec::new(),
        }
    }

    /// A base cap cut by `emergencies` wherever they apply.
    #[must_use]
    pub fn with_emergencies(base_mw: f64, emergencies: &[EmergencyWindow]) -> Self {
        CapTimeline {
            base_mw,
            emergencies: emergencies.to_vec(),
        }
    }

    /// The effective rack cap at `at_fs` — the base cap, or the lowest
    /// emergency cap among windows containing the instant.
    #[must_use]
    pub fn cap_at(&self, at_fs: u64) -> f64 {
        self.emergencies
            .iter()
            .filter(|w| w.contains(at_fs))
            .map(|w| w.cap_mw)
            .fold(self.base_mw, f64::min)
    }

    /// The tightest cap anywhere in `[from_fs, to_fs)`.
    #[must_use]
    pub fn min_over(&self, from_fs: u64, to_fs: u64) -> f64 {
        self.emergencies
            .iter()
            .filter(|w| w.from.as_fs() < to_fs.max(from_fs + 1) && from_fs < w.to.as_fs())
            .map(|w| w.cap_mw)
            .fold(self.base_mw, f64::min)
    }

    /// End of the last emergency, in femtoseconds (0 if none).
    #[must_use]
    pub fn last_emergency_end_fs(&self) -> u64 {
        self.emergencies
            .iter()
            .map(|w| w.to.as_fs())
            .max()
            .unwrap_or(0)
    }
}

/// A rack-level power budget with a deterministic rebalance epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackBudget {
    /// Total rack cap (idle of every chip included), mW.
    pub cap_mw: f64,
    /// Rebalance period: per-chip caps are recomputed at each multiple.
    pub epoch: SimTime,
}

impl RackBudget {
    /// Decomposes the rack cap into per-chip caps for each epoch.
    ///
    /// `demand[e][c]` is the number of requests the router assigned to
    /// chip `c` arriving in epoch `e`. Each chip's cap in an epoch is
    ///
    /// ```text
    /// cap[c][e] = idle + floor + spare · (1 + demand[e][c]) / Σ_c (1 + demand[e][c])
    /// ```
    ///
    /// with `spare = cap_mw − chips·(idle + floor)`. The `1 +` keeps
    /// idle chips fundable (a request routed near an epoch boundary may
    /// still be draining), and `Σ_c cap[c][e] = cap_mw` exactly.
    ///
    /// # Errors
    ///
    /// [`FleetError::InfeasibleRackCap`] if the rack cap cannot fund
    /// `chips · (idle + floor)`.
    pub fn schedule(
        &self,
        demand: &[Vec<u64>],
        chips: usize,
        idle_mw: f64,
        floor_mw: f64,
    ) -> Result<CapSchedule, FleetError> {
        self.schedule_chaos(
            demand,
            chips,
            idle_mw,
            floor_mw,
            &CapTimeline::constant(self.cap_mw),
            &vec![None; chips],
        )
    }

    /// The chaos-aware decomposition: like [`RackBudget::schedule`], but
    /// the rack cap follows `timeline` (so emergency windows tighten the
    /// per-epoch pool) and chips dead by an epoch's start (`loss_at`)
    /// drop to a zero cap, with their idle+floor reclaimed and the whole
    /// epoch cap re-decomposed over the surviving set. Per-epoch caps
    /// over the *live* set still sum exactly to that epoch's effective
    /// rack cap.
    ///
    /// The schedule always extends past the last emergency window, so
    /// a tail emergency tightens real epochs rather than falling off the
    /// clamped end of the table.
    ///
    /// # Errors
    ///
    /// [`FleetError::InfeasibleRackCap`] if any epoch's effective cap
    /// cannot fund `live_chips · (idle + floor)`.
    pub fn schedule_chaos(
        &self,
        demand: &[Vec<u64>],
        chips: usize,
        idle_mw: f64,
        floor_mw: f64,
        timeline: &CapTimeline,
        loss_at: &[Option<SimTime>],
    ) -> Result<CapSchedule, FleetError> {
        let epoch_fs = self.epoch.as_fs().max(1);
        let emergency_epochs = (timeline.last_emergency_end_fs() / epoch_fs + 1) as usize;
        let epochs = demand.len().max(emergency_epochs).max(1);
        let mut caps = vec![vec![0.0f64; epochs]; chips];
        for e in 0..epochs {
            let e_from = e as u64 * epoch_fs;
            let cap_e = timeline.min_over(e_from, e_from + epoch_fs);
            let live: Vec<bool> = (0..chips)
                .map(|c| loss_at[c].is_none_or(|t| t.as_fs() > e_from))
                .collect();
            let n_live = live.iter().filter(|&&l| l).count();
            if n_live == 0 {
                continue; // whole rack dark: every cap stays 0
            }
            let required_mw = n_live as f64 * (idle_mw + floor_mw);
            let spare = cap_e - required_mw;
            if spare < 0.0 {
                return Err(FleetError::InfeasibleRackCap {
                    required_mw,
                    cap_mw: cap_e,
                });
            }
            let weights: Vec<f64> = (0..chips)
                .map(|c| {
                    if live[c] {
                        1.0 + demand.get(e).map_or(0.0, |d| d[c] as f64)
                    } else {
                        0.0
                    }
                })
                .collect();
            let total: f64 = weights.iter().sum();
            for ((row, &w), &l) in caps.iter_mut().zip(&weights).zip(&live) {
                if l {
                    row[e] = idle_mw + floor_mw + spare * w / total;
                }
            }
        }
        Ok(CapSchedule { epoch_fs, caps })
    }
}

/// The per-chip, per-epoch cap table a [`RackBudget`] decomposes into.
#[derive(Debug, Clone, PartialEq)]
pub struct CapSchedule {
    epoch_fs: u64,
    /// `caps[chip][epoch]`, mW (idle included).
    caps: Vec<Vec<f64>>,
}

impl CapSchedule {
    /// Number of scheduled epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.caps.first().map_or(0, Vec::len)
    }

    /// The epoch index containing `at_fs` (clamped to the last epoch:
    /// traffic draining past the scheduled horizon keeps its final
    /// allocation).
    #[must_use]
    fn epoch_of(&self, at_fs: u64) -> usize {
        ((at_fs / self.epoch_fs) as usize).min(self.epochs().saturating_sub(1))
    }

    /// Chip `c`'s cap at instant `at_fs`, mW.
    #[must_use]
    pub fn cap(&self, c: usize, at_fs: u64) -> f64 {
        self.caps[c][self.epoch_of(at_fs)]
    }

    /// The *minimum* cap chip `c` sees anywhere in `[from_fs, to_fs]`.
    ///
    /// Dispatch planning uses this over a conservative transfer window,
    /// so a transfer spanning a rebalance boundary is planned under the
    /// tightest cap it can encounter and never violates a lowered
    /// next-epoch allocation mid-flight.
    #[must_use]
    pub fn min_cap_over(&self, c: usize, from_fs: u64, to_fs: u64) -> f64 {
        let (first, last) = (self.epoch_of(from_fs), self.epoch_of(to_fs.max(from_fs)));
        self.caps[c][first..=last]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_sum_to_the_rack_cap_every_epoch() {
        let budget = RackBudget {
            cap_mw: 4000.0,
            epoch: SimTime::from_ms(1),
        };
        let demand = vec![vec![10, 0, 0, 2], vec![0, 0, 5, 5], vec![1, 1, 1, 1]];
        let s = budget.schedule(&demand, 4, 53.0, 300.0).unwrap();
        assert_eq!(s.epochs(), 3);
        for e in 0..3 {
            let total: f64 = (0..4).map(|c| s.cap(c, e as u64 * 1_000_000_000_000)).sum();
            assert!(
                (total - 4000.0).abs() < 1e-9,
                "epoch {e} caps sum to {total}"
            );
        }
        // Demand tilts the split: chip 0 dominates epoch 0.
        assert!(s.cap(0, 0) > s.cap(1, 0));
        // Every chip keeps at least idle + floor.
        for c in 0..4 {
            for e in 0..3u64 {
                assert!(s.cap(c, e * 1_000_000_000_000) >= 53.0 + 300.0 - 1e-12);
            }
        }
    }

    #[test]
    fn infeasible_cap_is_rejected() {
        let budget = RackBudget {
            cap_mw: 100.0,
            epoch: SimTime::from_ms(1),
        };
        let err = budget.schedule(&[vec![0, 0]], 2, 53.0, 300.0).unwrap_err();
        assert!(matches!(err, FleetError::InfeasibleRackCap { .. }));
    }

    #[test]
    fn min_cap_over_spans_epoch_boundaries() {
        let budget = RackBudget {
            cap_mw: 1000.0,
            epoch: SimTime::from_us(100),
        };
        // Chip 0 busy in epoch 0, idle in epoch 1 → its cap drops.
        let demand = vec![vec![50, 0], vec![0, 50]];
        let s = budget.schedule(&demand, 2, 53.0, 100.0).unwrap();
        let e0 = s.cap(0, 0);
        let e1 = s.cap(0, 100_000_000_000);
        assert!(e0 > e1);
        // A window spanning the boundary sees the tighter epoch-1 cap.
        let w = s.min_cap_over(0, 99_000_000_000, 101_000_000_000);
        assert!((w - e1).abs() < 1e-12);
        // Past the horizon the last epoch's caps persist.
        assert!((s.cap(0, u64::MAX / 2) - e1).abs() < 1e-12);
    }

    #[test]
    fn emergency_epochs_redistribute_over_the_live_set() {
        let budget = RackBudget {
            cap_mw: 4000.0,
            epoch: SimTime::from_us(100),
        };
        // Chip 1 dies at 150 µs (start of epoch 1 is 100 µs, so it is
        // still live there; dead from epoch 2 on). Emergency cuts the
        // rack to 2500 mW across epochs 2–3.
        let timeline = CapTimeline::with_emergencies(
            4000.0,
            &[EmergencyWindow {
                from: SimTime::from_us(200),
                to: SimTime::from_us(400),
                cap_mw: 2500.0,
            }],
        );
        let loss = vec![None, Some(SimTime::from_us(150)), None, None];
        let demand = vec![vec![5, 5, 5, 5]; 5];
        let s = budget
            .schedule_chaos(&demand, 4, 53.0, 300.0, &timeline, &loss)
            .unwrap();
        let at = |e: u64| e * 100_000_000_000;
        // Epoch 1: chip 1 still live (dies mid-epoch), full cap pool.
        let total1: f64 = (0..4).map(|c| s.cap(c, at(1))).sum();
        assert!((total1 - 4000.0).abs() < 1e-9);
        // Epoch 2: emergency cap, chip 1 dark, live caps sum to 2500.
        assert_eq!(s.cap(1, at(2)), 0.0);
        let total2: f64 = (0..4).map(|c| s.cap(c, at(2))).sum();
        assert!((total2 - 2500.0).abs() < 1e-9, "live set sums to {total2}");
        for c in [0usize, 2, 3] {
            assert!(s.cap(c, at(2)) >= 53.0 + 300.0 - 1e-12);
        }
        // Epoch 4: emergency over, chip 1 still dead, back to 4000.
        let total4: f64 = (0..4).map(|c| s.cap(c, at(4))).sum();
        assert!((total4 - 4000.0).abs() < 1e-9);
        assert_eq!(s.cap(1, at(4)), 0.0);
    }

    #[test]
    fn emergency_past_demand_horizon_extends_the_schedule() {
        let budget = RackBudget {
            cap_mw: 2000.0,
            epoch: SimTime::from_us(100),
        };
        let timeline = CapTimeline::with_emergencies(
            2000.0,
            &[EmergencyWindow {
                from: SimTime::from_us(800),
                to: SimTime::from_us(900),
                cap_mw: 1200.0,
            }],
        );
        let s = budget
            .schedule_chaos(&[vec![1, 1]], 2, 53.0, 300.0, &timeline, &[None, None])
            .unwrap();
        // One demand epoch, but the table reaches past the emergency.
        assert!(s.epochs() >= 10);
        let total8: f64 = (0..2).map(|c| s.cap(c, 800_000_000_000)).sum();
        assert!((total8 - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_emergency_cap_is_rejected() {
        let budget = RackBudget {
            cap_mw: 2000.0,
            epoch: SimTime::from_us(100),
        };
        let timeline = CapTimeline::with_emergencies(
            2000.0,
            &[EmergencyWindow {
                from: SimTime::ZERO,
                to: SimTime::from_us(100),
                cap_mw: 100.0,
            }],
        );
        let err = budget
            .schedule_chaos(&[vec![0, 0]], 2, 53.0, 300.0, &timeline, &[None, None])
            .unwrap_err();
        assert!(matches!(
            err,
            FleetError::InfeasibleRackCap { cap_mw, .. } if cap_mw == 100.0
        ));
    }

    #[test]
    fn cap_timeline_takes_the_tightest_overlap() {
        let t = CapTimeline::with_emergencies(
            5000.0,
            &[
                EmergencyWindow {
                    from: SimTime::from_us(100),
                    to: SimTime::from_us(300),
                    cap_mw: 3000.0,
                },
                EmergencyWindow {
                    from: SimTime::from_us(200),
                    to: SimTime::from_us(400),
                    cap_mw: 2000.0,
                },
            ],
        );
        assert_eq!(t.cap_at(0), 5000.0);
        assert_eq!(t.cap_at(150_000_000_000), 3000.0);
        assert_eq!(t.cap_at(250_000_000_000), 2000.0);
        assert_eq!(t.cap_at(400_000_000_000), 5000.0);
        assert_eq!(t.min_over(0, 150_000_000_000), 3000.0);
        assert_eq!(t.min_over(0, 50_000_000_000), 5000.0);
        assert_eq!(t.min_over(350_000_000_000, 500_000_000_000), 2000.0);
        assert_eq!(t.last_emergency_end_fs(), 400_000_000_000);
    }

    #[test]
    fn empty_demand_still_schedules_one_epoch() {
        let budget = RackBudget {
            cap_mw: 1000.0,
            epoch: SimTime::from_ms(1),
        };
        let s = budget.schedule(&[], 2, 53.0, 100.0).unwrap();
        assert_eq!(s.epochs(), 1);
        assert!((s.cap(0, 0) - 500.0).abs() < 1e-9);
    }
}

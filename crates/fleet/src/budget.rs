//! Hierarchical rack-level power budgeting.
//!
//! The single-chip scheduler already plans under a per-chip cap via
//! `PowerAwarePolicy::plan_constrained`-style residual budgets. At rack
//! scale the cap is a *rack* number: this module decomposes it into
//! per-chip caps, once per deterministic rebalance epoch, proportionally
//! to the demand the router assigned to each chip in that epoch.
//!
//! Every chip always keeps `idle + floor` of budget — enough to run the
//! slowest admissible operating point — so no chip can starve; only the
//! *spare* headroom above that floor is redistributed by demand. By
//! construction the per-chip caps sum to exactly the rack cap in every
//! epoch, which is what makes the fleet's independent verification sweep
//! (`fleet::verify_rack`) come out at zero violations.

use uparc_sim::time::SimTime;

use crate::FleetError;

/// A rack-level power budget with a deterministic rebalance epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RackBudget {
    /// Total rack cap (idle of every chip included), mW.
    pub cap_mw: f64,
    /// Rebalance period: per-chip caps are recomputed at each multiple.
    pub epoch: SimTime,
}

impl RackBudget {
    /// Decomposes the rack cap into per-chip caps for each epoch.
    ///
    /// `demand[e][c]` is the number of requests the router assigned to
    /// chip `c` arriving in epoch `e`. Each chip's cap in an epoch is
    ///
    /// ```text
    /// cap[c][e] = idle + floor + spare · (1 + demand[e][c]) / Σ_c (1 + demand[e][c])
    /// ```
    ///
    /// with `spare = cap_mw − chips·(idle + floor)`. The `1 +` keeps
    /// idle chips fundable (a request routed near an epoch boundary may
    /// still be draining), and `Σ_c cap[c][e] = cap_mw` exactly.
    ///
    /// # Errors
    ///
    /// [`FleetError::InfeasibleRackCap`] if the rack cap cannot fund
    /// `chips · (idle + floor)`.
    pub fn schedule(
        &self,
        demand: &[Vec<u64>],
        chips: usize,
        idle_mw: f64,
        floor_mw: f64,
    ) -> Result<CapSchedule, FleetError> {
        let required_mw = chips as f64 * (idle_mw + floor_mw);
        let spare = self.cap_mw - required_mw;
        if spare < 0.0 {
            return Err(FleetError::InfeasibleRackCap {
                required_mw,
                cap_mw: self.cap_mw,
            });
        }
        let epochs = demand.len().max(1);
        let mut caps = vec![vec![0.0f64; epochs]; chips];
        for e in 0..epochs {
            let weights: Vec<f64> = (0..chips)
                .map(|c| 1.0 + demand.get(e).map_or(0.0, |d| d[c] as f64))
                .collect();
            let total: f64 = weights.iter().sum();
            for (row, w) in caps.iter_mut().zip(&weights) {
                row[e] = idle_mw + floor_mw + spare * w / total;
            }
        }
        Ok(CapSchedule {
            epoch_fs: self.epoch.as_fs().max(1),
            caps,
        })
    }
}

/// The per-chip, per-epoch cap table a [`RackBudget`] decomposes into.
#[derive(Debug, Clone, PartialEq)]
pub struct CapSchedule {
    epoch_fs: u64,
    /// `caps[chip][epoch]`, mW (idle included).
    caps: Vec<Vec<f64>>,
}

impl CapSchedule {
    /// Number of scheduled epochs.
    #[must_use]
    pub fn epochs(&self) -> usize {
        self.caps.first().map_or(0, Vec::len)
    }

    /// The epoch index containing `at_fs` (clamped to the last epoch:
    /// traffic draining past the scheduled horizon keeps its final
    /// allocation).
    #[must_use]
    fn epoch_of(&self, at_fs: u64) -> usize {
        ((at_fs / self.epoch_fs) as usize).min(self.epochs().saturating_sub(1))
    }

    /// Chip `c`'s cap at instant `at_fs`, mW.
    #[must_use]
    pub fn cap(&self, c: usize, at_fs: u64) -> f64 {
        self.caps[c][self.epoch_of(at_fs)]
    }

    /// The *minimum* cap chip `c` sees anywhere in `[from_fs, to_fs]`.
    ///
    /// Dispatch planning uses this over a conservative transfer window,
    /// so a transfer spanning a rebalance boundary is planned under the
    /// tightest cap it can encounter and never violates a lowered
    /// next-epoch allocation mid-flight.
    #[must_use]
    pub fn min_cap_over(&self, c: usize, from_fs: u64, to_fs: u64) -> f64 {
        let (first, last) = (self.epoch_of(from_fs), self.epoch_of(to_fs.max(from_fs)));
        self.caps[c][first..=last]
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_sum_to_the_rack_cap_every_epoch() {
        let budget = RackBudget {
            cap_mw: 4000.0,
            epoch: SimTime::from_ms(1),
        };
        let demand = vec![vec![10, 0, 0, 2], vec![0, 0, 5, 5], vec![1, 1, 1, 1]];
        let s = budget.schedule(&demand, 4, 53.0, 300.0).unwrap();
        assert_eq!(s.epochs(), 3);
        for e in 0..3 {
            let total: f64 = (0..4).map(|c| s.cap(c, e as u64 * 1_000_000_000_000)).sum();
            assert!(
                (total - 4000.0).abs() < 1e-9,
                "epoch {e} caps sum to {total}"
            );
        }
        // Demand tilts the split: chip 0 dominates epoch 0.
        assert!(s.cap(0, 0) > s.cap(1, 0));
        // Every chip keeps at least idle + floor.
        for c in 0..4 {
            for e in 0..3u64 {
                assert!(s.cap(c, e * 1_000_000_000_000) >= 53.0 + 300.0 - 1e-12);
            }
        }
    }

    #[test]
    fn infeasible_cap_is_rejected() {
        let budget = RackBudget {
            cap_mw: 100.0,
            epoch: SimTime::from_ms(1),
        };
        let err = budget.schedule(&[vec![0, 0]], 2, 53.0, 300.0).unwrap_err();
        assert!(matches!(err, FleetError::InfeasibleRackCap { .. }));
    }

    #[test]
    fn min_cap_over_spans_epoch_boundaries() {
        let budget = RackBudget {
            cap_mw: 1000.0,
            epoch: SimTime::from_us(100),
        };
        // Chip 0 busy in epoch 0, idle in epoch 1 → its cap drops.
        let demand = vec![vec![50, 0], vec![0, 50]];
        let s = budget.schedule(&demand, 2, 53.0, 100.0).unwrap();
        let e0 = s.cap(0, 0);
        let e1 = s.cap(0, 100_000_000_000);
        assert!(e0 > e1);
        // A window spanning the boundary sees the tighter epoch-1 cap.
        let w = s.min_cap_over(0, 99_000_000_000, 101_000_000_000);
        assert!((w - e1).abs() < 1e-12);
        // Past the horizon the last epoch's caps persist.
        assert!((s.cap(0, u64::MAX / 2) - e1).abs() < 1e-12);
    }

    #[test]
    fn empty_demand_still_schedules_one_epoch() {
        let budget = RackBudget {
            cap_mw: 1000.0,
            epoch: SimTime::from_ms(1),
        };
        let s = budget.schedule(&[], 2, 53.0, 100.0).unwrap();
        assert_eq!(s.epochs(), 1);
        assert!((s.cap(0, 0) - 500.0).abs() < 1e-9);
    }
}

//! Counter-based fleet workload generation.
//!
//! The single-chip generator in `uparc_serve::workload` draws arrivals
//! from a *sequential* RNG (each gap depends on the running stream
//! state), which makes the stream impossible to regenerate shard-by-shard.
//! At fleet scale the request stream must be shardable: request *i* here
//! is a pure function of `(seed, i)`, so any contiguous slice of the
//! index space — one shard's worth, or the whole run — reproduces exactly
//! the same per-request values. `tests/fleet.rs` pins this by comparing
//! sharded generation against the sequential stream.

use std::ops::Range;

use uparc_serve::request::BitstreamId;
use uparc_sim::time::SimTime;

/// Weyl increment of the splitmix64 generator.
pub(crate) const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// One splitmix64 output for state `x` (stateless finalizer).
#[must_use]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One request of the fleet stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRequest {
    /// Position in the global stream (0-based).
    pub index: u64,
    /// Arrival instant. Arrivals are monotone in `index` by
    /// construction: request *i* arrives in `[i·gap, (i+1)·gap)`.
    pub arrival: SimTime,
    /// The requested bitstream.
    pub bitstream: BitstreamId,
    /// Service priority, 0 (highest) to 3 (lowest). Under overload the
    /// fleet sheds low-priority requests first: a priority-`p` request
    /// tolerates `(4 - p)` times the configured shed backlog before it
    /// is rejected.
    pub priority: u8,
}

/// A seeded open-loop fleet workload: `requests` arrivals with mean gap
/// `mean_gap`, each requesting a uniformly drawn catalog bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetWorkloadSpec {
    /// Total requests in the stream.
    pub requests: u64,
    /// Mean inter-arrival gap. Request *i* arrives at
    /// `i·gap + jitter_i` with `jitter_i` uniform in `[0, gap)`.
    pub mean_gap: SimTime,
    /// Stream seed.
    pub seed: u64,
}

impl FleetWorkloadSpec {
    /// Request `i` of the stream — a pure function of `(seed, i)` and
    /// the (ordered) id inventory, independent of any other index.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or `i >= self.requests`.
    #[must_use]
    pub fn request(&self, i: u64, ids: &[BitstreamId]) -> FleetRequest {
        assert!(!ids.is_empty(), "workload over an empty inventory");
        assert!(i < self.requests, "index {i} past the stream end");
        let base = self.seed.wrapping_add((i + 1).wrapping_mul(GOLDEN));
        let r_jitter = splitmix64(base);
        let r_pick = splitmix64(base.wrapping_add(GOLDEN));
        let gap = self.mean_gap.as_fs().max(1);
        let arrival = i * gap + r_jitter % gap;
        FleetRequest {
            index: i,
            arrival: SimTime::from_fs(arrival),
            bitstream: ids[(r_pick % ids.len() as u64) as usize],
            // Top byte of the pick draw: independent of the low bits the
            // modulus consumes, so adding priorities left the arrival and
            // bitstream streams byte-identical.
            priority: ((r_pick >> 56) & 3) as u8,
        }
    }

    /// Generates a contiguous slice of the stream (one shard's worth).
    ///
    /// # Panics
    ///
    /// Panics as [`FleetWorkloadSpec::request`] does.
    #[must_use]
    pub fn generate_range(&self, range: Range<u64>, ids: &[BitstreamId]) -> Vec<FleetRequest> {
        range.map(|i| self.request(i, ids)).collect()
    }

    /// Generates the whole stream, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics as [`FleetWorkloadSpec::request`] does.
    #[must_use]
    pub fn generate(&self, ids: &[BitstreamId]) -> Vec<FleetRequest> {
        self.generate_range(0..self.requests, ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<BitstreamId> {
        (1..=n).map(BitstreamId).collect()
    }

    #[test]
    fn arrivals_are_monotone() {
        let spec = FleetWorkloadSpec {
            requests: 5000,
            mean_gap: SimTime::from_ns(80),
            seed: 7,
        };
        let stream = spec.generate(&ids(16));
        for pair in stream.windows(2) {
            assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn requests_are_pure_in_the_index() {
        let spec = FleetWorkloadSpec {
            requests: 100,
            mean_gap: SimTime::from_us(1),
            seed: 42,
        };
        let inventory = ids(8);
        // Re-evaluating any index in any order yields the same request.
        let forward = spec.generate(&inventory);
        for i in (0..100).rev() {
            assert_eq!(spec.request(i, &inventory), forward[i as usize]);
        }
    }

    #[test]
    fn priorities_cover_all_classes() {
        let spec = FleetWorkloadSpec {
            requests: 4000,
            mean_gap: SimTime::from_ns(80),
            seed: 9,
        };
        let mut seen = [0u64; 4];
        for r in spec.generate(&ids(8)) {
            assert!(r.priority < 4);
            seen[r.priority as usize] += 1;
        }
        // Uniform top-byte draw: every class shows up in 4000 requests.
        assert!(seen.iter().all(|&n| n > 0), "priority classes {seen:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FleetWorkloadSpec {
            requests: 64,
            mean_gap: SimTime::from_us(1),
            seed: 1,
        };
        let b = FleetWorkloadSpec { seed: 2, ..a };
        let inventory = ids(32);
        assert_ne!(a.generate(&inventory), b.generate(&inventory));
    }

    #[test]
    #[should_panic(expected = "empty inventory")]
    fn empty_inventory_panics() {
        let spec = FleetWorkloadSpec {
            requests: 1,
            mean_gap: SimTime::from_us(1),
            seed: 0,
        };
        let _ = spec.request(0, &[]);
    }
}

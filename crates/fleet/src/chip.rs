//! Per-chip simulation.
//!
//! Each chip serves its routed queue FIFO on one reconfigurable region:
//! pick the fastest operating point the chip's epoch cap admits (from
//! the calibrated [`PlanTables`]), run the host-side staging work for
//! real — a miss in the chip's [`DecompCache`] decompresses the staged
//! payload with the actual codec, a hit streams the cached image — and
//! advance simulated time by the *measured* dispatch latency. Chips
//! share nothing, so the fleet can fan them out across the worker pool
//! and still merge byte-identical results in chip order.
//!
//! Under a chaos campaign the loop grows failure paths: dispatches that
//! start inside an ICAP-wedge or elevated-SEU window (or draw an ambient
//! staged-image flip) abandon the calibrated table and run a *real*
//! cycle-accurate [`UParc`] dispatch through the configured
//! `RecoveryPolicy` ladder — the measured detour (watchdog waits,
//! restages, retries) is what the request pays; a brownout slashes the
//! chip's cap for its window (waiting it out if even the slowest point
//! no longer fits); and a permanent chip loss clips the in-flight
//! transfer, spills the rest of the queue back to the fleet as *orphans*
//! and stops the clock. Every request leaves the loop in exactly one
//! ledger: `served`, `failed`, or `orphans`.

use std::sync::Arc;

use uparc_core::cache::DecompCache;
use uparc_core::recovery::RecoveryPolicy;
use uparc_core::uparc::UParc;
use uparc_serve::catalog::Catalog;
use uparc_sim::fault::{FaultInjector, FaultKind, MAX_STALL_CYCLES};
use uparc_sim::power::calib;
use uparc_sim::stats::LogHistogram;
use uparc_sim::time::SimTime;

use crate::budget::CapSchedule;
use crate::chaos::ChaosPlan;
use crate::plan::PlanTables;
use crate::workload::FleetRequest;

/// One routed request together with its failover state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedRequest {
    /// The underlying request (its `arrival` stays the original one, so
    /// failover latency includes the whole detour).
    pub req: FleetRequest,
    /// Earliest dispatch time on the current chip: the arrival for a
    /// first placement, death time plus backoff for a failover.
    pub ready: SimTime,
    /// How many times chip deaths have orphaned this request.
    pub retries: u32,
}

impl From<FleetRequest> for QueuedRequest {
    fn from(req: FleetRequest) -> Self {
        QueuedRequest {
            req,
            ready: req.arrival,
            retries: 0,
        }
    }
}

/// One chip's routed work.
#[derive(Debug, Clone)]
pub struct ChipInput {
    /// Chip index in the fleet.
    pub chip: usize,
    /// Routed requests in dispatch order.
    pub requests: Vec<QueuedRequest>,
}

/// Shared read-only context of one chip simulation.
pub struct ChipEnv<'a> {
    /// The bitstream catalog.
    pub catalog: &'a Catalog,
    /// Calibrated operating-point tables.
    pub tables: &'a PlanTables,
    /// Per-chip epoch cap schedule.
    pub schedule: &'a CapSchedule,
    /// Byte budget of the chip's decompressed-image cache.
    pub cache_budget: usize,
    /// The expanded chaos campaign.
    pub plan: &'a ChaosPlan,
    /// Recovery ladder for faulted dispatches.
    pub recovery: &'a RecoveryPolicy,
}

/// Everything one chip's run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipOutcome {
    /// Chip index.
    pub chip: usize,
    /// Requests served.
    pub completed: u64,
    /// Served requests that had previously been orphaned by a death.
    pub completed_failover: u64,
    /// Decompressed-image cache hits.
    pub hits: u64,
    /// Decompressed-image cache misses (real decompressions run).
    pub misses: u64,
    /// Images evicted from the chip cache.
    pub evictions: u64,
    /// Bytes actually decompressed on misses.
    pub decompressed_bytes: u64,
    /// 32-bit words transferred through the ICAP across all dispatches.
    pub words: u64,
    /// Above-idle energy across all dispatches, µJ.
    pub energy_uj: f64,
    /// Sum of all service times (chip busy time).
    pub busy: SimTime,
    /// When the last dispatch finished.
    pub finish: SimTime,
    /// Arrival-to-finish latency of steady (fault-free, never-orphaned)
    /// completions, µs.
    pub latency_us: LogHistogram,
    /// Arrival-to-finish latency of degraded completions — faulted
    /// dispatches and failovers — µs. Kept apart so recovery detours
    /// have their own tail instead of hiding inside the steady p99.
    pub degraded_latency_us: LogHistogram,
    /// Dispatch count per grid frequency index.
    pub freq_mix: Vec<u64>,
    /// `(start_fs, end_fs, above_idle_draw_mw)` per transfer segment, for
    /// the fleet's independent rack-cap verification sweep.
    pub intervals: Vec<(u64, u64, f64)>,
    /// Fold of every served image's bytes — forces the staging work to
    /// really happen and pins byte-identity across worker counts.
    pub checksum: u64,
    /// Stream indices of requests served to completion, ascending.
    pub served: Vec<u64>,
    /// Stream indices whose dispatch failed terminally after recovery.
    pub failed: Vec<u64>,
    /// Requests the chip's death spilled back to the fleet, in queue
    /// order, `ready` advanced to the death instant.
    pub orphans: Vec<QueuedRequest>,
    /// Dispatches that hit at least one injected fault.
    pub faulted: u64,
    /// Faulted dispatches the recovery ladder completed anyway.
    pub healed: u64,
    /// Individual faults applied across all recovery dispatches.
    pub faults_applied: u64,
    /// Extra latency the recovery ladder added beyond clean dispatches.
    pub recovery_extra_time: SimTime,
    /// Extra energy the recovery ladder drew, µJ.
    pub recovery_extra_energy_uj: f64,
}

/// FNV-style 8-bytes-per-round fold over an image.
fn fold_image(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lane = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Runs one chip's queue to completion (or to the chip's death).
///
/// # Panics
///
/// Panics if a request references an uncalibrated bitstream or the cap
/// schedule cannot fund the floor outside a brownout window (the budget
/// layer guarantees it can).
#[must_use]
pub fn simulate_chip(input: &ChipInput, env: &ChipEnv<'_>) -> ChipOutcome {
    let catalog = env.catalog;
    let tables = env.tables;
    let chaos = env.plan.chip(input.chip);
    let codec = catalog.algorithm().codec();
    let mut cache = DecompCache::new(env.cache_budget);
    let mut out = ChipOutcome {
        chip: input.chip,
        completed: 0,
        completed_failover: 0,
        hits: 0,
        misses: 0,
        evictions: 0,
        decompressed_bytes: 0,
        words: 0,
        energy_uj: 0.0,
        busy: SimTime::ZERO,
        finish: SimTime::ZERO,
        latency_us: LogHistogram::new(),
        degraded_latency_us: LogHistogram::new(),
        freq_mix: vec![0; tables.grid().len()],
        intervals: Vec::with_capacity(input.requests.len()),
        checksum: 0,
        served: Vec::new(),
        failed: Vec::new(),
        orphans: Vec::new(),
        faulted: 0,
        healed: 0,
        faults_applied: 0,
        recovery_extra_time: SimTime::ZERO,
        recovery_extra_energy_uj: 0.0,
    };
    let loss_fs = chaos.loss_at.map(SimTime::as_fs);
    let mut clock = SimTime::ZERO;
    for q in &input.requests {
        let req = &q.req;
        let facts = tables.facts(req.bitstream);
        let mut start = clock.max(q.ready).max(req.arrival);
        // A chip dead before the dispatch starts spills the request back
        // to the fleet untouched.
        if let Some(loss) = loss_fs {
            if start.as_fs() >= loss {
                out.orphans.push(QueuedRequest {
                    req: *req,
                    ready: q.ready.max(SimTime::from_fs(loss)),
                    retries: q.retries,
                });
                continue;
            }
        }
        // Which faults does this dispatch draw?
        let wedged = chaos.wedged_at(start);
        let seu = chaos.seu_at(start);
        let ambient = env.plan.ambient_fault_ppm() > 0
            && env.plan.request_draw(input.chip, req.index, 100) % 1_000_000
                < u64::from(env.plan.ambient_fault_ppm());
        let faulted = wedged || seu || ambient;
        // Plan under the tightest cap anywhere in the conservative
        // window [start, start + slowest] — widened past the watchdog
        // and a retry when the dispatch will wedge, so the recovery
        // detour too is planned under the tightest cap it can cross.
        let slowest = tables.slowest_service(req.bitstream);
        let mut window = slowest;
        if faulted {
            // Up to max_attempts re-dispatches plus one watchdog wait.
            let watchdog = env.recovery.watchdog.unwrap_or(SimTime::from_ms(1));
            window = SimTime::from_fs(slowest.as_fs() * 4) + watchdog;
        }
        // Clip the planning window at the chip's death: the budget zeroes
        // a dead chip's epochs, and any transfer still in flight at the
        // loss instant is orphaned anyway, so caps past it are void.
        let cap_window_end = |s: SimTime| {
            let end = s.as_fs() + window.as_fs();
            loss_fs.map_or(end, |l| end.min(l))
        };
        let mut cap = env
            .schedule
            .min_cap_over(input.chip, start.as_fs(), cap_window_end(start));
        // A brownout overlapping the window slashes the above-idle
        // headroom to its factor.
        if let Some((bf, bt)) = chaos.brownout {
            if start < bt && start + window > bf {
                let slashed =
                    calib::V6_IDLE_MW + (cap - calib::V6_IDLE_MW) * env.plan.brownout_factor();
                if tables.select(req.bitstream, slashed).is_none() {
                    // Even the slowest point no longer fits: wait the
                    // brownout out and re-plan at the normal cap.
                    start = start.max(bt);
                    if let Some(loss) = loss_fs {
                        if start.as_fs() >= loss {
                            out.orphans.push(QueuedRequest {
                                req: *req,
                                ready: q.ready.max(SimTime::from_fs(loss)),
                                retries: q.retries,
                            });
                            clock = clock.max(SimTime::from_fs(loss));
                            continue;
                        }
                    }
                    cap =
                        env.schedule
                            .min_cap_over(input.chip, start.as_fs(), cap_window_end(start));
                } else {
                    cap = slashed;
                }
            }
        }
        let idx = tables
            .select(req.bitstream, cap)
            .expect("epoch caps always fund the floor");
        // Host-side staging: the real work locality routing saves.
        if let Some(key) = &facts.key {
            let image = match cache.get(key) {
                Some(image) => {
                    out.hits += 1;
                    image
                }
                None => {
                    out.misses += 1;
                    let entry = catalog.entry(req.bitstream).expect("calibrated id");
                    let packed = entry.packed_bytes().expect("compressed staging");
                    let image = Arc::new(
                        codec
                            .decompress(packed)
                            .expect("staged payload round-trips"),
                    );
                    out.decompressed_bytes += image.len() as u64;
                    cache.insert(*key, Arc::clone(&image));
                    image
                }
            };
            // Stream the image (cached or fresh) into the ICAP.
            out.checksum ^= fold_image(&image);
        }
        let (finish, failed) = if faulted {
            dispatch_faulted(
                input.chip, q, env, idx, start, wedged, seu, ambient, &mut out,
            )
        } else {
            // The calibrated fast path.
            let service = tables.service(req.bitstream, idx);
            let finish = start + service;
            let end_fs = loss_fs.map_or(finish.as_fs(), |l| finish.as_fs().min(l));
            if end_fs > start.as_fs() {
                out.intervals.push((
                    start.as_fs(),
                    end_fs,
                    tables.draw_above_idle_mw(req.bitstream, idx),
                ));
            }
            if end_fs == finish.as_fs() {
                out.energy_uj += tables.energy_uj(req.bitstream, idx);
            } else {
                // Clipped by the chip's death: only the partial draw.
                out.energy_uj += tables.draw_above_idle_mw(req.bitstream, idx)
                    * SimTime::from_fs(end_fs - start.as_fs()).as_secs_f64()
                    * 1e3;
            }
            (finish, false)
        };
        // Death mid-transfer: the request did not complete anywhere.
        if let Some(loss) = loss_fs {
            if finish.as_fs() > loss {
                out.orphans.push(QueuedRequest {
                    req: *req,
                    ready: q.ready.max(SimTime::from_fs(loss)),
                    retries: q.retries,
                });
                clock = SimTime::from_fs(loss);
                out.finish = out.finish.max(clock);
                continue;
            }
        }
        if failed {
            out.failed.push(req.index);
            clock = finish;
            out.finish = out.finish.max(finish);
            continue;
        }
        out.words += facts.words;
        out.busy += finish.saturating_sub(start);
        out.freq_mix[idx] += 1;
        let latency = finish.saturating_sub(req.arrival).as_us_f64();
        if faulted || q.retries > 0 {
            out.degraded_latency_us.observe(latency);
        } else {
            out.latency_us.observe(latency);
        }
        out.completed += 1;
        if q.retries > 0 {
            out.completed_failover += 1;
        }
        out.served.push(req.index);
        clock = finish;
        out.finish = out.finish.max(finish);
    }
    let stats = cache.stats();
    debug_assert_eq!(stats.hits, out.hits);
    debug_assert_eq!(stats.misses, out.misses);
    out.evictions = stats.evictions;
    out
}

/// Runs one faulted dispatch on a real cycle-accurate controller through
/// the recovery ladder, folding the measured detour (time, energy, power
/// segments) into `out`. Returns `(finish, failed)`.
#[allow(clippy::too_many_arguments)]
fn dispatch_faulted(
    chip: usize,
    q: &QueuedRequest,
    env: &ChipEnv<'_>,
    idx: usize,
    start: SimTime,
    wedged: bool,
    seu: bool,
    ambient: bool,
    out: &mut ChipOutcome,
) -> (SimTime, bool) {
    let req = &q.req;
    let entry = env.catalog.entry(req.bitstream).expect("calibrated id");
    let mut injector = FaultInjector::empty();
    if wedged {
        // An ICAP wedge: the transfer stalls past the watchdog, forcing
        // a timeout and a ladder retry.
        injector.schedule(
            SimTime::ZERO,
            FaultKind::TransferStall {
                cycles: MAX_STALL_CYCLES,
            },
        );
    }
    if seu {
        let frames = entry.bitstream().frame_count().max(1) as u64;
        for k in 0..env.plan.seu_faults_per_request() {
            let r = env.plan.request_draw(chip, req.index, u64::from(k));
            injector.schedule(
                SimTime::ZERO,
                FaultKind::ConfigSeu {
                    frame: entry.bitstream().far() + (r % frames) as u32,
                    word: (r >> 32) as u32,
                    bit: ((r >> 58) & 31) as u8,
                },
            );
        }
    }
    if ambient {
        let r = env.plan.request_draw(chip, req.index, 101);
        injector.schedule(
            SimTime::ZERO,
            FaultKind::StagedFlip {
                word: (r % entry.staged_words().max(1) as u64) as u32,
                bit: ((r >> 58) & 31) as u8,
            },
        );
    }
    // A fresh scratch controller: the same calibration idiom PlanTables
    // measures with, so a fault-free dispatch here reproduces the table
    // latency exactly and the *difference* is the recovery detour.
    let mut scratch = UParc::builder(env.catalog.device().clone())
        .bram_bytes(env.catalog.bram_bytes())
        .decompressor(env.catalog.algorithm())
        .decompressed_cache_bytes(0)
        .build()
        .expect("catalog algorithm has a hardware decompressor");
    scratch
        .set_reconfiguration_frequency(env.tables.frequency(idx))
        .expect("grid frequency is synthesizable");
    scratch.attach_fault_injector(injector);
    let result = env
        .recovery
        .reconfigure(&mut scratch, entry.bitstream(), entry.mode());
    let measured = scratch.now();
    let finish = start + measured;
    let loss_fs = env.plan.chip(chip).loss_at.map(SimTime::as_fs);
    // Fold the measured waveform into the verification intervals, clipped
    // at the chip's death if it dies mid-dispatch.
    let limit = loss_fs.map_or(measured, |l| {
        measured.min(SimTime::from_fs(l.saturating_sub(start.as_fs())))
    });
    let trace = scratch.power_trace();
    let steps = trace.steps();
    for (i, &(t0, p0)) in steps.iter().enumerate() {
        if t0 >= limit {
            break;
        }
        let t1 = steps.get(i + 1).map_or(limit, |&(t, _)| t.min(limit));
        if p0 > calib::V6_IDLE_MW && t1 > t0 {
            out.intervals.push((
                (start + t0).as_fs(),
                (start + t1).as_fs(),
                p0 - calib::V6_IDLE_MW,
            ));
        }
    }
    out.energy_uj += trace.energy_above_uj(calib::V6_IDLE_MW, SimTime::ZERO, limit);
    out.faulted += 1;
    match result {
        Ok(rep) => {
            if rep.healed() {
                out.healed += 1;
            }
            out.faults_applied += rep.faults_applied as u64;
            out.recovery_extra_time += rep.extra_time;
            out.recovery_extra_energy_uj += rep.extra_energy_uj;
            (finish, false)
        }
        Err(_) => (finish, true),
    }
}

//! Per-chip simulation.
//!
//! Each chip serves its routed queue FIFO on one reconfigurable region:
//! pick the fastest operating point the chip's epoch cap admits (from
//! the calibrated [`PlanTables`]), run the host-side staging work for
//! real — a miss in the chip's [`DecompCache`] decompresses the staged
//! payload with the actual codec, a hit streams the cached image — and
//! advance simulated time by the *measured* dispatch latency. Chips
//! share nothing, so the fleet can fan them out across the worker pool
//! and still merge byte-identical results in chip order.

use std::sync::Arc;

use uparc_core::cache::DecompCache;
use uparc_serve::catalog::Catalog;
use uparc_sim::stats::LogHistogram;
use uparc_sim::time::SimTime;

use crate::budget::CapSchedule;
use crate::plan::PlanTables;
use crate::workload::FleetRequest;

/// One chip's routed work.
#[derive(Debug, Clone)]
pub struct ChipInput {
    /// Chip index in the fleet.
    pub chip: usize,
    /// Routed requests in arrival order.
    pub requests: Vec<FleetRequest>,
}

/// Everything one chip's run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipOutcome {
    /// Chip index.
    pub chip: usize,
    /// Requests served.
    pub completed: u64,
    /// Decompressed-image cache hits.
    pub hits: u64,
    /// Decompressed-image cache misses (real decompressions run).
    pub misses: u64,
    /// Images evicted from the chip cache.
    pub evictions: u64,
    /// Bytes actually decompressed on misses.
    pub decompressed_bytes: u64,
    /// 32-bit words transferred through the ICAP across all dispatches.
    pub words: u64,
    /// Above-idle energy across all dispatches, µJ.
    pub energy_uj: f64,
    /// Sum of all service times (chip busy time).
    pub busy: SimTime,
    /// When the last dispatch finished.
    pub finish: SimTime,
    /// Arrival-to-finish latency distribution, µs.
    pub latency_us: LogHistogram,
    /// Dispatch count per grid frequency index.
    pub freq_mix: Vec<u64>,
    /// `(start_fs, end_fs, above_idle_draw_mw)` per dispatch, for the
    /// fleet's independent rack-cap verification sweep.
    pub intervals: Vec<(u64, u64, f64)>,
    /// Fold of every served image's bytes — forces the staging work to
    /// really happen and pins byte-identity across worker counts.
    pub checksum: u64,
}

/// FNV-style 8-bytes-per-round fold over an image.
fn fold_image(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lane = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

/// Runs one chip's queue to completion.
///
/// # Panics
///
/// Panics if a request references an uncalibrated bitstream or the cap
/// schedule cannot fund the floor (the budget layer guarantees it can).
#[must_use]
pub fn simulate_chip(
    input: &ChipInput,
    catalog: &Catalog,
    tables: &PlanTables,
    schedule: &CapSchedule,
    cache_budget: usize,
) -> ChipOutcome {
    let codec = catalog.algorithm().codec();
    let mut cache = DecompCache::new(cache_budget);
    let mut out = ChipOutcome {
        chip: input.chip,
        completed: 0,
        hits: 0,
        misses: 0,
        evictions: 0,
        decompressed_bytes: 0,
        words: 0,
        energy_uj: 0.0,
        busy: SimTime::ZERO,
        finish: SimTime::ZERO,
        latency_us: LogHistogram::new(),
        freq_mix: vec![0; tables.grid().len()],
        intervals: Vec::with_capacity(input.requests.len()),
        checksum: 0,
    };
    let mut clock = SimTime::ZERO;
    for req in &input.requests {
        let facts = tables.facts(req.bitstream);
        let start = clock.max(req.arrival);
        // Plan under the tightest cap anywhere in the conservative
        // window [start, start + slowest], so a transfer spanning a
        // rebalance boundary can never violate the next epoch's cap.
        let window_end = start.as_fs() + tables.slowest_service(req.bitstream).as_fs();
        let cap = schedule.min_cap_over(input.chip, start.as_fs(), window_end);
        let idx = tables
            .select(req.bitstream, cap)
            .expect("epoch caps always fund the floor");
        // Host-side staging: the real work locality routing saves.
        if let Some(key) = &facts.key {
            let image = match cache.get(key) {
                Some(image) => {
                    out.hits += 1;
                    image
                }
                None => {
                    out.misses += 1;
                    let entry = catalog.entry(req.bitstream).expect("calibrated id");
                    let packed = entry.packed_bytes().expect("compressed staging");
                    let image = Arc::new(
                        codec
                            .decompress(packed)
                            .expect("staged payload round-trips"),
                    );
                    out.decompressed_bytes += image.len() as u64;
                    cache.insert(*key, Arc::clone(&image));
                    image
                }
            };
            // Stream the image (cached or fresh) into the ICAP.
            out.checksum ^= fold_image(&image);
        }
        let service = tables.service(req.bitstream, idx);
        let finish = start + service;
        out.intervals.push((
            start.as_fs(),
            finish.as_fs(),
            tables.draw_above_idle_mw(req.bitstream, idx),
        ));
        out.energy_uj += tables.energy_uj(req.bitstream, idx);
        out.words += facts.words;
        out.busy += service;
        out.freq_mix[idx] += 1;
        out.latency_us
            .observe(finish.saturating_sub(req.arrival).as_us_f64());
        out.completed += 1;
        clock = finish;
        out.finish = finish;
    }
    let stats = cache.stats();
    debug_assert_eq!(stats.hits, out.hits);
    debug_assert_eq!(stats.misses, out.misses);
    out.evictions = stats.evictions;
    out
}

//! Fleet orchestration: route → budget → simulate → verify → merge.
//!
//! The run is deterministic end to end: routing and cap scheduling are
//! sequential; the per-chip simulations are mutually independent and fan
//! out over [`uparc_sim::sweep::parallel_map`], whose results come back
//! in chip order regardless of worker count; aggregation walks chips in
//! index order. A [`FleetOutcome`] therefore renders byte-identically at
//! any `UPARC_SWEEP_THREADS` setting — `bench_fleet` gates on exactly
//! that.
//!
//! Chaos runs ([`Fleet::run_chaos`]) extend the pipeline with failover
//! rounds: chips that die mid-run spill their unfinished queue back as
//! orphans, which are re-routed to survivors (with bounded retries and
//! deterministic exponential backoff) and the affected chips re-simulated
//! — still sequential control flow around order-preserving fan-outs, so
//! chaos campaigns keep the byte-identity guarantee. Every request ends
//! in exactly one ledger: completed (possibly after failover) or shed
//! with a typed [`ShedReason`]; an assertion enforces the accounting
//! identity on every run.

use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_core::policy::PowerAwarePolicy;
use uparc_core::recovery::RecoveryPolicy;
use uparc_fpga::Device;
use uparc_serve::catalog::Catalog;
use uparc_serve::request::BitstreamId;
use uparc_sim::obs::{EventKind, Obs};
use uparc_sim::power::calib;
use uparc_sim::stats::LogHistogram;
use uparc_sim::sweep::parallel_map;
use uparc_sim::time::{Frequency, SimTime};

use crate::budget::{CapTimeline, EmergencyWindow, RackBudget};
use crate::chaos::{ChaosPlan, ChaosSpec};
use crate::chip::{simulate_chip, ChipEnv, ChipInput, ChipOutcome, QueuedRequest};
use crate::health::{HealthConfig, HealthTimeline};
use crate::plan::PlanTables;
use crate::router::{RouteOutcome, RoutePolicy, RouteStats, Router, ShedReason};
use crate::workload::FleetWorkloadSpec;
use crate::FleetError;

/// Tolerance when checking total draw against the rack cap, mW.
const CAP_EPSILON_MW: f64 = 1e-9;

/// Fleet shape and policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated UPaRC chips.
    pub chips: usize,
    /// Total rack power cap (every chip's idle included), mW.
    pub rack_cap_mw: f64,
    /// Hierarchical-budget rebalance epoch.
    pub epoch: SimTime,
    /// Per-chip decompressed-image cache budget, bytes.
    pub chip_cache_bytes: usize,
    /// Request-to-chip routing policy.
    pub route: RoutePolicy,
    /// Slowest CLK_2 the fleet is willing to run: the operating grid is
    /// restricted to this and up, and the rack budget funds exactly this
    /// floor on every chip.
    pub min_frequency: Frequency,
    /// Health state-machine tuning for chaos runs.
    pub health: HealthConfig,
    /// Backlog threshold past which requests are shed (priority-scaled:
    /// priority 0 tolerates 4×, priority 3 only 1×). `None` never sheds
    /// on backlog.
    pub shed_backlog: Option<SimTime>,
    /// How many chip deaths one request may survive (via failover)
    /// before it is shed with [`ShedReason::RetriesExhausted`].
    pub failover_retries: u32,
}

/// A calibrated fleet, ready to run workloads.
#[derive(Debug)]
pub struct Fleet {
    catalog: Catalog,
    config: FleetConfig,
    planner: PowerAwarePolicy,
    tables: PlanTables,
    recovery: RecoveryPolicy,
}

/// Requests shed per [`ShedReason`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShedCounts {
    /// Backlog past the priority-scaled threshold.
    pub queue_full: u64,
    /// No routable chip existed.
    pub no_live_chip: u64,
    /// The failover retry budget ran out.
    pub retries_exhausted: u64,
    /// The dispatch failed terminally even after recovery.
    pub dispatch_failed: u64,
}

impl ShedCounts {
    /// Total requests shed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.queue_full + self.no_live_chip + self.retries_exhausted + self.dispatch_failed
    }

    fn count(&mut self, reason: ShedReason) {
        match reason {
            ShedReason::QueueFull => self.queue_full += 1,
            ShedReason::NoLiveChip => self.no_live_chip += 1,
            ShedReason::RetriesExhausted => self.retries_exhausted += 1,
            ShedReason::DispatchFailed => self.dispatch_failed += 1,
        }
    }
}

/// Merged, deterministic results of one fleet run (no wall-clock
/// anywhere — every field is reproducible bit-for-bit).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Requests in the stream.
    pub requests: u64,
    /// Chips in the fleet.
    pub chips: usize,
    /// Requests served to completion. `completed + shed.total()` always
    /// equals `requests` — no request is lost or double-served, asserted
    /// on every run.
    pub completed: u64,
    /// Fleet-wide decompressed-image cache hits.
    pub hits: u64,
    /// Fleet-wide cache misses (real decompressions).
    pub misses: u64,
    /// Fleet-wide cache evictions.
    pub evictions: u64,
    /// Hits over hits + misses.
    pub hit_rate: f64,
    /// Bytes actually decompressed on misses.
    pub decompressed_bytes: u64,
    /// Router tallies (warm/cold/spills; zero for random routing).
    pub route: RouteStats,
    /// Total ICAP words transferred.
    pub words: u64,
    /// Above-idle energy across the run, µJ.
    pub energy_uj: f64,
    /// When the last chip finished.
    pub makespan: SimTime,
    /// Simulated reconfiguration throughput: words / makespan.
    pub sim_words_per_sec: f64,
    /// Merged arrival-to-finish latency histogram (steady and degraded
    /// phases together), µs.
    pub latency_us: LogHistogram,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Verified peak total draw (idle of every live chip included), mW.
    pub peak_power_mw: f64,
    /// The rack cap the run was budgeted under, mW.
    pub rack_cap_mw: f64,
    /// Instants where total draw exceeded the effective rack cap outside
    /// emergency windows (gated to zero).
    pub cap_violations: u64,
    /// Instants where total draw exceeded an *emergency* cap inside its
    /// window (gated to zero).
    pub cap_violations_emergency: u64,
    /// Mean dispatched CLK_2 over all requests, MHz.
    pub mean_frequency_mhz: f64,
    /// Fewest requests any one chip served.
    pub min_chip_completed: u64,
    /// Most requests any one chip served.
    pub max_chip_completed: u64,
    /// XOR-fold of every served image (byte-identity witness).
    pub checksum: u64,
    /// Requests shed, by reason.
    pub shed: ShedCounts,
    /// Successful re-route attempts after chip deaths.
    pub failovers: u64,
    /// Completions that had been orphaned by a death at least once.
    pub completed_failover: u64,
    /// Chips permanently lost during the campaign.
    pub chips_lost: u64,
    /// Quarantine entries across all chips.
    pub quarantines: u64,
    /// Dispatches that hit at least one injected fault.
    pub faulted: u64,
    /// Faulted dispatches the recovery ladder completed anyway.
    pub healed: u64,
    /// Individual faults applied across all recovery dispatches.
    pub faults_applied: u64,
    /// Extra latency the recovery ladder added, summed.
    pub recovery_extra_time: SimTime,
    /// Extra energy the recovery ladder drew, µJ.
    pub recovery_extra_energy_uj: f64,
    /// Degraded-phase (faulted or failed-over) completions.
    pub degraded_completed: u64,
    /// Degraded-phase latency histogram, µs.
    pub degraded_latency_us: LogHistogram,
    /// Steady-phase 99th-percentile latency, µs.
    pub p99_steady_us: f64,
    /// Degraded-phase 99th-percentile latency, µs — reported apart so
    /// recovery detours are not averaged away.
    pub p99_degraded_us: f64,
}

impl FleetOutcome {
    /// Renders the outcome as a stable multi-line digest. Two runs of
    /// the same workload must produce byte-identical digests at any
    /// worker count; `bench_fleet` gates on this.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "requests={} chips={} completed={}\n",
            self.requests, self.chips, self.completed
        ));
        s.push_str(&format!(
            "cache: hits={} misses={} evictions={} hit_rate={:.6} decompressed_bytes={}\n",
            self.hits, self.misses, self.evictions, self.hit_rate, self.decompressed_bytes
        ));
        s.push_str(&format!(
            "route: warm={} cold={} spills={}\n",
            self.route.warm, self.route.cold, self.route.spills
        ));
        s.push_str(&format!(
            "sim: words={} makespan_us={:.3} words_per_sec={:.1} energy_uj={:.3}\n",
            self.words,
            self.makespan.as_us_f64(),
            self.sim_words_per_sec,
            self.energy_uj
        ));
        s.push_str(&format!(
            "latency_us: p50={:.3} p95={:.3} p99={:.3} p999={:.3}\n",
            self.p50_us, self.p95_us, self.p99_us, self.p999_us
        ));
        s.push_str(&format!(
            "power: peak_mw={:.3} cap_mw={:.3} violations={} violations_emergency={}\n",
            self.peak_power_mw,
            self.rack_cap_mw,
            self.cap_violations,
            self.cap_violations_emergency
        ));
        s.push_str(&format!(
            "balance: min_chip={} max_chip={} mean_freq_mhz={:.2} checksum={:016x}\n",
            self.min_chip_completed,
            self.max_chip_completed,
            self.mean_frequency_mhz,
            self.checksum
        ));
        s.push_str(&format!(
            "chaos: chips_lost={} quarantines={} failovers={} completed_failover={}\n",
            self.chips_lost, self.quarantines, self.failovers, self.completed_failover
        ));
        s.push_str(&format!(
            "shed: total={} queue_full={} no_live_chip={} retries_exhausted={} dispatch_failed={}\n",
            self.shed.total(),
            self.shed.queue_full,
            self.shed.no_live_chip,
            self.shed.retries_exhausted,
            self.shed.dispatch_failed
        ));
        s.push_str(&format!(
            "recovery: faulted={} healed={} faults_applied={} extra_time_us={:.3} extra_energy_uj={:.3}\n",
            self.faulted,
            self.healed,
            self.faults_applied,
            self.recovery_extra_time.as_us_f64(),
            self.recovery_extra_energy_uj
        ));
        s.push_str(&format!(
            "degraded: completed={} p99_steady_us={:.3} p99_degraded_us={:.3}\n",
            self.degraded_completed, self.p99_steady_us, self.p99_degraded_us
        ));
        s
    }
}

/// Sweeps every transfer interval across all chips and returns the
/// verified peak total draw plus the instants above the effective cap,
/// split into steady-cap and emergency-window violations.
///
/// This is the *independent* check: it ignores how the budget layer
/// decomposed the cap and simply integrates what the chips actually
/// drew — idle base included, with a dead chip's idle removed at its
/// death instant — against the cap *timeline*, so neither a budgeting
/// bug nor an emergency mis-decomposition can hide its own violations.
fn verify_rack(
    outcomes: &[ChipOutcome],
    chips: usize,
    timeline: &CapTimeline,
    emergencies: &[EmergencyWindow],
    loss_at: &[Option<SimTime>],
) -> (f64, u64, u64) {
    // (time_fs, phase, delta): ends (phase 0) apply before starts
    // (phase 1) at the same instant, so back-to-back transfers don't
    // double-count at the boundary.
    let mut events: Vec<(u64, u8, f64)> = Vec::new();
    for o in outcomes {
        for &(start, end, draw) in &o.intervals {
            events.push((start, 1, draw));
            events.push((end, 0, -draw));
        }
    }
    for loss in loss_at.iter().flatten() {
        // A dead chip stops drawing even its idle floor.
        events.push((loss.as_fs(), 0, -calib::V6_IDLE_MW));
    }
    // Synthetic zero-draw samplers at every emergency edge: the cap must
    // hold there even if no transfer event lands on the boundary.
    for w in emergencies {
        events.push((w.from.as_fs(), 1, 0.0));
        events.push((w.to.as_fs(), 1, 0.0));
    }
    events.sort_unstable_by_key(|a| (a.0, a.1));
    let base = chips as f64 * calib::V6_IDLE_MW;
    let mut current = base;
    let mut peak = base;
    let mut violations = 0u64;
    let mut emergency_violations = 0u64;
    let mut i = 0;
    while i < events.len() {
        // Apply every event at this (instant, phase) before sampling.
        let key = (events[i].0, events[i].1);
        while i < events.len() && (events[i].0, events[i].1) == key {
            current += events[i].2;
            i += 1;
        }
        if current > peak {
            peak = current;
        }
        if key.1 == 1 {
            let cap = timeline.cap_at(key.0);
            if current > cap + CAP_EPSILON_MW {
                if emergencies.iter().any(|w| w.contains(key.0)) {
                    emergency_violations += 1;
                } else {
                    violations += 1;
                }
            }
        }
    }
    (peak, violations, emergency_violations)
}

impl Fleet {
    /// Builds a fleet over `catalog`, calibrating the planning tables
    /// (one measured dispatch per bitstream shape per grid frequency).
    /// Faulted dispatches heal through [`RecoveryPolicy::default`];
    /// override with [`Fleet::with_recovery`].
    ///
    /// # Errors
    ///
    /// [`FleetError::NoChips`], [`FleetError::EmptyCatalog`], or
    /// [`FleetError::NoAdmissibleFrequency`].
    pub fn new(catalog: Catalog, config: FleetConfig) -> Result<Self, FleetError> {
        if config.chips == 0 {
            return Err(FleetError::NoChips);
        }
        let planner = PowerAwarePolicy::paper_setup(catalog.device().family());
        let tables = PlanTables::build(&catalog, &planner, config.min_frequency)?;
        Ok(Fleet {
            catalog,
            config,
            planner,
            tables,
            recovery: RecoveryPolicy::default(),
        })
    }

    /// Replaces the recovery ladder faulted dispatches run through.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// The bitstream inventory.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The fleet configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The operating-point planner the tables were calibrated against.
    #[must_use]
    pub fn planner(&self) -> &PowerAwarePolicy {
        &self.planner
    }

    /// The calibrated planning tables.
    #[must_use]
    pub fn tables(&self) -> &PlanTables {
        &self.tables
    }

    /// Runs `spec` through the fleet on the happy path: no chaos, no
    /// observability overhead. Equivalent to
    /// `run_chaos(spec, &ChaosSpec::quiet(), &Obs::null())`.
    ///
    /// # Errors
    ///
    /// [`FleetError::InfeasibleRackCap`] if the rack cap cannot fund
    /// every chip's idle plus the dynamic floor.
    ///
    /// # Panics
    ///
    /// Panics if `spec.requests` is zero.
    pub fn run(&self, spec: &FleetWorkloadSpec) -> Result<FleetOutcome, FleetError> {
        self.run_chaos(spec, &ChaosSpec::quiet(), &Obs::null())
    }

    /// Runs `spec` under a chaos campaign: sequential deterministic
    /// routing against the health timelines, hierarchical cap scheduling
    /// over the emergency timeline and the surviving set, parallel chip
    /// simulation with fault injection and recovery, failover rounds for
    /// orphaned requests, rack-cap verification against the cap
    /// *timeline*, and merged summary statistics.
    ///
    /// # Errors
    ///
    /// [`FleetError::InfeasibleRackCap`] if any epoch's effective cap
    /// cannot fund the surviving chips' idle plus dynamic floor.
    ///
    /// # Panics
    ///
    /// Panics if `spec.requests` is zero, or if the accounting identity
    /// `completed + shed == requests` (every request exactly once) is
    /// violated — that assertion is the chaos layer's core guarantee.
    pub fn run_chaos(
        &self,
        spec: &FleetWorkloadSpec,
        chaos: &ChaosSpec,
        obs: &Obs,
    ) -> Result<FleetOutcome, FleetError> {
        assert!(spec.requests > 0, "empty workload");
        let ids = self.catalog.ids();
        let chips = self.config.chips;
        let epoch_fs = self.config.epoch.as_fs().max(1);
        let plan = ChaosPlan::generate(chaos, chips);

        // Announce rack-level emergencies up front (sequential phase).
        for w in plan.emergencies() {
            obs.instant(w.from, EventKind::CapEmergency { cap_mw: w.cap_mw });
        }

        // Expand per-chip chaos into health trajectories.
        let health: Vec<HealthTimeline> = (0..chips)
            .map(|c| HealthTimeline::build(plan.chip(c), &self.config.health))
            .collect();
        let loss_at: Vec<Option<SimTime>> = (0..chips).map(|c| plan.chip(c).loss_at).collect();
        let chips_lost = loss_at.iter().flatten().count() as u64;
        let quarantines: u64 = health.iter().map(HealthTimeline::quarantine_count).sum();

        // Phase 1 — sequential routing + per-epoch demand accounting.
        let mut router = Router::with_chaos(
            chips,
            self.config.route,
            self.config.chip_cache_bytes,
            self.tables.mean_service_estimate(),
            health,
            self.config.shed_backlog,
            obs.clone(),
        );
        let mut queues: Vec<Vec<QueuedRequest>> = vec![Vec::new(); chips];
        let mut demand: Vec<Vec<u64>> = Vec::new();
        let mut shed = ShedCounts::default();
        for i in 0..spec.requests {
            let req = spec.request(i, &ids);
            let image_bytes = self.tables.facts(req.bitstream).image_bytes;
            match router.try_route(&req, req.arrival, image_bytes) {
                RouteOutcome::Assigned(chip) => {
                    let e = (req.arrival.as_fs() / epoch_fs) as usize;
                    while demand.len() <= e {
                        demand.push(vec![0; chips]);
                    }
                    demand[e][chip] += 1;
                    queues[chip].push(QueuedRequest::from(req));
                }
                RouteOutcome::Shed(reason) => shed.count(reason),
            }
        }

        // Phase 2 — decompose the rack cap timeline over the survivors.
        let budget = RackBudget {
            cap_mw: self.config.rack_cap_mw,
            epoch: self.config.epoch,
        };
        let timeline = CapTimeline::with_emergencies(self.config.rack_cap_mw, plan.emergencies());
        let schedule = budget.schedule_chaos(
            &demand,
            chips,
            calib::V6_IDLE_MW,
            self.tables.floor_mw(),
            &timeline,
            &loss_at,
        )?;
        let env = ChipEnv {
            catalog: &self.catalog,
            tables: &self.tables,
            schedule: &schedule,
            cache_budget: self.config.chip_cache_bytes,
            plan: &plan,
            recovery: &self.recovery,
        };

        // Phase 3 — simulate chips (order-preserving fan-out), then
        // failover rounds: orphans of dead chips are re-routed to
        // survivors with exponential backoff, the receiving chips
        // re-simulated. Each round is sequential control flow around a
        // parallel fan-out, so the result is worker-count independent.
        let mut outcomes: Vec<Option<ChipOutcome>> = (0..chips).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..chips).collect();
        let mut failovers = 0u64;
        let est_fs = self.tables.mean_service_estimate().as_fs().max(1);
        while !pending.is_empty() {
            let inputs: Vec<ChipInput> = pending
                .iter()
                .map(|&chip| ChipInput {
                    chip,
                    requests: queues[chip].clone(),
                })
                .collect();
            let fresh = parallel_map(&inputs, |input| simulate_chip(input, &env));
            // Collect this round's orphans in chip order, then strike
            // them from their queues so a later re-simulation of the
            // same chip cannot orphan them twice.
            let mut orphans: Vec<(usize, QueuedRequest)> = Vec::new();
            for o in fresh {
                let chip = o.chip;
                if !o.orphans.is_empty() {
                    let gone: std::collections::BTreeSet<u64> =
                        o.orphans.iter().map(|q| q.req.index).collect();
                    queues[chip].retain(|q| !gone.contains(&q.req.index));
                    orphans.extend(o.orphans.iter().map(|&q| (chip, q)));
                }
                outcomes[chip] = Some(o);
            }
            orphans.sort_unstable_by_key(|(_, q)| (q.ready, q.req.index));
            pending.clear();
            for (from, mut q) in orphans {
                q.retries += 1;
                if q.retries > self.config.failover_retries {
                    shed.count(ShedReason::RetriesExhausted);
                    router.stats_shed();
                    continue;
                }
                // Deterministic exponential backoff before re-dispatch.
                let backoff = est_fs << (q.retries - 1).min(6);
                q.ready += SimTime::from_fs(backoff);
                let image_bytes = self.tables.facts(q.req.bitstream).image_bytes;
                match router.try_route(&q.req, q.ready, image_bytes) {
                    RouteOutcome::Assigned(to) => {
                        obs.instant(
                            q.ready,
                            EventKind::Failover {
                                request: q.req.index,
                                from: from as u32,
                                to: to as u32,
                            },
                        );
                        failovers += 1;
                        let pos = queues[to]
                            .partition_point(|e| (e.ready, e.req.index) <= (q.ready, q.req.index));
                        queues[to].insert(pos, q);
                        if !pending.contains(&to) {
                            pending.push(to);
                        }
                    }
                    RouteOutcome::Shed(reason) => shed.count(reason),
                }
            }
            pending.sort_unstable();
        }
        let outcomes: Vec<ChipOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every chip simulated in round one"))
            .collect();

        // Phase 4 — independent rack-cap verification against the
        // emergency timeline and the surviving idle base.
        let (peak_power_mw, cap_violations, cap_violations_emergency) =
            verify_rack(&outcomes, chips, &timeline, plan.emergencies(), &loss_at);

        // Phase 5 — merge (chip order, deterministic) + accounting.
        let mut latency_us = LogHistogram::new();
        let mut degraded_latency_us = LogHistogram::new();
        let mut freq_mix = vec![0u64; self.tables.grid().len()];
        let (mut completed, mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64, 0u64);
        let (mut decompressed_bytes, mut words) = (0u64, 0u64);
        let mut energy_uj = 0.0f64;
        let mut makespan = SimTime::ZERO;
        let mut checksum = 0u64;
        let (mut min_chip, mut max_chip) = (u64::MAX, 0u64);
        let mut completed_failover = 0u64;
        let (mut faulted, mut healed, mut faults_applied) = (0u64, 0u64, 0u64);
        let mut recovery_extra_time = SimTime::ZERO;
        let mut recovery_extra_energy_uj = 0.0f64;
        let mut served_seen = vec![false; spec.requests as usize];
        for o in &outcomes {
            latency_us.merge(&o.latency_us);
            degraded_latency_us.merge(&o.degraded_latency_us);
            for (m, c) in freq_mix.iter_mut().zip(&o.freq_mix) {
                *m += c;
            }
            for &i in &o.served {
                assert!(
                    !served_seen[i as usize],
                    "request {i} served twice (chip {})",
                    o.chip
                );
                served_seen[i as usize] = true;
            }
            shed.dispatch_failed += o.failed.len() as u64;
            completed += o.completed;
            completed_failover += o.completed_failover;
            hits += o.hits;
            misses += o.misses;
            evictions += o.evictions;
            decompressed_bytes += o.decompressed_bytes;
            words += o.words;
            energy_uj += o.energy_uj;
            makespan = makespan.max(o.finish);
            checksum ^= o.checksum;
            min_chip = min_chip.min(o.completed);
            max_chip = max_chip.max(o.completed);
            faulted += o.faulted;
            healed += o.healed;
            faults_applied += o.faults_applied;
            recovery_extra_time += o.recovery_extra_time;
            recovery_extra_energy_uj += o.recovery_extra_energy_uj;
        }
        // The chaos layer's core guarantee: every request is accounted
        // exactly once — completed on some chip (possibly after
        // failover) or shed with a reason. Nothing lost, nothing
        // double-served.
        assert_eq!(
            completed + shed.total(),
            spec.requests,
            "accounting identity violated: {completed} completed + {} shed != {} requests",
            shed.total(),
            spec.requests
        );
        let staged = hits + misses;
        let dispatched: u64 = freq_mix.iter().sum();
        let mean_frequency_mhz = if dispatched > 0 {
            freq_mix
                .iter()
                .enumerate()
                .map(|(i, &n)| self.tables.frequency(i).as_mhz() * n as f64)
                .sum::<f64>()
                / dispatched as f64
        } else {
            0.0
        };
        let span = makespan.as_secs_f64();
        // Overall latency quantiles cover both phases, preserving the
        // pre-chaos meaning of p50…p999; the phase split is reported
        // alongside.
        let mut merged = latency_us.clone();
        merged.merge(&degraded_latency_us);
        let degraded_completed = degraded_latency_us.count();
        Ok(FleetOutcome {
            requests: spec.requests,
            chips,
            completed,
            hits,
            misses,
            evictions,
            hit_rate: if staged > 0 {
                hits as f64 / staged as f64
            } else {
                0.0
            },
            decompressed_bytes,
            route: router.stats(),
            words,
            energy_uj,
            makespan,
            sim_words_per_sec: if span > 0.0 { words as f64 / span } else { 0.0 },
            p50_us: merged.percentile(50.0).unwrap_or(0.0),
            p95_us: merged.percentile(95.0).unwrap_or(0.0),
            p99_us: merged.percentile(99.0).unwrap_or(0.0),
            p999_us: merged.percentile(99.9).unwrap_or(0.0),
            p99_steady_us: latency_us.percentile(99.0).unwrap_or(0.0),
            p99_degraded_us: degraded_latency_us.percentile(99.0).unwrap_or(0.0),
            latency_us: merged,
            peak_power_mw,
            rack_cap_mw: self.config.rack_cap_mw,
            cap_violations,
            cap_violations_emergency,
            mean_frequency_mhz,
            min_chip_completed: min_chip,
            max_chip_completed: max_chip,
            checksum,
            shed,
            failovers,
            completed_failover,
            chips_lost,
            quarantines,
            faulted,
            healed,
            faults_applied,
            recovery_extra_time,
            recovery_extra_energy_uj,
            degraded_completed,
            degraded_latency_us,
        })
    }
}

/// Builds a uniform synthetic catalog for fleet benches and tests:
/// `images` sparse-profile bitstreams of `frames_per_image` frames each,
/// all placed in one reconfigurable region, staged through the catalog's
/// default compressed datapath (the staging BRAM is sized to force
/// compression, so every image exercises the decompressed-image cache).
///
/// # Panics
///
/// Panics on invalid parameters (zero images/frames, or a region that
/// does not fit the device).
#[must_use]
pub fn synthetic_catalog(images: usize, frames_per_image: u32, seed: u64) -> Catalog {
    assert!(images > 0 && frames_per_image > 0, "empty catalog shape");
    let device = Device::xc5vsx50t();
    let frame_bytes = device.family().frame_bytes();
    // Size the staging BRAM below one raw image so every entry stages
    // compressed (mode word + byte count + payload must fit instead).
    let bram_bytes = (frames_per_image as usize * frame_bytes) / 2;
    let mut catalog = Catalog::new(device).with_bram_bytes(bram_bytes);
    catalog
        .add_region("pool", 100..100 + frames_per_image)
        .expect("region fits the device");
    let batch: Vec<(BitstreamId, PartialBitstream)> = (0..images)
        .map(|i| {
            let id = BitstreamId(i as u32 + 1);
            let payload = SynthProfile::sparse().generate(
                catalog.device(),
                100,
                frames_per_image,
                seed.wrapping_add(i as u64),
            );
            let bs = PartialBitstream::build(catalog.device(), 100, &payload);
            (id, bs)
        })
        .collect();
    catalog
        .register_batch(batch)
        .expect("synthetic batch registers");
    catalog
}

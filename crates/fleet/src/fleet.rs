//! Fleet orchestration: route → budget → simulate → verify → merge.
//!
//! The run is deterministic end to end: routing and cap scheduling are
//! sequential; the per-chip simulations are mutually independent and fan
//! out over [`uparc_sim::sweep::parallel_map`], whose results come back
//! in chip order regardless of worker count; aggregation walks chips in
//! index order. A [`FleetOutcome`] therefore renders byte-identically at
//! any `UPARC_SWEEP_THREADS` setting — `bench_fleet` gates on exactly
//! that.

use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_core::policy::PowerAwarePolicy;
use uparc_fpga::Device;
use uparc_serve::catalog::Catalog;
use uparc_serve::request::BitstreamId;
use uparc_sim::power::calib;
use uparc_sim::stats::LogHistogram;
use uparc_sim::sweep::parallel_map;
use uparc_sim::time::{Frequency, SimTime};

use crate::budget::RackBudget;
use crate::chip::{simulate_chip, ChipInput, ChipOutcome};
use crate::plan::PlanTables;
use crate::router::{RoutePolicy, RouteStats, Router};
use crate::workload::FleetWorkloadSpec;
use crate::FleetError;

/// Tolerance when checking total draw against the rack cap, mW.
const CAP_EPSILON_MW: f64 = 1e-9;

/// Fleet shape and policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of simulated UPaRC chips.
    pub chips: usize,
    /// Total rack power cap (every chip's idle included), mW.
    pub rack_cap_mw: f64,
    /// Hierarchical-budget rebalance epoch.
    pub epoch: SimTime,
    /// Per-chip decompressed-image cache budget, bytes.
    pub chip_cache_bytes: usize,
    /// Request-to-chip routing policy.
    pub route: RoutePolicy,
    /// Slowest CLK_2 the fleet is willing to run: the operating grid is
    /// restricted to this and up, and the rack budget funds exactly this
    /// floor on every chip.
    pub min_frequency: Frequency,
}

/// A calibrated fleet, ready to run workloads.
#[derive(Debug)]
pub struct Fleet {
    catalog: Catalog,
    config: FleetConfig,
    planner: PowerAwarePolicy,
    tables: PlanTables,
}

/// Merged, deterministic results of one fleet run (no wall-clock
/// anywhere — every field is reproducible bit-for-bit).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// Requests in the stream.
    pub requests: u64,
    /// Chips in the fleet.
    pub chips: usize,
    /// Requests served (always equals `requests`: the fleet drains).
    pub completed: u64,
    /// Fleet-wide decompressed-image cache hits.
    pub hits: u64,
    /// Fleet-wide cache misses (real decompressions).
    pub misses: u64,
    /// Fleet-wide cache evictions.
    pub evictions: u64,
    /// Hits over hits + misses.
    pub hit_rate: f64,
    /// Bytes actually decompressed on misses.
    pub decompressed_bytes: u64,
    /// Router tallies (warm/cold/spills; zero for random routing).
    pub route: RouteStats,
    /// Total ICAP words transferred.
    pub words: u64,
    /// Above-idle energy across the run, µJ.
    pub energy_uj: f64,
    /// When the last chip finished.
    pub makespan: SimTime,
    /// Simulated reconfiguration throughput: words / makespan.
    pub sim_words_per_sec: f64,
    /// Merged arrival-to-finish latency histogram, µs.
    pub latency_us: LogHistogram,
    /// Median latency, µs.
    pub p50_us: f64,
    /// 95th-percentile latency, µs.
    pub p95_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile latency, µs.
    pub p999_us: f64,
    /// Verified peak total draw (idle of every chip included), mW.
    pub peak_power_mw: f64,
    /// The rack cap the run was budgeted under, mW.
    pub rack_cap_mw: f64,
    /// Instants where total draw exceeded the rack cap (gated to zero).
    pub cap_violations: u64,
    /// Mean dispatched CLK_2 over all requests, MHz.
    pub mean_frequency_mhz: f64,
    /// Fewest requests any one chip served.
    pub min_chip_completed: u64,
    /// Most requests any one chip served.
    pub max_chip_completed: u64,
    /// XOR-fold of every served image (byte-identity witness).
    pub checksum: u64,
}

impl FleetOutcome {
    /// Renders the outcome as a stable multi-line digest. Two runs of
    /// the same workload must produce byte-identical digests at any
    /// worker count; `bench_fleet` gates on this.
    #[must_use]
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "requests={} chips={} completed={}\n",
            self.requests, self.chips, self.completed
        ));
        s.push_str(&format!(
            "cache: hits={} misses={} evictions={} hit_rate={:.6} decompressed_bytes={}\n",
            self.hits, self.misses, self.evictions, self.hit_rate, self.decompressed_bytes
        ));
        s.push_str(&format!(
            "route: warm={} cold={} spills={}\n",
            self.route.warm, self.route.cold, self.route.spills
        ));
        s.push_str(&format!(
            "sim: words={} makespan_us={:.3} words_per_sec={:.1} energy_uj={:.3}\n",
            self.words,
            self.makespan.as_us_f64(),
            self.sim_words_per_sec,
            self.energy_uj
        ));
        s.push_str(&format!(
            "latency_us: p50={:.3} p95={:.3} p99={:.3} p999={:.3}\n",
            self.p50_us, self.p95_us, self.p99_us, self.p999_us
        ));
        s.push_str(&format!(
            "power: peak_mw={:.3} cap_mw={:.3} violations={}\n",
            self.peak_power_mw, self.rack_cap_mw, self.cap_violations
        ));
        s.push_str(&format!(
            "balance: min_chip={} max_chip={} mean_freq_mhz={:.2} checksum={:016x}\n",
            self.min_chip_completed,
            self.max_chip_completed,
            self.mean_frequency_mhz,
            self.checksum
        ));
        s
    }
}

/// Sweeps every transfer interval across all chips and returns the
/// verified peak total draw and the number of instants above the cap.
///
/// This is the *independent* check: it ignores how the budget layer
/// decomposed the cap and simply integrates what the chips actually
/// drew, so a budgeting bug cannot hide its own violations.
fn verify_rack(outcomes: &[ChipOutcome], chips: usize, cap_mw: f64) -> (f64, u64) {
    // (time_fs, phase, delta): ends (phase 0) apply before starts
    // (phase 1) at the same instant, so back-to-back transfers don't
    // double-count at the boundary.
    let mut events: Vec<(u64, u8, f64)> = Vec::new();
    for o in outcomes {
        for &(start, end, draw) in &o.intervals {
            events.push((start, 1, draw));
            events.push((end, 0, -draw));
        }
    }
    events.sort_unstable_by_key(|a| (a.0, a.1));
    let base = chips as f64 * calib::V6_IDLE_MW;
    let mut current = base;
    let mut peak = base;
    let mut violations = 0u64;
    let mut i = 0;
    while i < events.len() {
        // Apply every event at this (instant, phase) before sampling.
        let key = (events[i].0, events[i].1);
        while i < events.len() && (events[i].0, events[i].1) == key {
            current += events[i].2;
            i += 1;
        }
        if current > peak {
            peak = current;
        }
        if key.1 == 1 && current > cap_mw + CAP_EPSILON_MW {
            violations += 1;
        }
    }
    (peak, violations)
}

impl Fleet {
    /// Builds a fleet over `catalog`, calibrating the planning tables
    /// (one measured dispatch per bitstream shape per grid frequency).
    ///
    /// # Errors
    ///
    /// [`FleetError::NoChips`], [`FleetError::EmptyCatalog`], or
    /// [`FleetError::NoAdmissibleFrequency`].
    pub fn new(catalog: Catalog, config: FleetConfig) -> Result<Self, FleetError> {
        if config.chips == 0 {
            return Err(FleetError::NoChips);
        }
        let planner = PowerAwarePolicy::paper_setup(catalog.device().family());
        let tables = PlanTables::build(&catalog, &planner, config.min_frequency)?;
        Ok(Fleet {
            catalog,
            config,
            planner,
            tables,
        })
    }

    /// The bitstream inventory.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The fleet configuration.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The operating-point planner the tables were calibrated against.
    #[must_use]
    pub fn planner(&self) -> &PowerAwarePolicy {
        &self.planner
    }

    /// The calibrated planning tables.
    #[must_use]
    pub fn tables(&self) -> &PlanTables {
        &self.tables
    }

    /// Runs `spec` through the fleet: sequential deterministic routing,
    /// hierarchical cap scheduling, parallel chip simulation, rack-cap
    /// verification, and merged summary statistics.
    ///
    /// # Errors
    ///
    /// [`FleetError::InfeasibleRackCap`] if the rack cap cannot fund
    /// every chip's idle plus the dynamic floor.
    ///
    /// # Panics
    ///
    /// Panics if `spec.requests` is zero.
    pub fn run(&self, spec: &FleetWorkloadSpec) -> Result<FleetOutcome, FleetError> {
        assert!(spec.requests > 0, "empty workload");
        let ids = self.catalog.ids();
        let chips = self.config.chips;
        let epoch_fs = self.config.epoch.as_fs().max(1);

        // Phase 1 — sequential routing + per-epoch demand accounting.
        let mut router = Router::new(
            chips,
            self.config.route,
            self.config.chip_cache_bytes,
            self.tables.mean_service_estimate(),
        );
        let mut queues: Vec<Vec<crate::workload::FleetRequest>> = vec![Vec::new(); chips];
        let mut demand: Vec<Vec<u64>> = Vec::new();
        for i in 0..spec.requests {
            let req = spec.request(i, &ids);
            let image_bytes = self.tables.facts(req.bitstream).image_bytes;
            let chip = router.route(&req, image_bytes);
            let e = (req.arrival.as_fs() / epoch_fs) as usize;
            while demand.len() <= e {
                demand.push(vec![0; chips]);
            }
            demand[e][chip] += 1;
            queues[chip].push(req);
        }

        // Phase 2 — decompose the rack cap into per-chip epoch caps.
        let budget = RackBudget {
            cap_mw: self.config.rack_cap_mw,
            epoch: self.config.epoch,
        };
        let schedule =
            budget.schedule(&demand, chips, calib::V6_IDLE_MW, self.tables.floor_mw())?;

        // Phase 3 — simulate every chip (order-preserving fan-out).
        let inputs: Vec<ChipInput> = queues
            .into_iter()
            .enumerate()
            .map(|(chip, requests)| ChipInput { chip, requests })
            .collect();
        let outcomes: Vec<ChipOutcome> = parallel_map(&inputs, |input| {
            simulate_chip(
                input,
                &self.catalog,
                &self.tables,
                &schedule,
                self.config.chip_cache_bytes,
            )
        });

        // Phase 4 — independent rack-cap verification.
        let (peak_power_mw, cap_violations) =
            verify_rack(&outcomes, chips, self.config.rack_cap_mw);

        // Phase 5 — merge (chip order, deterministic).
        let mut latency_us = LogHistogram::new();
        let mut freq_mix = vec![0u64; self.tables.grid().len()];
        let (mut completed, mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64, 0u64);
        let (mut decompressed_bytes, mut words) = (0u64, 0u64);
        let mut energy_uj = 0.0f64;
        let mut makespan = SimTime::ZERO;
        let mut checksum = 0u64;
        let (mut min_chip, mut max_chip) = (u64::MAX, 0u64);
        for o in &outcomes {
            latency_us.merge(&o.latency_us);
            for (m, c) in freq_mix.iter_mut().zip(&o.freq_mix) {
                *m += c;
            }
            completed += o.completed;
            hits += o.hits;
            misses += o.misses;
            evictions += o.evictions;
            decompressed_bytes += o.decompressed_bytes;
            words += o.words;
            energy_uj += o.energy_uj;
            makespan = makespan.max(o.finish);
            checksum ^= o.checksum;
            min_chip = min_chip.min(o.completed);
            max_chip = max_chip.max(o.completed);
        }
        let staged = hits + misses;
        let dispatched: u64 = freq_mix.iter().sum();
        let mean_frequency_mhz = if dispatched > 0 {
            freq_mix
                .iter()
                .enumerate()
                .map(|(i, &n)| self.tables.frequency(i).as_mhz() * n as f64)
                .sum::<f64>()
                / dispatched as f64
        } else {
            0.0
        };
        let span = makespan.as_secs_f64();
        Ok(FleetOutcome {
            requests: spec.requests,
            chips,
            completed,
            hits,
            misses,
            evictions,
            hit_rate: if staged > 0 {
                hits as f64 / staged as f64
            } else {
                0.0
            },
            decompressed_bytes,
            route: router.stats(),
            words,
            energy_uj,
            makespan,
            sim_words_per_sec: if span > 0.0 { words as f64 / span } else { 0.0 },
            p50_us: latency_us.percentile(50.0).unwrap_or(0.0),
            p95_us: latency_us.percentile(95.0).unwrap_or(0.0),
            p99_us: latency_us.percentile(99.0).unwrap_or(0.0),
            p999_us: latency_us.percentile(99.9).unwrap_or(0.0),
            latency_us,
            peak_power_mw,
            rack_cap_mw: self.config.rack_cap_mw,
            cap_violations,
            mean_frequency_mhz,
            min_chip_completed: min_chip,
            max_chip_completed: max_chip,
            checksum,
        })
    }
}

/// Builds a uniform synthetic catalog for fleet benches and tests:
/// `images` sparse-profile bitstreams of `frames_per_image` frames each,
/// all placed in one reconfigurable region, staged through the catalog's
/// default compressed datapath (the staging BRAM is sized to force
/// compression, so every image exercises the decompressed-image cache).
///
/// # Panics
///
/// Panics on invalid parameters (zero images/frames, or a region that
/// does not fit the device).
#[must_use]
pub fn synthetic_catalog(images: usize, frames_per_image: u32, seed: u64) -> Catalog {
    assert!(images > 0 && frames_per_image > 0, "empty catalog shape");
    let device = Device::xc5vsx50t();
    let frame_bytes = device.family().frame_bytes();
    // Size the staging BRAM below one raw image so every entry stages
    // compressed (mode word + byte count + payload must fit instead).
    let bram_bytes = (frames_per_image as usize * frame_bytes) / 2;
    let mut catalog = Catalog::new(device).with_bram_bytes(bram_bytes);
    catalog
        .add_region("pool", 100..100 + frames_per_image)
        .expect("region fits the device");
    let batch: Vec<(BitstreamId, PartialBitstream)> = (0..images)
        .map(|i| {
            let id = BitstreamId(i as u32 + 1);
            let payload = SynthProfile::sparse().generate(
                catalog.device(),
                100,
                frames_per_image,
                seed.wrapping_add(i as u64),
            );
            let bs = PartialBitstream::build(catalog.device(), 100, &payload);
            (id, bs)
        })
        .collect();
    catalog
        .register_batch(batch)
        .expect("synthetic batch registers");
    catalog
}

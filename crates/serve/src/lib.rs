//! # uparc-serve — a multi-tenant reconfiguration service on top of UPaRC
//!
//! The paper's whole point is that reconfiguration speed and power are a
//! *run-time* trade: DyCloGen retunes CLK_2 per request. This crate adds
//! the layer an on-demand hardware-task system needs to exploit that — a
//! long-running service that multiplexes many concurrent reconfiguration
//! requests over a fixed set of partial regions under a chip-level power
//! cap:
//!
//! * [`request`] — typed [`request::ReconfigRequest`]s (target region,
//!   bitstream id, deadline, priority, optional energy budget) and the
//!   typed [`request::AdmissionError`]s the admission layer rejects with;
//! * [`catalog`] — the bitstream inventory, validated against the device
//!   floorplan (every bitstream maps to exactly one reconfigurable
//!   region) with staging mode and size precomputed per entry;
//! * [`dynamic`] — the allocator-driven counterpart for churn workloads:
//!   admission consults a [`uparc_fpga::alloc::FrameAllocator`] for a
//!   window and the image is relocated (FAR rewrite + CRC replay) to
//!   wherever the window landed;
//! * [`scheduler`] — the scheduling policies ([`scheduler::Policy::Fifo`],
//!   [`scheduler::Policy::EarliestDeadlineFirst`],
//!   [`scheduler::Policy::PowerGreedy`]) and their candidate ordering;
//! * [`workload`] — seeded, reproducible open-loop arrival processes
//!   (uniform / bursty / diurnal) over the inventory;
//! * [`service`] — the service itself: per-region run queues driven by
//!   the `uparc-sim` event engine, one [`uparc_core::UParc`] controller
//!   bank per region, operating points chosen through
//!   [`uparc_core::policy::PowerAwarePolicy::plan_constrained`], and the
//!   self-healing [`uparc_core::recovery::RecoveryPolicy`] wrapped around
//!   every dispatch;
//! * [`metrics`] — per-request completion records, the scheduler's power
//!   envelope, and latency/miss-rate/energy summaries.
//!
//! # Architecture
//!
//! One event-driven scheduler multiplexes per-region UPaRC lanes; the
//! [`obs`] handle in [`service::ServiceConfig`] threads through every
//! layer, so a single `TraceRecorder` sees admission decisions, dispatch
//! spans and the power-cap samples on one timeline:
//!
//! ```text
//!   workload ----> admission ----> ready queues ----> dispatch
//!   (seeded         (catalog,       (one per            |
//!    arrivals)       deadline,       region,            v
//!       |            region          policy-     +-------------+
//!       |            checks)         ordered)    | UParc lane  | x regions
//!       v              |                         | (recovery-  |
//!    Admission      Admission                    |  wrapped)   |
//!    instants       instants                     +-------------+
//!                                                      |
//!   power cap <---- CapSample instants <---- per-lane busy power
//!   (defer when over budget)                 (sampled each event)
//! ```
//!
//! # Example
//!
//! ```
//! use uparc_fpga::Device;
//! use uparc_serve::catalog::Catalog;
//! use uparc_serve::scheduler::Policy;
//! use uparc_serve::service::{Service, ServiceConfig};
//! use uparc_serve::workload::{ArrivalPattern, WorkloadSpec};
//! use uparc_serve::request::BitstreamId;
//! use uparc_bitstream::{builder::PartialBitstream, synth::SynthProfile};
//! use uparc_sim::time::SimTime;
//!
//! let device = Device::xc5vsx50t();
//! let mut catalog = Catalog::new(device.clone());
//! let region = catalog.add_region("rp0", 100..160)?;
//! let payload = SynthProfile::dense().generate(&device, 100, 40, 7);
//! let bs = PartialBitstream::build(&device, 100, &payload);
//! catalog.register(BitstreamId(1), bs)?;
//!
//! let service = Service::new(catalog, ServiceConfig {
//!     policy: Policy::EarliestDeadlineFirst,
//!     ..ServiceConfig::default()
//! });
//! let spec = WorkloadSpec {
//!     requests: 10,
//!     mean_gap: SimTime::from_us(400),
//!     pattern: ArrivalPattern::Uniform,
//!     ..WorkloadSpec::default()
//! };
//! let requests = spec.generate(42, service.catalog());
//! let metrics = service.run(&requests);
//! assert_eq!(metrics.completions.len(), 10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod dynamic;
pub mod metrics;
pub mod request;
pub mod scheduler;
pub mod service;
pub mod thermal;
pub mod workload;

pub use catalog::Catalog;
pub use dynamic::DynamicCatalog;
pub use metrics::{ServiceMetrics, ServiceSummary};
pub use request::{AdmissionError, ReconfigRequest};
pub use scheduler::Policy;
pub use service::{Service, ServiceConfig};
pub use workload::WorkloadSpec;

/// Structured observability, re-exported from [`uparc_sim::obs`]: set
/// [`service::ServiceConfig::obs`] to an [`obs::Obs`] built around an
/// [`obs::TraceRecorder`] to capture `Admission` / `Dispatch` / `CapSample`
/// events and the `serve.*` metrics alongside the per-lane controller
/// spans.
pub mod obs {
    pub use uparc_sim::obs::{
        chrome_trace, flame_summary, EventKind, Histogram, Metrics, MetricsSnapshot, NullRecorder,
        Obs, Recorder, SpanId, TraceEvent, TraceRecorder,
    };
}

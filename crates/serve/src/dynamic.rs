//! Allocator-driven placement: the dynamic counterpart of [`crate::catalog`].
//!
//! The static [`crate::catalog::Catalog`] resolves every bitstream to a
//! fixed floorplan region at registration time. Under tenant churn there
//! is no fixed floorplan: a tenant asks for *n* contiguous frames, the
//! admission layer consults a [`FrameAllocator`] for a window, and the
//! image is *relocated* — FAR rewritten, CRC recomputed — to wherever the
//! window landed. [`DynamicCatalog`] owns that loop, and gives the
//! background defragmenter the targeted-move primitive
//! ([`DynamicCatalog::relocate_to`]) it compacts the frame space with.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Range;

use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::error::BitstreamError;
use uparc_fpga::alloc::{AllocError, FitPolicy, FragStats, FrameAllocator};
use uparc_fpga::Device;

use crate::request::BitstreamId;

/// Why a dynamic placement operation failed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlacementError {
    /// The id is already placed.
    Duplicate {
        /// The conflicting id.
        id: BitstreamId,
    },
    /// No image with this id is currently placed.
    Unknown {
        /// The missing id.
        id: BitstreamId,
    },
    /// The allocator has no window large enough — the typed admission
    /// rejection. `largest_free < requested <= total_free` means the
    /// capacity exists but is trapped in fragments (a defragmenter's
    /// cue); `total_free < requested` means the device is simply full.
    NoCapacity {
        /// Contiguous frames the image needs.
        requested: u32,
        /// Largest contiguous free block.
        largest_free: u32,
        /// Total free frames across all blocks.
        total_free: u32,
    },
    /// The allocator rejected a targeted window operation.
    Alloc(AllocError),
    /// Relocation failed (wrong device, window off the end).
    Bitstream(BitstreamError),
}

impl PlacementError {
    /// True when the rejection is due to fragmentation alone: enough
    /// total free capacity exists, but no single block fits the request.
    #[must_use]
    pub fn is_trapped_capacity(&self) -> bool {
        matches!(
            self,
            PlacementError::NoCapacity {
                requested,
                total_free,
                ..
            } if requested <= total_free
        )
    }
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Duplicate { id } => write!(f, "{id} already placed"),
            PlacementError::Unknown { id } => write!(f, "{id} not placed"),
            PlacementError::NoCapacity {
                requested,
                largest_free,
                total_free,
            } => write!(
                f,
                "no window for {requested} frames (largest free {largest_free}, \
                 total free {total_free})"
            ),
            PlacementError::Alloc(e) => write!(f, "allocator: {e}"),
            PlacementError::Bitstream(e) => write!(f, "relocation: {e}"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl From<AllocError> for PlacementError {
    fn from(e: AllocError) -> Self {
        PlacementError::Alloc(e)
    }
}

impl From<BitstreamError> for PlacementError {
    fn from(e: BitstreamError) -> Self {
        PlacementError::Bitstream(e)
    }
}

/// One live image under dynamic placement.
#[derive(Debug, Clone)]
pub struct PlacedImage {
    bitstream: PartialBitstream,
    window: Range<u32>,
}

impl PlacedImage {
    /// The image, relocated to its current window.
    #[must_use]
    pub fn bitstream(&self) -> &PartialBitstream {
        &self.bitstream
    }

    /// The frame window the image currently occupies.
    #[must_use]
    pub fn window(&self) -> Range<u32> {
        self.window.clone()
    }
}

/// An allocator-backed bitstream inventory for churn workloads.
///
/// Every [`DynamicCatalog::load`] is an admission decision: the allocator
/// either hands back a window (and the image is relocated into it) or the
/// caller gets a typed [`PlacementError::NoCapacity`] carrying the
/// fragmentation facts needed to decide between shedding the tenant and
/// waiting for the defragmenter.
#[derive(Debug, Clone)]
pub struct DynamicCatalog {
    device: Device,
    allocator: FrameAllocator,
    policy: FitPolicy,
    entries: BTreeMap<BitstreamId, PlacedImage>,
}

impl DynamicCatalog {
    /// An empty dynamic catalog over the whole frame space of `device`.
    #[must_use]
    pub fn new(device: Device, policy: FitPolicy) -> Self {
        let allocator = FrameAllocator::for_device(&device);
        DynamicCatalog {
            device,
            allocator,
            policy,
            entries: BTreeMap::new(),
        }
    }

    /// The placement device.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The configured fit policy.
    #[must_use]
    pub fn policy(&self) -> FitPolicy {
        self.policy
    }

    /// Read access to the underlying allocator (fragmentation queries).
    #[must_use]
    pub fn allocator(&self) -> &FrameAllocator {
        &self.allocator
    }

    /// Carves a static-logic window out before any tenant lands.
    ///
    /// # Errors
    ///
    /// Forwards the allocator's [`AllocError`] when the window is not
    /// free or out of range.
    pub fn reserve_static(&mut self, window: Range<u32>) -> Result<(), PlacementError> {
        self.allocator.reserve(window)?;
        Ok(())
    }

    /// Places `bitstream` wherever the allocator finds a window, relocating
    /// the image there. Returns the window.
    ///
    /// # Errors
    ///
    /// [`PlacementError::Duplicate`] for a live id,
    /// [`PlacementError::NoCapacity`] when no window fits,
    /// [`PlacementError::Bitstream`] if relocation fails (the window is
    /// rolled back).
    pub fn load(
        &mut self,
        id: BitstreamId,
        bitstream: &PartialBitstream,
    ) -> Result<Range<u32>, PlacementError> {
        if self.entries.contains_key(&id) {
            return Err(PlacementError::Duplicate { id });
        }
        let frames = bitstream.frame_count();
        let window = match self.allocator.alloc(frames, self.policy) {
            Ok(w) => w,
            Err(AllocError::Exhausted { requested, .. }) => {
                return Err(PlacementError::NoCapacity {
                    requested,
                    largest_free: self.allocator.largest_free(),
                    total_free: self.allocator.total_free(),
                });
            }
            Err(e) => return Err(e.into()),
        };
        let placed = match bitstream.relocate(&self.device, window.start) {
            Ok(bs) => bs,
            Err(e) => {
                self.allocator
                    .free(window)
                    .expect("fresh window frees cleanly");
                return Err(e.into());
            }
        };
        self.entries.insert(
            id,
            PlacedImage {
                bitstream: placed,
                window: window.clone(),
            },
        );
        Ok(window)
    }

    /// Removes a live image, returning the freed window (coalesced into
    /// the free list).
    ///
    /// # Errors
    ///
    /// [`PlacementError::Unknown`] for an id that is not placed.
    pub fn unload(&mut self, id: BitstreamId) -> Result<Range<u32>, PlacementError> {
        let entry = self
            .entries
            .remove(&id)
            .ok_or(PlacementError::Unknown { id })?;
        self.allocator
            .free(entry.window.clone())
            .expect("live windows free cleanly");
        Ok(entry.window)
    }

    /// Moves a live image to `new_start` (the defragmenter's primitive).
    /// The destination may overlap the source — the old window is freed
    /// before the new one is claimed, exactly like a downward memmove.
    /// Returns `(from, to)` windows. On failure the image stays put.
    ///
    /// # Errors
    ///
    /// [`PlacementError::Unknown`] for an unplaced id,
    /// [`PlacementError::Bitstream`] when the image does not fit at
    /// `new_start`, [`PlacementError::Alloc`] when another image holds
    /// part of the destination.
    pub fn relocate_to(
        &mut self,
        id: BitstreamId,
        new_start: u32,
    ) -> Result<(Range<u32>, Range<u32>), PlacementError> {
        let entry = self
            .entries
            .get(&id)
            .ok_or(PlacementError::Unknown { id })?;
        let old = entry.window.clone();
        let frames = entry.bitstream.frame_count();
        // Pure step first: a relocation failure leaves the allocator
        // untouched.
        let moved = entry.bitstream.relocate(&self.device, new_start)?;
        let new = new_start..new_start + frames;
        self.allocator
            .free(old.clone())
            .expect("live windows free cleanly");
        if let Err(e) = self.allocator.alloc_at(new.clone()) {
            self.allocator
                .alloc_at(old.clone())
                .expect("rollback to the old window");
            return Err(e.into());
        }
        let entry = self.entries.get_mut(&id).expect("entry is live");
        entry.bitstream = moved;
        entry.window = new.clone();
        Ok((old, new))
    }

    /// The live image for `id`, if placed.
    #[must_use]
    pub fn get(&self, id: BitstreamId) -> Option<&PlacedImage> {
        self.entries.get(&id)
    }

    /// Iterates live `(id, image)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (BitstreamId, &PlacedImage)> {
        self.entries.iter().map(|(id, e)| (*id, e))
    }

    /// Number of live images.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no image is placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fragmentation snapshot of the underlying allocator.
    #[must_use]
    pub fn frag_stats(&self) -> FragStats {
        self.allocator.frag_stats()
    }

    /// Verifies that live windows and the allocator agree exactly and no
    /// two placed images overlap; forwards the allocator's own invariant
    /// check.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.allocator.check_invariants()?;
        let mut windows: Vec<Range<u32>> =
            self.entries.values().map(|e| e.window.clone()).collect();
        windows.sort_by_key(|w| w.start);
        for pair in windows.windows(2) {
            if pair[1].start < pair[0].end {
                return Err(format!(
                    "placed images overlap: {}..{} and {}..{}",
                    pair[0].start, pair[0].end, pair[1].start, pair[1].end
                ));
            }
        }
        if windows != self.allocator.live() {
            return Err("catalog windows drifted from allocator live list".to_owned());
        }
        for e in self.entries.values() {
            if e.bitstream.far() != e.window.start
                || e.bitstream.frame_count() != e.window.end - e.window.start
            {
                return Err(format!(
                    "image at FAR {} disagrees with window {}..{}",
                    e.bitstream.far(),
                    e.window.start,
                    e.window.end
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::synth::SynthProfile;
    use uparc_fpga::device::Geometry;
    use uparc_fpga::Family;

    fn tiny(minors: u32) -> Device {
        let geometry = Geometry {
            rows: 1,
            majors: 1,
            minors,
        };
        Device::custom("tiny", Family::Virtex5, 0x0123_4567, geometry, 100, 10)
    }

    fn image(device: &Device, frames: u32, seed: u64) -> PartialBitstream {
        let payload = SynthProfile::dense().generate(device, 0, frames, seed);
        PartialBitstream::build(device, 0, &payload)
    }

    fn catalog() -> DynamicCatalog {
        DynamicCatalog::new(Device::xc5vsx50t(), FitPolicy::FirstFit)
    }

    #[test]
    fn load_relocates_to_the_allocated_window() {
        let mut cat = catalog();
        let device = cat.device().clone();
        let bs = image(&device, 10, 1);
        let w = cat.load(BitstreamId(1), &bs).unwrap();
        assert_eq!(w, 0..10);
        let placed = cat.get(BitstreamId(1)).unwrap();
        assert_eq!(placed.bitstream().far(), 0);
        // The stored image is byte-identical to a fresh build at the
        // window (the bitstream was already at FAR 0 here; move a second
        // image to a nonzero window to see a real rewrite).
        let bs2 = image(&device, 7, 2);
        let w2 = cat.load(BitstreamId(2), &bs2).unwrap();
        assert_eq!(w2, 10..17);
        let fresh = PartialBitstream::build(&device, 10, bs2.payload());
        assert_eq!(cat.get(BitstreamId(2)).unwrap().bitstream(), &fresh);
        cat.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_and_unknown_ids_are_typed() {
        let mut cat = catalog();
        let device = cat.device().clone();
        let bs = image(&device, 4, 3);
        cat.load(BitstreamId(9), &bs).unwrap();
        assert_eq!(
            cat.load(BitstreamId(9), &bs),
            Err(PlacementError::Duplicate { id: BitstreamId(9) })
        );
        assert_eq!(
            cat.unload(BitstreamId(8)),
            Err(PlacementError::Unknown { id: BitstreamId(8) })
        );
        assert_eq!(cat.unload(BitstreamId(9)), Ok(0..4));
        assert!(cat.is_empty());
    }

    #[test]
    fn exhaustion_is_a_no_capacity_rejection() {
        let device = tiny(32);
        let mut cat = DynamicCatalog::new(device.clone(), FitPolicy::FirstFit);
        cat.load(BitstreamId(0), &image(&device, 20, 4)).unwrap();
        let err = cat
            .load(BitstreamId(1), &image(&device, 20, 5))
            .unwrap_err();
        assert_eq!(
            err,
            PlacementError::NoCapacity {
                requested: 20,
                largest_free: 12,
                total_free: 12,
            }
        );
        assert!(!err.is_trapped_capacity());
    }

    #[test]
    fn trapped_capacity_is_distinguished_from_full() {
        let device = tiny(30);
        let mut cat = DynamicCatalog::new(device.clone(), FitPolicy::FirstFit);
        for i in 0..3u32 {
            cat.load(BitstreamId(i), &image(&device, 10, u64::from(i)))
                .unwrap();
        }
        // Free the outer two: 20 free frames, largest block 10.
        cat.unload(BitstreamId(0)).unwrap();
        cat.unload(BitstreamId(2)).unwrap();
        let err = cat
            .load(BitstreamId(3), &image(&device, 15, 9))
            .unwrap_err();
        assert!(err.is_trapped_capacity(), "{err}");
    }

    #[test]
    fn relocate_to_supports_overlapping_downward_moves() {
        let mut cat = catalog();
        let device = cat.device().clone();
        let a = cat.load(BitstreamId(1), &image(&device, 10, 6)).unwrap();
        let bs_b = image(&device, 10, 7);
        cat.load(BitstreamId(2), &bs_b).unwrap();
        cat.unload(BitstreamId(1)).unwrap();
        let _ = a;
        // Image 2 lives at 10..20 with 0..10 free: slide it down 5.
        let (from, to) = cat.relocate_to(BitstreamId(2), 5).unwrap();
        assert_eq!((from, to), (10..20, 5..15));
        let fresh = PartialBitstream::build(&device, 5, bs_b.payload());
        assert_eq!(cat.get(BitstreamId(2)).unwrap().bitstream(), &fresh);
        cat.check_invariants().unwrap();
        // Moving onto another live image fails and rolls back.
        cat.load(BitstreamId(3), &image(&device, 10, 8)).unwrap(); // 15..25? no: first fit → 0..5? size 10 → 15..25
        let before = cat.get(BitstreamId(2)).unwrap().window();
        assert!(matches!(
            cat.relocate_to(BitstreamId(2), 20),
            Err(PlacementError::Alloc(_))
        ));
        assert_eq!(cat.get(BitstreamId(2)).unwrap().window(), before);
        cat.check_invariants().unwrap();
    }

    #[test]
    fn reserve_static_excludes_windows_from_placement() {
        let mut cat = catalog();
        let device = cat.device().clone();
        cat.reserve_static(0..100).unwrap();
        let w = cat.load(BitstreamId(1), &image(&device, 10, 10)).unwrap();
        assert_eq!(w, 100..110);
        cat.check_invariants().unwrap();
    }
}

//! Seeded synthetic workload generation.
//!
//! Open-loop arrival processes over a [`Catalog`]'s inventory: requests
//! arrive on their own clock regardless of service progress, which is
//! the regime where admission control and power-aware scheduling
//! actually matter. Generation is fully determined by `(spec, seed,
//! catalog)` — same inputs, byte-identical request trace.

use rand::{RngExt, SeedableRng, StdRng};
use uparc_sim::time::SimTime;

use crate::catalog::Catalog;
use crate::request::{Priority, ReconfigRequest, RequestId};

/// Shape of the inter-arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Gaps uniform in `[0, 2 * mean_gap)` — a flat open-loop stream.
    Uniform,
    /// Requests arrive in back-to-back bursts of the given size; the
    /// whole burst budget is spent as one gap before each burst.
    Bursty {
        /// Number of requests per burst (>= 1).
        burst: usize,
    },
    /// Arrival rate swings over a period: troughs at twice the mean gap,
    /// crests at half of it, with a triangular profile in between.
    Diurnal {
        /// Length of one load cycle.
        period: SimTime,
    },
    /// Every gap is exactly the mean — a metronome. With a mean gap at
    /// or below the service time this holds every lane at ~100% duty,
    /// the regime that forces sustained thermal throttling.
    Sustained,
}

/// Parameters of one synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Number of requests to generate.
    pub requests: usize,
    /// Mean inter-arrival gap.
    pub mean_gap: SimTime,
    /// Arrival process shape.
    pub pattern: ArrivalPattern,
    /// When set, each request gets a deadline `arrival + U[lo, hi]`
    /// microseconds.
    pub deadline_slack_us: Option<(u64, u64)>,
    /// When set, every request carries this energy budget.
    pub energy_budget_uj: Option<f64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            requests: 100,
            mean_gap: SimTime::from_us(200),
            pattern: ArrivalPattern::Uniform,
            deadline_slack_us: None,
            energy_budget_uj: None,
        }
    }
}

impl WorkloadSpec {
    /// Generates the request trace, sorted by arrival time.
    ///
    /// Bitstreams are drawn uniformly from the catalog; each request
    /// targets the region its bitstream is registered for, so every
    /// generated request passes the catalog-level admission checks.
    ///
    /// # Panics
    ///
    /// Panics if the catalog is empty or a burst size is zero.
    #[must_use]
    pub fn generate(&self, seed: u64, catalog: &Catalog) -> Vec<ReconfigRequest> {
        let ids = catalog.ids();
        assert!(!ids.is_empty(), "workload needs a non-empty catalog");
        let mut rng = StdRng::seed_from_u64(seed);
        let mean_fs = self.mean_gap.as_secs_f64() * 1e15;
        let mut now_fs: f64 = 0.0;
        let mut out = Vec::with_capacity(self.requests);
        for i in 0..self.requests {
            let gap_fs = match self.pattern {
                ArrivalPattern::Uniform => rng.random::<f64>() * 2.0 * mean_fs,
                ArrivalPattern::Bursty { burst } => {
                    assert!(burst >= 1, "burst size must be >= 1");
                    if i % burst == 0 {
                        rng.random::<f64>() * 2.0 * mean_fs * burst as f64
                    } else {
                        0.0
                    }
                }
                ArrivalPattern::Diurnal { period } => {
                    let period_fs = (period.as_secs_f64() * 1e15).max(1.0);
                    let phase = (now_fs / period_fs).fract();
                    // Triangular load profile: gap factor 0.5 at the
                    // crest (phase 0.5), 2.0 at the troughs (phase 0/1).
                    let factor = 0.5 + 3.0 * (phase - 0.5).abs();
                    rng.random::<f64>() * 2.0 * mean_fs * factor
                }
                ArrivalPattern::Sustained => mean_fs,
            };
            now_fs += gap_fs;
            let arrival = SimTime::from_secs_f64(now_fs * 1e-15);
            let bitstream = ids[rng.random_range(0..ids.len())];
            let region = catalog
                .entry(bitstream)
                .expect("id came from the catalog")
                .region();
            let priority = match rng.random_range(0..10u32) {
                0..=5 => Priority::Normal,
                6..=7 => Priority::High,
                _ => Priority::Low,
            };
            let deadline = self.deadline_slack_us.map(|(lo, hi)| {
                let slack = if hi > lo {
                    rng.random_range(lo..hi)
                } else {
                    lo
                };
                arrival + SimTime::from_us(slack)
            });
            out.push(ReconfigRequest {
                id: RequestId(i as u64),
                bitstream,
                region,
                arrival,
                deadline,
                priority,
                energy_budget_uj: self.energy_budget_uj,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::BitstreamId;
    use uparc_bitstream::builder::PartialBitstream;
    use uparc_bitstream::synth::SynthProfile;
    use uparc_fpga::Device;

    fn sample_catalog() -> Catalog {
        let device = Device::xc5vsx50t();
        let mut cat = Catalog::new(device);
        cat.add_region("rp0", 100..160).unwrap();
        cat.add_region("rp1", 200..240).unwrap();
        for (id, far, frames) in [(1u32, 100, 30), (2, 110, 20), (3, 200, 25)] {
            let payload = SynthProfile::dense().generate(cat.device(), far, frames, u64::from(id));
            let bs = PartialBitstream::build(cat.device(), far, &payload);
            cat.register(BitstreamId(id), bs).unwrap();
        }
        cat
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cat = sample_catalog();
        let spec = WorkloadSpec {
            requests: 50,
            deadline_slack_us: Some((50, 500)),
            energy_budget_uj: Some(900.0),
            ..WorkloadSpec::default()
        };
        let a = spec.generate(7, &cat);
        let b = spec.generate(7, &cat);
        let c = spec.generate(8, &cat);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn arrivals_are_sorted_and_regions_match_catalog() {
        let cat = sample_catalog();
        for pattern in [
            ArrivalPattern::Uniform,
            ArrivalPattern::Bursty { burst: 5 },
            ArrivalPattern::Diurnal {
                period: SimTime::from_ms(2),
            },
            ArrivalPattern::Sustained,
        ] {
            let spec = WorkloadSpec {
                requests: 40,
                pattern,
                ..WorkloadSpec::default()
            };
            let reqs = spec.generate(11, &cat);
            for w in reqs.windows(2) {
                assert!(w[0].arrival <= w[1].arrival);
            }
            for r in &reqs {
                assert_eq!(cat.entry(r.bitstream).unwrap().region(), r.region);
            }
        }
    }

    #[test]
    fn bursts_share_an_arrival_instant() {
        let cat = sample_catalog();
        let spec = WorkloadSpec {
            requests: 20,
            pattern: ArrivalPattern::Bursty { burst: 4 },
            ..WorkloadSpec::default()
        };
        let reqs = spec.generate(3, &cat);
        // Within a burst, gaps are zero.
        for chunk in reqs.chunks(4) {
            for w in chunk.windows(2) {
                assert_eq!(w[0].arrival, w[1].arrival);
            }
        }
    }

    #[test]
    fn sustained_arrivals_are_a_metronome() {
        let cat = sample_catalog();
        let spec = WorkloadSpec {
            requests: 12,
            mean_gap: SimTime::from_us(80),
            pattern: ArrivalPattern::Sustained,
            ..WorkloadSpec::default()
        };
        let reqs = spec.generate(4, &cat);
        for w in reqs.windows(2) {
            assert_eq!(
                w[1].arrival.saturating_sub(w[0].arrival),
                SimTime::from_us(80)
            );
        }
    }

    #[test]
    fn deadlines_respect_slack_bounds() {
        let cat = sample_catalog();
        let spec = WorkloadSpec {
            requests: 60,
            deadline_slack_us: Some((100, 400)),
            ..WorkloadSpec::default()
        };
        for r in spec.generate(9, &cat) {
            let d = r.deadline.unwrap();
            let slack = d.saturating_sub(r.arrival);
            assert!(slack >= SimTime::from_us(100));
            assert!(slack < SimTime::from_us(400));
        }
    }
}

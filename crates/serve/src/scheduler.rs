//! Scheduling policies and candidate ordering.
//!
//! The service keeps one run queue per region; whenever a region's
//! controller lane goes idle, the policy decides which queued request to
//! try next. Ordering is the whole policy — feasibility (does an
//! operating point exist under the current power headroom?) is checked
//! by the service per candidate, in the order produced here.

use std::collections::VecDeque;

use uparc_sim::time::SimTime;

use crate::request::{Priority, RequestId};

/// Which request a freed lane picks next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// Strict arrival order. Never reorders; a request that cannot
    /// dispatch (e.g. no operating point under the cap) blocks its
    /// region's queue until conditions change.
    #[default]
    Fifo,
    /// Earliest absolute deadline first; requests whose deadline is
    /// already unreachable are deferred behind every still-feasible one
    /// so they cannot drag feasible work into lateness. Ties break on
    /// priority (high first), then arrival order.
    EarliestDeadlineFirst,
    /// Deadline-ordered like EDF, but a candidate that does not fit the
    /// current power headroom is skipped instead of blocking, letting
    /// later (cheaper) requests backfill the budget.
    PowerGreedy,
}

impl Policy {
    /// All policies, in reporting order.
    pub const ALL: [Policy; 3] = [
        Policy::Fifo,
        Policy::EarliestDeadlineFirst,
        Policy::PowerGreedy,
    ];

    /// Stable label for reports and JSON keys.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Policy::Fifo => "fifo",
            Policy::EarliestDeadlineFirst => "edf",
            Policy::PowerGreedy => "power-greedy",
        }
    }
}

/// A queued request, reduced to what ordering needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Queued {
    /// Index into the service's request slice.
    pub req: usize,
    /// Request id (final tie-break: arrival order).
    pub id: RequestId,
    /// Absolute deadline, [`SimTime::MAX`] when none.
    pub deadline: SimTime,
    /// Tie-break priority.
    pub priority: Priority,
}

/// Returns queue positions in the order the policy wants them tried.
///
/// `Fifo` yields only the head — by definition nothing may overtake it.
/// `EarliestDeadlineFirst` yields only its single best pick: if that
/// pick cannot dispatch, EDF waits (it reorders, it does not skip).
/// `PowerGreedy` yields the full queue in EDF order so the service can
/// fall through to the first candidate that fits the power headroom.
pub(crate) fn candidate_order(
    policy: Policy,
    queue: &VecDeque<Queued>,
    now: SimTime,
) -> Vec<usize> {
    if queue.is_empty() {
        return Vec::new();
    }
    match policy {
        Policy::Fifo => vec![0],
        Policy::EarliestDeadlineFirst | Policy::PowerGreedy => {
            let mut order: Vec<usize> = (0..queue.len()).collect();
            order.sort_by_key(|&i| {
                let q = &queue[i];
                // A deadline already in the past is hopeless; schedule it
                // after all still-feasible requests (it will run — and be
                // counted missed — but must not make others late too).
                let hopeless = q.deadline < now;
                (hopeless, q.deadline, std::cmp::Reverse(q.priority), q.id)
            });
            if policy == Policy::EarliestDeadlineFirst {
                order.truncate(1);
            }
            order
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(req: usize, deadline_us: Option<u64>, priority: Priority) -> Queued {
        Queued {
            req,
            id: RequestId(req as u64),
            deadline: deadline_us.map_or(SimTime::MAX, SimTime::from_us),
            priority,
        }
    }

    #[test]
    fn fifo_only_offers_the_head() {
        let queue: VecDeque<Queued> = [
            q(0, Some(900), Priority::Low),
            q(1, Some(10), Priority::High),
        ]
        .into();
        assert_eq!(candidate_order(Policy::Fifo, &queue, SimTime::ZERO), [0]);
    }

    #[test]
    fn edf_picks_earliest_deadline_then_priority() {
        let queue: VecDeque<Queued> = [
            q(0, Some(500), Priority::Normal),
            q(1, Some(100), Priority::Low),
            q(2, Some(100), Priority::High),
            q(3, None, Priority::High),
        ]
        .into();
        let order = candidate_order(Policy::EarliestDeadlineFirst, &queue, SimTime::ZERO);
        assert_eq!(order, [2], "deadline 100us + High wins");
    }

    #[test]
    fn power_greedy_orders_whole_queue() {
        let queue: VecDeque<Queued> = [
            q(0, Some(500), Priority::Normal),
            q(1, Some(100), Priority::Low),
            q(2, None, Priority::Normal),
        ]
        .into();
        let order = candidate_order(Policy::PowerGreedy, &queue, SimTime::ZERO);
        assert_eq!(order, [1, 0, 2]);
    }

    #[test]
    fn hopeless_deadlines_defer_behind_feasible_work() {
        let queue: VecDeque<Queued> = [
            q(0, Some(10), Priority::High), // already past at now=50us
            q(1, Some(900), Priority::Low),
        ]
        .into();
        let order = candidate_order(Policy::PowerGreedy, &queue, SimTime::from_us(50));
        assert_eq!(order, [1, 0]);
    }
}

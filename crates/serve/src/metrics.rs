//! Per-request records and run-level summaries.

use uparc_sim::stats::LogHistogram;
use uparc_sim::time::{Frequency, SimTime};

use crate::request::{AdmissionError, RegionId, RequestId};

/// One successfully served request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Request id.
    pub id: RequestId,
    /// Region it reconfigured.
    pub region: RegionId,
    /// When the request arrived.
    pub arrival: SimTime,
    /// When it left the queue and started dispatch.
    pub dispatched: SimTime,
    /// When the reconfiguration finished.
    pub finished: SimTime,
    /// Its absolute deadline, if any.
    pub deadline: Option<SimTime>,
    /// Whether it finished after its deadline.
    pub missed: bool,
    /// Reconfiguration clock (CLK_2) the scheduler chose.
    pub frequency: Frequency,
    /// Core-rail voltage the scheduler chose (the nominal 1.0 V when
    /// DVFS is off).
    pub volts: f64,
    /// Whether the thermal governor demoted the operating point for
    /// this dispatch.
    pub throttled: bool,
    /// Whether the compressed datapath served it.
    pub compressed: bool,
    /// Total energy spent, recovery overhead included, in microjoules.
    pub energy_uj: f64,
    /// Reconfiguration attempts the recovery layer needed.
    pub attempts: u32,
    /// Whether recovery had to intervene.
    pub healed: bool,
}

impl Completion {
    /// Arrival-to-finish latency.
    #[must_use]
    pub fn latency(&self) -> SimTime {
        self.finished.saturating_sub(self.arrival)
    }
}

/// One rejected request.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// Request id.
    pub id: RequestId,
    /// When admission rejected it.
    pub at: SimTime,
    /// Why.
    pub reason: AdmissionError,
}

/// One request that was admitted but whose dispatch ultimately failed
/// even after recovery.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Request id.
    pub id: RequestId,
    /// When the dispatch gave up.
    pub at: SimTime,
    /// The controller error, stringified.
    pub error: String,
}

/// Total reconfiguration-path power at one scheduling instant.
#[derive(Debug, Clone, Copy)]
pub struct PowerSample {
    /// Sample time.
    pub at: SimTime,
    /// Summed draw of all active lanes plus static idle, in milliwatts.
    pub total_mw: f64,
}

/// Everything one service run produced.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Served requests, in completion order.
    pub completions: Vec<Completion>,
    /// Rejected requests, in rejection order.
    pub rejections: Vec<Rejection>,
    /// Admitted requests whose dispatch failed terminally.
    pub failures: Vec<Failure>,
    /// Power envelope, one sample per scheduling instant.
    pub power: Vec<PowerSample>,
    /// Scheduling instants where total draw exceeded the cap.
    pub cap_violations: u64,
    /// Requests still queued when the run drained.
    pub unserved: usize,
    /// Time of the last event in the run.
    pub makespan: SimTime,
    /// Dispatches the thermal governor demoted to a cooler operating
    /// point (zero when the thermal layer is off).
    pub thermal_throttles: u64,
    /// Dispatches whose end-of-dispatch region temperature exceeded the
    /// configured limit — the governor is designed to keep this at
    /// exactly zero.
    pub overtemp_dispatches: u64,
    /// Hottest end-of-dispatch region temperature seen, °C (ambient if
    /// nothing dispatched or the thermal layer is off).
    pub peak_temp_c: f64,
}

impl ServiceMetrics {
    /// Streaming log₂ histogram of arrival-to-finish latencies in
    /// microseconds. This is the same mergeable implementation fleet
    /// shards use, so a single-chip summary and a fleet-wide one report
    /// quantiles through one code path.
    #[must_use]
    pub fn latency_histogram(&self) -> LogHistogram {
        let mut hist = LogHistogram::new();
        for c in &self.completions {
            hist.observe(c.latency().as_us_f64());
        }
        hist
    }

    /// Condenses the run into headline numbers.
    ///
    /// Latency quantiles come from the mergeable [`LogHistogram`] rather
    /// than an exact sort, so they are within one bucket (≤12.5%
    /// relative) of the sorted-vector answer; a test pins that bound
    /// against `stats::percentile`.
    #[must_use]
    pub fn summary(&self) -> ServiceSummary {
        let completed = self.completions.len();
        let hist = self.latency_histogram();
        // Phase split: completions recovery had to intervene on are the
        // degraded phase. One reusable histogram, `clear()`ed between
        // phases, reports each tail on its own — a handful of healed
        // requests with millisecond recovery detours would otherwise be
        // invisible inside the steady-state p99.
        let mut phase = LogHistogram::new();
        for c in self.completions.iter().filter(|c| !c.healed) {
            phase.observe(c.latency().as_us_f64());
        }
        let p99_steady = phase.percentile(99.0).unwrap_or(0.0);
        phase.clear();
        let mut degraded = 0usize;
        for c in self.completions.iter().filter(|c| c.healed) {
            phase.observe(c.latency().as_us_f64());
            degraded += 1;
        }
        let p99_degraded = phase.percentile(99.0).unwrap_or(0.0);
        let misses = self.completions.iter().filter(|c| c.missed).count();
        let with_deadline = self
            .completions
            .iter()
            .filter(|c| c.deadline.is_some())
            .count();
        let energy: f64 = self.completions.iter().map(|c| c.energy_uj).sum();
        let span = self.makespan.as_secs_f64();
        ServiceSummary {
            completed,
            rejected: self.rejections.len(),
            failed: self.failures.len(),
            throughput_rps: if span > 0.0 {
                completed as f64 / span
            } else {
                0.0
            },
            p50_latency_us: hist.percentile(50.0).unwrap_or(0.0),
            p95_latency_us: hist.percentile(95.0).unwrap_or(0.0),
            p99_latency_us: hist.percentile(99.0).unwrap_or(0.0),
            degraded_completed: degraded,
            p99_steady_latency_us: p99_steady,
            p99_degraded_latency_us: p99_degraded,
            deadline_misses: misses,
            deadline_miss_rate: if with_deadline > 0 {
                misses as f64 / with_deadline as f64
            } else {
                0.0
            },
            mean_energy_uj: if completed > 0 {
                energy / completed as f64
            } else {
                0.0
            },
            peak_power_mw: self.power.iter().map(|s| s.total_mw).fold(0.0, f64::max),
            cap_violations: self.cap_violations,
            thermal_throttles: self.thermal_throttles,
            overtemp_dispatches: self.overtemp_dispatches,
            peak_temp_c: self.peak_temp_c,
        }
    }
}

/// Headline numbers of one service run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSummary {
    /// Requests served to completion.
    pub completed: usize,
    /// Requests rejected at admission.
    pub rejected: usize,
    /// Admitted requests that failed terminally.
    pub failed: usize,
    /// Completions per second of makespan.
    pub throughput_rps: f64,
    /// Median arrival-to-finish latency in microseconds.
    pub p50_latency_us: f64,
    /// 95th-percentile latency in microseconds.
    pub p95_latency_us: f64,
    /// 99th-percentile latency in microseconds.
    pub p99_latency_us: f64,
    /// Completions recovery had to intervene on (the degraded phase).
    pub degraded_completed: usize,
    /// 99th-percentile latency over fault-free completions only, µs.
    pub p99_steady_latency_us: f64,
    /// 99th-percentile latency over healed completions only, µs —
    /// reported separately so recovery detours are not averaged away.
    pub p99_degraded_latency_us: f64,
    /// Completions that finished after their deadline.
    pub deadline_misses: usize,
    /// Misses over completions that carried a deadline.
    pub deadline_miss_rate: f64,
    /// Mean energy per completed request in microjoules.
    pub mean_energy_uj: f64,
    /// Highest sampled total draw in milliwatts.
    pub peak_power_mw: f64,
    /// Scheduling instants above the power cap.
    pub cap_violations: u64,
    /// Dispatches demoted by the thermal governor.
    pub thermal_throttles: u64,
    /// Dispatches that ended above the thermal limit (zero by design).
    pub overtemp_dispatches: u64,
    /// Hottest end-of-dispatch region temperature, °C.
    pub peak_temp_c: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_sim::time::Frequency;

    fn completion(id: u64, arrival_us: u64, finish_us: u64, missed: bool) -> Completion {
        Completion {
            id: RequestId(id),
            region: RegionId(0),
            arrival: SimTime::from_us(arrival_us),
            dispatched: SimTime::from_us(arrival_us),
            finished: SimTime::from_us(finish_us),
            deadline: Some(SimTime::from_us(finish_us + 1)),
            missed,
            frequency: Frequency::from_mhz(100.0),
            volts: 1.0,
            throttled: false,
            compressed: false,
            energy_uj: 100.0,
            attempts: 1,
            healed: false,
        }
    }

    #[test]
    fn summary_aggregates_latency_and_misses() {
        let m = ServiceMetrics {
            completions: vec![
                completion(0, 0, 100, false),
                completion(1, 0, 200, true),
                completion(2, 0, 300, false),
            ],
            power: vec![
                PowerSample {
                    at: SimTime::ZERO,
                    total_mw: 120.0,
                },
                PowerSample {
                    at: SimTime::from_us(5),
                    total_mw: 450.0,
                },
            ],
            makespan: SimTime::from_us(300),
            ..ServiceMetrics::default()
        };
        let s = m.summary();
        assert_eq!(s.completed, 3);
        assert_eq!(s.deadline_misses, 1);
        assert!((s.deadline_miss_rate - 1.0 / 3.0).abs() < 1e-12);
        // Histogram quantiles are bucket-accurate, not exact.
        assert!((s.p50_latency_us - 200.0).abs() <= 200.0 * 0.125);
        assert!((s.peak_power_mw - 450.0).abs() < 1e-12);
        assert!((s.mean_energy_uj - 100.0).abs() < 1e-12);
        assert!(s.throughput_rps > 0.0);
    }

    #[test]
    fn degraded_phase_percentiles_are_reported_separately() {
        // Two fast fault-free completions and one slow healed one: the
        // healed detour must show up in the degraded p99, not dilute
        // (or be diluted by) the steady-state figure.
        let mut slow = completion(2, 0, 5_000, false);
        slow.healed = true;
        slow.attempts = 3;
        let m = ServiceMetrics {
            completions: vec![
                completion(0, 0, 100, false),
                completion(1, 0, 120, false),
                slow,
            ],
            makespan: SimTime::from_us(5_000),
            ..ServiceMetrics::default()
        };
        let s = m.summary();
        assert_eq!(s.degraded_completed, 1);
        assert!(
            s.p99_steady_latency_us <= 120.0 * 1.125,
            "steady p99 {} polluted by the healed detour",
            s.p99_steady_latency_us
        );
        assert!(
            (s.p99_degraded_latency_us - 5_000.0).abs() <= 5_000.0 * 0.125,
            "degraded p99 {} lost the detour",
            s.p99_degraded_latency_us
        );
        // No degraded phase → the degraded figure is inert zero.
        let quiet = ServiceMetrics {
            completions: vec![completion(0, 0, 100, false)],
            makespan: SimTime::from_us(100),
            ..ServiceMetrics::default()
        };
        assert_eq!(quiet.summary().degraded_completed, 0);
        assert_eq!(quiet.summary().p99_degraded_latency_us, 0.0);
    }

    #[test]
    fn histogram_percentiles_within_one_bucket_of_exact() {
        // The old exact-sort path stays behind this test: the summary's
        // histogram quantiles must track `stats::percentile` over the
        // same latencies to within one bucket (12.5% relative).
        let mut state = 0x1234_5678_9abc_def0u64;
        let completions: Vec<Completion> = (0..5000)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Latencies spanning ~3 decades, heavy-tailed.
                let lat = 50 + (state >> 52) * (state >> 58).max(1);
                completion(i, 0, lat, false)
            })
            .collect();
        let exact_us: Vec<f64> = completions
            .iter()
            .map(|c| c.latency().as_us_f64())
            .collect();
        let m = ServiceMetrics {
            completions,
            makespan: SimTime::from_ms(10),
            ..ServiceMetrics::default()
        };
        let s = m.summary();
        for (est, p) in [
            (s.p50_latency_us, 50.0),
            (s.p95_latency_us, 95.0),
            (s.p99_latency_us, 99.0),
        ] {
            let exact = uparc_sim::stats::percentile(&exact_us, p).unwrap();
            let ratio = est / exact;
            assert!(
                (1.0 / 1.125..=1.125).contains(&ratio),
                "p{p}: histogram {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn empty_run_summarises_to_zeroes() {
        let s = ServiceMetrics::default().summary();
        assert_eq!(s.completed, 0);
        assert_eq!(s.deadline_miss_rate, 0.0);
        assert_eq!(s.throughput_rps, 0.0);
        assert_eq!(s.p99_latency_us, 0.0);
    }
}

//! Typed reconfiguration requests and admission errors.
//!
//! A [`ReconfigRequest`] is the unit of work the service accepts: which
//! bitstream to load, into which region, by when, how important it is,
//! and (optionally) how much energy it may spend. Admission either
//! enqueues the request or rejects it with a typed
//! [`AdmissionError`] — the service never panics on bad input.

use std::fmt;

use uparc_sim::time::SimTime;

/// Monotonically increasing identifier assigned by the workload source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

/// Identifier of a registered partial bitstream in the [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BitstreamId(pub u32);

impl fmt::Display for BitstreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bs#{}", self.0)
    }
}

/// Index of a reconfigurable region, in registration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub usize);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rp{}", self.0)
    }
}

/// Request priority; only breaks ties between equal deadlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background work, scheduled last among deadline ties.
    Low,
    /// Default priority.
    #[default]
    Normal,
    /// Latency-critical work, scheduled first among deadline ties.
    High,
}

/// One reconfiguration request submitted to the service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigRequest {
    /// Caller-assigned identifier, unique within a run.
    pub id: RequestId,
    /// Which registered bitstream to load.
    pub bitstream: BitstreamId,
    /// Which region the caller expects it to land in. Must match the
    /// region the catalog derived from the bitstream's frame window.
    pub region: RegionId,
    /// Absolute arrival time of the request.
    pub arrival: SimTime,
    /// Absolute completion deadline, if any.
    pub deadline: Option<SimTime>,
    /// Tie-break priority.
    pub priority: Priority,
    /// Optional per-request energy budget in microjoules.
    pub energy_budget_uj: Option<f64>,
}

/// Why the admission layer refused a request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionError {
    /// The bitstream id is not registered in the catalog.
    UnknownBitstream {
        /// The unregistered id.
        id: BitstreamId,
    },
    /// The region id does not exist in the floorplan.
    UnknownRegion {
        /// The unknown region.
        region: RegionId,
    },
    /// The bitstream is registered for a different region than requested.
    RegionMismatch {
        /// Region named in the request.
        requested: RegionId,
        /// Region the catalog mapped the bitstream to.
        actual: RegionId,
    },
    /// The target region's run queue is at capacity.
    QueueFull {
        /// Region whose queue overflowed.
        region: RegionId,
        /// Configured per-region queue capacity.
        capacity: usize,
    },
    /// The deadline cannot be met even if the request dispatched
    /// immediately at the fastest admissible operating point.
    DeadlineInfeasible {
        /// Requested absolute deadline.
        deadline: SimTime,
        /// Earliest possible absolute completion time.
        earliest_finish: SimTime,
    },
    /// No operating point fits under the configured power cap even with
    /// the region's lane otherwise idle.
    PowerInfeasible {
        /// Configured cap in milliwatts.
        cap_mw: f64,
        /// Cheapest achievable draw in milliwatts.
        floor_mw: f64,
    },
    /// No operating point fits the request's energy budget.
    EnergyInfeasible {
        /// Requested budget in microjoules.
        budget_uj: f64,
        /// Cheapest achievable energy in microjoules.
        floor_uj: f64,
    },
}

impl AdmissionError {
    /// Stable short label for metrics bucketing.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionError::UnknownBitstream { .. } => "unknown-bitstream",
            AdmissionError::UnknownRegion { .. } => "unknown-region",
            AdmissionError::RegionMismatch { .. } => "region-mismatch",
            AdmissionError::QueueFull { .. } => "queue-full",
            AdmissionError::DeadlineInfeasible { .. } => "deadline-infeasible",
            AdmissionError::PowerInfeasible { .. } => "power-infeasible",
            AdmissionError::EnergyInfeasible { .. } => "energy-infeasible",
        }
    }
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::UnknownBitstream { id } => {
                write!(f, "{id} is not registered in the catalog")
            }
            AdmissionError::UnknownRegion { region } => {
                write!(f, "{region} does not exist in the floorplan")
            }
            AdmissionError::RegionMismatch { requested, actual } => {
                write!(
                    f,
                    "bitstream belongs to {actual}, not requested {requested}"
                )
            }
            AdmissionError::QueueFull { region, capacity } => {
                write!(f, "{region} queue full (capacity {capacity})")
            }
            AdmissionError::DeadlineInfeasible {
                deadline,
                earliest_finish,
            } => write!(
                f,
                "deadline {:.1}us unreachable; earliest finish {:.1}us",
                deadline.as_us_f64(),
                earliest_finish.as_us_f64()
            ),
            AdmissionError::PowerInfeasible { cap_mw, floor_mw } => write!(
                f,
                "power cap {cap_mw:.1}mW below cheapest operating point {floor_mw:.1}mW"
            ),
            AdmissionError::EnergyInfeasible {
                budget_uj,
                floor_uj,
            } => write!(
                f,
                "energy budget {budget_uj:.2}uJ below cheapest plan {floor_uj:.2}uJ"
            ),
        }
    }
}

impl std::error::Error for AdmissionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_low_to_high() {
        assert!(Priority::Low < Priority::Normal);
        assert!(Priority::Normal < Priority::High);
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn admission_error_labels_are_stable() {
        let e = AdmissionError::QueueFull {
            region: RegionId(2),
            capacity: 8,
        };
        assert_eq!(e.label(), "queue-full");
        assert!(e.to_string().contains("rp2"));
        let e = AdmissionError::DeadlineInfeasible {
            deadline: SimTime::from_us(10),
            earliest_finish: SimTime::from_us(25),
        };
        assert!(e.to_string().contains("10.0us"));
        assert!(e.to_string().contains("25.0us"));
    }
}

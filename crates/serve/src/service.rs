//! The reconfiguration service: admission, per-region dispatch, and the
//! power-budgeted event loop.
//!
//! One [`Service::run`] executes one request trace to completion on the
//! `uparc-sim` event engine. Each region gets its own [`UParc`]
//! controller lane and run queue; arrivals pass the admission checks or
//! are rejected with a typed [`AdmissionError`], and every time a lane
//! frees up the configured [`Policy`] picks the next request. Operating
//! points come from [`PowerAwarePolicy::plan_constrained`], so
//! [`Policy::PowerGreedy`] can hold the summed draw of concurrent
//! reconfigurations under a chip-level cap, and every dispatch goes
//! through the self-healing [`RecoveryPolicy`].

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

use uparc_core::manager::ManagerConfig;
use uparc_core::policy::{PlanQuery, PowerAwarePolicy, VfPlan, VfQuery};
use uparc_core::recovery::RecoveryPolicy;
use uparc_core::uparc::COMPRESSED_MODE_MAX;
use uparc_core::{UParc, UparcError};
use uparc_sim::engine::{Context, Engine, Process};
use uparc_sim::obs::{EventKind, Obs};
use uparc_sim::power::{calib, VfTable};
use uparc_sim::time::{Frequency, SimTime};

use crate::catalog::Catalog;
use crate::metrics::{Completion, Failure, PowerSample, Rejection, ServiceMetrics};
use crate::request::{AdmissionError, BitstreamId, ReconfigRequest, RegionId};
use crate::scheduler::{candidate_order, Policy, Queued};
use crate::thermal::{LaneTemp, ThermalConfig};

/// Safety margin on estimated service times: the analytic transfer model
/// ignores pipeline fill and stall cycles, so admission pads it before
/// promising a deadline is reachable.
const ESTIMATE_MARGIN: f64 = 1.05;

/// Tolerance when checking sampled draw against the cap (floating-point
/// sums of per-lane draws).
const CAP_EPSILON_MW: f64 = 1e-9;

/// Tunables of one service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dispatch policy.
    pub policy: Policy,
    /// Chip-level cap on the summed reconfiguration-path draw, in
    /// milliwatts. Only [`Policy::PowerGreedy`] schedules against it,
    /// but violations are counted under every policy. Default: no cap.
    pub power_cap_mw: f64,
    /// Per-region run-queue capacity; arrivals beyond it are rejected
    /// with [`AdmissionError::QueueFull`].
    pub queue_capacity: usize,
    /// Recovery policy wrapped around every dispatch.
    pub recovery: RecoveryPolicy,
    /// Host-side decompressed-bitstream cache per lane, in bytes.
    pub decompressed_cache_bytes: usize,
    /// (V, f) operating-point table for DVFS dispatch. `None` (the
    /// default) keeps the pre-DVFS frequency-only behaviour — every
    /// dispatch runs the nominal rail and the planner's answers are
    /// bit-identical to the original planner.
    pub vf: Option<VfTable>,
    /// Per-region thermal model and throttling governor. `None` (the
    /// default) disables thermal accounting entirely. Requires `vf` to
    /// demote operating points; with `vf: None` the governor still caps
    /// the dispatch draw but can only trade frequency.
    pub thermal: Option<ThermalConfig>,
    /// Observability handle for the run: each lane reports through a
    /// region-tagged copy, the scheduler itself through the handle as
    /// given. The disabled [`Obs::null`] (the default) makes every
    /// instrumentation site a single-branch no-op.
    pub obs: Obs,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            policy: Policy::Fifo,
            power_cap_mw: f64::INFINITY,
            queue_capacity: 32,
            recovery: RecoveryPolicy::default(),
            decompressed_cache_bytes: 32 * 1024 * 1024,
            vf: None,
            thermal: None,
            obs: Obs::null(),
        }
    }
}

/// Per-bitstream scheduling facts, calibrated by one dry-run dispatch
/// on a scratch controller (deterministic, so the calibration is exact
/// for a fault-free dispatch).
#[derive(Debug, Clone, Copy)]
struct Est {
    /// Best-case dispatch-to-finish time with the lane idle (measured at
    /// the fastest admissible clock, the DCM relock from a cold lane
    /// included), margin included.
    service_fastest: SimTime,
    /// Same dispatch re-measured with CLK_2 already locked at the target
    /// — the relock-free service time. `service_fastest - service_pure`
    /// is the unhidden relock residual a dispatch pays exactly when the
    /// planned frequency differs from the lane's current one.
    service_pure: SimTime,
    /// The fastest admissible clock the estimates were measured at.
    fastest: Frequency,
    /// CLK_2 ceiling imposed by the datapath (compressed mode).
    ceiling: Option<Frequency>,
    /// Extra steady draw of the decompressor during the transfer, mW.
    extra_draw_mw: f64,
}

/// The reconfiguration service for one catalog.
#[derive(Debug, Clone)]
pub struct Service {
    catalog: Catalog,
    config: ServiceConfig,
    planner: PowerAwarePolicy,
    manager: ManagerConfig,
}

impl Service {
    /// Creates a service over `catalog` with the paper's controller
    /// setup (100 MHz reference, actively-waiting manager).
    #[must_use]
    pub fn new(catalog: Catalog, config: ServiceConfig) -> Self {
        let mut planner = PowerAwarePolicy::paper_setup(catalog.device().family());
        if let Some(vf) = &config.vf {
            planner = planner.with_vf_table(vf.clone());
        }
        Service {
            catalog,
            config,
            planner,
            manager: ManagerConfig::default(),
        }
    }

    /// The catalog this service dispatches from.
    #[must_use]
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The operating-point planner.
    #[must_use]
    pub fn planner(&self) -> &PowerAwarePolicy {
        &self.planner
    }

    /// Builds one controller lane with the catalog's staging setup.
    fn build_lane(&self) -> UParc {
        UParc::builder(self.catalog.device().clone())
            .bram_bytes(self.catalog.bram_bytes())
            .decompressor(self.catalog.algorithm())
            .decompressed_cache_bytes(self.config.decompressed_cache_bytes)
            .build()
            .expect("catalog algorithm has a hardware decompressor")
    }

    /// Measures a full fault-free dispatch of `id` at CLK_2 `f` on a
    /// scratch controller: retune + preload + transfer + the recovery
    /// layer's verification, exactly as a lane would run it. The dispatch
    /// runs twice on the same scratch: the first pays the DCM relock from
    /// the cold lane (partially hidden behind the preload), the second
    /// re-runs with the factors already locked and measures the pure
    /// service time. Returns `(with_relock, pure)`.
    fn measure_dispatch(&self, id: BitstreamId, f: Frequency) -> (SimTime, SimTime) {
        let entry = self.catalog.entry(id).expect("measure of unknown id");
        let mut scratch = self.build_lane();
        scratch
            .set_reconfiguration_frequency(f)
            .expect("grid frequency is synthesizable");
        self.config
            .recovery
            .reconfigure(&mut scratch, entry.bitstream(), entry.mode())
            .expect("fault-free dispatch on a scratch lane");
        let first = scratch.now();
        scratch
            .set_reconfiguration_frequency(f)
            .expect("retune to the locked frequency is free");
        self.config
            .recovery
            .reconfigure(&mut scratch, entry.bitstream(), entry.mode())
            .expect("fault-free dispatch on a scratch lane");
        (first, scratch.now().saturating_sub(first))
    }

    /// Runs one request trace to completion and returns its metrics.
    ///
    /// The run is fully deterministic in `(catalog, config, requests)`:
    /// same inputs, identical metrics.
    ///
    /// # Panics
    ///
    /// Panics if a controller lane cannot be built (no hardware
    /// decompressor for the catalog's algorithm).
    #[must_use]
    pub fn run(&self, requests: &[ReconfigRequest]) -> ServiceMetrics {
        // Run lanes report through region-tagged handles; the scratch
        // lanes used by `measure_dispatch` calibration stay unobserved so
        // traces show only the actual run.
        let lanes: Vec<UParc> = (0..self.catalog.region_count())
            .map(|region| {
                let mut lane = self.build_lane();
                lane.set_observer(self.config.obs.with_lane(region as u32));
                lane
            })
            .collect();
        let grid = self.planner.frequency_grid();
        let ests: BTreeMap<BitstreamId, Est> = self
            .catalog
            .ids()
            .into_iter()
            .map(|id| {
                let entry = self.catalog.entry(id).expect("id from catalog");
                let ceiling = entry
                    .compressed()
                    .then(|| Frequency::from_mhz(COMPRESSED_MODE_MAX));
                let fastest = grid
                    .iter()
                    .copied()
                    .rfind(|&f| ceiling.is_none_or(|c| f <= c))
                    .expect("frequency grid is never empty");
                let (with_relock, pure) = self.measure_dispatch(id, fastest);
                let extra_draw_mw = if entry.compressed() {
                    calib::DECOMPRESSOR_MW_PER_MHZ * self.manager.clock.as_mhz()
                } else {
                    0.0
                };
                let est = Est {
                    service_fastest: SimTime::from_secs_f64(
                        with_relock.as_secs_f64() * ESTIMATE_MARGIN,
                    ),
                    service_pure: SimTime::from_secs_f64(pure.as_secs_f64() * ESTIMATE_MARGIN),
                    fastest,
                    ceiling,
                    extra_draw_mw,
                };
                (id, est)
            })
            .collect();
        let region_count = self.catalog.region_count();
        let node = LaneTemp::new(&self.config.thermal.unwrap_or_default());
        let mut engine: Engine<Ev> = Engine::new();
        let proc = ServeProcess {
            requests: requests.to_vec(),
            catalog: self.catalog.clone(),
            planner: self.planner.clone(),
            ests,
            lanes,
            queues: vec![VecDeque::new(); region_count],
            busy: vec![None; region_count],
            policy: self.config.policy,
            cap_mw: self.config.power_cap_mw,
            queue_capacity: self.config.queue_capacity,
            recovery: self.config.recovery.clone(),
            vf: self.config.vf.clone(),
            thermal: self.config.thermal,
            temps: vec![node; region_count],
            throttle_state: vec![false; region_count],
            current_f: vec![None; region_count],
            rails: vec![self.planner.vf_table().nominal_index(); region_count],
            metrics: ServiceMetrics::default(),
            obs: self.config.obs.clone(),
        };
        let id = engine.spawn(Box::new(proc));
        for (i, r) in requests.iter().enumerate() {
            engine.schedule(r.arrival, id, Ev::Arrive(i));
        }
        engine.run();
        let makespan = engine.now();
        let boxed: Box<dyn Any> = engine.despawn(id);
        let proc = boxed
            .downcast::<ServeProcess>()
            .expect("despawned the process we spawned");
        let mut metrics = proc.metrics;
        metrics.makespan = makespan;
        metrics.unserved = proc.queues.iter().map(VecDeque::len).sum();
        metrics
    }
}

/// Events of the service process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Request `i` of the trace arrives.
    Arrive(usize),
    /// Lane `lane` finished its dispatch.
    Done { lane: usize },
}

/// The single event-engine process driving all lanes.
struct ServeProcess {
    requests: Vec<ReconfigRequest>,
    catalog: Catalog,
    planner: PowerAwarePolicy,
    ests: BTreeMap<BitstreamId, Est>,
    lanes: Vec<UParc>,
    queues: Vec<VecDeque<Queued>>,
    /// Per-lane draw above static idle while busy, in milliwatts.
    busy: Vec<Option<f64>>,
    policy: Policy,
    cap_mw: f64,
    queue_capacity: usize,
    recovery: RecoveryPolicy,
    /// DVFS operating-point table; `None` pins dispatch to the nominal
    /// rail and the pre-DVFS analytic planner.
    vf: Option<VfTable>,
    /// Thermal model and governor; `None` disables thermal accounting.
    thermal: Option<ThermalConfig>,
    /// Per-lane RC thermal node (only advanced when `thermal` is set).
    temps: Vec<LaneTemp>,
    /// Per-lane governor hysteresis state.
    throttle_state: Vec<bool>,
    /// The CLK_2 each lane is currently locked at (`None` until its
    /// first successful dispatch) — a dispatch at the same frequency
    /// skips the DCM relock, and admission's dry-run estimate mirrors
    /// that.
    current_f: Vec<Option<Frequency>>,
    /// The rail each lane's core supply currently sits on.
    rails: Vec<usize>,
    metrics: ServiceMetrics,
    /// Scheduler-level observability (admission verdicts, cap samples);
    /// lanes carry their own region-tagged copies.
    obs: Obs,
}

impl Process<Ev> for ServeProcess {
    fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
        match event {
            Ev::Arrive(i) => {
                let now = ctx.now();
                match self.admit(i, now) {
                    Ok(queued) => {
                        self.obs.instant(
                            now,
                            EventKind::Admission {
                                outcome: "admitted",
                                request: self.requests[i].id.0,
                            },
                        );
                        self.obs.count("serve.admitted", 1);
                        self.queues[self.requests[i].region.0].push_back(queued);
                    }
                    Err(reason) => {
                        self.obs.instant(
                            now,
                            EventKind::Admission {
                                outcome: reason.label(),
                                request: self.requests[i].id.0,
                            },
                        );
                        self.obs.count("serve.rejected", 1);
                        self.metrics.rejections.push(Rejection {
                            id: self.requests[i].id,
                            at: now,
                            reason,
                        });
                    }
                }
            }
            Ev::Done { lane } => {
                self.busy[lane] = None;
                self.sample_power(ctx.now());
            }
        }
        self.dispatch_idle_lanes(ctx);
    }
}

impl ServeProcess {
    /// Runs the admission checks for request `i` arriving at `now`.
    fn admit(&self, i: usize, now: SimTime) -> Result<Queued, AdmissionError> {
        let req = &self.requests[i];
        let entry = self
            .catalog
            .entry(req.bitstream)
            .ok_or(AdmissionError::UnknownBitstream { id: req.bitstream })?;
        if req.region.0 >= self.queues.len() {
            return Err(AdmissionError::UnknownRegion { region: req.region });
        }
        if entry.region() != req.region {
            return Err(AdmissionError::RegionMismatch {
                requested: req.region,
                actual: entry.region(),
            });
        }
        if self.queues[req.region.0].len() >= self.queue_capacity {
            return Err(AdmissionError::QueueFull {
                region: req.region,
                capacity: self.queue_capacity,
            });
        }
        let est = self.ests[&req.bitstream];
        // Hopeless deadlines are rejected for every policy identically,
        // so policy comparisons run on the same admitted set. The dry-run
        // estimate mirrors the dispatch path: a lane already locked at
        // the entry's fastest clock skips the DCM relock, any other lane
        // pays it, and a DVFS dispatch may additionally pay the rail ramp
        // back to nominal.
        if let Some(deadline) = req.deadline {
            let base = if self.current_f[req.region.0] == Some(est.fastest) {
                est.service_pure
            } else {
                est.service_fastest
            };
            let settle = self.vf.as_ref().map_or(SimTime::ZERO, |vf| {
                vf.settle(self.rails[req.region.0], vf.nominal_index())
            });
            let earliest_finish = now + base + settle;
            if deadline < earliest_finish {
                return Err(AdmissionError::DeadlineInfeasible {
                    deadline,
                    earliest_finish,
                });
            }
        }
        if let Some(budget) = req.energy_budget_uj {
            let q = PlanQuery {
                bytes: entry.raw_bytes(),
                max_frequency: est.ceiling,
                energy_budget_uj: Some(budget),
                ..PlanQuery::default()
            };
            if let Err(UparcError::EnergyBudgetInfeasible { floor_uj, .. }) = self.dry_plan(q) {
                return Err(AdmissionError::EnergyInfeasible {
                    budget_uj: budget,
                    floor_uj,
                });
            }
        }
        // PowerGreedy never dispatches above the cap, so a request that
        // cannot fit even with every other lane idle would starve in the
        // queue forever — reject it up front instead.
        if self.policy == Policy::PowerGreedy && self.cap_mw.is_finite() {
            let q = PlanQuery {
                bytes: entry.raw_bytes(),
                max_frequency: est.ceiling,
                power_cap_mw: Some(self.cap_mw - est.extra_draw_mw),
                ..PlanQuery::default()
            };
            if let Err(UparcError::BudgetInfeasible { floor_mw, .. }) = self.dry_plan(q) {
                return Err(AdmissionError::PowerInfeasible {
                    cap_mw: self.cap_mw,
                    floor_mw: floor_mw + est.extra_draw_mw,
                });
            }
        }
        Ok(Queued {
            req: i,
            id: req.id,
            deadline: req.deadline.unwrap_or(SimTime::MAX),
            priority: req.priority,
        })
    }

    /// Admission-time dry run against the planner: the full (V, f) table
    /// when DVFS is configured, the pinned frequency-only search
    /// otherwise.
    fn dry_plan(&self, q: PlanQuery) -> Result<VfPlan, UparcError> {
        if self.vf.is_some() {
            self.planner.plan_vf(&VfQuery::new(q))
        } else {
            self.planner.plan_vf(&VfQuery::frequency_only(q))
        }
    }

    /// Offers every idle lane its queue, in region order.
    fn dispatch_idle_lanes(&mut self, ctx: &mut Context<'_, Ev>) {
        for lane in 0..self.lanes.len() {
            if self.busy[lane].is_some() || self.queues[lane].is_empty() {
                continue;
            }
            let now = ctx.now();
            let order = candidate_order(self.policy, &self.queues[lane], now);
            for pos in order {
                if let Some((plan, throttled, temp_c)) = self.plan_for(lane, pos, now) {
                    self.dispatch(ctx, lane, pos, plan, throttled, temp_c);
                    break;
                }
            }
        }
    }

    /// Upper bound on the wall-clock of a dispatch at `plan`: the
    /// measured fastest-clock service time scaled by the clock ratio
    /// (the transfer scales inversely with CLK_2 and the fixed
    /// preload/verify parts do not grow), plus the rail settle.
    fn duration_bound(&self, est: &Est, plan: &VfPlan) -> SimTime {
        let ratio = est.fastest.as_mhz() / plan.frequency.as_mhz();
        SimTime::from_secs_f64(est.service_fastest.as_secs_f64() * ratio) + plan.settle
    }

    /// Tries to find an operating point for queue position `pos` of
    /// `lane` under the current power headroom and (when configured) the
    /// thermal governor. Returns the plan, whether the governor
    /// throttled it, and the lane temperature at planning time.
    fn plan_for(&mut self, lane: usize, pos: usize, now: SimTime) -> Option<(VfPlan, bool, f64)> {
        let queued = self.queues[lane][pos];
        let req = &self.requests[queued.req];
        let entry = self.catalog.entry(req.bitstream).expect("admitted request");
        let est = self.ests[&req.bitstream];
        let mut q = PlanQuery {
            bytes: entry.raw_bytes(),
            max_frequency: est.ceiling,
            energy_budget_uj: req.energy_budget_uj,
            ..PlanQuery::default()
        };
        // Greedy in the literal sense: each dispatch takes the fastest
        // operating point the residual power budget allows. Stretching
        // jobs toward their deadlines would save energy per request but
        // starves the queue under load.
        if self.policy == Policy::PowerGreedy && self.cap_mw.is_finite() {
            let others: f64 = self.busy.iter().flatten().sum();
            q.power_cap_mw = Some(self.cap_mw - others - est.extra_draw_mw);
        }
        // Without a VfTable the governor still runs, but can only demote
        // the clock; with one it demotes whole (V, f) points.
        let mut vq = if self.vf.is_some() {
            let mut vq = VfQuery::new(q);
            vq.current_rail = Some(self.rails[lane]);
            vq
        } else {
            VfQuery::frequency_only(q)
        };
        let Some(tcfg) = self.thermal else {
            return Some((self.planner.plan_vf(&vq).ok()?, false, 0.0));
        };
        let temp = self.temps[lane].temp_at(&tcfg, now);
        let mut throttled = self.throttle_state[lane];
        if throttled && temp < tcfg.release_at_c() {
            throttled = false;
        } else if !throttled && temp >= tcfg.throttle_at_c() {
            throttled = true;
        }
        if !throttled {
            if let Ok(plan) = self.planner.plan_vf(&vq) {
                let draw_w =
                    (plan.predicted_power_mw - calib::V6_IDLE_MW + est.extra_draw_mw) / 1e3;
                let dt = self.duration_bound(&est, &plan);
                if tcfg.step_c(temp, draw_w, dt) <= tcfg.limit_c {
                    self.throttle_state[lane] = false;
                    return Some((plan, false, temp));
                }
            }
            // The unthrottled plan would overshoot the junction limit
            // before it finishes — throttle this dispatch even though
            // the lane is below the entry threshold.
            throttled = true;
        }
        self.throttle_state[lane] = throttled;
        // Steady-state-safe demotion: cap the dispatch at the draw whose
        // equilibrium temperature is exactly the junction limit. The RC
        // response is monotone toward its drive, so whatever the
        // dispatch duration the node can never cross the limit.
        let thermal_cap = calib::V6_IDLE_MW + tcfg.sustainable_mw() - est.extra_draw_mw;
        vq.base.power_cap_mw = Some(
            vq.base
                .power_cap_mw
                .map_or(thermal_cap, |c| c.min(thermal_cap)),
        );
        let plan = self.planner.plan_vf(&vq).ok()?;
        Some((plan, true, temp))
    }

    /// Dispatches queue position `pos` of `lane` at the planned
    /// operating point.
    fn dispatch(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        lane: usize,
        pos: usize,
        plan: VfPlan,
        throttled: bool,
        temp_c: f64,
    ) {
        let now = ctx.now();
        let queued = self.queues[lane]
            .remove(pos)
            .expect("position from candidate_order");
        let req = self.requests[queued.req];
        let entry = self
            .catalog
            .entry(req.bitstream)
            .expect("admitted request")
            .clone();
        let est = self.ests[&req.bitstream];
        if let Some(tcfg) = self.thermal {
            self.obs.instant(
                now,
                EventKind::Thermal {
                    temp_c,
                    limit_c: tcfg.limit_c,
                    throttled,
                },
            );
            if throttled {
                self.metrics.thermal_throttles += 1;
                self.obs.count("thermal.throttles", 1);
            }
        }
        let uparc = &mut self.lanes[lane];
        uparc.advance_idle(now.saturating_sub(uparc.now()));
        if self.vf.is_some() {
            // Ramp the lane's core rail to the planned voltage; the
            // controller charges the regulator settle into the dispatch.
            let _settle = uparc.set_core_voltage(plan.volts);
            self.rails[lane] = plan.rail;
        }
        // The dispatch span (queue-exit to lane-finish) carries the lane
        // tag and opens before the lane's own spans, so the whole
        // reconfiguration nests under it in the trace.
        let span = uparc
            .obs()
            .begin(now, EventKind::Dispatch { request: req.id.0 });
        let outcome = match uparc.set_reconfiguration_frequency(plan.frequency) {
            Ok(_) => self
                .recovery
                .reconfigure(uparc, entry.bitstream(), entry.mode()),
            Err(e) => Err(e),
        };
        let finished = uparc.now();
        let wait = finished.saturating_sub(now);
        uparc.obs().end(finished, span);
        match outcome {
            Ok(rr) => {
                let missed = req.deadline.is_some_and(|d| finished > d);
                self.obs.count("serve.completions", 1);
                self.obs.observe(
                    "serve.latency_us",
                    finished.saturating_sub(req.arrival).as_us_f64(),
                );
                self.obs
                    .observe("serve.energy_uj", rr.report.energy_uj + rr.extra_energy_uj);
                if missed {
                    self.obs.count("serve.deadline_misses", 1);
                }
                self.metrics.completions.push(Completion {
                    id: req.id,
                    region: RegionId(lane),
                    arrival: req.arrival,
                    dispatched: now,
                    finished,
                    deadline: req.deadline,
                    missed,
                    frequency: rr.report.frequency,
                    volts: plan.volts,
                    throttled,
                    compressed: rr.report.compressed,
                    energy_uj: rr.report.energy_uj + rr.extra_energy_uj,
                    attempts: rr.attempts,
                    healed: rr.healed(),
                });
                self.current_f[lane] = Some(rr.report.frequency);
            }
            Err(e) => {
                self.obs.count("serve.failures", 1);
                self.metrics.failures.push(Failure {
                    id: req.id,
                    at: finished,
                    error: e.to_string(),
                });
                self.current_f[lane] = None;
            }
        }
        let draw_mw = plan.predicted_power_mw - calib::V6_IDLE_MW + est.extra_draw_mw;
        self.busy[lane] = Some(draw_mw);
        if let Some(tcfg) = self.thermal {
            let end_c = self.temps[lane].apply(&tcfg, now, finished, draw_mw / 1e3);
            self.metrics.peak_temp_c = self.metrics.peak_temp_c.max(end_c);
            self.obs.gauge("thermal.temp_c", end_c);
            if end_c > tcfg.limit_c + 1e-9 {
                self.metrics.overtemp_dispatches += 1;
                self.obs.count("thermal.overtemp", 1);
            }
        }
        self.sample_power(now);
        ctx.send_in(wait, ctx.self_id(), Ev::Done { lane });
    }

    /// Records the summed draw at a scheduling instant and counts cap
    /// violations. Static idle is chip-level, so it is counted once.
    fn sample_power(&mut self, at: SimTime) {
        let total_mw = calib::V6_IDLE_MW + self.busy.iter().flatten().sum::<f64>();
        self.obs.instant(
            at,
            EventKind::CapSample {
                total_mw,
                cap_mw: self.cap_mw,
            },
        );
        self.obs.gauge("serve.power_mw", total_mw);
        self.metrics.power.push(PowerSample { at, total_mw });
        if total_mw > self.cap_mw + CAP_EPSILON_MW {
            self.metrics.cap_violations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{Priority, ReconfigRequest, RequestId};
    use crate::workload::{ArrivalPattern, WorkloadSpec};
    use uparc_bitstream::builder::PartialBitstream;
    use uparc_bitstream::synth::SynthProfile;
    use uparc_fpga::Device;

    fn two_region_catalog() -> Catalog {
        let device = Device::xc5vsx50t();
        let mut cat = Catalog::new(device);
        cat.add_region("rp0", 100..160).unwrap();
        cat.add_region("rp1", 200..260).unwrap();
        for (id, far, frames) in [(1u32, 100, 40), (2, 110, 25), (3, 200, 50)] {
            let payload = SynthProfile::dense().generate(cat.device(), far, frames, u64::from(id));
            let bs = PartialBitstream::build(cat.device(), far, &payload);
            cat.register(BitstreamId(id), bs).unwrap();
        }
        cat
    }

    /// Bench-scale modules (~150 KB raw, staged raw via a big BRAM):
    /// large enough that a faster CLK_2 saves more than the 25 µs rail
    /// ramp costs, so the (V, f) planner actually undervolts.
    fn large_two_region_catalog() -> Catalog {
        let device = Device::xc5vsx50t();
        let mut cat = Catalog::new(device).with_bram_bytes(256 * 1024);
        cat.add_region("rp0", 100..1100).unwrap();
        cat.add_region("rp1", 1200..2200).unwrap();
        for (id, far, frames) in [(1u32, 100, 900), (2, 1200, 700)] {
            let payload = SynthProfile::dense().generate(cat.device(), far, frames, u64::from(id));
            let bs = PartialBitstream::build(cat.device(), far, &payload);
            cat.register(BitstreamId(id), bs).unwrap();
        }
        cat
    }

    fn spec(requests: usize) -> WorkloadSpec {
        WorkloadSpec {
            requests,
            mean_gap: SimTime::from_us(150),
            pattern: ArrivalPattern::Uniform,
            deadline_slack_us: Some((200, 2_000)),
            energy_budget_uj: None,
        }
    }

    #[test]
    fn fifo_serves_a_trace_to_completion() {
        let catalog = two_region_catalog();
        let service = Service::new(catalog, ServiceConfig::default());
        let reqs = spec(20).generate(5, service.catalog());
        let m = service.run(&reqs);
        assert_eq!(
            m.completions.len() + m.rejections.len() + m.failures.len(),
            20
        );
        assert_eq!(m.unserved, 0, "open queue must drain");
        assert!(m.makespan >= reqs.last().unwrap().arrival);
        for c in &m.completions {
            assert!(c.dispatched >= c.arrival);
            assert!(c.finished > c.dispatched);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let catalog = two_region_catalog();
        for policy in Policy::ALL {
            let service = Service::new(
                catalog.clone(),
                ServiceConfig {
                    policy,
                    power_cap_mw: 600.0,
                    ..ServiceConfig::default()
                },
            );
            let reqs = spec(30).generate(11, service.catalog());
            let a = service.run(&reqs).summary();
            let b = service.run(&reqs).summary();
            assert_eq!(a, b, "policy {} must be deterministic", policy.label());
        }
    }

    #[test]
    fn power_greedy_respects_the_cap() {
        let catalog = two_region_catalog();
        // Tight enough that two concurrent full-speed transfers don't
        // fit, loose enough that one always does.
        let cap = 520.0;
        let service = Service::new(
            catalog,
            ServiceConfig {
                policy: Policy::PowerGreedy,
                power_cap_mw: cap,
                ..ServiceConfig::default()
            },
        );
        // Bursty arrivals force concurrent demand on both regions.
        let spec = WorkloadSpec {
            requests: 40,
            mean_gap: SimTime::from_us(60),
            pattern: ArrivalPattern::Bursty { burst: 8 },
            ..WorkloadSpec::default()
        };
        let reqs = spec.generate(3, service.catalog());
        let m = service.run(&reqs);
        assert_eq!(m.cap_violations, 0);
        for s in &m.power {
            assert!(
                s.total_mw <= cap + CAP_EPSILON_MW,
                "draw {} above cap at {:?}",
                s.total_mw,
                s.at
            );
        }
        assert!(!m.completions.is_empty());
    }

    #[test]
    fn dvfs_undervolts_under_a_tight_cap_and_stays_deterministic() {
        let catalog = large_two_region_catalog();
        let cfg = |vf| ServiceConfig {
            policy: Policy::PowerGreedy,
            power_cap_mw: 330.0,
            vf,
            ..ServiceConfig::default()
        };
        let spec = WorkloadSpec {
            requests: 30,
            mean_gap: SimTime::from_us(120),
            pattern: ArrivalPattern::Bursty { burst: 6 },
            ..WorkloadSpec::default()
        };
        let dvfs = Service::new(catalog.clone(), cfg(Some(VfTable::voltune_virtex6())));
        let reqs = spec.generate(13, dvfs.catalog());
        let m = dvfs.run(&reqs);
        assert_eq!(m.cap_violations, 0);
        assert!(
            m.completions.iter().any(|c| c.volts < 1.0),
            "a 330 mW cap must force undervolted dispatches"
        );
        assert_eq!(
            m.summary(),
            dvfs.run(&reqs).summary(),
            "DVFS run must be deterministic"
        );
        // Undervolting buys clock the frequency-only planner cannot
        // afford under the same cap.
        let freq_only = Service::new(catalog, cfg(None)).run(&reqs);
        assert_eq!(freq_only.cap_violations, 0);
        let max_mhz = |m: &ServiceMetrics| {
            m.completions
                .iter()
                .map(|c| c.frequency.as_mhz())
                .fold(0.0, f64::max)
        };
        assert!(max_mhz(&m) > max_mhz(&freq_only));
    }

    #[test]
    fn sustained_load_throttles_without_overtemperature() {
        let catalog = large_two_region_catalog();
        let tcfg = ThermalConfig::default();
        let service = Service::new(
            catalog,
            ServiceConfig {
                policy: Policy::PowerGreedy,
                queue_capacity: 256,
                vf: Some(VfTable::voltune_virtex6()),
                thermal: Some(tcfg),
                ..ServiceConfig::default()
            },
        );
        // A metronome faster than the service rate holds both lanes at
        // 100% duty — full speed would settle far above the junction
        // limit, so the governor has to throttle.
        let spec = WorkloadSpec {
            requests: 200,
            mean_gap: SimTime::from_us(10),
            pattern: ArrivalPattern::Sustained,
            ..WorkloadSpec::default()
        };
        let reqs = spec.generate(17, service.catalog());
        let m = service.run(&reqs);
        assert!(
            m.thermal_throttles > 0,
            "sustained full-duty load must throttle"
        );
        assert_eq!(m.overtemp_dispatches, 0);
        assert!(m.peak_temp_c > tcfg.ambient_c);
        assert!(m.peak_temp_c <= tcfg.limit_c + 1e-9);
        assert!(
            m.completions.iter().any(|c| c.throttled && c.volts < 1.0),
            "throttling must demote the operating point, not just the clock"
        );
    }

    #[test]
    fn unknown_ids_reject_with_typed_errors() {
        let catalog = two_region_catalog();
        let service = Service::new(catalog, ServiceConfig::default());
        let mk = |arrival_us: u64, id: u32, region: usize| ReconfigRequest {
            id: RequestId(arrival_us),
            bitstream: BitstreamId(id),
            region: RegionId(region),
            arrival: SimTime::from_us(arrival_us),
            deadline: None,
            priority: Priority::Normal,
            energy_budget_uj: None,
        };
        let reqs = vec![
            mk(0, 99, 0), // unknown bitstream
            mk(1, 1, 1),  // wrong region
            mk(2, 2, 0),  // fine
        ];
        let m = service.run(&reqs);
        assert_eq!(m.completions.len(), 1);
        assert_eq!(m.rejections.len(), 2);
        assert_eq!(m.rejections[0].reason.label(), "unknown-bitstream");
        assert_eq!(m.rejections[1].reason.label(), "region-mismatch");
    }
}

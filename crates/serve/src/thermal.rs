//! Per-region thermal accumulation and the throttling governor's math.
//!
//! Each lane is one lumped RC node: dispatched power drives the region
//! temperature toward `ambient + P·R` with time constant `τ = R·C`, and
//! idle time decays it back toward ambient. The governor in
//! [`crate::service`] uses two facts this module makes checkable:
//!
//! * a dispatch whose **steady-state** temperature `ambient + P·R` is at
//!   or below the limit can never push the node above the limit,
//!   whatever its duration (the RC response is monotone toward its
//!   drive);
//! * for an unthrottled (hot) dispatch, the **projected end temperature**
//!   over a bounded duration certifies the transient headroom a cold
//!   region has.
//!
//! Both are exercised by `POWER.md`'s doc-tested worked example and the
//! `bench_power` thermal scenario (zero over-temperature dispatches).

use uparc_sim::time::SimTime;

/// Tunables of the per-region thermal model and throttling governor.
///
/// The defaults are calibrated against the repo's power model so that
/// sustained full-speed reconfiguration (≈0.49 W above idle at
/// 362.5 MHz) *must* throttle — its steady-state temperature
/// `45 + 0.49·150 ≈ 118 °C` is far past the 85 °C junction limit —
/// while the sustainable above-idle draw `(85 − 45)/150 ≈ 267 mW`
/// still admits a useful operating point on every rail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalConfig {
    /// Ambient (heatsink) temperature the region decays toward, °C.
    pub ambient_c: f64,
    /// Junction temperature limit: no dispatch may push the region
    /// above it, °C.
    pub limit_c: f64,
    /// Throttle hysteresis, °C: the governor throttles when the region
    /// reaches `limit - hysteresis` and releases only after it cools
    /// below `limit - 2·hysteresis`.
    pub hysteresis_c: f64,
    /// Thermal resistance junction-to-ambient, °C per watt.
    pub r_c_per_w: f64,
    /// Thermal capacitance of the region, joules per °C.
    pub c_j_per_c: f64,
}

impl Default for ThermalConfig {
    fn default() -> Self {
        ThermalConfig {
            ambient_c: 45.0,
            limit_c: 85.0,
            hysteresis_c: 5.0,
            r_c_per_w: 150.0,
            c_j_per_c: 25e-6,
        }
    }
}

impl ThermalConfig {
    /// The RC time constant `τ = R·C`, seconds (3.75 ms at the
    /// defaults — a handful of dispatches to heat up, a few idle
    /// milliseconds to cool).
    #[must_use]
    pub fn tau_s(&self) -> f64 {
        self.r_c_per_w * self.c_j_per_c
    }

    /// The steady-state temperature a constant `power_w` drives the
    /// region toward: `ambient + P·R`, °C.
    #[must_use]
    pub fn steady_c(&self, power_w: f64) -> f64 {
        self.ambient_c + power_w * self.r_c_per_w
    }

    /// The largest above-idle draw (in mW) whose steady-state
    /// temperature stays at or below the limit — the throttled power
    /// cap: `(limit − ambient) / R`.
    #[must_use]
    pub fn sustainable_mw(&self) -> f64 {
        (self.limit_c - self.ambient_c) / self.r_c_per_w * 1e3
    }

    /// Temperature after holding `power_w` for `dt` starting from
    /// `from_c`: the RC step response
    /// `T∞ + (T₀ − T∞)·exp(−dt/τ)` with `T∞ = ambient + P·R`.
    #[must_use]
    pub fn step_c(&self, from_c: f64, power_w: f64, dt: SimTime) -> f64 {
        let steady = self.steady_c(power_w);
        steady + (from_c - steady) * (-dt.as_secs_f64() / self.tau_s()).exp()
    }

    /// The throttle-entry threshold, °C.
    #[must_use]
    pub fn throttle_at_c(&self) -> f64 {
        self.limit_c - self.hysteresis_c
    }

    /// The throttle-release threshold, °C.
    #[must_use]
    pub fn release_at_c(&self) -> f64 {
        self.limit_c - 2.0 * self.hysteresis_c
    }
}

/// One lane's RC node: a temperature and the time it was last settled.
#[derive(Debug, Clone, Copy)]
pub struct LaneTemp {
    temp_c: f64,
    at: SimTime,
}

impl LaneTemp {
    /// A node at ambient.
    #[must_use]
    pub fn new(cfg: &ThermalConfig) -> Self {
        LaneTemp {
            temp_c: cfg.ambient_c,
            at: SimTime::ZERO,
        }
    }

    /// Temperature at `now`, with everything since the last update
    /// treated as idle decay toward ambient. `now` earlier than the
    /// last update reads the stored state unchanged.
    #[must_use]
    pub fn temp_at(&self, cfg: &ThermalConfig, now: SimTime) -> f64 {
        let dt = now.saturating_sub(self.at);
        cfg.step_c(self.temp_c, 0.0, dt)
    }

    /// Applies one dispatch: decay to `start`, then drive at `power_w`
    /// until `end`. Returns the temperature at `end`.
    pub fn apply(
        &mut self,
        cfg: &ThermalConfig,
        start: SimTime,
        end: SimTime,
        power_w: f64,
    ) -> f64 {
        let at_start = self.temp_at(cfg, start);
        self.temp_c = cfg.step_c(at_start, power_w, end.saturating_sub(start));
        self.at = end;
        self.temp_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_force_full_speed_to_throttle_but_keep_headroom() {
        let cfg = ThermalConfig::default();
        // Full-speed raw transfer: ≈487 mW above idle (92 mW manager
        // spin + 1.09·362.5 path) can never run sustained...
        assert!(cfg.steady_c(0.487) > cfg.limit_c);
        // ...but the sustainable cap still clears the manager spin plus
        // a useful path draw.
        assert!(cfg.sustainable_mw() > 200.0);
        assert!((cfg.sustainable_mw() - 40.0 / 150.0 * 1e3).abs() < 1e-9);
    }

    #[test]
    fn step_response_is_monotone_toward_its_drive() {
        let cfg = ThermalConfig::default();
        // Heating from ambient never overshoots the steady state;
        // longer holds get closer.
        let short = cfg.step_c(cfg.ambient_c, 0.4, SimTime::from_us(200));
        let long = cfg.step_c(cfg.ambient_c, 0.4, SimTime::from_ms(20));
        let steady = cfg.steady_c(0.4);
        assert!(cfg.ambient_c < short && short < long && long < steady);
        // A sub-limit drive keeps a sub-limit node sub-limit.
        let held = cfg.step_c(
            cfg.limit_c - 0.5,
            (cfg.sustainable_mw() - 1.0) / 1e3,
            SimTime::MAX,
        );
        assert!(held <= cfg.limit_c);
    }

    #[test]
    fn lane_node_heats_on_dispatch_and_decays_when_idle() {
        let cfg = ThermalConfig::default();
        let mut lane = LaneTemp::new(&cfg);
        assert_eq!(lane.temp_at(&cfg, SimTime::from_ms(5)), cfg.ambient_c);
        let after = lane.apply(&cfg, SimTime::ZERO, SimTime::from_us(500), 0.487);
        assert!(after > cfg.ambient_c);
        // Several back-to-back dispatches accumulate.
        let mut t = SimTime::from_us(500);
        let mut prev = after;
        for _ in 0..10 {
            let next = lane.apply(&cfg, t, t + SimTime::from_us(500), 0.487);
            assert!(next > prev);
            prev = next;
            t += SimTime::from_us(500);
        }
        // A long idle gap decays back toward (but never below) ambient.
        let cooled = lane.temp_at(&cfg, t + SimTime::from_ms(50));
        assert!(cooled < prev && cooled >= cfg.ambient_c);
        assert!(cooled - cfg.ambient_c < 0.01);
    }
}

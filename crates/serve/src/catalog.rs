//! Bitstream inventory validated against the device floorplan.
//!
//! The service only dispatches bitstreams that were registered ahead of
//! time. Registration resolves each bitstream's frame window to exactly
//! one reconfigurable region via [`Floorplan::containing`], decides the
//! staging mode (raw if the image fits the BRAM, otherwise compressed),
//! and precomputes the staged image size so admission and scheduling can
//! estimate service times without touching a controller.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use uparc_bitstream::builder::PartialBitstream;
use uparc_compress::Algorithm;
use uparc_core::uparc::Mode;
use uparc_fpga::floorplan::Floorplan;
use uparc_fpga::{Device, FpgaError};
use uparc_sim::sweep;

use crate::request::{BitstreamId, RegionId};

/// Default staging BRAM capacity, matching [`uparc_core::UParc`]'s default.
pub const DEFAULT_BRAM_BYTES: usize = 256 * 1024;

/// Why a bitstream could not be registered.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogError {
    /// The id is already registered.
    DuplicateId {
        /// The conflicting id.
        id: BitstreamId,
    },
    /// The bitstream's frame window is not contained in any region.
    Unplaceable {
        /// Frame address register value of the bitstream.
        far: u32,
        /// Frame count of the bitstream.
        frames: u32,
    },
    /// Even the compressed image exceeds the staging BRAM.
    TooLarge {
        /// Bytes the staged image needs.
        required: usize,
        /// BRAM capacity in bytes.
        bram: usize,
    },
    /// The floorplan rejected a region definition.
    Floorplan(FpgaError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateId { id } => write!(f, "{id} already registered"),
            CatalogError::Unplaceable { far, frames } => write!(
                f,
                "frame window [{far}, {}) fits no region",
                far.saturating_add(*frames)
            ),
            CatalogError::TooLarge { required, bram } => {
                write!(f, "staged image needs {required} B, BRAM holds {bram} B")
            }
            CatalogError::Floorplan(e) => write!(f, "floorplan: {e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<FpgaError> for CatalogError {
    fn from(e: FpgaError) -> Self {
        CatalogError::Floorplan(e)
    }
}

/// One registered bitstream with its precomputed staging facts.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    bitstream: PartialBitstream,
    region: RegionId,
    raw_bytes: usize,
    compressed: bool,
    staged_words: usize,
    /// Compressed payload computed at registration (`None` for raw
    /// staging). Shared, so cloning the catalog or handing the bytes to a
    /// staging path copies a pointer, not the payload.
    packed: Option<Arc<Vec<u8>>>,
}

impl CatalogEntry {
    /// The bitstream itself.
    #[must_use]
    pub fn bitstream(&self) -> &PartialBitstream {
        &self.bitstream
    }

    /// The region this bitstream reconfigures.
    #[must_use]
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// Raw configuration stream size in bytes.
    #[must_use]
    pub fn raw_bytes(&self) -> usize {
        self.raw_bytes
    }

    /// Whether the image is staged compressed.
    #[must_use]
    pub fn compressed(&self) -> bool {
        self.compressed
    }

    /// Staged image size in words, mode word included.
    #[must_use]
    pub fn staged_words(&self) -> usize {
        self.staged_words
    }

    /// The explicit staging mode the service passes to the controller.
    #[must_use]
    pub fn mode(&self) -> Mode {
        if self.compressed {
            Mode::Compressed
        } else {
            Mode::Raw
        }
    }

    /// The compressed payload computed at registration, `None` when the
    /// entry stages raw. The bytes are exactly what the controller's
    /// staging codec produces, so admission checks and prefetch planners
    /// can size transfers without recompressing.
    #[must_use]
    pub fn packed_bytes(&self) -> Option<&[u8]> {
        self.packed.as_deref().map(Vec::as_slice)
    }
}

/// Staging facts of one bitstream: the mode decision and, for compressed
/// staging, the payload itself.
struct StagingFacts {
    raw_bytes: usize,
    compressed: bool,
    staged_words: usize,
    packed: Option<Arc<Vec<u8>>>,
}

/// Mirrors `UParc::preload` with [`Mode::Auto`]: stage raw when the image
/// (mode word included) fits the BRAM, compress otherwise. The staged
/// word counts match what the controller will actually store.
fn stage_facts(
    algorithm: Algorithm,
    bram_bytes: usize,
    bitstream: &PartialBitstream,
) -> Result<StagingFacts, CatalogError> {
    let raw_bytes = bitstream.size_bytes();
    if raw_bytes + 4 <= bram_bytes {
        return Ok(StagingFacts {
            raw_bytes,
            compressed: false,
            staged_words: raw_bytes / 4 + 1,
            packed: None,
        });
    }
    let packed = algorithm.codec().compress(&bitstream.to_bytes());
    // Mode word + byte-count word + packed payload.
    let words = 2 + packed.len().div_ceil(4);
    if words * 4 > bram_bytes {
        return Err(CatalogError::TooLarge {
            required: words * 4,
            bram: bram_bytes,
        });
    }
    Ok(StagingFacts {
        raw_bytes,
        compressed: true,
        staged_words: words,
        packed: Some(Arc::new(packed)),
    })
}

/// The bitstream inventory and region map of one service instance.
#[derive(Debug, Clone)]
pub struct Catalog {
    device: Device,
    floorplan: Floorplan,
    bram_bytes: usize,
    algorithm: Algorithm,
    regions: Vec<uparc_fpga::floorplan::PartitionId>,
    entries: BTreeMap<BitstreamId, CatalogEntry>,
}

impl Catalog {
    /// Creates an empty catalog for the given device.
    #[must_use]
    pub fn new(device: Device) -> Self {
        let floorplan = Floorplan::new(device.clone());
        Catalog {
            device,
            floorplan,
            bram_bytes: DEFAULT_BRAM_BYTES,
            algorithm: Algorithm::XMatchPro,
            regions: Vec::new(),
            entries: BTreeMap::new(),
        }
    }

    /// Overrides the staging BRAM capacity used for mode decisions.
    #[must_use]
    pub fn with_bram_bytes(mut self, bytes: usize) -> Self {
        self.bram_bytes = bytes;
        self
    }

    /// Overrides the staging compression algorithm (default X-MatchPRO).
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Declares a reconfigurable region over a frame window.
    ///
    /// # Errors
    ///
    /// [`FpgaError`] if the window is invalid or overlaps an existing
    /// partition.
    pub fn add_region(&mut self, name: &str, frames: Range<u32>) -> Result<RegionId, FpgaError> {
        let pid = self.floorplan.add_partition(name, frames)?;
        self.regions.push(pid);
        Ok(RegionId(self.regions.len() - 1))
    }

    /// Registers a bitstream under `id`, resolving its region and
    /// staging mode.
    ///
    /// # Errors
    ///
    /// [`CatalogError`] if the id is taken, the frame window fits no
    /// region, or even the compressed image exceeds the BRAM.
    pub fn register(
        &mut self,
        id: BitstreamId,
        bitstream: PartialBitstream,
    ) -> Result<RegionId, CatalogError> {
        if self.entries.contains_key(&id) {
            return Err(CatalogError::DuplicateId { id });
        }
        let region = self.resolve_region(&bitstream)?;
        let facts = stage_facts(self.algorithm, self.bram_bytes, &bitstream)?;
        self.insert_entry(id, bitstream, region, facts);
        Ok(region)
    }

    /// Registers a whole batch, compressing entries concurrently.
    ///
    /// Staging facts are computed across entries with
    /// [`sweep::parallel_map`]; each entry's codec runs single-threaded,
    /// so the catalog ends up byte-identical to sequential
    /// [`Catalog::register`] calls under any `UPARC_SWEEP_THREADS`
    /// setting. Registration is all-or-nothing: on any error the catalog
    /// is left unchanged.
    ///
    /// # Errors
    ///
    /// [`CatalogError`] as for [`Catalog::register`]; duplicate ids
    /// within the batch are rejected too.
    pub fn register_batch(
        &mut self,
        batch: Vec<(BitstreamId, PartialBitstream)>,
    ) -> Result<Vec<RegionId>, CatalogError> {
        let mut seen = BTreeSet::new();
        let mut regions = Vec::with_capacity(batch.len());
        for (id, bitstream) in &batch {
            if self.entries.contains_key(id) || !seen.insert(*id) {
                return Err(CatalogError::DuplicateId { id: *id });
            }
            regions.push(self.resolve_region(bitstream)?);
        }
        let (algorithm, bram_bytes) = (self.algorithm, self.bram_bytes);
        let mut staged = Vec::with_capacity(batch.len());
        for facts in sweep::parallel_map(&batch, |(_, bitstream)| {
            stage_facts(algorithm, bram_bytes, bitstream)
        }) {
            staged.push(facts?);
        }
        for (((id, bitstream), &region), facts) in batch.into_iter().zip(regions.iter()).zip(staged)
        {
            self.insert_entry(id, bitstream, region, facts);
        }
        Ok(regions)
    }

    /// Resolves the unique region containing the bitstream's frame window.
    fn resolve_region(&self, bitstream: &PartialBitstream) -> Result<RegionId, CatalogError> {
        let pid = self
            .floorplan
            .containing(bitstream.far(), bitstream.frame_count())
            .ok_or(CatalogError::Unplaceable {
                far: bitstream.far(),
                frames: bitstream.frame_count(),
            })?;
        Ok(RegionId(
            self.regions
                .iter()
                .position(|&p| p == pid)
                .expect("every floorplan partition was added through add_region"),
        ))
    }

    fn insert_entry(
        &mut self,
        id: BitstreamId,
        bitstream: PartialBitstream,
        region: RegionId,
        facts: StagingFacts,
    ) {
        self.entries.insert(
            id,
            CatalogEntry {
                bitstream,
                region,
                raw_bytes: facts.raw_bytes,
                compressed: facts.compressed,
                staged_words: facts.staged_words,
                packed: facts.packed,
            },
        );
    }

    /// Looks up a registered entry.
    #[must_use]
    pub fn entry(&self, id: BitstreamId) -> Option<&CatalogEntry> {
        self.entries.get(&id)
    }

    /// All registered ids in ascending order.
    #[must_use]
    pub fn ids(&self) -> Vec<BitstreamId> {
        self.entries.keys().copied().collect()
    }

    /// Number of declared regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Number of registered bitstreams.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no bitstream is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The device this catalog describes.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The staging BRAM capacity in bytes.
    #[must_use]
    pub fn bram_bytes(&self) -> usize {
        self.bram_bytes
    }

    /// The staging compression algorithm.
    #[must_use]
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The floorplan backing the region map.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uparc_bitstream::synth::SynthProfile;

    fn catalog_with_region() -> (Catalog, RegionId) {
        let device = Device::xc5vsx50t();
        let mut cat = Catalog::new(device);
        let r = cat.add_region("rp0", 100..160).unwrap();
        (cat, r)
    }

    fn bitstream(cat: &Catalog, far: u32, frames: u32, seed: u64) -> PartialBitstream {
        let payload = SynthProfile::dense().generate(cat.device(), far, frames, seed);
        PartialBitstream::build(cat.device(), far, &payload)
    }

    #[test]
    fn register_resolves_region_and_mode() {
        let (mut cat, r0) = catalog_with_region();
        let bs = bitstream(&cat, 100, 40, 7);
        let region = cat.register(BitstreamId(1), bs).unwrap();
        assert_eq!(region, r0);
        let entry = cat.entry(BitstreamId(1)).unwrap();
        assert_eq!(entry.region(), r0);
        assert!(!entry.compressed(), "40 frames fit the 256 KB BRAM raw");
        assert_eq!(entry.staged_words(), entry.raw_bytes() / 4 + 1);
        assert_eq!(entry.mode(), Mode::Raw);
    }

    #[test]
    fn register_rejects_duplicates_and_strays() {
        let (mut cat, _) = catalog_with_region();
        let bs = bitstream(&cat, 100, 40, 7);
        cat.register(BitstreamId(1), bs.clone()).unwrap();
        assert!(matches!(
            cat.register(BitstreamId(1), bs),
            Err(CatalogError::DuplicateId { .. })
        ));
        // Frame window outside every region.
        let stray = bitstream(&cat, 300, 10, 9);
        assert!(matches!(
            cat.register(BitstreamId(2), stray),
            Err(CatalogError::Unplaceable { .. })
        ));
    }

    #[test]
    fn small_bram_forces_compression() {
        let device = Device::xc5vsx50t();
        let mut cat = Catalog::new(device).with_bram_bytes(8 * 1024);
        cat.add_region("rp0", 100..160).unwrap();
        // 60 frames of mostly-blank content: raw image exceeds the 8 KB
        // BRAM, compressed image fits easily.
        let payload = SynthProfile::sparse().generate(cat.device(), 100, 60, 7);
        let bs = PartialBitstream::build(cat.device(), 100, &payload);
        let raw = bs.size_bytes();
        assert!(raw + 4 > 8 * 1024);
        cat.register(BitstreamId(1), bs).unwrap();
        let entry = cat.entry(BitstreamId(1)).unwrap();
        assert!(entry.compressed());
        assert!(entry.staged_words() * 4 <= 8 * 1024);
        assert_eq!(entry.mode(), Mode::Compressed);
    }

    #[test]
    fn batch_registration_matches_sequential() {
        let make = || {
            let device = Device::xc5vsx50t();
            let mut cat = Catalog::new(device).with_bram_bytes(8 * 1024);
            cat.add_region("rp0", 100..160).unwrap();
            cat
        };
        let template = make();
        let batch: Vec<(BitstreamId, PartialBitstream)> = (0..6)
            .map(|i| {
                let payload = SynthProfile::sparse().generate(
                    template.device(),
                    100,
                    54 + i,
                    u64::from(i) * 31 + 7,
                );
                (
                    BitstreamId(i),
                    PartialBitstream::build(template.device(), 100, &payload),
                )
            })
            .collect();

        let mut sequential = make();
        for (id, bs) in batch.clone() {
            sequential.register(id, bs).unwrap();
        }
        let mut batched = make();
        let regions = batched.register_batch(batch).unwrap();
        assert_eq!(regions.len(), 6);

        assert_eq!(sequential.ids(), batched.ids());
        for id in sequential.ids() {
            let s = sequential.entry(id).unwrap();
            let b = batched.entry(id).unwrap();
            assert_eq!(s.region(), b.region());
            assert_eq!(s.compressed(), b.compressed());
            assert_eq!(s.staged_words(), b.staged_words());
            assert_eq!(s.packed_bytes(), b.packed_bytes());
            assert!(s.compressed(), "sparse 54+ frames exceed the 8 KB BRAM");
            assert!(s.packed_bytes().is_some());
        }
    }

    #[test]
    fn batch_rejects_duplicates_without_partial_registration() {
        let (mut cat, _) = catalog_with_region();
        let a = bitstream(&cat, 100, 10, 1);
        let b = bitstream(&cat, 100, 12, 2);
        let err = cat
            .register_batch(vec![(BitstreamId(1), a), (BitstreamId(1), b)])
            .unwrap_err();
        assert!(matches!(err, CatalogError::DuplicateId { .. }));
        assert!(cat.is_empty(), "all-or-nothing: nothing registered");
    }

    #[test]
    fn raw_entries_retain_no_packed_payload() {
        let (mut cat, _) = catalog_with_region();
        let bs = bitstream(&cat, 100, 40, 7);
        cat.register(BitstreamId(1), bs).unwrap();
        let entry = cat.entry(BitstreamId(1)).unwrap();
        assert!(!entry.compressed());
        assert_eq!(entry.packed_bytes(), None);
    }

    #[test]
    fn ids_iterate_in_ascending_order() {
        let (mut cat, _) = catalog_with_region();
        for id in [5u32, 1, 3] {
            let bs = bitstream(&cat, 100, 10 + id, u64::from(id));
            cat.register(BitstreamId(id), bs).unwrap();
        }
        assert_eq!(
            cat.ids(),
            vec![BitstreamId(1), BitstreamId(3), BitstreamId(5)]
        );
    }
}

//! Shared CLI argument parsing for the bench binaries.
//!
//! Every harness accepts the same two flags — `--smoke` for the
//! seconds-scale CI variant and `--trace <path>` for a Chrome-trace dump —
//! which used to be parsed by copy-pasted helpers in each binary. This
//! module is the single implementation.

/// The common bench flags, parsed once at startup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchArgs {
    /// `--smoke`: run the small CI variant instead of the full benchmark.
    pub smoke: bool,
    /// `--trace <path>`: where to write the Chrome-trace export, if asked.
    pub trace: Option<String>,
}

impl BenchArgs {
    /// Parses the process's command line.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses an explicit argument stream (exposed so tests don't have to
    /// fake the process command line).
    pub fn parse_from<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut parsed = BenchArgs::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_ref() {
                "--smoke" => parsed.smoke = true,
                "--trace" => parsed.trace = args.next().map(|s| s.as_ref().to_owned()),
                _ => {}
            }
        }
        parsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_smoke_and_trace() {
        let a = BenchArgs::parse_from(["--smoke", "--trace", "out.json"]);
        assert!(a.smoke);
        assert_eq!(a.trace.as_deref(), Some("out.json"));
    }

    #[test]
    fn defaults_and_unknown_flags() {
        let a = BenchArgs::parse_from(["--unknown", "x"]);
        assert_eq!(a, BenchArgs::default());
        assert!(!a.smoke);
        assert!(a.trace.is_none());
    }

    #[test]
    fn trace_without_value_is_none() {
        let a = BenchArgs::parse_from(["--trace"]);
        assert!(a.trace.is_none());
    }

    #[test]
    fn order_does_not_matter() {
        let a = BenchArgs::parse_from(["--trace", "t.json", "--smoke"]);
        assert!(a.smoke);
        assert_eq!(a.trace.as_deref(), Some("t.json"));
    }
}

//! `bitinfo` — inspect a `.bit` container: preamble fields, stream
//! structure, content statistics and per-codec compressibility.
//!
//! Usage:
//! ```text
//! cargo run --release -p uparc-bench --bin bitinfo -- <file.bit> [v5|v6]
//! ```
//! With no arguments, a demonstration bitstream is generated, written to a
//! temp file and inspected (so the tool is runnable out of the box).

use uparc_bitstream::bitfile::BitFile;
use uparc_bitstream::builder::{bytes_to_words, PartialBitstream};
use uparc_bitstream::parser::StreamInfo;
use uparc_bitstream::synth::SynthProfile;
use uparc_compress::{stats, Algorithm, Ratio};
use uparc_fpga::{Device, Family};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (path, family) = match args.len() {
        1 => {
            // Self-demo: generate and dump a bitstream to inspect.
            let device = Device::xc5vsx50t();
            let payload = SynthProfile::dense().generate(&device, 300, 500, 99);
            let bs = PartialBitstream::build(&device, 300, &payload);
            let path = std::env::temp_dir().join("uparc_bitinfo_demo.bit");
            std::fs::write(&path, bs.to_bitfile("demo_rp0").to_bytes()).expect("write demo file");
            println!("(no file given — inspecting a generated demo bitstream)\n");
            (path.to_string_lossy().into_owned(), Family::Virtex5)
        }
        _ => {
            let family = match args.get(2).map(String::as_str) {
                Some("v6") => Family::Virtex6,
                Some("v4") => Family::Virtex4,
                _ => Family::Virtex5,
            };
            (args[1].clone(), family)
        }
    };

    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let file = BitFile::parse(&bytes).unwrap_or_else(|e| {
        eprintln!("not a .bit container: {e}");
        std::process::exit(1);
    });

    println!("file:    {path} ({} bytes)", bytes.len());
    println!("design:  {}", file.design_name);
    println!("part:    {}", file.part);
    println!("built:   {} {}", file.date, file.time);
    println!("payload: {} bytes of configuration data", file.data.len());

    match bytes_to_words(&file.data).and_then(|w| StreamInfo::scan(family, &w)) {
        Ok(info) => {
            println!("\nstream structure ({family}):");
            println!(
                "  idcode:  {}",
                info.idcode.map_or("-".into(), |i| format!("{i:#010x}"))
            );
            println!(
                "  far:     {}",
                info.far.map_or("-".into(), |f| f.to_string())
            );
            println!(
                "  frames:  {} ({} payload words)",
                info.frames, info.payload_words
            );
            println!(
                "  crc:     {}",
                if info.has_crc { "present" } else { "absent" }
            );
            println!(
                "  desync:  {}",
                if info.desynced {
                    "clean trailer"
                } else {
                    "MISSING"
                }
            );
        }
        Err(e) => println!("\nstream structure: unreadable ({e})"),
    }

    let s = stats::analyze(&file.data);
    println!("\ncontent statistics:");
    println!(
        "  order-0 entropy: {:.2} bits/byte (huffman bound {:.1}% saved)",
        s.entropy_bits,
        s.order0_bound_percent()
    );
    println!("  zero bytes:      {:.1}%", s.zero_fraction * 100.0);
    println!("  distinct bytes:  {}", s.distinct);
    println!(
        "  run mass:        {:.0}% singles, {:.0}% short, {:.0}% medium, {:.0}% long, {:.0}% 64+",
        s.runs.singles * 100.0,
        s.runs.short * 100.0,
        s.runs.medium * 100.0,
        s.runs.long * 100.0,
        s.runs.very_long * 100.0
    );

    println!("\ncompressibility (Table I codecs):");
    for alg in Algorithm::ALL {
        let codec = alg.codec();
        let packed = codec.compress(&file.data);
        println!(
            "  {:<11} {:>7} bytes  ({})",
            alg.to_string(),
            packed.len(),
            Ratio::new(file.data.len().max(1), packed.len())
        );
    }
}

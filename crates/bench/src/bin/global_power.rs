//! The paper's **§VI future work**, implemented: "global power
//! optimization of an application using high speed and energy efficient
//! partial dynamic reconfiguration".
//!
//! A software-defined-radio application cycles through five modules; the
//! optimizer assigns every swap a CLK_2 at once, sweeping the makespan
//! budget to expose the power/deadline trade curve, then validates the
//! tightest plan by running it on the full system model.
//!
//! Run with `cargo run --release -p uparc-bench --bin global_power`.

use uparc_bench::Report;
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_core::optimize::{AppPhase, GlobalOptimizer};
use uparc_core::policy::PowerAwarePolicy;
use uparc_core::uparc::{Mode, UParc};
use uparc_fpga::Device;
use uparc_sim::time::SimTime;

fn application() -> Vec<AppPhase> {
    vec![
        AppPhase::new("sync", 40 * 1024, SimTime::from_ms(1)),
        AppPhase::new("channel-est", 96 * 1024, SimTime::from_ms(2)),
        AppPhase::new("demod", 160 * 1024, SimTime::from_ms(2)),
        AppPhase::new("viterbi", 200 * 1024, SimTime::from_ms(3)),
        AppPhase::new("crc-out", 24 * 1024, SimTime::from_ms(1)),
    ]
}

fn main() {
    let device = Device::xc5vsx50t();
    let opt = GlobalOptimizer::new(PowerAwarePolicy::paper_setup(device.family()));
    let phases = application();
    let exec_total: SimTime = phases.iter().map(|p| p.execution).sum();
    println!(
        "application: {} phases, {} of execution, {:.0} KB of bitstreams",
        phases.len(),
        exec_total,
        phases.iter().map(|p| p.bitstream_bytes).sum::<usize>() as f64 / 1024.0
    );

    let mut report = Report::new(
        "Global power optimization — min peak power vs makespan budget",
        &[
            "Makespan budget",
            "Peak power [mW]",
            "CLK_2",
            "Total time",
            "Swap energy [µJ]",
        ],
    );
    for budget_ms in [20.0, 12.0, 10.5, 9.6, 9.25] {
        let makespan = SimTime::from_secs_f64(budget_ms * 1e-3);
        match opt.minimize_peak_power(&phases, makespan) {
            Ok(plan) => report.row(&[
                format!("{budget_ms} ms"),
                format!("{:.0}", plan.peak_power_mw),
                plan.per_phase[0].1.frequency.to_string(),
                plan.total_time.to_string(),
                format!("{:.0}", plan.total_energy_uj),
            ]),
            Err(e) => report.row(&[
                format!("{budget_ms} ms"),
                "infeasible".to_owned(),
                "-".to_owned(),
                format!("{e}"),
                "-".to_owned(),
            ]),
        }
    }
    report.print();

    // Validate the tightest feasible plan on the full system model
    // (best achievable is ~9.37 ms: executions + swaps at 362.5 MHz).
    let makespan = SimTime::from_us(9600);
    let plan = opt
        .minimize_peak_power(&phases, makespan)
        .expect("feasible");
    let mut sys = UParc::builder(device.clone()).build().expect("build");
    let mut busy = SimTime::ZERO; // downtime + execution (preloads prefetch)
    for (phase, (name, point)) in phases.iter().zip(&plan.per_phase) {
        sys.set_reconfiguration_frequency(point.frequency)
            .expect("tune");
        let frames = (phase.bitstream_bytes / device.family().frame_bytes()) as u32;
        let payload = SynthProfile::dense().generate(&device, 0, frames, 1);
        let bs = PartialBitstream::build(&device, 0, &payload);
        let r = sys.reconfigure_bitstream(&bs, Mode::Raw).expect("swap");
        assert!(
            r.elapsed() <= point.predicted_time + SimTime::from_us(1),
            "{name}"
        );
        busy += r.elapsed() + phase.execution;
        sys.advance_idle(phase.execution);
    }
    let trace = sys.power_trace();
    println!(
        "\nvalidated at {} budget: swaps + executions took {}, measured peak {:.0} mW (planned {:.0})",
        makespan,
        busy,
        trace.peak_mw(),
        plan.peak_power_mw
    );
    assert!(busy <= makespan, "plan holds on the system model");
    println!("the plan's uniform power cap is optimal for the min-peak objective: the peak");
    println!("is a max over phases, and under any cap each phase's fastest admissible clock");
    println!("minimises its share of the makespan.");
}

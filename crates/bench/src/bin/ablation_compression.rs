//! **Ablation: UPaRC_i vs UPaRC_ii across bitstream sizes** — where the
//! compressed mode pays off.
//!
//! The paper's mode policy (§III-C): stage raw if the bitstream fits the
//! 256 KB BRAM, compressed otherwise. This ablation sweeps bitstream sizes
//! across the BRAM boundary and shows the crossover: below ~256 KB the raw
//! path is strictly faster (362.5 MHz vs decompressor-paced ~1 GB/s);
//! beyond it only the compressed path works at all, up to the ~992 KB
//! capacity the paper quotes (>40% of the device).
//!
//! Run with `cargo run --release -p uparc-bench --bin ablation_compression`.

use uparc_bench::Report;
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_core::uparc::{Mode, UParc, COMPRESSED_MODE_MAX};
use uparc_core::UparcError;
use uparc_fpga::Device;
use uparc_sim::time::Frequency;

const SIZES_KB: [usize; 7] = [49, 128, 247, 320, 512, 768, 992];

fn main() {
    let device = Device::xc5vsx50t();
    let profile = SynthProfile::dense();
    let mut report = Report::new(
        "Ablation — raw vs compressed staging across bitstream sizes",
        &[
            "Size",
            "UPaRC_i (raw)",
            "UPaRC_ii (compressed)",
            "stored",
            "winner",
        ],
    );
    for &kb in &SIZES_KB {
        let frames = (kb * 1024 / device.family().frame_bytes()) as u32;
        let payload = profile.generate(&device, 0, frames, 31);
        let bs = PartialBitstream::build(&device, 0, &payload);

        let raw = {
            let mut sys = UParc::builder(device.clone()).build().expect("build");
            sys.set_reconfiguration_frequency(Frequency::from_mhz(362.5))
                .expect("retune");
            sys.reconfigure_bitstream(&bs, Mode::Raw)
        };
        let comp = {
            let mut sys = UParc::builder(device.clone()).build().expect("build");
            sys.set_reconfiguration_frequency(Frequency::from_mhz(COMPRESSED_MODE_MAX))
                .expect("retune");
            sys.reconfigure_bitstream(&bs, Mode::Compressed)
        };
        let fmt = |r: &Result<uparc_core::uparc::UparcReport, UparcError>| match r {
            Ok(rep) => format!("{:.0} MB/s", rep.bandwidth_mb_s()),
            Err(UparcError::RawTooLarge { .. } | UparcError::BramCapacity { .. }) => {
                "does not fit".to_owned()
            }
            Err(e) => format!("error: {e}"),
        };
        let stored = match &comp {
            Ok(rep) => format!("{:.0} KB", rep.stored_bytes as f64 / 1024.0),
            Err(_) => "-".to_owned(),
        };
        let winner = match (&raw, &comp) {
            (Ok(a), Ok(b)) if a.bandwidth_mb_s() > b.bandwidth_mb_s() => "raw",
            (Ok(_), Ok(_)) => "compressed",
            (Ok(_), Err(_)) => "raw",
            (Err(_), Ok(_)) => "compressed (only option)",
            (Err(_), Err(_)) => "neither",
        };
        report.row(&[
            format!("{kb} KB"),
            fmt(&raw),
            fmt(&comp),
            stored,
            winner.to_owned(),
        ]);
    }
    report.print();
    println!("\npaper: 256 KB of BRAM stores up to 992 KB compressed — >40% of the");
    println!("XC5VSX50T's 2444 KB full bitstream, i.e. the largest half-device module (§IV).");
}

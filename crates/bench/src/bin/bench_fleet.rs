//! Machine-readable rack-scale fleet benchmark: writes `BENCH_fleet.json`
//! with throughput scaling, locality-vs-random routing uplift, latency
//! percentiles at million-request scale, hierarchical power-cap
//! behaviour, and a chaos grid (chip loss, brownout, power emergency)
//! of the `uparc-fleet` sharded serving layer.
//!
//! Four runs over the same million-request stream: random routing at 1
//! and 8 workers (the scaling pair), locality routing at 1 and 8 workers
//! (the uplift pair). Simulated results are deterministic in the seed
//! *and* the worker count — each policy's two runs must render
//! byte-identical digests, which is the double-render gate. The chaos
//! grid then re-runs a locality fleet under four campaigns
//! (`none`/`chip_loss`/`brownout`/`emergency`), each at 1 and 8 workers.
//!
//! Run with `cargo run --release --bin bench_fleet`; pass `--smoke` for
//! a seconds-scale CI variant (smaller fleet, same assertions minus the
//! wall-clock-dependent ones), and `--trace <path>` to additionally
//! re-run the chip-loss cell with a recording observer and write its
//! Chrome-trace JSON (chip deaths and failovers show as instants).
//!
//! Acceptance gates:
//! * full mode streams ≥ 1,000,000 requests per run;
//! * every quiet run completes every request with **zero** rack-cap
//!   violations (verified by the fleet's independent interval sweep);
//! * each policy renders byte-identically at 1 and 8 workers — and so
//!   does every chaos cell;
//! * every chaos cell keeps the accounting identity exact:
//!   `completed + shed == requests`, nothing lost or double-served;
//! * the chip-loss campaign still completes ≥ 99% of the stream, with
//!   at least one chip dead and at least one successful failover;
//! * the emergency campaign records **zero** violations of the cut cap
//!   inside its window (and none of the steady cap outside it);
//! * re-running a campaign reproduces its digest byte for byte;
//! * normalised throughput scaling efficiency
//!   `(t1/t8) / min(8, cores)` ≥ 0.7 (full mode; raw figures always
//!   emitted);
//! * locality routing beats random routing on fleet cache hit rate, and
//!   its measured words/s uplift is emitted alongside (gated > 1 in
//!   full mode: hits skip real decompressions, so the host-side work
//!   saved is wall-clock visible).

use std::time::Instant;

use uparc_bench::report::{JsonReport, Obj, Value};
use uparc_fleet::{
    synthetic_catalog, ChaosSpec, EmergencyWindow, Fleet, FleetConfig, FleetOutcome,
    FleetWorkloadSpec, HealthConfig, RoutePolicy,
};
use uparc_sim::obs::Obs;
use uparc_sim::sweep;
use uparc_sim::time::{Frequency, SimTime};

/// Workload seed; every run reuses it so streams are identical.
const SEED: u64 = 20120312;

/// Fleet shape per mode.
struct Scale {
    chips: usize,
    images: usize,
    frames_per_image: u32,
    requests: u64,
    /// Chaos cells stream fewer requests: faulted dispatches re-run a
    /// scratch controller each, so the grid trades stream length for
    /// campaign coverage.
    chaos_requests: u64,
    mean_gap: SimTime,
    rack_cap_mw: f64,
    epoch: SimTime,
    /// Per-chip decompressed-image cache (≈ 8 images).
    chip_cache_bytes: usize,
}

fn scale(smoke: bool) -> Scale {
    if smoke {
        Scale {
            chips: 64,
            images: 256,
            frames_per_image: 12,
            requests: 50_000,
            chaos_requests: 20_000,
            mean_gap: SimTime::from_ns(400),
            rack_cap_mw: 28_000.0,
            epoch: SimTime::from_us(200),
            chip_cache_bytes: 16 * 1024,
        }
    } else {
        Scale {
            chips: 1024,
            images: 4096,
            frames_per_image: 40,
            requests: 1_000_000,
            chaos_requests: 200_000,
            mean_gap: SimTime::from_ns(56),
            rack_cap_mw: 450_000.0,
            epoch: SimTime::from_ms(1),
            chip_cache_bytes: 56 * 1024,
        }
    }
}

/// The four chaos campaigns of the grid, drawn inside `horizon` (the
/// arrival span of the chaos stream).
fn chaos_cells(s: &Scale, horizon: SimTime) -> Vec<(&'static str, ChaosSpec)> {
    let h = horizon.as_fs();
    vec![
        ("none", ChaosSpec::quiet()),
        (
            "chip_loss",
            ChaosSpec {
                seed: SEED ^ 0xC4A05,
                horizon,
                loss_permille: 15,
                wedge_permille: 30,
                wedge_window: SimTime::from_fs(h / 20),
                seu_permille: 30,
                seu_window: SimTime::from_fs(h / 12),
                seu_faults_per_request: 1,
                ambient_fault_ppm: 20,
                ..ChaosSpec::quiet()
            },
        ),
        (
            "brownout",
            ChaosSpec {
                seed: SEED ^ 0xB06,
                horizon,
                brownout_permille: 250,
                brownout_window: SimTime::from_fs(h / 6),
                brownout_factor: 0.5,
                ..ChaosSpec::quiet()
            },
        ),
        (
            "emergency",
            ChaosSpec {
                seed: SEED ^ 0xE4E6,
                horizon,
                emergencies: vec![EmergencyWindow {
                    from: SimTime::from_fs(h / 4),
                    to: SimTime::from_fs(3 * h / 4),
                    cap_mw: s.rack_cap_mw * 0.9,
                }],
                ..ChaosSpec::quiet()
            },
        ),
    ]
}

/// One benchmarked run: outcome plus its wall-clock.
struct Run {
    label: &'static str,
    workers: usize,
    outcome: FleetOutcome,
    wall_s: f64,
}

impl Run {
    fn wall_words_per_sec(&self) -> f64 {
        self.outcome.words as f64 / self.wall_s
    }
}

fn execute(fleet: &Fleet, spec: &FleetWorkloadSpec, label: &'static str, workers: usize) -> Run {
    sweep::pin_workers(workers);
    let t0 = Instant::now();
    let outcome = fleet.run(spec).expect("feasible fleet run");
    let wall_s = t0.elapsed().as_secs_f64();
    sweep::unpin_workers();
    println!(
        "{label:<11} workers {workers}: {:>9} done in {wall_s:>7.2}s wall, hit rate {:.4}, \
         p99 {:>9.2} us, peak {:>9.1} mW ({} violations)",
        outcome.completed,
        outcome.hit_rate,
        outcome.p99_us,
        outcome.peak_power_mw,
        outcome.cap_violations,
    );
    Run {
        label,
        workers,
        outcome,
        wall_s,
    }
}

fn execute_chaos(
    fleet: &Fleet,
    spec: &FleetWorkloadSpec,
    chaos: &ChaosSpec,
    label: &'static str,
    workers: usize,
) -> Run {
    sweep::pin_workers(workers);
    let t0 = Instant::now();
    let outcome = fleet
        .run_chaos(spec, chaos, &Obs::null())
        .expect("feasible chaos run");
    let wall_s = t0.elapsed().as_secs_f64();
    sweep::unpin_workers();
    println!(
        "chaos {label:<10} workers {workers}: {:>8}/{} done in {wall_s:>6.2}s, \
         lost {} chips, {} failovers, {} shed, {} healed, violations {}+{}",
        outcome.completed,
        outcome.requests,
        outcome.chips_lost,
        outcome.failovers,
        outcome.shed.total(),
        outcome.healed,
        outcome.cap_violations,
        outcome.cap_violations_emergency,
    );
    Run {
        label,
        workers,
        outcome,
        wall_s,
    }
}

fn run_row(r: &Run) -> Value {
    let o = &r.outcome;
    Obj::new()
        .field("policy", r.label)
        .field("workers", r.workers)
        .field("wall_s", Value::fixed(r.wall_s, 3))
        .field("completed", o.completed)
        .field("hit_rate", Value::fixed(o.hit_rate, 6))
        .field("hits", o.hits)
        .field("misses", o.misses)
        .field("evictions", o.evictions)
        .field("warm", o.route.warm)
        .field("cold", o.route.cold)
        .field("spills", o.route.spills)
        .field("words", o.words)
        .field("sim_words_per_sec", Value::fixed(o.sim_words_per_sec, 1))
        .field(
            "wall_words_per_sec",
            Value::fixed(r.wall_words_per_sec(), 1),
        )
        .field("makespan_ms", Value::fixed(o.makespan.as_us_f64() / 1e3, 3))
        .field("p50_us", Value::fixed(o.p50_us, 3))
        .field("p95_us", Value::fixed(o.p95_us, 3))
        .field("p99_us", Value::fixed(o.p99_us, 3))
        .field("p999_us", Value::fixed(o.p999_us, 3))
        .field("mean_frequency_mhz", Value::fixed(o.mean_frequency_mhz, 2))
        .field("energy_uj", Value::fixed(o.energy_uj, 1))
        .field("peak_power_mw", Value::fixed(o.peak_power_mw, 3))
        .field("cap_violations", o.cap_violations)
        .field("min_chip_completed", o.min_chip_completed)
        .field("max_chip_completed", o.max_chip_completed)
        .field("checksum", format!("{:016x}", o.checksum).as_str())
        .into()
}

fn chaos_row(r: &Run) -> Value {
    let o = &r.outcome;
    Obj::new()
        .field("campaign", r.label)
        .field("workers", r.workers)
        .field("wall_s", Value::fixed(r.wall_s, 3))
        .field("requests", o.requests)
        .field("completed", o.completed)
        .field("completed_failover", o.completed_failover)
        .field("chips_lost", o.chips_lost)
        .field("quarantines", o.quarantines)
        .field("failovers", o.failovers)
        .field("shed_total", o.shed.total())
        .field("shed_queue_full", o.shed.queue_full)
        .field("shed_no_live_chip", o.shed.no_live_chip)
        .field("shed_retries_exhausted", o.shed.retries_exhausted)
        .field("shed_dispatch_failed", o.shed.dispatch_failed)
        .field("faulted", o.faulted)
        .field("healed", o.healed)
        .field("faults_applied", o.faults_applied)
        .field(
            "recovery_extra_time_us",
            Value::fixed(o.recovery_extra_time.as_us_f64(), 3),
        )
        .field(
            "recovery_extra_energy_uj",
            Value::fixed(o.recovery_extra_energy_uj, 3),
        )
        .field("degraded_completed", o.degraded_completed)
        .field("p99_steady_us", Value::fixed(o.p99_steady_us, 3))
        .field("p99_degraded_us", Value::fixed(o.p99_degraded_us, 3))
        .field("mean_frequency_mhz", Value::fixed(o.mean_frequency_mhz, 2))
        .field("peak_power_mw", Value::fixed(o.peak_power_mw, 3))
        .field("cap_violations", o.cap_violations)
        .field("cap_violations_emergency", o.cap_violations_emergency)
        .field("checksum", format!("{:016x}", o.checksum).as_str())
        .into()
}

/// Re-runs the chip-loss campaign with a recording observer and writes
/// its Chrome-trace JSON to `path`; the export is parsed back with the
/// in-repo JSON parser and must contain `ChipDown` instants before the
/// file is accepted.
fn write_trace(fleet: &Fleet, spec: &FleetWorkloadSpec, chaos: &ChaosSpec, path: &str) {
    use std::sync::Arc;
    use uparc_sim::obs::TraceRecorder;

    let recorder = Arc::new(TraceRecorder::new());
    let obs = Obs::recording(Arc::clone(&recorder));
    sweep::pin_workers(1);
    let out = fleet
        .run_chaos(spec, chaos, &obs)
        .expect("traced chaos run is feasible");
    sweep::unpin_workers();
    assert!(out.chips_lost > 0, "traced campaign killed no chip");

    let trace = recorder.chrome_trace(Some(obs.metrics()));
    let parsed = uparc_sim::obs::json::parse(&trace)
        .unwrap_or_else(|e| panic!("trace export is not valid JSON: {e}"));
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("trace has a traceEvents array");
    assert!(!events.is_empty(), "traced campaign produced no events");
    assert!(
        trace.contains("ChipDown"),
        "trace is missing ChipDown instants"
    );

    std::fs::write(path, &trace).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "trace written: {path} ({} events, {} bytes)",
        events.len(),
        trace.len()
    );
}

fn main() {
    let args = uparc_bench::args::BenchArgs::parse();
    let (smoke, trace_path) = (args.smoke, args.trace);
    let s = scale(smoke);

    println!(
        "building catalog: {} images x {} frames, {} chips",
        s.images, s.frames_per_image, s.chips
    );
    let catalog = synthetic_catalog(s.images, s.frames_per_image, SEED);
    let config = |route: RoutePolicy| FleetConfig {
        chips: s.chips,
        rack_cap_mw: s.rack_cap_mw,
        epoch: s.epoch,
        chip_cache_bytes: s.chip_cache_bytes,
        route,
        min_frequency: Frequency::from_mhz(50.0),
        health: HealthConfig::default(),
        shed_backlog: None,
        failover_retries: 3,
    };
    let t0 = Instant::now();
    let random = Fleet::new(catalog.clone(), config(RoutePolicy::Random { seed: SEED }))
        .expect("random fleet builds");
    // A holder may run ~8 dispatches ahead of the least-loaded chip
    // before locality yields: the window tracks the calibrated service
    // time, so it survives rescaling the fleet.
    let locality_policy = RoutePolicy::Locality {
        spill_window: SimTime::from_fs(random.tables().mean_service_estimate().as_fs() * 8),
    };
    let locality =
        Fleet::new(catalog.clone(), config(locality_policy)).expect("locality fleet builds");
    println!(
        "calibrated {} grid points in {:.2}s",
        random.tables().grid().len(),
        t0.elapsed().as_secs_f64()
    );
    let spec = FleetWorkloadSpec {
        requests: s.requests,
        mean_gap: s.mean_gap,
        seed: SEED,
    };

    let rand1 = execute(&random, &spec, "random", 1);
    let rand8 = execute(&random, &spec, "random", 8);
    let loc1 = execute(&locality, &spec, "locality", 1);
    let loc8 = execute(&locality, &spec, "locality", 8);

    // ---- acceptance gates --------------------------------------------
    for r in [&rand1, &rand8, &loc1, &loc8] {
        assert_eq!(
            r.outcome.completed, s.requests,
            "{} w{}: requests unaccounted for",
            r.label, r.workers
        );
        assert_eq!(
            r.outcome.cap_violations, 0,
            "{} w{}: rack cap violated",
            r.label, r.workers
        );
        assert!(
            r.outcome.peak_power_mw <= s.rack_cap_mw + 1e-9,
            "{} w{}: verified peak {:.1} mW above the {:.0} mW rack cap",
            r.label,
            r.workers,
            r.outcome.peak_power_mw,
            s.rack_cap_mw
        );
    }
    if !smoke {
        assert!(
            s.requests >= 1_000_000,
            "full mode must stream 1M+ requests"
        );
    }

    // Double-render identity: the same stream at 1 and 8 workers must
    // produce bit-identical merged outcomes per policy.
    assert_eq!(
        rand1.outcome.render(),
        rand8.outcome.render(),
        "random routing outcome depends on worker count"
    );
    assert_eq!(
        loc1.outcome.render(),
        loc8.outcome.render(),
        "locality routing outcome depends on worker count"
    );
    // Both policies serve the same image multiset, so the XOR-fold work
    // checksum matches across policies too.
    assert_eq!(
        rand1.outcome.checksum, loc1.outcome.checksum,
        "policies served different image bytes"
    );

    // Throughput scaling 1 → 8 workers, normalised by what the host can
    // actually parallelise (raw figures are in the report either way).
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup = rand1.wall_s / rand8.wall_s;
    let scaling_efficiency = speedup / cores.min(8) as f64;
    println!(
        "scaling: {speedup:.2}x speedup on {cores} core(s) -> efficiency {scaling_efficiency:.2}"
    );
    if !smoke {
        assert!(
            scaling_efficiency >= 0.7,
            "scaling efficiency {scaling_efficiency:.2} below 0.7 ({speedup:.2}x on {cores} cores)"
        );
    }

    // Locality uplift vs random at the same worker count.
    let hit_uplift = loc8.outcome.hit_rate - rand8.outcome.hit_rate;
    let words_uplift = loc8.wall_words_per_sec() / rand8.wall_words_per_sec();
    println!(
        "locality uplift: hit rate {:.4} vs {:.4} (+{hit_uplift:.4}), \
         measured words/s x{words_uplift:.2}",
        loc8.outcome.hit_rate, rand8.outcome.hit_rate
    );
    assert!(
        loc8.outcome.hit_rate > rand8.outcome.hit_rate,
        "locality routing did not beat random on fleet hit rate"
    );
    if !smoke {
        assert!(
            words_uplift > 1.0,
            "locality words/s uplift {words_uplift:.2} not above 1 (hits should skip decompression)"
        );
    }

    // ---- chaos grid ---------------------------------------------------
    // A locality fleet with degradation armed: backlog-based shedding
    // and a bounded failover budget.
    let mut chaos_config = config(locality_policy);
    chaos_config.shed_backlog = Some(SimTime::from_ms(2));
    let chaos_fleet = Fleet::new(catalog, chaos_config).expect("chaos fleet builds");
    let chaos_spec = FleetWorkloadSpec {
        requests: s.chaos_requests,
        mean_gap: s.mean_gap,
        seed: SEED,
    };
    let horizon = SimTime::from_fs(s.chaos_requests * s.mean_gap.as_fs());
    let cells = chaos_cells(&s, horizon);
    let mut chaos_runs: Vec<(Run, Run)> = Vec::new();
    for (label, chaos) in &cells {
        let one = execute_chaos(&chaos_fleet, &chaos_spec, chaos, label, 1);
        let eight = execute_chaos(&chaos_fleet, &chaos_spec, chaos, label, 8);
        chaos_runs.push((one, eight));
    }

    // ---- chaos gates --------------------------------------------------
    for (one, eight) in &chaos_runs {
        // Accounting identity, both worker counts.
        for r in [one, eight] {
            assert_eq!(
                r.outcome.completed + r.outcome.shed.total(),
                chaos_spec.requests,
                "chaos {} w{}: requests unaccounted for",
                r.label,
                r.workers
            );
            assert_eq!(
                r.outcome.cap_violations, 0,
                "chaos {} w{}: steady rack cap violated",
                r.label, r.workers
            );
            assert_eq!(
                r.outcome.cap_violations_emergency, 0,
                "chaos {} w{}: emergency cap violated",
                r.label, r.workers
            );
        }
        // Worker-count identity per campaign.
        assert_eq!(
            one.outcome.render(),
            eight.outcome.render(),
            "chaos {} outcome depends on worker count",
            one.label
        );
    }
    let by_label = |l: &str| {
        &chaos_runs
            .iter()
            .find(|(one, _)| one.label == l)
            .expect("cell exists")
            .0
            .outcome
    };
    let quiet_cell = by_label("none");
    assert_eq!(
        quiet_cell.completed, chaos_spec.requests,
        "quiet chaos cell shed requests"
    );
    let loss_cell = by_label("chip_loss");
    assert!(
        loss_cell.chips_lost >= 1,
        "chip-loss campaign killed no one"
    );
    assert!(loss_cell.failovers > 0, "chip loss produced no failovers");
    assert!(
        loss_cell.completed as f64 >= 0.99 * chaos_spec.requests as f64,
        "chip-loss completion {}/{} below 99%",
        loss_cell.completed,
        chaos_spec.requests
    );
    let emergency_cell = by_label("emergency");
    assert!(
        emergency_cell.peak_power_mw <= s.rack_cap_mw * 0.9 + 1e-9,
        "emergency peak {:.1} mW above the cut cap",
        emergency_cell.peak_power_mw
    );
    // Rerun reproducibility: the same campaign again, byte for byte.
    let rerun = execute_chaos(&chaos_fleet, &chaos_spec, &cells[1].1, "chip_loss_rerun", 8);
    assert_eq!(
        rerun.outcome.render(),
        loss_cell.render(),
        "chip-loss campaign is not reproducible"
    );

    if let Some(path) = &trace_path {
        write_trace(&chaos_fleet, &chaos_spec, &cells[1].1, path);
    }

    let report = JsonReport::new("uparc-bench-fleet", 2)
        .field("smoke", smoke)
        .field(
            "fleet",
            Obj::new()
                .field("seed", SEED)
                .field("chips", s.chips)
                .field("images", s.images)
                .field("frames_per_image", u64::from(s.frames_per_image))
                .field("requests", s.requests)
                .field("chaos_requests", s.chaos_requests)
                .field("mean_gap_ns", Value::fixed(s.mean_gap.as_us_f64() * 1e3, 1))
                .field("rack_cap_mw", Value::fixed(s.rack_cap_mw, 0))
                .field("epoch_us", Value::fixed(s.epoch.as_us_f64(), 1))
                .field("chip_cache_bytes", s.chip_cache_bytes)
                .field("grid_points", random.tables().grid().len())
                .field("host_cores", cores),
        )
        .field(
            "runs",
            vec![
                run_row(&rand1),
                run_row(&rand8),
                run_row(&loc1),
                run_row(&loc8),
            ],
        )
        .field(
            "chaos",
            chaos_runs
                .iter()
                .flat_map(|(one, eight)| [chaos_row(one), chaos_row(eight)])
                .collect::<Vec<Value>>(),
        )
        .field(
            "gates",
            Obj::new()
                .field("render_identical_random", true)
                .field("render_identical_locality", true)
                .field("cap_violations_total", 0u64)
                .field("speedup_1_to_8", Value::fixed(speedup, 3))
                .field("scaling_efficiency", Value::fixed(scaling_efficiency, 3))
                .field("hit_rate_locality", Value::fixed(loc8.outcome.hit_rate, 6))
                .field("hit_rate_random", Value::fixed(rand8.outcome.hit_rate, 6))
                .field("wall_words_per_sec_uplift", Value::fixed(words_uplift, 3))
                .field("chaos_accounting_exact", true)
                .field("chaos_render_identical", true)
                .field(
                    "chip_loss_completion_rate",
                    Value::fixed(loss_cell.completed as f64 / chaos_spec.requests as f64, 6),
                )
                .field("chip_loss_reproducible", true)
                .field("emergency_cap_violations", 0u64),
        );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fleet.json");
    std::fs::write(path, report.render()).expect("write BENCH_fleet.json");
    println!("report written: {path}");
}

//! Machine-readable placement benchmark: writes `BENCH_placement.json`
//! with admission, fragmentation and defragmentation figures for the
//! `uparc-place` churn simulation across a churn-density × fit-policy ×
//! {defrag on/off} grid.
//!
//! Everything reported here is *simulated* and fully deterministic in
//! the seed; the harness verifies this by rendering the whole report
//! twice and asserting byte-identical JSON.
//!
//! Run with `cargo run --release --bin bench_placement`; pass `--smoke`
//! for a seconds-scale CI variant (shorter churn, same assertions).
//! Pass `--trace <path>` to additionally rerun one defrag-on cell with a
//! recording observer and write its Chrome-trace JSON (`Relocate` spans,
//! `Compact`/`AllocFail` instants); the export is parsed back with the
//! in-repo JSON parser before the file is accepted.
//!
//! Acceptance gates (asserted in every mode):
//! * every relocation move produces an image byte-identical to a fresh
//!   build at the destination address (`verified_moves == moves`, zero
//!   mismatches);
//! * zero placement overlaps / allocator invariant violations anywhere
//!   in the grid;
//! * at end of churn, defrag-on leaves a largest free block at least
//!   25% larger than defrag-off on every (churn, policy) pair;
//! * the report is byte-identical across two same-seed runs.

use uparc_bench::report::{JsonReport, Obj, Value};
use uparc_fpga::alloc::FitPolicy;
use uparc_fpga::device::Geometry;
use uparc_fpga::{Device, Family};
use uparc_place::churn::ChurnSpec;
use uparc_place::sim::{run_churn, ChurnOutcome, PlacementConfig};
use uparc_sim::time::SimTime;

/// Workload seed; the determinism gate reruns the grid with the same one.
const SEED: u64 = 20120312;

/// Required defrag uplift on the end-of-churn largest free block.
const UPLIFT_GATE: f64 = 1.25;

/// A mid-size placement arena: 2×25×44 = 2200 frames. Small enough that
/// hours of churn actually contend for frame space (the full XC5VSX50T
/// would swallow the whole trace without fragmenting).
fn arena_device() -> Device {
    let geometry = Geometry {
        rows: 2,
        majors: 25,
        minors: 44,
    };
    Device::custom(
        "xcArena2200",
        Family::Virtex5,
        0x0AD1_4093,
        geometry,
        8160,
        132,
    )
}

/// The two churn densities of the grid. Gaps are tens of seconds and
/// residencies tens of minutes: the full trace spans hours of simulated
/// time, the smoke trace about an hour.
fn churns(smoke: bool) -> Vec<(&'static str, ChurnSpec)> {
    let tenants = if smoke { 150 } else { 600 };
    let base = ChurnSpec {
        tenants,
        mean_gap: SimTime::from_secs(20),
        frames_min: 4,
        frames_max: 24,
        pinned_permille: 200,
        mean_hold: SimTime::from_secs(900),
    };
    vec![
        ("steady", base.clone()),
        (
            "dense",
            ChurnSpec {
                mean_hold: SimTime::from_secs(1800),
                frames_max: 32,
                ..base
            },
        ),
    ]
}

fn run_cell(spec: &ChurnSpec, policy: FitPolicy, defrag: bool) -> ChurnOutcome {
    run_churn(
        spec,
        SEED,
        PlacementConfig {
            device: arena_device(),
            policy,
            defrag,
            verify_moves: true,
            ..PlacementConfig::default()
        },
    )
}

struct Cell {
    churn: &'static str,
    policy: FitPolicy,
    defrag: bool,
    out: ChurnOutcome,
}

fn cell_row(c: &Cell) -> Value {
    let o = &c.out;
    Obj::new()
        .field("churn", c.churn)
        .field("policy", c.policy.label())
        .field("defrag", c.defrag)
        .field("arrivals", o.arrivals)
        .field("placed", o.placed)
        .field("rejected", o.rejected)
        .field("rejected_trapped", o.rejected_trapped)
        .field("departed", o.departed)
        .field("moves", o.moves)
        .field("moved_frames", o.moved_frames)
        .field("compact_passes", o.compact_passes)
        .field("verified_moves", o.verified_moves)
        .field("relocation_identical", o.verify_failures == 0)
        .field("overlaps", o.invariant_violations)
        .field("live_at_end", o.live_at_end)
        .field("live_frames", o.live_frames)
        .field("largest_free", o.final_frag.largest_free)
        .field("total_free", o.final_frag.total_free)
        .field("free_blocks", o.final_frag.free_blocks)
        .field("contiguity", Value::fixed(o.final_frag.contiguity(), 4))
        .field("icap_busy_ms", Value::fixed(o.icap_busy.as_ms_f64(), 3))
        .field("icap_defrag_ms", Value::fixed(o.icap_defrag.as_ms_f64(), 3))
        .field("makespan_s", Value::fixed(o.makespan.as_secs_f64(), 1))
        .into()
}

/// Runs the full grid and renders the report. Called twice; both renders
/// must be byte-identical.
fn render_report(smoke: bool) -> (String, Vec<Cell>) {
    let mut cells = Vec::new();
    for (churn, spec) in churns(smoke) {
        for policy in [FitPolicy::FirstFit, FitPolicy::BestFit] {
            for defrag in [false, true] {
                cells.push(Cell {
                    churn,
                    policy,
                    defrag,
                    out: run_cell(&spec, policy, defrag),
                });
            }
        }
    }

    // Defrag uplift per (churn, policy) pair: how much more largest-free
    // capacity the defragmenter leaves at end of churn.
    let mut uplift_rows: Vec<Value> = Vec::new();
    for (churn, _) in churns(smoke) {
        for policy in [FitPolicy::FirstFit, FitPolicy::BestFit] {
            let find = |defrag: bool| {
                cells
                    .iter()
                    .find(|c| c.churn == churn && c.policy == policy && c.defrag == defrag)
                    .expect("cell exists")
            };
            let (off, on) = (find(false), find(true));
            let uplift = f64::from(on.out.final_frag.largest_free)
                / f64::from(off.out.final_frag.largest_free.max(1));
            uplift_rows.push(
                Obj::new()
                    .field("churn", churn)
                    .field("policy", policy.label())
                    .field("largest_free_off", off.out.final_frag.largest_free)
                    .field("largest_free_on", on.out.final_frag.largest_free)
                    .field("uplift", Value::fixed(uplift, 3))
                    .into(),
            );
        }
    }

    let device = arena_device();
    let specs = churns(smoke);
    let report = JsonReport::new("uparc-bench-placement", 1)
        .field("smoke", smoke)
        .field(
            "arena",
            Obj::new()
                .field("device", device.name())
                .field("frames", device.frames()),
        )
        .field(
            "workload",
            Obj::new()
                .field("seed", SEED)
                .field("tenants", specs[0].1.tenants)
                .field(
                    "mean_gap_s",
                    Value::fixed(specs[0].1.mean_gap.as_secs_f64(), 1),
                )
                .field("frames_min", specs[0].1.frames_min)
                .field("pinned_permille", specs[0].1.pinned_permille),
        )
        .field("grid", cells.iter().map(cell_row).collect::<Vec<Value>>())
        .field("defrag_uplift", uplift_rows);
    (report.render(), cells)
}

/// Reruns one defrag-on cell with a recording observer, writes its
/// Chrome-trace JSON to `path`, and prints the flame summary.
fn write_trace(smoke: bool, path: &str) {
    use std::sync::Arc;
    use uparc_sim::obs::{Obs, TraceRecorder};

    let recorder = Arc::new(TraceRecorder::new());
    let obs = Obs::recording(Arc::clone(&recorder));
    let (_, spec) = churns(smoke).remove(1);
    let out = run_churn(
        &spec,
        SEED,
        PlacementConfig {
            device: arena_device(),
            policy: FitPolicy::FirstFit,
            defrag: true,
            verify_moves: true,
            obs: obs.clone(),
            ..PlacementConfig::default()
        },
    );

    let trace = recorder.chrome_trace(Some(obs.metrics()));
    let parsed = uparc_sim::obs::json::parse(&trace)
        .unwrap_or_else(|e| panic!("trace export is not valid JSON: {e}"));
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("trace has a traceEvents array");
    assert!(
        trace.contains("\"name\":\"Relocate\""),
        "observed run produced no Relocate spans"
    );
    assert!(
        events.len() as u64 > u64::from(out.moves),
        "trace carries fewer events ({}) than moves ({})",
        events.len(),
        out.moves
    );

    std::fs::write(path, &trace).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "trace written: {path} ({} events, {} bytes)",
        events.len(),
        trace.len()
    );
    println!("--- flame summary (observed defrag-on cell) ---");
    print!("{}", recorder.flame_summary());
}

fn main() {
    let args = uparc_bench::args::BenchArgs::parse();
    let (smoke, trace_path) = (args.smoke, args.trace);

    let (rendered, cells) = render_report(smoke);
    for c in &cells {
        let o = &c.out;
        println!(
            "{:<6} {:<9} defrag {:<5}: {:>3} placed, {:>3} shed, {:>4} moves, largest free {:>4}/{:<4}, {} passes",
            c.churn,
            c.policy.label(),
            c.defrag,
            o.placed,
            o.rejected,
            o.moves,
            o.final_frag.largest_free,
            o.final_frag.total_free,
            o.compact_passes,
        );
    }

    // ---- acceptance gates --------------------------------------------
    for c in &cells {
        let o = &c.out;
        let tag = format!("{}/{}/defrag={}", c.churn, c.policy.label(), c.defrag);
        assert_eq!(
            o.placed + o.rejected,
            o.arrivals,
            "{tag}: arrivals unaccounted"
        );
        assert_eq!(
            o.invariant_violations, 0,
            "{tag}: placement overlap detected"
        );
        assert_eq!(
            o.verify_failures, 0,
            "{tag}: relocated image not byte-identical"
        );
        if c.defrag {
            assert!(o.moves > 0, "{tag}: churn never triggered compaction");
            assert_eq!(o.verified_moves, o.moves, "{tag}: unverified moves");
            assert!(o.compact_passes > 0, "{tag}: no completed compaction pass");
        } else {
            assert_eq!(o.moves, 0, "{tag}: moves without a defragmenter");
            assert_eq!(o.icap_defrag, SimTime::ZERO, "{tag}: defrag time leaked");
        }
    }
    for (churn, _) in churns(smoke) {
        for policy in [FitPolicy::FirstFit, FitPolicy::BestFit] {
            let largest = |defrag: bool| {
                cells
                    .iter()
                    .find(|c| c.churn == churn && c.policy == policy && c.defrag == defrag)
                    .map(|c| c.out.final_frag.largest_free)
                    .expect("cell exists")
            };
            let (off, on) = (largest(false), largest(true));
            assert!(
                f64::from(on) >= UPLIFT_GATE * f64::from(off),
                "{churn}/{}: defrag-on largest free {on} < {UPLIFT_GATE}x defrag-off {off}",
                policy.label()
            );
        }
    }
    let (rerendered, _) = render_report(smoke);
    assert_eq!(rendered, rerendered, "same-seed rerun changed the report");

    if let Some(trace) = trace_path {
        write_trace(smoke, &trace);
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_placement.json");
    std::fs::write(path, &rendered).expect("write BENCH_placement.json");
    println!("report written: {path}");
}

//! Regenerates **Table III** — "Comparisons of different reconfiguration
//! controllers": bandwidth, large-bitstream capability and maximum
//! frequency for the five baselines and both UPaRC instances.
//!
//! Each controller is measured at its native operating point on a workload
//! that fits its staging store (as the original papers did); the bitstream
//! is a dense synthetic partial bitstream.
//!
//! Run with `cargo run --release -p uparc-bench --bin table3`.

use uparc_bench::{vs_paper, Report};
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_controllers::adapter::UparcController;
use uparc_controllers::bram_hwicap::BramHwicap;
use uparc_controllers::farm::Farm;
use uparc_controllers::flashcap::FlashCap;
use uparc_controllers::mst_icap::MstIcap;
use uparc_controllers::xps_hwicap::XpsHwicap;
use uparc_controllers::ReconfigController;
use uparc_fpga::Device;

fn bitstream(device: &Device, bytes: usize) -> PartialBitstream {
    let frames = (bytes / device.family().frame_bytes()) as u32;
    let payload = SynthProfile::dense().generate(device, 0, frames, 42);
    PartialBitstream::build(device, 0, &payload)
}

fn main() {
    let v5 = Device::xc5vsx50t;
    let v4 = Device::xc4vfx60;

    // (controller, workload bytes, paper bandwidth MB/s)
    let mut rows: Vec<(Box<dyn ReconfigController>, usize, f64)> = vec![
        (Box::new(XpsHwicap::new(v5())), 100 * 1024, 14.5),
        (Box::new(MstIcap::new(v4())), 246 * 1024, 235.0),
        (Box::new(FlashCap::new(v5())), 200 * 1024, 358.0),
        (Box::new(BramHwicap::new(v4())), 100 * 1024, 371.0),
        (Box::new(Farm::new(v5())), 120 * 1024, 800.0),
        (
            Box::new(UparcController::uparc_ii(v5()).expect("uparc_ii")),
            216 * 1024,
            1008.0,
        ),
        (
            Box::new(UparcController::uparc_i(v5()).expect("uparc_i")),
            247 * 1024,
            1433.0,
        ),
    ];

    let mut report = Report::new(
        "Table III — Comparison of reconfiguration controllers",
        &[
            "Controller",
            "Bandwidth [MB/s]",
            "Large bitstream",
            "Max freq [MHz]",
            "workload",
        ],
    );
    for (ctrl, bytes, paper_bw) in &mut rows {
        let device = ctrl.icap().device().clone();
        let bs = bitstream(&device, *bytes);
        let r = ctrl.reconfigure(&bs).expect("reconfiguration");
        let spec = ctrl.spec();
        report.row(&[
            spec.name.to_owned(),
            vs_paper(r.bandwidth_mb_s(), *paper_bw),
            spec.large_bitstream.to_string(),
            format!("{:.1}", spec.max_frequency.as_mhz()),
            format!("{:.0} KB on {}", *bytes as f64 / 1024.0, device.name()),
        ]);
    }
    report.print();
    println!("\nordering check: each row's bandwidth exceeds the previous row's, as in the paper.");
}

//! Regenerates the **§V energy-efficiency claim**: xps_hwicap at
//! ≈30 µJ/KB versus UPaRC at ≈0.66 µJ/KB — "45 times more efficient".
//!
//! Same conditions as the paper: a MicroBlaze at 100 MHz, a 216.5 KB
//! bitstream preloaded in 256 KB of BRAM, xps_hwicap with the unoptimized
//! driver (≈1.5 MB/s), UPaRC without compression.
//!
//! Run with `cargo run --release -p uparc-bench --bin energy45`.

use uparc_bench::{vs_paper, Report};
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_controllers::xps_hwicap::XpsHwicap;
use uparc_controllers::ReconfigController;
use uparc_core::uparc::{Mode, UParc};
use uparc_fpga::Device;
use uparc_sim::time::Frequency;

fn main() {
    let device = Device::xc6vlx240t();
    let bytes = (216.5 * 1024.0) as usize;
    let frames = (bytes / device.family().frame_bytes()) as u32;
    let payload = SynthProfile::dense().generate(&device, 0, frames, 17);
    let bs = PartialBitstream::build(&device, 0, &payload);

    // xps_hwicap, unoptimized driver (the paper's ~1.5 MB/s measurement).
    let mut xps = XpsHwicap::unoptimized(device.clone());
    let rx = xps.reconfigure(&bs).expect("xps reconfiguration");

    // UPaRC without compression, swept over the Fig. 7 frequencies.
    let mut report = Report::new(
        "§V energy efficiency — 216.5 KB bitstream, MicroBlaze manager @100 MHz",
        &[
            "Controller",
            "Throughput",
            "µJ/KB",
            "vs paper",
            "gain over xps",
        ],
    );
    report.row(&[
        "xps_hwicap (unopt)".to_owned(),
        format!("{:.2} MB/s", rx.bandwidth_mb_s()),
        format!("{:.1}", rx.uj_per_kb()),
        vs_paper(rx.uj_per_kb(), 30.0),
        "1.0x".to_owned(),
    ]);

    for mhz in [50.0, 100.0, 200.0, 300.0] {
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(mhz))
            .expect("retune");
        let r = sys
            .reconfigure_bitstream(&bs, Mode::Raw)
            .expect("reconfigure");
        let gain = rx.uj_per_kb() / r.uj_per_kb();
        let vs = if mhz == 50.0 {
            vs_paper(r.uj_per_kb(), 0.66)
        } else {
            format!("{:.2}", r.uj_per_kb())
        };
        report.row(&[
            format!("UPaRC @{mhz} MHz"),
            format!("{:.0} MB/s", r.bandwidth_mb_s()),
            format!("{:.2}", r.uj_per_kb()),
            vs,
            format!("{gain:.0}x"),
        ]);
    }
    report.print();
    println!("\npaper claim: UPaRC is 45x more energy-efficient than xps_hwicap");
    println!("(30 µJ/KB vs 0.66 µJ/KB). The gain grows with frequency because the");
    println!("actively-waiting manager dominates UPaRC's energy at low clocks (§V).");
}

//! Regenerates **Figure 5** — "Reconfiguration bandwidths vs. frequencies
//! vs. bitstream sizes" (UPaRC_i, preloading without compression,
//! Virtex-5).
//!
//! The surface: effective bandwidth for bitstream sizes
//! {6.5, 12, 30, 49, 81, 156, 247} KB at frequencies 50..362.5 MHz,
//! against the theoretical `4 × f` plane. The paper's two calibration
//! points — 78.8% of theoretical at 6.5 KB and 99% at 247 KB, both at
//! 362.5 MHz — are checked explicitly.
//!
//! Run with `cargo run --release -p uparc-bench --bin figure5`.

use uparc_bench::{sweep, Report};
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_core::uparc::{Mode, UParc};
use uparc_fpga::Device;
use uparc_sim::time::Frequency;

/// The size axis of Fig. 5, in KB.
const SIZES_KB: [f64; 7] = [6.5, 12.0, 30.0, 49.0, 81.0, 156.0, 247.0];
/// The frequency axis, MHz.
const FREQS_MHZ: [f64; 8] = [50.0, 100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 362.5];

fn main() {
    let device = Device::xc5vsx50t();
    let profile = SynthProfile::dense();

    // Every (size, frequency) cell is an independent system: shard the
    // whole surface across cores in one sweep.
    let grid: Vec<(f64, f64)> = SIZES_KB
        .iter()
        .flat_map(|&s| FREQS_MHZ.iter().map(move |&f| (s, f)))
        .collect();
    println!(
        "sweep: {} cells on {} worker(s)",
        grid.len(),
        sweep::worker_count(grid.len())
    );
    let cells = sweep::parallel_map(&grid, |&(size_kb, mhz)| {
        let frames = ((size_kb * 1024.0) as usize / device.family().frame_bytes()) as u32;
        let payload = profile.generate(&device, 0, frames.max(1), 7);
        let bs = PartialBitstream::build(&device, 0, &payload);
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(mhz))
            .expect("retune");
        let r = sys
            .reconfigure_bitstream(&bs, Mode::Raw)
            .expect("reconfigure");
        (r.bandwidth_mb_s(), r.efficiency())
    });

    let mut headers: Vec<String> = vec!["Size \\ MHz".to_owned()];
    headers.extend(FREQS_MHZ.iter().map(|f| format!("{f}")));
    headers.push("theor@362.5".to_owned());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "Figure 5 — Effective bandwidth [MB/s] (UPaRC_i, Virtex-5)",
        &header_refs,
    );

    let mut checks: Vec<(f64, f64)> = Vec::new(); // (size KB, efficiency @362.5)
    for (si, &size_kb) in SIZES_KB.iter().enumerate() {
        let mut row = vec![format!("{size_kb} KB")];
        let mut eff_at_max = 0.0;
        for (fi, _) in FREQS_MHZ.iter().enumerate() {
            let (mb_s, eff) = cells[si * FREQS_MHZ.len() + fi];
            row.push(format!("{mb_s:.0}"));
            eff_at_max = eff;
        }
        row.push("1450".to_owned());
        report.row(&row);
        checks.push((size_kb, eff_at_max));
    }
    report.print();

    // Dump the full surface for plotting (size_kb, mhz, mb_s rows).
    let mut csv = String::from("size_kb,mhz,mb_s\n");
    for (&(size_kb, mhz), &(mb_s, _)) in grid.iter().zip(&cells) {
        csv.push_str(&format!("{size_kb},{mhz},{mb_s:.1}\n"));
    }
    std::fs::write("/tmp/uparc_fig5_surface.csv", csv).expect("write csv");
    println!("\nsurface written: /tmp/uparc_fig5_surface.csv");

    println!("\nefficiency vs theoretical at 362.5 MHz (paper: 78.8% at 6.5 KB, 99% at 247 KB):");
    for (size, eff) in checks {
        println!("  {size:>6.1} KB: {:.1}%", eff * 100.0);
    }
    println!("\nshape: the larger the bitstream, the closer to the theoretical plane —");
    println!("the constant ~1.2 µs manager control overhead amortises with size (§IV).");
}

//! Regenerates **Table I** — "Comparisons of different lossless compression
//! algorithms" — on synthetic dense partial bitstreams.
//!
//! As in the paper (§III-C), compression runs only on *high-utilization*
//! partitions "in order not to exaggerate the compression effectiveness":
//! several bitstream sizes and content seeds (the paper's "different partial
//! bitstream sizes and complexities"), averaged per algorithm.
//!
//! Run with `cargo run --release -p uparc-bench --bin table1`.

use uparc_bench::{sweep, vs_paper, Report};
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_compress::{Algorithm, Ratio};
use uparc_fpga::Device;

/// The evaluated partial-bitstream sizes in bytes (spanning the Fig. 5 size
/// axis: small filters to the 247 KB maximum the 256 KB BRAM can hold raw).
const SIZES: [usize; 4] = [30 * 1024, 81 * 1024, 156 * 1024, 247 * 1024];
/// Seeds — different synthetic "designs" per size.
const SEEDS: [u64; 3] = [11, 23, 47];

fn main() {
    let device = Device::xc5vsx50t();
    let profile = SynthProfile::dense();

    let mut report = Report::new(
        "Table I — Compression ratio [% saved] on dense partial bitstreams",
        &["Algorithm", "Measured", "vs paper", "Min", "Max"],
    );

    println!(
        "workloads: {} sizes x {} seeds, profile = dense",
        SIZES.len(),
        SEEDS.len()
    );

    // Every (algorithm, size, seed) cell is independent: flatten the cube
    // and shard it across cores.
    let cube: Vec<(Algorithm, usize, u64)> = Algorithm::ALL
        .iter()
        .flat_map(|&alg| {
            SIZES
                .iter()
                .flat_map(move |&size| SEEDS.iter().map(move |&seed| (alg, size, seed)))
        })
        .collect();
    let saved = sweep::parallel_map(&cube, |&(alg, size, seed)| {
        let codec = alg.codec();
        let frames = size / device.family().frame_bytes();
        let payload = profile.generate(&device, 0, frames as u32, seed);
        let bs = PartialBitstream::build(&device, 0, &payload);
        let bytes = bs.to_bytes();
        let packed = codec.compress(&bytes);
        // Losslessness is asserted on every workload, every run.
        assert_eq!(
            codec.decompress(&packed).expect("decompression"),
            bytes,
            "{alg} round-trip"
        );
        Ratio::new(bytes.len(), packed.len()).percent_saved()
    });

    let per_alg = SIZES.len() * SEEDS.len();
    for (ai, alg) in Algorithm::ALL.iter().enumerate() {
        let ratios = &saved[ai * per_alg..(ai + 1) * per_alg];
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        report.row(&[
            alg.to_string(),
            format!("{mean:.1}"),
            vs_paper(mean, alg.paper_ratio_percent()),
            format!("{min:.1}"),
            format!("{max:.1}"),
        ]);
    }
    report.print();

    // §IV footer claim: with X-MatchPRO, 256 KB of BRAM holds a bitstream of
    // up to ~992 KB, i.e. >40% of the selected device's 2444 KB full
    // bitstream.
    let xmp = Algorithm::XMatchPro.codec();
    let big = 992 * 1024;
    let frames = big / device.family().frame_bytes();
    let payload = profile.generate(&device, 0, frames as u32, 5);
    let bytes = PartialBitstream::build(&device, 0, &payload).to_bytes();
    let packed = xmp.compress(&bytes);
    let fits = packed.len() + 8 <= 256 * 1024;
    let full = device.full_bitstream_bytes() as f64 / 1024.0;
    println!(
        "\ncapacity check: {:.0} KB bitstream -> {:.0} KB compressed; fits in 256 KB BRAM: {}",
        bytes.len() as f64 / 1024.0,
        packed.len() as f64 / 1024.0,
        fits
    );
    println!(
        "paper claim: 992 KB storable = {:.0}% of the {:.0} KB full bitstream",
        992.0 * 100.0 / full,
        full
    );
}

//! Machine-readable service benchmark: writes `BENCH_service.json` with
//! throughput, latency percentiles, deadline-miss rates, energy per
//! request, and power-cap behaviour of the `uparc-serve` scheduler
//! across a policy × power-cap grid.
//!
//! Everything reported here is *simulated* — the numbers are fully
//! deterministic in the seed, which the harness itself verifies by
//! running the whole grid twice and asserting byte-identical JSON.
//!
//! Run with `cargo run --release --bin bench_service`; pass `--smoke`
//! for a seconds-scale CI variant (smaller trace, same assertions).
//! Pass `--trace <path>` to additionally run one fully observed
//! power-greedy cell and write its Chrome-trace JSON (load it at
//! `chrome://tracing` or <https://ui.perfetto.dev>); a flamegraph-style
//! summary of the same run is printed to stdout. The written trace is
//! parsed back with the in-repo JSON parser before the file is accepted.
//!
//! Acceptance gates (asserted in every mode):
//! * `PowerGreedy` produces zero cap violations on every capped cell;
//! * EDF misses no more deadlines than FIFO on any cell;
//! * the report is byte-identical across two same-seed runs.

use uparc_bench::report::{JsonReport, Obj, Value};
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_fpga::Device;
use uparc_serve::catalog::Catalog;
use uparc_serve::metrics::ServiceSummary;
use uparc_serve::request::BitstreamId;
use uparc_serve::scheduler::Policy;
use uparc_serve::service::{Service, ServiceConfig};
use uparc_serve::workload::{ArrivalPattern, WorkloadSpec};
use uparc_sim::time::SimTime;

/// Workload seed; the determinism gate reruns the grid with the same one.
const SEED: u64 = 20120312;

/// Power caps of the grid, in milliwatts; `None` = uncapped.
const CAPS: [Option<f64>; 4] = [None, Some(900.0), Some(700.0), Some(550.0)];

fn build_catalog() -> Catalog {
    let device = Device::xc5vsx50t();
    // 64 KB staging BRAM: the small modules stage raw, the large ones
    // go through the compressed datapath — the grid exercises both.
    let mut catalog = Catalog::new(device).with_bram_bytes(64 * 1024);
    catalog.add_region("rp0", 100..700).expect("rp0");
    catalog.add_region("rp1", 1000..1400).expect("rp1");
    catalog.add_region("rp2", 2000..2250).expect("rp2");
    let modules: [(u32, u32, u32); 6] = [
        (1, 100, 450), // 73.8 KB raw -> compressed
        (2, 150, 200),
        (3, 1000, 300),
        (4, 1050, 120),
        (5, 2000, 240),
        (6, 2010, 80),
    ];
    for (id, far, frames) in modules {
        let payload = SynthProfile::dense().generate(catalog.device(), far, frames, u64::from(id));
        let bs = PartialBitstream::build(catalog.device(), far, &payload);
        catalog
            .register(BitstreamId(id), bs)
            .unwrap_or_else(|e| panic!("register bs#{id}: {e}"));
    }
    catalog
}

fn grid_spec(smoke: bool) -> WorkloadSpec {
    WorkloadSpec {
        requests: if smoke { 60 } else { 240 },
        mean_gap: SimTime::from_us(120),
        pattern: ArrivalPattern::Uniform,
        deadline_slack_us: Some((500, 5_000)),
        energy_budget_uj: None,
    }
}

fn run_cell(catalog: &Catalog, policy: Policy, cap: Option<f64>, smoke: bool) -> ServiceSummary {
    let service = Service::new(
        catalog.clone(),
        ServiceConfig {
            policy,
            power_cap_mw: cap.unwrap_or(f64::INFINITY),
            ..ServiceConfig::default()
        },
    );
    let requests = grid_spec(smoke).generate(SEED, service.catalog());
    service.run(&requests).summary()
}

fn cap_label(cap: Option<f64>) -> String {
    cap.map_or_else(|| "none".to_owned(), |c| format!("{c:.0}"))
}

fn summary_row(policy: Policy, cap: Option<f64>, s: &ServiceSummary) -> Value {
    Obj::new()
        .field("policy", policy.label())
        .field("cap_mw", cap_label(cap).as_str())
        .field("completed", s.completed)
        .field("rejected", s.rejected)
        .field("failed", s.failed)
        .field("throughput_rps", Value::fixed(s.throughput_rps, 1))
        .field("p50_latency_us", Value::fixed(s.p50_latency_us, 3))
        .field("p95_latency_us", Value::fixed(s.p95_latency_us, 3))
        .field("p99_latency_us", Value::fixed(s.p99_latency_us, 3))
        .field("deadline_misses", s.deadline_misses)
        .field("deadline_miss_rate", Value::fixed(s.deadline_miss_rate, 4))
        .field("mean_energy_uj", Value::fixed(s.mean_energy_uj, 3))
        .field("peak_power_mw", Value::fixed(s.peak_power_mw, 1))
        .field("cap_violations", s.cap_violations)
        .into()
}

/// Runs the full grid plus the arrival-pattern sweep and renders the
/// report. Called twice; both renders must be byte-identical.
fn render_report(
    catalog: &Catalog,
    smoke: bool,
) -> (String, Vec<(Policy, Option<f64>, ServiceSummary)>) {
    let mut cells = Vec::new();
    for cap in CAPS {
        for policy in Policy::ALL {
            let s = run_cell(catalog, policy, cap, smoke);
            cells.push((policy, cap, s));
        }
    }

    // Arrival-pattern sweep: the power-greedy scheduler under the tight
    // cap, across the three generator shapes.
    let patterns = [
        ("uniform", ArrivalPattern::Uniform),
        ("bursty", ArrivalPattern::Bursty { burst: 6 }),
        (
            "diurnal",
            ArrivalPattern::Diurnal {
                period: SimTime::from_ms(4),
            },
        ),
    ];
    let mut pattern_rows: Vec<Value> = Vec::new();
    for (name, pattern) in patterns {
        let service = Service::new(
            catalog.clone(),
            ServiceConfig {
                policy: Policy::PowerGreedy,
                power_cap_mw: 700.0,
                ..ServiceConfig::default()
            },
        );
        let spec = WorkloadSpec {
            pattern,
            ..grid_spec(smoke)
        };
        let requests = spec.generate(SEED, service.catalog());
        let s = service.run(&requests).summary();
        assert_eq!(s.cap_violations, 0, "pattern {name}: cap violated");
        pattern_rows.push(
            Obj::new()
                .field("pattern", name)
                .field("completed", s.completed)
                .field("rejected", s.rejected)
                .field("throughput_rps", Value::fixed(s.throughput_rps, 1))
                .field("p95_latency_us", Value::fixed(s.p95_latency_us, 3))
                .field("deadline_miss_rate", Value::fixed(s.deadline_miss_rate, 4))
                .field("peak_power_mw", Value::fixed(s.peak_power_mw, 1))
                .into(),
        );
    }

    let spec = grid_spec(smoke);
    let report = JsonReport::new("uparc-bench-service", 1)
        .field("smoke", smoke)
        .field(
            "workload",
            Obj::new()
                .field("seed", SEED)
                .field("requests", spec.requests)
                .field("regions", catalog.region_count())
                .field("bitstreams", catalog.len())
                .field("mean_gap_us", Value::fixed(spec.mean_gap.as_us_f64(), 1))
                .field(
                    "deadline_slack_us",
                    vec![Value::from(500u64), Value::from(5_000u64)],
                ),
        )
        .field(
            "grid",
            cells
                .iter()
                .map(|(p, c, s)| summary_row(*p, *c, s))
                .collect::<Vec<Value>>(),
        )
        .field("patterns", pattern_rows);
    (report.render(), cells)
}

/// Runs one fully observed power-greedy cell, writes its Chrome-trace
/// JSON to `path`, and prints the flamegraph-style summary. The export is
/// validated by parsing it back with the in-repo JSON parser and checking
/// the trace actually carries events.
fn write_trace(catalog: &Catalog, smoke: bool, path: &str) {
    use std::sync::Arc;
    use uparc_serve::obs::{Obs, TraceRecorder};

    let recorder = Arc::new(TraceRecorder::new());
    let obs = Obs::recording(Arc::clone(&recorder));
    let service = Service::new(
        catalog.clone(),
        ServiceConfig {
            policy: Policy::PowerGreedy,
            power_cap_mw: 700.0,
            obs: obs.clone(),
            ..ServiceConfig::default()
        },
    );
    let requests = grid_spec(smoke).generate(SEED, service.catalog());
    let summary = service.run(&requests).summary();

    let trace = recorder.chrome_trace(Some(obs.metrics()));
    let parsed = uparc_sim::obs::json::parse(&trace)
        .unwrap_or_else(|e| panic!("trace export is not valid JSON: {e}"));
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("trace has a traceEvents array");
    assert!(
        events.len() > summary.completed,
        "trace carries fewer events ({}) than completed requests ({})",
        events.len(),
        summary.completed
    );

    std::fs::write(path, &trace).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "trace written: {path} ({} events, {} bytes)",
        events.len(),
        trace.len()
    );
    println!("--- flame summary (observed power-greedy cell) ---");
    print!("{}", recorder.flame_summary());
}

fn main() {
    let args = uparc_bench::args::BenchArgs::parse();
    let (smoke, trace_path) = (args.smoke, args.trace);
    let catalog = build_catalog();

    let (rendered, cells) = render_report(&catalog, smoke);
    for (policy, cap, s) in &cells {
        println!(
            "{:<13} cap {:>5} mW: {:>3} done, {:>2} miss, p95 {:>9.1} us, peak {:>6.1} mW, {} violations",
            policy.label(),
            cap_label(*cap),
            s.completed,
            s.deadline_misses,
            s.p95_latency_us,
            s.peak_power_mw,
            s.cap_violations,
        );
    }

    // ---- acceptance gates --------------------------------------------
    for (policy, cap, s) in &cells {
        assert_eq!(
            s.completed + s.rejected + s.failed,
            grid_spec(smoke).requests,
            "{} cap {}: requests unaccounted for",
            policy.label(),
            cap_label(*cap)
        );
        if *policy == Policy::PowerGreedy && cap.is_some() {
            assert_eq!(
                s.cap_violations,
                0,
                "power-greedy violated the {} mW cap",
                cap_label(*cap)
            );
            let cap_mw = cap.expect("checked");
            assert!(
                s.peak_power_mw <= cap_mw + 1e-9,
                "power-greedy peak {:.1} mW above the {:.0} mW cap",
                s.peak_power_mw,
                cap_mw
            );
        }
    }
    for cap in CAPS {
        let misses = |wanted: Policy| {
            cells
                .iter()
                .find(|(p, c, _)| *p == wanted && *c == cap)
                .map(|(_, _, s)| s.deadline_misses)
                .expect("cell exists")
        };
        assert!(
            misses(Policy::EarliestDeadlineFirst) <= misses(Policy::Fifo),
            "EDF missed more deadlines than FIFO at cap {}",
            cap_label(cap)
        );
    }
    let (rerendered, _) = render_report(&catalog, smoke);
    assert_eq!(rendered, rerendered, "same-seed rerun changed the report");

    if let Some(trace) = trace_path {
        write_trace(&catalog, smoke, &trace);
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, &rendered).expect("write BENCH_service.json");
    println!("report written: {path}");
}

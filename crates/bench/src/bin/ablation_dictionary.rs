//! **Ablation: X-MatchPRO dictionary depth** — the design-space axis the
//! original X-MatchPRO paper \[12\] explores and UPaRC's future work
//! (run-time decompressor swaps) would exploit: a deeper CAM improves the
//! ratio but costs area and clock rate.
//!
//! Run with `cargo run --release -p uparc-bench --bin ablation_dictionary`.

use uparc_bench::Report;
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_compress::xmatchpro::XMatchPro;
use uparc_compress::{Codec, Ratio};
use uparc_fpga::Device;

fn main() {
    let device = Device::xc5vsx50t();
    let frames = 156 * 1024 / device.family().frame_bytes();
    let payload = SynthProfile::dense().generate(&device, 0, frames as u32, 13);
    let data = PartialBitstream::build(&device, 0, &payload).to_bytes();
    println!(
        "workload: {:.0} KB dense partial bitstream (the Table I statistics)",
        data.len() as f64 / 1024.0
    );

    let mut report = Report::new(
        "Ablation — X-MatchPRO CAM dictionary depth",
        &["Entries", "Ratio [% saved]", "Location bits", "note"],
    );
    for size in [4usize, 8, 16, 32, 64] {
        let codec = XMatchPro::with_dictionary(size);
        let packed = codec.compress(&data);
        assert_eq!(codec.decompress(&packed).expect("lossless"), data);
        let note = if size == 16 {
            "UPaRC/FlashCAP configuration"
        } else {
            ""
        };
        report.row(&[
            size.to_string(),
            format!(
                "{:.1}",
                Ratio::new(data.len(), packed.len()).percent_saved()
            ),
            size.trailing_zeros().to_string(),
            note.to_owned(),
        ]);
    }
    report.print();
    println!("\nthe ratio saturates once the CAM holds the bitstream's working set of");
    println!("distinct configuration tuples; beyond that, wider location fields only");
    println!("cost bits (and CAM area/clock in hardware) — why the paper ships 16 entries.");
}

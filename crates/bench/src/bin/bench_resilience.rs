//! Seeded resilience campaign: writes `BENCH_resilience.json` at the
//! repository root with detection/recovery coverage, completion rate and
//! MTTR (mean time to repair) for the recovery ladder, over a
//! fault-rate × policy grid plus a per-class single-fault table and a FaRM
//! no-recovery baseline.
//!
//! Everything in the JSON derives from the *simulated* system — fault
//! plans are expanded from seeds, times are simulated times — so the same
//! invocation always produces a byte-identical report (the `--smoke` flag
//! shrinks the grid, not the determinism).
//!
//! Run with `cargo run --release -p uparc-bench --bin bench_resilience`;
//! pass `--smoke` for the seconds-scale CI variant, and `--trace <path>`
//! to additionally rerun the hardest campaign cell observed and write its
//! Chrome-trace JSON (recovery rungs show as instants on the lane
//! timeline). The binary *fails* (non-zero exit) if the full policy
//! leaves any recoverable-by-design fault unrecovered — that is the CI
//! gate.

use uparc_bench::report::{JsonReport, Obj, Value};
use uparc_bench::sweep;
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_controllers::farm::Farm;
use uparc_controllers::ReconfigController;
use uparc_core::recovery::RecoveryPolicy;
use uparc_core::uparc::{Mode, UParc};
use uparc_core::UparcError;
use uparc_fpga::Device;
use uparc_sim::fault::{substream, FaultInjector, FaultKind, FaultPlan, FaultRates, FaultSpace};
use uparc_sim::time::{Frequency, SimTime};

/// The protected partition every scenario reconfigures.
const FAR: u32 = 300;
const FRAMES: u32 = 40;

/// Root seed of the bench; every cell seed is a splitmix64 sub-stream of
/// it (one lane per table) rather than a flat counter, so neighbouring
/// grid cells share no low-bit structure with each other or with the
/// fault plans they expand.
const BENCH_SEED: u64 = 0x0BE5_11E4_CE5E_ED01;
const LANE_SINGLE: u64 = 1;
const LANE_CAMPAIGN: u64 = 2;
const LANE_FARM: u64 = 3;

/// Seed of single-fault cell `(class, policy, s)`.
fn single_seed(class_idx: usize, policy_idx: usize, s: u64) -> u64 {
    substream(
        BENCH_SEED,
        LANE_SINGLE,
        (class_idx as u64 * 16 + policy_idx as u64) * 16 + s,
    )
}

/// Seed of campaign cell `(rate, policy, s)`.
fn campaign_seed(rate_idx: usize, policy_idx: usize, s: u64) -> u64 {
    substream(
        BENCH_SEED,
        LANE_CAMPAIGN,
        (rate_idx as u64 * 16 + policy_idx as u64) * 16 + s,
    )
}

/// splitmix64 step, for deriving per-seed fault coordinates.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The three policies of the campaign. The healing policies get extra
/// attempt headroom over the library defaults: at fault rate 3 a single
/// round can see several stall aborts plus a CRC failure back to back.
fn policies() -> Vec<(&'static str, RecoveryPolicy)> {
    vec![
        ("none", RecoveryPolicy::none()),
        (
            "retry",
            RecoveryPolicy {
                max_attempts: 10,
                ..RecoveryPolicy::retry_only()
            },
        ),
        (
            "full",
            RecoveryPolicy {
                max_attempts: 10,
                ..RecoveryPolicy::default()
            },
        ),
    ]
}

/// Fault classes of the single-fault table. Every class except `none` is
/// recoverable by design under the full policy.
const CLASSES: &[&str] = &[
    "none",
    "config_seu",
    "parity_seu",
    "staged_flip_raw",
    "staged_flip_compressed",
    "crc_transient_overclock",
    "transfer_stall",
    "retune_lock",
];

fn system(device: &Device, mhz: f64) -> UParc {
    let mut sys = UParc::builder(device.clone()).build().expect("build");
    sys.set_reconfiguration_frequency(Frequency::from_mhz(mhz))
        .expect("retune");
    // Let the DCM lock so clean runs carry no relock wait.
    sys.advance_idle(SimTime::from_ms(1));
    sys
}

fn bitstream(device: &Device, seed: u64) -> PartialBitstream {
    let payload = SynthProfile::dense().generate(device, FAR, FRAMES, seed);
    PartialBitstream::build(device, FAR, &payload)
}

struct SingleRow {
    class: &'static str,
    policy: &'static str,
    seed: u64,
    ok: bool,
    error: String,
    attempts: u32,
    actions: Vec<&'static str>,
    extra_time_us: f64,
    extra_energy_uj: f64,
    applied: usize,
    detected: usize,
    recovered: usize,
}

/// Runs one (class, policy, seed) scenario with exactly one injected
/// fault (or none, for the `none` class).
fn single_fault_cell(
    class: &'static str,
    policy_name: &'static str,
    policy: &RecoveryPolicy,
    seed: u64,
) -> SingleRow {
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, seed);
    let compressed = class == "staged_flip_compressed";
    let mode = if compressed {
        Mode::Compressed
    } else {
        Mode::Raw
    };
    // The compressed datapath caps CLK_2 at 255 MHz; CRC transients need
    // the overclocked regime, everything else runs at the headline clock.
    let mhz = if compressed { 200.0 } else { 362.5 };
    let mut rng = seed ^ 0x05EE_D0FF_A017_u64;
    let r = splitmix64(&mut rng);

    // SEUs must strike *after* the partition is written to be observable;
    // a dry no-fault run pins the (deterministic) end-of-transfer instant.
    let strike_at = if matches!(class, "config_seu" | "parity_seu") {
        let mut dry = system(&device, mhz);
        let rec = RecoveryPolicy::none()
            .reconfigure(&mut dry, &bs, mode)
            .expect("dry run is fault-free");
        rec.report.started_at + rec.report.control_overhead + rec.report.transfer_time
    } else {
        SimTime::ZERO
    };

    let mut sys = system(&device, if class == "retune_lock" { 300.0 } else { mhz });
    let now = sys.now();
    let mut inj = FaultInjector::empty();
    match class {
        "none" => {}
        "config_seu" => inj.schedule(
            strike_at,
            FaultKind::ConfigSeu {
                frame: FAR + (r as u32) % FRAMES,
                word: ((r >> 32) as u32) % 41,
                bit: ((r >> 58) & 31) as u8,
            },
        ),
        "parity_seu" => inj.schedule(
            strike_at,
            FaultKind::ParitySeu {
                frame: FAR + (r as u32) % FRAMES,
                bit: ((r >> 58) & 31) as u8,
            },
        ),
        "staged_flip_raw" | "staged_flip_compressed" => inj.schedule(
            now,
            FaultKind::StagedFlip {
                word: r as u32,
                bit: ((r >> 58) & 31) as u8,
            },
        ),
        "crc_transient_overclock" => inj.schedule(now, FaultKind::CrcTransient),
        "transfer_stall" => inj.schedule(
            now,
            FaultKind::TransferStall {
                cycles: 450_000, // ~1.24 ms at 362.5 MHz: past the 1 ms watchdog
            },
        ),
        "retune_lock" => inj.schedule(now, FaultKind::RetuneLockFailure),
        _ => unreachable!("unknown class"),
    }
    sys.attach_fault_injector(inj);
    if class == "retune_lock" {
        // The armed failure fires on this factor-changing retune: the DRP
        // writes land but LOCKED never asserts.
        sys.set_reconfiguration_frequency(Frequency::from_mhz(362.5))
            .expect("retune request is legal");
    }

    let outcome = policy.reconfigure(&mut sys, &bs, mode);
    let log = sys.detach_fault_injector().expect("attached above");
    let log = log.log();
    let (applied, detected, recovered) = (
        log.len(),
        log.iter().filter(|f| f.detected).count(),
        log.iter().filter(|f| f.recovered).count(),
    );
    match outcome {
        Ok(rec) => SingleRow {
            class,
            policy: policy_name,
            seed,
            ok: true,
            error: String::new(),
            attempts: rec.attempts,
            actions: rec.actions.iter().map(|a| a.label()).collect(),
            extra_time_us: rec.extra_time.as_secs_f64() * 1e6,
            extra_energy_uj: rec.extra_energy_uj,
            applied,
            detected,
            recovered,
        },
        Err(e) => SingleRow {
            class,
            policy: policy_name,
            seed,
            ok: false,
            error: error_label(&e).to_string(),
            attempts: 0,
            actions: Vec::new(),
            extra_time_us: 0.0,
            extra_energy_uj: 0.0,
            applied,
            detected,
            recovered,
        },
    }
}

/// Stable short name for a propagated error (JSON field).
fn error_label(e: &UparcError) -> &'static str {
    match e {
        UparcError::WatchdogTimeout { .. } => "watchdog_timeout",
        UparcError::Fpga(_) => "fpga",
        UparcError::Bitstream(_) => "bitstream",
        UparcError::Compression(_) => "compression",
        UparcError::Frequency { .. } => "frequency",
        _ => "other",
    }
}

struct CampaignRow {
    rate: u32,
    policy: &'static str,
    seed: u64,
    rounds: u32,
    rounds_ok: u32,
    healed_rounds: u32,
    attempts: u32,
    applied: usize,
    detected: usize,
    recovered: usize,
    pending_left: usize,
    mttr_us: f64,
    extra_energy_uj: f64,
}

/// Runs one seeded campaign cell: a generated fault plan against a short
/// schedule of reconfigurations (raw overclocked, compressed, raw again).
/// `obs` is a null handle on the grid; the `--trace` run passes a
/// recording one.
fn campaign_cell(
    rate: u32,
    policy_name: &'static str,
    policy: &RecoveryPolicy,
    seed: u64,
    obs: &uparc_core::obs::Obs,
) -> CampaignRow {
    let device = Device::xc5vsx50t();
    let mut sys = system(&device, 362.5);
    sys.set_observer(obs.clone());
    let space = FaultSpace {
        frame_base: FAR,
        frames: FRAMES,
        frame_words: 41,
        staged_words: FRAMES * 41 + 20,
    };
    let rates = FaultRates {
        config_seu: rate,
        parity_seu: rate,
        staged_flip: rate,
        transfer_stall: rate,
        crc_transient: rate,
        retune_lock_failure: rate,
    };
    let plan = FaultPlan::generate(seed, &space, &rates, SimTime::from_ms(3));
    sys.attach_fault_injector(FaultInjector::new(&plan));

    let rounds: [(f64, Mode); 3] = [
        (362.5, Mode::Raw),
        (200.0, Mode::Compressed),
        (362.5, Mode::Raw),
    ];
    let mut rounds_ok = 0u32;
    let mut healed_rounds = 0u32;
    let mut attempts = 0u32;
    let mut mttr_sum = 0.0f64;
    let mut extra_energy = 0.0f64;
    for (i, &(mhz, mode)) in rounds.iter().enumerate() {
        let bs = bitstream(&device, seed.wrapping_add(i as u64));
        // A retune per round exercises armed lock failures; errors here are
        // fault-induced (arming consumed the fault) and end the round.
        if sys
            .set_reconfiguration_frequency(Frequency::from_mhz(mhz))
            .is_err()
        {
            continue;
        }
        match policy.reconfigure(&mut sys, &bs, mode) {
            Ok(rec) => {
                rounds_ok += 1;
                attempts += rec.attempts;
                extra_energy += rec.extra_energy_uj;
                if rec.healed() {
                    healed_rounds += 1;
                    mttr_sum += rec.extra_time.as_secs_f64() * 1e6;
                }
            }
            Err(_) => {
                attempts += policy.max_attempts;
            }
        }
        sys.advance_idle(SimTime::from_us(500));
    }
    let inj = sys.detach_fault_injector().expect("attached above");
    let (applied, detected, recovered) = (
        inj.log().len(),
        inj.log().iter().filter(|f| f.detected).count(),
        inj.log().iter().filter(|f| f.recovered).count(),
    );
    CampaignRow {
        rate,
        policy: policy_name,
        seed,
        rounds: rounds.len() as u32,
        rounds_ok,
        healed_rounds,
        attempts,
        applied,
        detected,
        recovered,
        pending_left: inj.remaining(),
        mttr_us: if healed_rounds > 0 {
            mttr_sum / f64::from(healed_rounds)
        } else {
            0.0
        },
        extra_energy_uj: extra_energy,
    }
}

struct FarmRow {
    class: &'static str,
    ok: bool,
    applied: usize,
    recovered: usize,
}

/// The no-recovery baseline: the same single faults against FaRM.
fn farm_cell(class: &'static str, seed: u64) -> FarmRow {
    let device = Device::xc5vsx50t();
    let bs = bitstream(&device, seed);
    let mut ctrl = Farm::new(device);
    let mut inj = FaultInjector::empty();
    match class {
        "staged_flip_raw" => inj.schedule(
            SimTime::ZERO,
            FaultKind::StagedFlip {
                word: seed as u32,
                bit: (seed % 32) as u8,
            },
        ),
        "crc_transient" => inj.schedule(SimTime::ZERO, FaultKind::CrcTransient),
        _ => unreachable!("unknown farm class"),
    }
    ctrl.attach_fault_injector(inj);
    let ok = ctrl.reconfigure(&bs).is_ok();
    let inj = ctrl.detach_fault_injector().expect("attached above");
    FarmRow {
        class,
        ok,
        applied: inj.log().len(),
        recovered: inj.log().iter().filter(|f| f.recovered).count(),
    }
}

/// Reruns the hardest campaign cell (rate 3, full policy) with a
/// recording observer and writes the Chrome-trace JSON to `path`; the
/// export is parsed back with the in-repo JSON parser before the file is
/// accepted, and the flamegraph-style summary is printed.
fn write_trace(path: &str) {
    use std::sync::Arc;
    use uparc_core::obs::{Obs, TraceRecorder};

    let recorder = Arc::new(TraceRecorder::new());
    let obs = Obs::recording(Arc::clone(&recorder));
    let policy = RecoveryPolicy {
        max_attempts: 10,
        ..RecoveryPolicy::default()
    };
    // Rate 3 (index 2), full policy (index 2), first seed — the same
    // cell the campaign grid runs, so the trace matches a grid row.
    let row = campaign_cell(3, "full", &policy, campaign_seed(2, 2, 0), &obs);
    assert_eq!(row.rounds_ok, row.rounds, "traced cell left rounds broken");

    let trace = recorder.chrome_trace(Some(obs.metrics()));
    let parsed = uparc_sim::obs::json::parse(&trace)
        .unwrap_or_else(|e| panic!("trace export is not valid JSON: {e}"));
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("trace has a traceEvents array");
    assert!(!events.is_empty(), "traced campaign produced no events");

    std::fs::write(path, &trace).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "trace written: {path} ({} events, {} bytes)",
        events.len(),
        trace.len()
    );
    println!("--- flame summary (rate-3 full-policy campaign) ---");
    print!("{}", recorder.flame_summary());
}

fn main() {
    let args = uparc_bench::args::BenchArgs::parse();
    let (smoke, trace_path) = (args.smoke, args.trace);
    let seeds_per_cell: u64 = if smoke { 2 } else { 6 };
    let policies = policies();

    // ---- Per-class single-fault table --------------------------------
    let mut single_cells: Vec<(&'static str, &'static str, RecoveryPolicy, u64)> = Vec::new();
    for (ci, &class) in CLASSES.iter().enumerate() {
        for (pi, (pname, policy)) in policies.iter().enumerate() {
            for s in 0..seeds_per_cell {
                single_cells.push((class, pname, policy.clone(), single_seed(ci, pi, s)));
            }
        }
    }
    let single_rows = sweep::parallel_map(&single_cells, |(class, pname, policy, seed)| {
        single_fault_cell(class, pname, policy, *seed)
    });

    // ---- Fault-rate × policy campaign grid ---------------------------
    let rates: &[u32] = &[0, 1, 3];
    let mut campaign_cells: Vec<(u32, &'static str, RecoveryPolicy, u64)> = Vec::new();
    for (ri, &rate) in rates.iter().enumerate() {
        for (pi, (pname, policy)) in policies.iter().enumerate() {
            for s in 0..seeds_per_cell {
                campaign_cells.push((rate, pname, policy.clone(), campaign_seed(ri, pi, s)));
            }
        }
    }
    let campaign_rows = sweep::parallel_map(&campaign_cells, |(rate, pname, policy, seed)| {
        campaign_cell(*rate, pname, policy, *seed, &uparc_core::obs::Obs::null())
    });

    // ---- FaRM baseline ------------------------------------------------
    let farm_rows: Vec<FarmRow> = ["staged_flip_raw", "crc_transient"]
        .iter()
        .enumerate()
        .map(|(i, &c)| farm_cell(c, substream(BENCH_SEED, LANE_FARM, i as u64)))
        .collect();

    // ---- Acceptance gates (always on, smoke included) ----------------
    // 1. The full policy recovers every recoverable-by-design single
    //    fault, with nonzero-but-bounded overhead.
    for row in single_rows.iter().filter(|r| r.policy == "full") {
        assert!(
            row.ok,
            "full policy failed recoverable class {} (seed {}): {}",
            row.class, row.seed, row.error
        );
        if row.class == "none" {
            assert_eq!(row.attempts, 1, "clean run retried");
        } else {
            assert!(
                !row.actions.is_empty(),
                "class {} healed with no recorded action",
                row.class
            );
            assert!(
                row.extra_time_us > 0.0 && row.extra_time_us < 50_000.0,
                "class {} recovery overhead {} us out of bounds",
                row.class,
                row.extra_time_us
            );
            assert!(
                row.recovered > 0,
                "class {} fault not marked recovered",
                row.class
            );
        }
    }
    // 2. The baseline policy does nothing: a clean run has zero overhead.
    for row in single_rows
        .iter()
        .filter(|r| r.policy == "none" && r.class == "none")
    {
        assert!(row.ok && row.extra_time_us == 0.0 && row.extra_energy_uj < 1e-9);
    }
    // 3. Full-policy campaigns complete every round — no
    //    unrecovered-but-recoverable fault at any rate (the CI gate).
    for row in campaign_rows.iter().filter(|r| r.policy == "full") {
        assert_eq!(
            row.rounds_ok, row.rounds,
            "full policy left rounds unrecovered at rate {} seed {}",
            row.rate, row.seed
        );
    }
    // 4. FaRM has no recovery: injected faults fail the call.
    for row in &farm_rows {
        assert!(!row.ok, "farm baseline unexpectedly absorbed {}", row.class);
        assert_eq!(row.recovered, 0);
    }

    // ---- Console summary ---------------------------------------------
    for (pname, _) in &policies {
        let rows: Vec<&SingleRow> = single_rows
            .iter()
            .filter(|r| r.policy == *pname && r.class != "none")
            .collect();
        let ok = rows.iter().filter(|r| r.ok).count();
        println!("single-fault [{pname:>5}]: {ok}/{} recovered", rows.len());
    }
    for &rate in rates {
        for (pname, _) in &policies {
            let rows: Vec<&CampaignRow> = campaign_rows
                .iter()
                .filter(|r| r.rate == rate && r.policy == *pname)
                .collect();
            let total_rounds: u32 = rows.iter().map(|r| r.rounds).sum();
            let ok_rounds: u32 = rows.iter().map(|r| r.rounds_ok).sum();
            let applied: usize = rows.iter().map(|r| r.applied).sum();
            let detected: usize = rows.iter().map(|r| r.detected).sum();
            println!(
                "campaign rate {rate} [{pname:>5}]: {ok_rounds}/{total_rounds} rounds ok, \
                 {detected}/{applied} faults detected"
            );
        }
    }

    // ---- JSON report --------------------------------------------------
    let mut aggregates: Vec<Value> = Vec::new();
    for &rate in rates {
        for (pname, _) in &policies {
            let rows: Vec<&CampaignRow> = campaign_rows
                .iter()
                .filter(|r| r.rate == rate && r.policy == *pname)
                .collect();
            let total_rounds: u32 = rows.iter().map(|r| r.rounds).sum();
            let ok_rounds: u32 = rows.iter().map(|r| r.rounds_ok).sum();
            let applied: usize = rows.iter().map(|r| r.applied).sum();
            let detected: usize = rows.iter().map(|r| r.detected).sum();
            let recovered: usize = rows.iter().map(|r| r.recovered).sum();
            let healed: u32 = rows.iter().map(|r| r.healed_rounds).sum();
            let mttr_us = if healed > 0 {
                rows.iter()
                    .map(|r| r.mttr_us * f64::from(r.healed_rounds))
                    .sum::<f64>()
                    / f64::from(healed)
            } else {
                0.0
            };
            aggregates.push(
                Obj::new()
                    .field("rate", rate)
                    .field("policy", *pname)
                    .field(
                        "completion_rate",
                        Value::fixed(f64::from(ok_rounds) / f64::from(total_rounds.max(1)), 4),
                    )
                    .field(
                        "detection_coverage",
                        Value::fixed(detected as f64 / (applied.max(1)) as f64, 4),
                    )
                    .field(
                        "recovery_coverage",
                        Value::fixed(recovered as f64 / (detected.max(1)) as f64, 4),
                    )
                    .field("mttr_us", Value::fixed(mttr_us, 3))
                    .into(),
            );
        }
    }

    let report = JsonReport::new("uparc-bench-resilience", 2)
        .field("smoke", smoke)
        .field("seeds_per_cell", seeds_per_cell)
        .field(
            "partition",
            Obj::new().field("far", FAR).field("frames", FRAMES),
        )
        .field(
            "single_fault",
            single_rows
                .iter()
                .map(|r| {
                    Obj::new()
                        .field("class", r.class)
                        .field("policy", r.policy)
                        .field("seed", r.seed)
                        .field("ok", r.ok)
                        .field("error", r.error.as_str())
                        .field("attempts", r.attempts)
                        .field(
                            "actions",
                            r.actions.iter().map(|&a| a.into()).collect::<Vec<Value>>(),
                        )
                        .field("extra_time_us", Value::fixed(r.extra_time_us, 3))
                        .field("extra_energy_uj", Value::fixed(r.extra_energy_uj, 3))
                        .field("faults_applied", r.applied)
                        .field("detected", r.detected)
                        .field("recovered", r.recovered)
                        .into()
                })
                .collect::<Vec<Value>>(),
        )
        .field(
            "campaign",
            campaign_rows
                .iter()
                .map(|r| {
                    Obj::new()
                        .field("rate", r.rate)
                        .field("policy", r.policy)
                        .field("seed", r.seed)
                        .field("rounds", r.rounds)
                        .field("rounds_ok", r.rounds_ok)
                        .field("healed_rounds", r.healed_rounds)
                        .field("attempts", r.attempts)
                        .field("faults_applied", r.applied)
                        .field("detected", r.detected)
                        .field("recovered", r.recovered)
                        .field("pending_left", r.pending_left)
                        .field("mttr_us", Value::fixed(r.mttr_us, 3))
                        .field("extra_energy_uj", Value::fixed(r.extra_energy_uj, 3))
                        .into()
                })
                .collect::<Vec<Value>>(),
        )
        .field("aggregates", aggregates)
        .field(
            "farm_baseline",
            farm_rows
                .iter()
                .map(|r| {
                    Obj::new()
                        .field("class", r.class)
                        .field("ok", r.ok)
                        .field("faults_applied", r.applied)
                        .field("recovered", r.recovered)
                        .into()
                })
                .collect::<Vec<Value>>(),
        );

    if let Some(trace) = trace_path {
        write_trace(&trace);
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_resilience.json");
    report.write(path).expect("write BENCH_resilience.json");
    println!("report written: {path}");
}

//! Machine-readable throughput benchmark: writes `BENCH_throughput.json`
//! at the repository root with words/sec for the ICAP cycle model (batched
//! fast path vs the per-cycle reference), each compression codec (encode
//! and decode), the end-to-end raw reconfiguration pipeline, and the
//! simulator event queue.
//!
//! Run with `cargo run --release -p uparc-bench --bin bench_throughput`;
//! pass `--smoke` for a seconds-scale CI variant (small workloads, fewer
//! repetitions — same JSON shape).

use std::fmt::Write as _;
use std::time::Instant;

use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_compress::{Algorithm, Ratio};
use uparc_core::uparc::{Mode, UParc};
use uparc_fpga::{Device, Icap};
use uparc_sim::queue::EventQueue;
use uparc_sim::time::{Frequency, SimTime};

/// One measured throughput sample.
struct Measured {
    /// Best-of-N wall-clock seconds for one pass over the workload.
    secs: f64,
    /// Work items (words, bytes or events) moved per pass.
    items: u64,
}

impl Measured {
    fn per_sec(&self) -> f64 {
        self.items as f64 / self.secs
    }
}

/// Times `f` (which must process `items` work items) `reps` times and
/// keeps the fastest pass.
fn best_of<F: FnMut()>(reps: usize, items: u64, mut f: F) -> Measured {
    let mut secs = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        secs = secs.min(t.elapsed().as_secs_f64());
    }
    Measured { secs, items }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 2 } else { 5 };
    let device = Device::xc5vsx50t();
    let profile = SynthProfile::dense();

    // ---- ICAP: batched vs per-cycle on a ~1 MB bitstream -------------
    let icap_bytes = if smoke { 64 * 1024 } else { 1024 * 1024 };
    let frames = (icap_bytes / device.family().frame_bytes()) as u32;
    let payload = profile.generate(&device, 0, frames, 13);
    let stream = PartialBitstream::build(&device, 0, &payload);
    let words = stream.words();
    let n_words = words.len() as u64;

    // One warm Icap per path, reset (untimed) between passes: the timings
    // measure parsing, not allocation, page faults or plane clearing. The
    // two paths are timed in *interleaved* passes so host interference
    // (the batched path is memory-bound and far more sensitive to it)
    // lands on both alike, and best-of keeps the quietest window.
    let mut ref_icap = Icap::new(device.clone());
    let mut fast_icap = Icap::new(device.clone());
    let mut ref_secs = f64::INFINITY;
    let mut fast_secs = f64::INFINITY;
    for _ in 0..if smoke { 3 } else { 11 } {
        ref_icap.reset();
        let t = Instant::now();
        ref_icap.write_words_reference(words).expect("reference parse");
        ref_secs = ref_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(ref_icap.frames_committed(), u64::from(frames));

        fast_icap.reset();
        let t = Instant::now();
        fast_icap.write_words(words).expect("batched parse");
        fast_secs = fast_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(fast_icap.frames_committed(), u64::from(frames));
    }
    let per_cycle = Measured { secs: ref_secs, items: n_words };
    let batched = Measured { secs: fast_secs, items: n_words };
    let speedup = batched.per_sec() / per_cycle.per_sec();
    println!(
        "icap: {} words; per-cycle {:.1} Mwords/s, batched {:.1} Mwords/s ({speedup:.1}x)",
        n_words,
        per_cycle.per_sec() / 1e6,
        batched.per_sec() / 1e6,
    );

    // ---- Codecs: encode + decode on a dense partial bitstream --------
    let codec_bytes = if smoke { 16 * 1024 } else { 256 * 1024 };
    let codec_frames = (codec_bytes / device.family().frame_bytes()) as u32;
    let codec_payload = profile.generate(&device, 0, codec_frames, 17);
    let raw = PartialBitstream::build(&device, 0, &codec_payload).to_bytes();

    let mut codec_rows = Vec::new();
    for alg in Algorithm::ALL {
        let codec = alg.codec();
        let packed = codec.compress(&raw);
        assert_eq!(codec.decompress(&packed).expect("round trip"), raw, "{alg}");
        let enc = best_of(reps, raw.len() as u64, || {
            std::hint::black_box(codec.compress(&raw));
        });
        let dec = best_of(reps, raw.len() as u64, || {
            std::hint::black_box(codec.decompress(&packed).expect("decompress"));
        });
        let saved = Ratio::new(raw.len(), packed.len()).percent_saved();
        println!(
            "codec {alg}: encode {:.1} MB/s, decode {:.1} MB/s, {saved:.1}% saved",
            enc.per_sec() / 1e6,
            dec.per_sec() / 1e6,
        );
        codec_rows.push((alg.to_string(), enc, dec, saved));
    }

    // ---- End-to-end pipeline: preload + reconfigure (raw mode) -------
    let e2e_bytes = if smoke { 64 * 1024 } else { 247 * 1024 };
    let e2e_frames = (e2e_bytes / device.family().frame_bytes()) as u32;
    let e2e_payload = profile.generate(&device, 0, e2e_frames, 19);
    let e2e_bs = PartialBitstream::build(&device, 0, &e2e_payload);
    let e2e_words = e2e_bs.words().len() as u64;
    let pipeline = best_of(reps, e2e_words, || {
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(362.5)).expect("retune");
        let r = sys.reconfigure_bitstream(&e2e_bs, Mode::Raw).expect("reconfigure");
        assert!(r.efficiency() > 0.5);
    });
    println!(
        "pipeline: {} words end-to-end at {:.1} Mwords/s (host wall clock)",
        e2e_words,
        pipeline.per_sec() / 1e6
    );

    // ---- Event queue: schedule + drain micro-benchmark ---------------
    let events = if smoke { 20_000u64 } else { 200_000u64 };
    // One op = one schedule or one pop; interleaved insert order stresses
    // the heap's FIFO tie-breaking.
    let queue = best_of(reps, 2 * events, || {
        let mut q = EventQueue::new();
        for i in 0..events {
            let at = SimTime::from_ns((i * 7919) % (events * 3));
            q.schedule(at, i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0u64;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "heap order violated");
            last = t;
            popped += 1;
        }
        assert_eq!(popped, events);
    });
    println!("event queue: {:.1} Mops/s", queue.per_sec() / 1e6);

    // ---- JSON report --------------------------------------------------
    let mut j = String::from("{\n");
    let _ = writeln!(j, "  \"schema\": \"uparc-bench-throughput-v1\",");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"icap\": {{");
    let _ = writeln!(j, "    \"stream_words\": {n_words},");
    let _ = writeln!(j, "    \"per_cycle_words_per_sec\": {:.0},", per_cycle.per_sec());
    let _ = writeln!(j, "    \"batched_words_per_sec\": {:.0},", batched.per_sec());
    let _ = writeln!(j, "    \"batched_speedup\": {speedup:.2}");
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"codecs\": [");
    for (i, (name, enc, dec, saved)) in codec_rows.iter().enumerate() {
        let comma = if i + 1 < codec_rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"input_bytes\": {}, \
             \"encode_bytes_per_sec\": {:.0}, \"decode_bytes_per_sec\": {:.0}, \
             \"percent_saved\": {saved:.2}}}{comma}",
            json_escape(name),
            raw.len(),
            enc.per_sec(),
            dec.per_sec(),
        );
    }
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"pipeline\": {{");
    let _ = writeln!(j, "    \"stream_words\": {e2e_words},");
    let _ = writeln!(j, "    \"raw_mode_words_per_sec\": {:.0}", pipeline.per_sec());
    let _ = writeln!(j, "  }},");
    let _ = writeln!(j, "  \"event_queue\": {{");
    let _ = writeln!(j, "    \"events\": {events},");
    let _ = writeln!(j, "    \"ops_per_sec\": {:.0}", queue.per_sec());
    let _ = writeln!(j, "  }}");
    j.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    std::fs::write(path, &j).expect("write BENCH_throughput.json");
    println!("report written: {path}");

    // The tentpole acceptance gate: the batched ICAP path must be at
    // least 5x the per-cycle reference on the full-size stream.
    if !smoke {
        assert!(
            speedup >= 5.0,
            "batched ICAP speedup {speedup:.2}x is below the 5x floor"
        );
    }
}

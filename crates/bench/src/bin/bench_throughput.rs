//! Machine-readable throughput benchmark: writes `BENCH_throughput.json`
//! at the repository root with words/sec for the ICAP cycle model (batched
//! fast path vs the per-cycle reference), each compression codec (encode
//! and decode), the end-to-end reconfiguration pipeline (raw and
//! compressed mode), the simulator event queue, and a kernel section
//! (engine dispatch rate, a sharded scenario grid, and the decompressed-
//! bitstream cache).
//!
//! Run with `cargo run --release -p uparc-bench --bin bench_throughput`;
//! pass `--smoke` for a seconds-scale CI variant (small workloads, fewer
//! repetitions — same JSON shape).

use std::any::Any;
use std::time::Instant;

use uparc_bench::report::{JsonReport, Obj, Value};
use uparc_bench::sweep;
use uparc_bitstream::builder::PartialBitstream;
use uparc_bitstream::synth::SynthProfile;
use uparc_compress::parallel::BlockCodec;
use uparc_compress::{Algorithm, Ratio};
use uparc_core::schedule::{run_schedule, ReconfigTask, Strategy};
use uparc_core::uparc::{Mode, UParc};
use uparc_fpga::{Device, Icap};
use uparc_sim::engine::{Context, Engine, Process, ProcessId};
use uparc_sim::queue::EventQueue;
use uparc_sim::time::{Frequency, SimTime};

/// Event-queue ops/s recorded by PR 1's `BinaryHeap` kernel on this same
/// 200k-event workload — the floor the calendar queue is measured against.
const QUEUE_BASELINE_OPS_PER_SEC: f64 = 12_792_958.0;

/// One relay in the engine benchmark's token ring: forwards a hop counter
/// to the next relay with a data-dependent delay, sprinkling in
/// same-instant self-sends so batched delta-cycle dispatch is exercised.
struct Relay {
    next: Option<ProcessId>,
    received: u64,
}

impl Process<u64> for Relay {
    fn handle(&mut self, ctx: &mut Context<'_, u64>, hops: u64) {
        self.received += 1;
        if hops > 0 {
            if let Some(next) = self.next {
                let delay = SimTime::from_ns(1 + (hops * 7919) % 1000);
                ctx.send_in(delay, next, hops - 1);
                if hops.is_multiple_of(8) {
                    ctx.send_now(ctx.self_id(), 0);
                }
            }
        }
    }
}

/// Builds a ring of `relays` token-passing processes seeded with `tokens`
/// staggered tokens of `hops` hops each.
fn ring_engine(relays: usize, tokens: u64, hops: u64) -> Engine<u64> {
    let mut engine = Engine::new();
    let ids: Vec<ProcessId> = (0..relays)
        .map(|_| {
            engine.spawn(Box::new(Relay {
                next: None,
                received: 0,
            }))
        })
        .collect();
    for (i, &id) in ids.iter().enumerate() {
        let next = ids[(i + 1) % ids.len()];
        let relay: &mut Relay = (engine.process_mut(id) as &mut dyn Any)
            .downcast_mut()
            .expect("concrete relay");
        relay.next = Some(next);
    }
    for t in 0..tokens {
        let at = SimTime::from_ns(t * 13);
        engine.schedule(at, ids[(t as usize * 7) % ids.len()], hops);
    }
    engine
}

/// One measured throughput sample.
struct Measured {
    /// Best-of-N wall-clock seconds for one pass over the workload.
    secs: f64,
    /// Work items (words, bytes or events) moved per pass.
    items: u64,
}

impl Measured {
    fn per_sec(&self) -> f64 {
        self.items as f64 / self.secs
    }
}

/// Times `f` (which must process `items` work items) `reps` times and
/// keeps the fastest pass.
fn best_of<F: FnMut()>(reps: usize, items: u64, mut f: F) -> Measured {
    let mut secs = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        secs = secs.min(t.elapsed().as_secs_f64());
    }
    Measured { secs, items }
}

fn main() {
    let smoke = uparc_bench::args::BenchArgs::parse().smoke;
    let reps = if smoke { 2 } else { 5 };
    let device = Device::xc5vsx50t();
    let profile = SynthProfile::dense();

    // ---- ICAP: batched vs per-cycle on a ~1 MB bitstream -------------
    let icap_bytes = if smoke { 64 * 1024 } else { 1024 * 1024 };
    let frames = (icap_bytes / device.family().frame_bytes()) as u32;
    let payload = profile.generate(&device, 0, frames, 13);
    let stream = PartialBitstream::build(&device, 0, &payload);
    let words = stream.words();
    let n_words = words.len() as u64;

    // One warm Icap per path, reset (untimed) between passes: the timings
    // measure parsing, not allocation, page faults or plane clearing. The
    // two paths are timed in *interleaved* passes so host interference
    // (the batched path is memory-bound and far more sensitive to it)
    // lands on both alike, and best-of keeps the quietest window.
    let mut ref_icap = Icap::new(device.clone());
    let mut fast_icap = Icap::new(device.clone());
    let mut ref_secs = f64::INFINITY;
    let mut fast_secs = f64::INFINITY;
    for _ in 0..if smoke { 3 } else { 11 } {
        ref_icap.reset();
        let t = Instant::now();
        ref_icap
            .write_words_reference(words)
            .expect("reference parse");
        ref_secs = ref_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(ref_icap.frames_committed(), u64::from(frames));

        fast_icap.reset();
        let t = Instant::now();
        fast_icap.write_words(words).expect("batched parse");
        fast_secs = fast_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(fast_icap.frames_committed(), u64::from(frames));
    }

    // ---- Observability overhead on the batched hot path --------------
    // A second pair of ports parses the same stream: one with the default
    // no-op NullRecorder, one with a *recording* observer (which does
    // strictly more work, so this delta upper-bounds the NullRecorder
    // cost the ISSUE gates at <= 2%). Wall-clock deltas between
    // near-identical memory-bound passes are noise-bound on a shared
    // host — even best-of floors drift by several percent — so each
    // sample is the obs/null ratio of two *adjacent* passes (a ~ms window
    // sees the same interference), order alternates to cancel position
    // bias, and the median ratio over all pairs discards the outliers.
    let mut null_icap = Icap::new(device.clone());
    let mut obs_icap = Icap::new(device.clone());
    let obs_recorder = std::sync::Arc::new(uparc_sim::obs::TraceRecorder::new());
    let obs_handle = uparc_sim::obs::Obs::recording(std::sync::Arc::clone(&obs_recorder));
    obs_icap.set_observer(obs_handle.clone());
    let overhead_passes = if smoke { 40 } else { 200 };
    let time_pass = |icap: &mut Icap| {
        icap.reset();
        let t = Instant::now();
        icap.write_words(words).expect("overhead parse");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(icap.frames_committed(), u64::from(frames));
        secs
    };
    let mut ratios = Vec::with_capacity(overhead_passes);
    let mut obs_best = f64::INFINITY;
    for i in 0..overhead_passes {
        let (null_pass, obs_pass) = if i % 2 == 0 {
            let n = time_pass(&mut null_icap);
            let o = time_pass(&mut obs_icap);
            (n, o)
        } else {
            let o = time_pass(&mut obs_icap);
            let n = time_pass(&mut null_icap);
            (n, o)
        };
        obs_best = obs_best.min(obs_pass);
        ratios.push(obs_pass / null_pass);
    }
    ratios.sort_by(f64::total_cmp);
    let median_ratio = ratios[ratios.len() / 2];
    // The observed port really counted: one burst per pass, every word.
    let obs_counters = obs_handle.metrics().snapshot().counters;
    assert_eq!(
        obs_counters.get("icap.bursts"),
        Some(&(overhead_passes as u64))
    );
    assert_eq!(
        obs_counters.get("icap.words"),
        Some(&(n_words * overhead_passes as u64))
    );
    let per_cycle = Measured {
        secs: ref_secs,
        items: n_words,
    };
    let batched = Measured {
        secs: fast_secs,
        items: n_words,
    };
    let speedup = batched.per_sec() / per_cycle.per_sec();
    // Relative cost of observing the batched path; NullRecorder (the
    // default) does strictly less work than the recording observer timed
    // here, so this bounds its overhead too. The raw delta goes negative
    // when the cost is lost in noise; the reported overhead clamps at
    // zero (an observer cannot make the port faster), with the raw value
    // kept alongside for noise diagnostics.
    let obs_overhead_raw = median_ratio - 1.0;
    let obs_overhead = obs_overhead_raw.max(0.0);
    println!(
        "icap: {} words; per-cycle {:.1} Mwords/s, batched {:.1} Mwords/s ({speedup:.1}x), \
         obs overhead {:.2}%",
        n_words,
        per_cycle.per_sec() / 1e6,
        batched.per_sec() / 1e6,
        obs_overhead * 100.0,
    );

    // ---- Codecs: encode + decode on a dense partial bitstream --------
    let codec_bytes = if smoke { 16 * 1024 } else { 256 * 1024 };
    let codec_frames = (codec_bytes / device.family().frame_bytes()) as u32;
    let codec_payload = profile.generate(&device, 0, codec_frames, 17);
    let raw = PartialBitstream::build(&device, 0, &codec_payload).to_bytes();

    let mut codec_rows = Vec::new();
    for alg in Algorithm::ALL {
        let codec = alg.codec();
        let packed = codec.compress(&raw);
        assert_eq!(codec.decompress(&packed).expect("round trip"), raw, "{alg}");
        let enc = best_of(reps, raw.len() as u64, || {
            std::hint::black_box(codec.compress(&raw));
        });
        let dec = best_of(reps, raw.len() as u64, || {
            std::hint::black_box(codec.decompress(&packed).expect("decompress"));
        });
        let saved = Ratio::new(raw.len(), packed.len()).percent_saved();
        println!(
            "codec {alg}: encode {:.1} MB/s, decode {:.1} MB/s, {saved:.1}% saved",
            enc.per_sec() / 1e6,
            dec.per_sec() / 1e6,
        );
        codec_rows.push((alg.to_string(), enc, dec, saved));
    }

    // ---- Block-parallel encode: BlockCodec across worker counts ------
    // The framed block codec encodes independent blocks on a worker pool;
    // the frame bytes must be identical at every worker count (the frame
    // layout is position-deterministic), so only the wall clock may move.
    // The ~1 MB ICAP corpus gives the pool enough 64 KB blocks to spread.
    let block_corpus = stream.to_bytes();
    let block_codec = BlockCodec::new(Algorithm::XMatchPro);
    let mut parallel_rows = Vec::new();
    let mut first_frame: Option<Vec<u8>> = None;
    for workers in [1usize, 2, 8] {
        sweep::pin_workers(workers);
        let frame = block_codec.compress(&block_corpus);
        match &first_frame {
            None => {
                assert_eq!(
                    block_codec.decompress(&frame).expect("block round trip"),
                    block_corpus,
                    "block frame must restore the input"
                );
                first_frame = Some(frame);
            }
            Some(first) => {
                assert_eq!(first, &frame, "worker count changed the frame bytes");
            }
        }
        let enc = best_of(reps, block_corpus.len() as u64, || {
            std::hint::black_box(block_codec.compress(&block_corpus));
        });
        println!(
            "parallel encode x{workers}: {:.1} MB/s",
            enc.per_sec() / 1e6
        );
        parallel_rows.push((workers, enc));
    }
    sweep::unpin_workers();
    let block_frame_bytes = first_frame.expect("one worker count ran").len();

    // ---- End-to-end pipeline: preload + reconfigure (raw mode) -------
    let e2e_bytes = if smoke { 64 * 1024 } else { 247 * 1024 };
    let e2e_frames = (e2e_bytes / device.family().frame_bytes()) as u32;
    let e2e_payload = profile.generate(&device, 0, e2e_frames, 19);
    let e2e_bs = PartialBitstream::build(&device, 0, &e2e_payload);
    let e2e_words = e2e_bs.words().len() as u64;
    let pipeline = best_of(reps, e2e_words, || {
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(362.5))
            .expect("retune");
        let r = sys
            .reconfigure_bitstream(&e2e_bs, Mode::Raw)
            .expect("reconfigure");
        assert!(r.efficiency() > 0.5);
    });
    println!(
        "pipeline: {} words end-to-end at {:.1} Mwords/s (host wall clock)",
        e2e_words,
        pipeline.per_sec() / 1e6
    );

    // Compressed-mode end-to-end figure: same bitstream through the
    // decompressor datapath (CLK_2 capped at 255 MHz in this mode). A
    // fresh system per pass keeps the decompression cache cold, so this
    // tracks the full staging + decode path.
    let pipeline_compressed = best_of(reps, e2e_words, || {
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(200.0))
            .expect("retune");
        let r = sys
            .reconfigure_bitstream(&e2e_bs, Mode::Compressed)
            .expect("reconfigure");
        assert!(r.compressed);
    });
    println!(
        "pipeline (compressed): {:.1} Mwords/s (host wall clock)",
        pipeline_compressed.per_sec() / 1e6
    );

    // Steady-state compressed transfer: what a controller that already
    // holds a staged image pays per reconfiguration. Build, retune and
    // preload happen untimed; the decompression cache is cleared before
    // every timed pass, so each one runs the full cold path — streamed
    // decode overlapped with the ICAP burst, plus the cycle-level
    // pipeline simulation.
    let mut streaming_secs = f64::INFINITY;
    for _ in 0..if smoke { 3 } else { 9 } {
        let mut sys = UParc::builder(device.clone()).build().expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(200.0))
            .expect("retune");
        sys.preload(&e2e_bs, Mode::Compressed).expect("preload");
        sys.clear_decomp_cache();
        let t = Instant::now();
        let r = sys.reconfigure().expect("reconfigure");
        streaming_secs = streaming_secs.min(t.elapsed().as_secs_f64());
        assert!(r.compressed);
    }
    let streaming = Measured {
        secs: streaming_secs,
        items: e2e_words,
    };
    println!(
        "pipeline (streaming transfer): {:.1} Mwords/s (host wall clock)",
        streaming.per_sec() / 1e6
    );

    // ---- Event queue: schedule + drain micro-benchmark ---------------
    let events = if smoke { 20_000u64 } else { 200_000u64 };
    // One op = one schedule or one pop; interleaved insert order stresses
    // the heap's FIFO tie-breaking. Like the ICAP section, this one takes
    // extra passes: the acceptance gate below asserts on the result, and
    // best-of over a longer window rides out host-scheduler interference.
    let queue = best_of(if smoke { 3 } else { 11 }, 2 * events, || {
        let mut q = EventQueue::new();
        for i in 0..events {
            let at = SimTime::from_ns((i * 7919) % (events * 3));
            q.schedule(at, i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0u64;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "heap order violated");
            last = t;
            popped += 1;
        }
        assert_eq!(popped, events);
    });
    println!("event queue: {:.1} Mops/s", queue.per_sec() / 1e6);

    // ---- Kernel: engine dispatch rate on a token ring -----------------
    let (relays, tokens, hops) = if smoke { (16, 8, 500) } else { (64, 32, 5_000) };
    // One untimed run pins the deterministic event count.
    let engine_events = {
        let mut engine = ring_engine(relays, tokens, hops);
        engine.run();
        engine.dispatched()
    };
    let engine_m = best_of(reps, engine_events, || {
        let mut engine = ring_engine(relays, tokens, hops);
        engine.run();
        assert_eq!(engine.dispatched(), engine_events, "nondeterministic run");
    });
    println!(
        "engine: {} events over {relays} relays at {:.2} Mevents/s",
        engine_events,
        engine_m.per_sec() / 1e6
    );

    // ---- Kernel: sharded scenario grid --------------------------------
    // A grid of independent ring scenarios, decomposed into contiguous
    // shards positionally (host-independent) and dispatched in parallel.
    let grid: Vec<(usize, u64, u64)> = (0..if smoke { 8 } else { 24 })
        .map(|i| {
            (
                8 + (i % 5) * 12,
                4 + (i as u64 % 7),
                if smoke { 200 } else { 1_500 } + i as u64 * 97,
            )
        })
        .collect();
    let grid_shards = sweep::shards(&grid, 8);
    let shard_events = |cells: &&[(usize, u64, u64)]| -> u64 {
        cells
            .iter()
            .map(|&(relays, tokens, hops)| {
                let mut engine = ring_engine(relays, tokens, hops);
                engine.run();
                engine.dispatched()
            })
            .sum()
    };
    let grid_expected: u64 = grid_shards.iter().map(&shard_events).sum();
    let mut grid_secs = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let per_shard = sweep::parallel_map(&grid_shards, shard_events);
        grid_secs = grid_secs.min(t.elapsed().as_secs_f64());
        assert_eq!(
            per_shard.iter().sum::<u64>(),
            grid_expected,
            "nondeterministic grid"
        );
    }
    let scenario = Measured {
        secs: grid_secs,
        items: grid_expected,
    };
    println!(
        "scenario grid: {} cells in {} shards, {} events at {:.2} Mevents/s",
        grid.len(),
        grid_shards.len(),
        grid_expected,
        scenario.per_sec() / 1e6
    );

    // ---- Kernel: decompressed-bitstream cache -------------------------
    // The schedule-test workload: a 3-module working set swapped over
    // several rounds in compressed mode, with and without the cache.
    let cache_frames = if smoke { 150 } else { 400 };
    let cache_rounds = if smoke { 2 } else { 4 };
    let cache_tasks: Vec<ReconfigTask> = {
        let mut list = Vec::new();
        for _round in 0..cache_rounds {
            for (name, seed) in [("fir", 23u64), ("fft", 29), ("viterbi", 31)] {
                let payload = profile.generate(&device, 0, cache_frames, seed);
                let bs = PartialBitstream::build(&device, 0, &payload);
                list.push(ReconfigTask::new(
                    name,
                    bs,
                    Mode::Compressed,
                    SimTime::from_us(500),
                ));
            }
        }
        list
    };
    let cache_system = |cache_bytes: usize| {
        let mut sys = UParc::builder(device.clone())
            .decompressed_cache_bytes(cache_bytes)
            .build()
            .expect("build");
        sys.set_reconfiguration_frequency(Frequency::from_mhz(200.0))
            .expect("retune");
        sys
    };
    let mut cache_stats = None;
    let cached = best_of(reps, cache_tasks.len() as u64, || {
        let mut sys = cache_system(32 * 1024 * 1024);
        let report = run_schedule(&mut sys, &cache_tasks, Strategy::OnDemand).expect("schedule");
        cache_stats = Some((report.cache, report.total_downtime));
    });
    let (cache_run, cached_downtime) = cache_stats.expect("at least one pass");
    let uncached = best_of(reps, cache_tasks.len() as u64, || {
        let mut sys = cache_system(0);
        let report = run_schedule(&mut sys, &cache_tasks, Strategy::OnDemand).expect("schedule");
        assert_eq!(
            report.total_downtime, cached_downtime,
            "cache changed simulated results"
        );
    });
    let cache_speedup = uncached.secs / cached.secs;
    println!(
        "decomp cache: {} swaps, hit rate {:.2}, host speedup {cache_speedup:.2}x",
        cache_tasks.len(),
        cache_run.hit_rate()
    );

    // ---- JSON report --------------------------------------------------
    let queue_speedup = queue.per_sec() / QUEUE_BASELINE_OPS_PER_SEC;
    let report = JsonReport::new("uparc-bench-throughput", 4)
        .field("smoke", smoke)
        .field(
            "icap",
            Obj::new()
                .field("stream_words", n_words)
                .field(
                    "per_cycle_words_per_sec",
                    Value::fixed(per_cycle.per_sec(), 0),
                )
                .field("batched_words_per_sec", Value::fixed(batched.per_sec(), 0))
                .field("batched_speedup", Value::fixed(speedup, 2))
                .field(
                    "observed_words_per_sec",
                    Value::fixed(n_words as f64 / obs_best, 0),
                )
                .field("obs_overhead", Value::fixed(obs_overhead, 4))
                .field("obs_overhead_raw", Value::fixed(obs_overhead_raw, 4)),
        )
        .field(
            "codecs",
            codec_rows
                .iter()
                .map(|(name, enc, dec, saved)| {
                    Obj::new()
                        .field("name", name.as_str())
                        .field("input_bytes", raw.len())
                        .field("encode_bytes_per_sec", Value::fixed(enc.per_sec(), 0))
                        .field("decode_bytes_per_sec", Value::fixed(dec.per_sec(), 0))
                        .field("percent_saved", Value::fixed(*saved, 2))
                        .into()
                })
                .collect::<Vec<Value>>(),
        )
        .field(
            "pipeline",
            Obj::new()
                .field("stream_words", e2e_words)
                .field(
                    "raw_mode_words_per_sec",
                    Value::fixed(pipeline.per_sec(), 0),
                )
                .field(
                    "compressed_mode_words_per_sec",
                    Value::fixed(pipeline_compressed.per_sec(), 0),
                )
                .field(
                    "streaming_words_per_sec",
                    Value::fixed(streaming.per_sec(), 0),
                ),
        )
        .field(
            "parallel_encode",
            Obj::new()
                .field("algorithm", "xmatchpro")
                .field("block_bytes", block_codec.block_size())
                .field("input_bytes", block_corpus.len())
                .field("frame_bytes", block_frame_bytes)
                .field("byte_identical_across_workers", true)
                .field(
                    "workers",
                    parallel_rows
                        .iter()
                        .map(|(workers, enc)| {
                            Obj::new()
                                .field("count", *workers)
                                .field("encode_bytes_per_sec", Value::fixed(enc.per_sec(), 0))
                                .into()
                        })
                        .collect::<Vec<Value>>(),
                ),
        )
        .field(
            "event_queue",
            Obj::new()
                .field("events", events)
                .field("ops_per_sec", Value::fixed(queue.per_sec(), 0))
                .field(
                    "baseline_ops_per_sec",
                    Value::fixed(QUEUE_BASELINE_OPS_PER_SEC, 0),
                )
                .field("speedup_vs_baseline", Value::fixed(queue_speedup, 2)),
        )
        .field(
            "kernel",
            Obj::new()
                .field(
                    "engine",
                    Obj::new()
                        .field("processes", relays)
                        .field("events", engine_events)
                        .field("events_per_sec", Value::fixed(engine_m.per_sec(), 0)),
                )
                .field(
                    "scenario_grid",
                    Obj::new()
                        .field("cells", grid.len())
                        .field("shards", grid_shards.len())
                        .field("events", grid_expected)
                        .field("wall_secs", Value::fixed(scenario.secs, 6))
                        .field("events_per_sec", Value::fixed(scenario.per_sec(), 0)),
                )
                .field(
                    "cache",
                    Obj::new()
                        .field("swaps", cache_tasks.len())
                        .field("hits", cache_run.hits)
                        .field("misses", cache_run.misses)
                        .field("evictions", cache_run.evictions)
                        .field("hit_rate", Value::fixed(cache_run.hit_rate(), 4))
                        .field("cached_secs", Value::fixed(cached.secs, 6))
                        .field("uncached_secs", Value::fixed(uncached.secs, 6))
                        .field("host_speedup", Value::fixed(cache_speedup, 2)),
                ),
        );

    // Rendering is deterministic: two renders of the same report are
    // byte-identical, and the file on disk is exactly the render.
    let rendered = report.render();
    assert_eq!(rendered, report.render(), "nondeterministic JSON render");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    report.write(path).expect("write BENCH_throughput.json");
    let on_disk = std::fs::read_to_string(path).expect("read back BENCH_throughput.json");
    assert_eq!(on_disk, rendered, "written report diverges from render");
    println!("report written: {path}");

    // The v4 schema fields the CI smoke run keys on must exist in every
    // variant, smoke included.
    for key in [
        "\"streaming_words_per_sec\"",
        "\"parallel_encode\"",
        "\"obs_overhead_raw\"",
    ] {
        assert!(rendered.contains(key), "report lost the {key} field");
    }

    // Acceptance gates (full-size workloads only): the batched ICAP path
    // must hold PR 1's 5x floor, the calendar queue must be at least 3x
    // the recorded BinaryHeap baseline on the same 200k-event workload,
    // and the streamed compressed transfer must hold this PR's 38 Mwords/s
    // floor (>= 3x the v3 compressed-pipeline figure).
    if !smoke {
        assert!(
            speedup >= 5.0,
            "batched ICAP speedup {speedup:.2}x is below the 5x floor"
        );
        assert!(
            obs_overhead <= 0.02,
            "observing the batched ICAP path costs {:.2}% (> 2% budget); \
             the NullRecorder default must stay cheaper still",
            obs_overhead * 100.0
        );
        assert!(
            queue_speedup >= 3.0,
            "event queue at {:.0} ops/s is only {queue_speedup:.2}x the \
             {QUEUE_BASELINE_OPS_PER_SEC:.0} ops/s baseline (need 3x)",
            queue.per_sec()
        );
        assert!(
            streaming.per_sec() >= 38e6,
            "streamed compressed transfer at {:.1} Mwords/s is below the \
             38 Mwords/s floor",
            streaming.per_sec() / 1e6
        );
    }
}

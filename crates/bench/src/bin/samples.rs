//! The §IV multi-sample screening experiment, at the scale the paper left
//! as "underway": Monte-Carlo lots of Virtex-5 and Virtex-6 samples
//! screened across overclock frequencies.
//!
//! Paper observations to reproduce: every tested XC5VSX50T sustains
//! 362.5 MHz; XC6VLX240T samples do not — "the maximum frequency seems to
//! be few MHz lower".
//!
//! Run with `cargo run --release -p uparc-bench --bin samples`.

use uparc_bench::Report;
use uparc_fpga::family::Family;
use uparc_fpga::variation::SampleLot;
use uparc_sim::time::Frequency;

const LOT_SIZE: u32 = 500;

fn main() {
    let mut report = Report::new(
        "§IV screening — yield over 500-sample lots (1 V, 20 °C)",
        &["Frequency", "Virtex-5 yield", "Virtex-6 yield"],
    );
    let v5 = SampleLot::draw(Family::Virtex5, LOT_SIZE, 0xA5);
    let v6 = SampleLot::draw(Family::Virtex6, LOT_SIZE, 0x6A);
    for mhz in [350.0, 355.0, 358.0, 360.0, 362.5, 365.0, 370.0] {
        let f = Frequency::from_mhz(mhz);
        report.row(&[
            format!("{mhz} MHz"),
            format!("{:.1}%", v5.screen(f).yield_fraction() * 100.0),
            format!("{:.1}%", v6.screen(f).yield_fraction() * 100.0),
        ]);
    }
    report.print();
    let v5_min = v5.screen(Frequency::from_mhz(362.5)).min_fmax;
    let v6_min = v6.screen(Frequency::from_mhz(362.5)).min_fmax;
    println!(
        "\nweakest V5 sample: {:.1} MHz (all pass the 362.5 MHz point)",
        v5_min.as_mhz()
    );
    println!(
        "weakest V6 sample: {:.1} MHz ({:.1} MHz short of the V5 point — \"a few MHz lower\")",
        v6_min.as_mhz(),
        362.5 - v6_min.as_mhz()
    );
}
